"""Live disruption overlay (supplementary): hybrid engine vs re-index.

TTL assumes frozen schedules; the live overlay engine serves
delay/cancellation-aware answers without touching the index.  This
benchmark disrupts a growing fraction of trips, replays the feed into
the engine, and reports — per disruption rate — the fast-path rate
(queries still served from the untouched TTL index), the hybrid
latency, and the cost of the alternative: rebuilding the index on the
patched timetable.

Structural expectations asserted below: at a realistic disruption rate
(<= 5% of trips) at least 80% of a mixed EAP/LDP/SDP workload stays on
the fast path, every hybrid answer matches temporal Dijkstra on the
overlay graph, and one full re-index costs orders of magnitude more
than the per-query hybrid overhead.
"""

import time

from repro.algorithms.temporal_dijkstra import DijkstraPlanner
from repro.bench.harness import render_table
from repro.core import build_index
from repro.live import LiveOverlayEngine, replay, synthetic_feed

from conftest import CACHE, write_result

DATASET = "Austin" if "Austin" in CACHE.config.datasets else (
    CACHE.config.datasets[0]
)
RATES = [0.01, 0.02, 0.05]
KINDS = ("eap", "ldp", "sdp")


def _answer(planner, kind, q):
    if kind == "eap":
        return planner.earliest_arrival(q.source, q.destination, q.t_start)
    if kind == "ldp":
        return planner.latest_departure(q.source, q.destination, q.t_end)
    return planner.shortest_duration(
        q.source, q.destination, q.t_start, q.t_end
    )


def _objective(journey, kind):
    if journey is None:
        return None
    if kind == "eap":
        return journey.arr
    if kind == "ldp":
        return journey.dep
    return journey.duration


def _measure():
    graph = CACHE.graph(DATASET)
    index = CACHE.planner(DATASET, "TTL").index
    queries = CACHE.queries(DATASET)
    rows = []
    matches_total = 0
    answers_total = 0
    fast_rate_at_5pct = None
    reindex_us = hybrid_us = None
    for rate in RATES:
        engine = LiveOverlayEngine(graph, index=index)
        engine.preprocess()
        for _ in replay(engine, synthetic_feed(graph, rate=rate, seed=2)):
            pass
        engine.stats.reset()
        oracle = DijkstraPlanner(engine.overlay)

        start = time.perf_counter()
        answers = [
            _answer(engine, KINDS[i % 3], q)
            for i, q in enumerate(queries)
        ]
        hybrid_us = (time.perf_counter() - start) * 1e6 / len(queries)

        for i, (q, got) in enumerate(zip(queries, answers)):
            kind = KINDS[i % 3]
            ref = _answer(oracle, kind, q)
            answers_total += 1
            if _objective(got, kind) == _objective(ref, kind):
                matches_total += 1

        start = time.perf_counter()
        build_index(engine.overlay.materialize())
        reindex_s = time.perf_counter() - start
        reindex_us = reindex_s * 1e6

        stats = engine.stats
        taint = engine.taint_report()
        if rate == 0.05:
            fast_rate_at_5pct = stats.fast_path_rate
        rows.append(
            [
                f"{100 * rate:.0f}%",
                len(engine.events()),
                f"{100 * taint.fraction:.1f}%",
                f"{100 * stats.fast_path_rate:.1f}%",
                stats.fallback_taint,
                stats.fallback_improvement,
                stats.fallback_flood,
                f"{hybrid_us:.1f}",
                f"{reindex_s * 1e3:.0f}",
            ]
        )
    return (
        rows,
        matches_total,
        answers_total,
        fast_rate_at_5pct,
        hybrid_us,
        reindex_us,
    )


def test_live_overlay_vs_reindex(benchmark):
    (rows, matches, answers, fast_rate, hybrid_us, reindex_us) = (
        benchmark.pedantic(_measure, rounds=1, iterations=1)
    )
    table = render_table(
        f"Live overlay vs re-index ({DATASET}, mixed EAP/LDP/SDP)",
        [
            "disrupted",
            "events",
            "tainted",
            "fast path",
            "fb:taint",
            "fb:improve",
            "fb:flood",
            "query us",
            "reindex ms",
        ],
        rows,
    )
    write_result("live_overlay", table)

    # Exactness: the hybrid engine is indistinguishable from temporal
    # Dijkstra on the overlay graph, fast path and fallback alike.
    assert matches == answers
    # At <= 5% disrupted trips the untouched TTL index still serves the
    # bulk of the workload.
    assert fast_rate is not None and fast_rate >= 0.80
    # The alternative — rebuilding the index — costs orders of
    # magnitude more than one hybrid query.
    assert reindex_us > 100 * hybrid_us
