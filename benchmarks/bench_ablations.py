"""Ablation benchmarks beyond the paper's figures (DESIGN.md §6).

* hub-cover pruning on/off (construction cost and label count);
* H-Order sample-count sweep;
* full-path vs concise-path reconstruction cost.
"""

from repro.bench.experiments import (
    SMALL_DATASETS,
    ablation_horder_samples,
    ablation_pruning,
    ablation_unfold,
)

from conftest import CACHE, write_result

DATASETS = [d for d in CACHE.config.datasets if d in SMALL_DATASETS] or (
    SMALL_DATASETS[:1]
)


def test_ablation_pruning(benchmark):
    result = benchmark.pedantic(
        ablation_pruning, args=(CACHE, DATASETS), rounds=1, iterations=1
    )
    write_result("ablation_pruning", result)
    for row in result.rows:
        name, pruned_labels, raw_labels, pruned_s, raw_s = row
        # Pruning may only remove labels.
        assert pruned_labels <= raw_labels


def test_ablation_horder_samples(benchmark):
    dataset = DATASETS[0]
    result = benchmark.pedantic(
        ablation_horder_samples, args=(CACHE, dataset), rounds=1, iterations=1
    )
    write_result("ablation_horder_samples", result)
    labels = result.column("labels")
    # More samples should not catastrophically worsen the index.
    assert min(labels) > 0
    assert labels[-1] <= labels[0] * 1.5


def test_ablation_unfold(benchmark):
    dataset = "Berlin" if "Berlin" in CACHE.config.datasets else DATASETS[0]
    result = benchmark.pedantic(
        ablation_unfold, args=(CACHE, dataset), rounds=1, iterations=1
    )
    write_result("ablation_unfold", result)
    by_method = {row[0]: row[1] for row in result.rows}
    # Concise reconstruction is cheaper than full reconstruction
    # (Section 8's partial unfolding).
    assert by_method["TTL-concise"] < by_method["TTL"] * 1.2
    assert by_method["C-TTL-concise"] < by_method["C-TTL"] * 1.2
