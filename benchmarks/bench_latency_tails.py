"""Latency tails (supplementary): per-query percentiles, not averages.

The paper reports averages; production planners care about tails.
This benchmark measures per-query latency distributions for SDP and
reports p50 / p95 / p99 per method on a mid-size dataset.  The
structural expectation: index-based TTL has a *tight* distribution
(every query is one bounded label merge) while scan-based CSA's tail
stretches with the window length.

Also measured here: the *resilience tax* — the full serving pipeline
(HTTP + deadline + admission gate) with resilience enabled vs. the
bare pre-resilience pipeline (``ResilienceConfig(enabled=False)``),
interleaved request-for-request against two services wrapping the
same planner so clock drift cancels.  The acceptance bar: enabled
adds under 5% to the EAP median.
"""

import http.client
import time

from repro.bench.harness import render_table

from conftest import CACHE, write_result

DATASET = "Berlin" if "Berlin" in CACHE.config.datasets else (
    CACHE.config.datasets[0]
)
METHODS = ["TTL", "C-TTL", "CHT", "CSA"]


def _percentile(sorted_values, q):
    idx = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[idx]


def _measure():
    queries = CACHE.queries(DATASET)
    rows = []
    for method in METHODS:
        planner = CACHE.planner(DATASET, method)
        samples = []
        for q in queries:
            start = time.perf_counter()
            planner.shortest_duration(
                q.source, q.destination, q.t_start, q.t_end
            )
            samples.append((time.perf_counter() - start) * 1e6)
        samples.sort()
        rows.append(
            [
                method,
                _percentile(samples, 0.50),
                _percentile(samples, 0.95),
                _percentile(samples, 0.99),
                samples[-1],
            ]
        )
    return rows


def _http_get(conn, path):
    conn.request("GET", path)
    response = conn.getresponse()
    response.read()
    assert response.status == 200


def _measure_resilience_overhead(min_samples=400, warmup=50):
    """Interleaved EAP requests against resilience-on/off services."""
    from repro.resilience import ResilienceConfig
    from repro.service import PlannerService

    planner = CACHE.planner(DATASET, "TTL")
    queries = CACHE.queries(DATASET)
    reps = max(1, -(-min_samples // len(queries)))  # ceil division
    services = {}
    connections = {}
    samples = {"off": [], "on": []}
    try:
        for mode, enabled in (("off", False), ("on", True)):
            service = PlannerService(
                planner, resilience=ResilienceConfig(enabled=enabled)
            )
            port = service.start(port=0)
            services[mode] = service
            connections[mode] = http.client.HTTPConnection(
                "127.0.0.1", port, timeout=30
            )
        for i in range(warmup):
            q = queries[i % len(queries)]
            for mode in ("off", "on"):
                _http_get(
                    connections[mode],
                    f"/eap?from={q.source}&to={q.destination}&t={q.t_start}",
                )
        for _ in range(reps):
            for q in queries:
                path = (
                    f"/eap?from={q.source}&to={q.destination}&t={q.t_start}"
                )
                for mode in ("off", "on"):
                    conn = connections[mode]
                    start = time.perf_counter()
                    _http_get(conn, path)
                    samples[mode].append(
                        (time.perf_counter() - start) * 1e6
                    )
    finally:
        for conn in connections.values():
            conn.close()
        for service in services.values():
            service.stop()
    for values in samples.values():
        values.sort()
    return samples


def test_resilience_overhead(benchmark):
    samples = benchmark.pedantic(
        _measure_resilience_overhead, rounds=1, iterations=1
    )
    rows = []
    for mode in ("off", "on"):
        values = samples[mode]
        rows.append(
            [
                f"resilience {mode}",
                _percentile(values, 0.50),
                _percentile(values, 0.95),
                _percentile(values, 0.99),
                values[-1],
            ]
        )
    off_p50 = rows[0][1]
    on_p50 = rows[1][1]
    overhead = (on_p50 / off_p50 - 1.0) * 100.0
    table = render_table(
        f"Resilience overhead ({DATASET}, EAP over HTTP, per-request us)",
        ["pipeline", "p50", "p95", "p99", "max"],
        rows,
    )
    table = (
        f"{table}\n"
        f"median overhead: {overhead:+.2f}% "
        f"(n={len(samples['on'])} per mode, interleaved)"
    )
    write_result("resilience_overhead", table)
    # The acceptance bar: deadlines + admission add <5% to the median.
    assert on_p50 < off_p50 * 1.05, (
        f"resilience median overhead {overhead:.2f}% exceeds 5%"
    )


def test_latency_tails(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = render_table(
        f"Latency tails ({DATASET}, SDP, per-query us)",
        ["method", "p50", "p95", "p99", "max"],
        rows,
    )
    write_result("latency_tails", table)

    by_method = {row[0]: row for row in rows}
    # TTL's p99 beats CSA's p50: the index wins even tail-to-median.
    assert by_method["TTL"][3] < by_method["CSA"][1]
    # Every method's percentiles are ordered.
    for row in rows:
        assert row[1] <= row[2] <= row[3] <= row[4]
