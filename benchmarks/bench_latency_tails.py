"""Latency tails (supplementary): per-query percentiles, not averages.

The paper reports averages; production planners care about tails.
This benchmark measures per-query latency distributions for SDP and
reports p50 / p95 / p99 per method on a mid-size dataset.  The
structural expectation: index-based TTL has a *tight* distribution
(every query is one bounded label merge) while scan-based CSA's tail
stretches with the window length.
"""

import time

from repro.bench.harness import render_table

from conftest import CACHE, write_result

DATASET = "Berlin" if "Berlin" in CACHE.config.datasets else (
    CACHE.config.datasets[0]
)
METHODS = ["TTL", "C-TTL", "CHT", "CSA"]


def _percentile(sorted_values, q):
    idx = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[idx]


def _measure():
    queries = CACHE.queries(DATASET)
    rows = []
    for method in METHODS:
        planner = CACHE.planner(DATASET, method)
        samples = []
        for q in queries:
            start = time.perf_counter()
            planner.shortest_duration(
                q.source, q.destination, q.t_start, q.t_end
            )
            samples.append((time.perf_counter() - start) * 1e6)
        samples.sort()
        rows.append(
            [
                method,
                _percentile(samples, 0.50),
                _percentile(samples, 0.95),
                _percentile(samples, 0.99),
                samples[-1],
            ]
        )
    return rows


def test_latency_tails(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = render_table(
        f"Latency tails ({DATASET}, SDP, per-query us)",
        ["method", "p50", "p95", "p99", "max"],
        rows,
    )
    write_result("latency_tails", table)

    by_method = {row[0]: row for row in rows}
    # TTL's p99 beats CSA's p50: the index wins even tail-to-median.
    assert by_method["TTL"][3] < by_method["CSA"][1]
    # Every method's percentiles are ordered.
    for row in rows:
        assert row[1] <= row[2] <= row[3] <= row[4]
