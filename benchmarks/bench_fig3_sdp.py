"""Figure 3 — SDP query time for every method on every dataset.

Each benchmark measures one *batch* (``REPRO_QUERIES`` queries) for one
(dataset, method) pair; divide by the batch size for per-query time.
``test_figure3_table`` renders the paper-style per-dataset series into
``results/figure3.txt`` and asserts the headline shape: TTL and C-TTL
beat both CSA and CHT on shortest-duration queries.
"""

import pytest

from repro.bench.experiments import QUERY_METHODS, figure3_sdp
from repro.bench.harness import run_queries

from conftest import CACHE, ROUNDS, write_result


@pytest.mark.parametrize("dataset", CACHE.config.datasets)
@pytest.mark.parametrize("method", QUERY_METHODS)
def test_sdp_query_batch(benchmark, dataset, method):
    planner = CACHE.planner(dataset, method)
    queries = CACHE.queries(dataset)
    benchmark.extra_info["queries_per_batch"] = len(queries)
    benchmark.pedantic(
        run_queries, args=(planner, queries, "sdp"),
        rounds=ROUNDS, iterations=1,
    )


def test_figure3_table(benchmark):
    result = benchmark.pedantic(
        figure3_sdp, args=(CACHE,), rounds=1, iterations=1
    )
    write_result("figure3", result)
    from repro.bench.charts import chart_from_result

    write_result("figure3_chart", chart_from_result(result, unit="us"))
    ttl = result.by_dataset("TTL (us)")
    csa = result.by_dataset("CSA (us)")
    cht = result.by_dataset("CHT (us)")
    for dataset in ttl:
        # Headline result: TTL answers SDP queries far faster than the
        # scan/search baselines on every dataset.
        assert ttl[dataset] < csa[dataset]
        assert ttl[dataset] < cht[dataset]
