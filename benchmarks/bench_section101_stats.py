"""Section 10.1's explanatory statistics: l_avg and n_avg.

The paper explains TTL's query cost through two quantities — the
average label-set size ``l_avg`` (Austin ~1600, Sweden ~775) and the
average number of stations on a result path ``n_avg`` (Austin ~30,
Sweden ~19) — and observes that neither tracks raw dataset size.  This
benchmark regenerates that table and asserts the non-monotonicity
observation.
"""

from repro.bench.harness import render_table

from conftest import CACHE, write_result


def _collect():
    rows = []
    for dataset in CACHE.config.datasets:
        planner = CACHE.planner(dataset, "TTL")
        index = planner.index
        stats = index.stats()
        queries = CACHE.queries(dataset)
        lengths = []
        transfers = []
        for q in queries:
            journey = planner.shortest_duration(
                q.source, q.destination, q.t_start, q.t_end
            )
            if journey is not None and journey.path:
                lengths.append(len(journey.path) + 1)
                transfers.append(journey.transfers)
        n_avg = sum(lengths) / len(lengths) if lengths else 0.0
        t_avg = sum(transfers) / len(transfers) if transfers else 0.0
        rows.append(
            [
                dataset,
                CACHE.graph(dataset).m,
                stats.avg_labels_per_node,
                n_avg,
                t_avg,
            ]
        )
    return rows


def test_section101_stats(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    table = render_table(
        "Section 10.1 statistics: l_avg and n_avg (SDP answers)",
        ["dataset", "connections", "l_avg", "n_avg", "transfers_avg"],
        rows,
    )
    write_result("section101_stats", table)

    # The paper's observation: label-set size does not simply track
    # dataset size (Austin has more labels per node than Sweden despite
    # being >10x smaller).  Assert non-monotonicity when the run covers
    # enough datasets.
    if len(rows) >= 4:
        by_m = sorted(rows, key=lambda r: r[1])
        l_avgs = [r[2] for r in by_m]
        increasing = all(a <= b for a, b in zip(l_avgs, l_avgs[1:]))
        assert not increasing
    for row in rows:
        assert row[2] > 0
