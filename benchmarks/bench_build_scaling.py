"""Build-farm scaling sweep — parallel index construction on Berlin.

Measures :func:`repro.buildfarm.build_index_parallel` wall-clock at
``jobs`` ∈ {1, 2, 4} against the serial :func:`repro.core.build
.build_index` baseline, asserting label-for-label equality at every
point (the farm's core contract — speed must never change the index).

Two costs separate the farm from the serial sweep:

* a fixed overhead per label — wire codec round-trips and the merge's
  re-application of the cover filter — visible at ``jobs=1``;
* under-pruning inside a chunk — hubs searched concurrently cannot
  prune against each other, so workers do extra label work that the
  merge discards.

Speedup therefore needs real cores to pay for those.  The results
file records ``os.cpu_count()`` for the machine that produced it;
on a single-core container every ``jobs`` level time-slices the same
CPU and the sweep measures overhead only (see the committed results).
"""

import os
import time

import pytest

from repro.buildfarm import build_index_parallel
from repro.core.build import build_index
from repro.datasets import load_dataset
from repro.bench.harness import render_table

from conftest import write_result

DATASET = "Berlin"
JOBS = [1, 2, 4]

_RESULTS = {}


def _columns_equal(a, b):
    if a.ranks != b.ranks:
        return False
    for direction in ("in_store", "out_store"):
        for column in ("node_starts", "group_starts", "hubs",
                       "deps", "arrs", "trips", "pivots"):
            if list(getattr(getattr(a, direction), column)) != list(
                getattr(getattr(b, direction), column)
            ):
                return False
    return True


def _serial_baseline():
    if "serial" not in _RESULTS:
        graph = load_dataset(DATASET)
        start = time.perf_counter()
        index = build_index(graph)
        _RESULTS["serial"] = (time.perf_counter() - start, index)
    return _RESULTS["serial"]


def _measure(jobs: int):
    if jobs not in _RESULTS:
        graph = load_dataset(DATASET)
        start = time.perf_counter()
        index = build_index_parallel(graph, jobs=jobs)
        seconds = time.perf_counter() - start
        _, reference = _serial_baseline()
        assert _columns_equal(reference, index), (
            f"jobs={jobs} produced a different index"
        )
        _RESULTS[jobs] = (seconds, index.num_labels)
    return _RESULTS[jobs]


@pytest.mark.parametrize("jobs", JOBS)
def test_build_jobs_point(benchmark, jobs):
    seconds, labels = benchmark.pedantic(
        _measure, args=(jobs,), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {"jobs": jobs, "seconds": round(seconds, 3), "labels": labels}
    )


def test_build_scaling_table(benchmark):
    def build_table():
        serial_seconds, serial_index = _serial_baseline()
        rows = [["serial", serial_seconds, serial_index.num_labels, 1.0]]
        for jobs in JOBS:
            seconds, labels = _measure(jobs)
            rows.append([f"jobs {jobs}", seconds, labels,
                         serial_seconds / seconds])
        return rows

    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    table = render_table(
        f"Parallel build scaling ({DATASET}, equality-checked)",
        ["mode", "seconds", "labels", "speedup vs serial"],
        [[m, round(s, 3), l, round(x, 2)] for m, s, l, x in rows],
    )
    cores = os.cpu_count() or 1
    note = (
        f"\nhost cpu cores: {cores}\n"
        "Every row built the identical index (all store columns "
        "compared against the serial build).\n"
    )
    if cores < 4:
        note += (
            "NOTE: fewer than 4 cores — worker processes time-slice "
            "one CPU, so this run measures farm overhead (codec + "
            "merge re-filter + chunk under-pruning), not parallel "
            "speedup.  Re-run on a multi-core host for the scaling "
            "curve.\n"
        )
    write_result("build_scaling", str(table) + note)

    # The invariant worth asserting everywhere: equality held (checked
    # inside _measure) and every configuration completed.
    assert len(rows) == len(JOBS) + 1
