"""Figure 9 (Appendix D.2) — index size per node-ordering method.

H-Order and A-Order should produce comparable label counts, both well
below Rand-Order; A-Order is restricted to the small datasets just as
the paper omits it where it exceeds memory.
"""

from repro.bench.experiments import SMALL_DATASETS, figure9_order_size

from conftest import CACHE, write_result

DATASETS = [d for d in CACHE.config.datasets if d in SMALL_DATASETS] or (
    SMALL_DATASETS[:1]
)


def test_figure9_order_sizes(benchmark):
    result = benchmark.pedantic(
        figure9_order_size, args=(CACHE, DATASETS), rounds=1, iterations=1
    )
    write_result("figure9", result)
    for row in result.rows:
        name, h_labels, rand_labels, a_labels = row
        assert h_labels <= rand_labels
        if a_labels is not None:
            # The heuristic comes close to the approximation algorithm
            # (the paper's "comparable index size" claim).
            assert h_labels <= a_labels * 1.6
