"""Figure 8 (Appendix D.2) — IndexBuild vs brute-force construction.

Restricted to the small datasets, as in the paper (brute-force
Dijkstra construction is orders of magnitude slower).
"""

import pytest

from repro.bench.experiments import SMALL_DATASETS, figure8_construction
from repro.core import build_index, build_index_brute_force
from repro.core.order import hub_order

from conftest import CACHE, write_result

DATASETS = [d for d in CACHE.config.datasets if d in SMALL_DATASETS] or (
    SMALL_DATASETS[:1]
)

_RANKS = {}


def _ranks(dataset: str):
    if dataset not in _RANKS:
        _RANKS[dataset] = hub_order(CACHE.graph(dataset))
    return _RANKS[dataset]


@pytest.mark.parametrize("dataset", DATASETS)
def test_indexbuild(benchmark, dataset):
    graph = CACHE.graph(dataset)
    ranks = _ranks(dataset)
    index = benchmark.pedantic(
        build_index, args=(graph,), kwargs={"order": ranks},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["labels"] = index.num_labels


@pytest.mark.parametrize("dataset", DATASETS)
def test_brute_force(benchmark, dataset):
    graph = CACHE.graph(dataset)
    ranks = _ranks(dataset)
    index = benchmark.pedantic(
        build_index_brute_force, args=(graph,), kwargs={"order": ranks},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["labels"] = index.num_labels


def test_figure8_table(benchmark):
    result = benchmark.pedantic(
        figure8_construction, args=(CACHE, DATASETS), rounds=1, iterations=1
    )
    write_result("figure8", result)
    for row in result.rows:
        name, pruned_s, brute_s, speedup, pruned_labels, brute_labels = row
        # The pruned IndexBuild is always substantially faster.
        assert speedup > 1.5
        # Tie-pruning may only shrink the label set.
        assert pruned_labels <= brute_labels
