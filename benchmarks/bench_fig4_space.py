"""Figure 4 — index size of every method.

Model-byte accounting (20 B per label/connection record) keeps the
comparison apples-to-apples across methods; see
:mod:`repro.core.serialize`.
"""

from repro.bench.experiments import figure4_space

from conftest import CACHE, write_result


def test_figure4_index_sizes(benchmark):
    result = benchmark.pedantic(
        figure4_space, args=(CACHE,), rounds=1, iterations=1
    )
    write_result("figure4", result)
    from repro.bench.charts import chart_from_result

    write_result("figure4_chart", chart_from_result(result, unit="B"))
    ttl = result.by_dataset("TTL (B)")
    cttl = result.by_dataset("C-TTL (B)")
    csa = result.by_dataset("CSA (B)")
    for dataset in ttl:
        # Compression shrinks TTL on every dataset.
        assert cttl[dataset] < ttl[dataset]
        assert csa[dataset] > 0
    # TTL's space overhead exceeds CSA's on most datasets (the paper's
    # qualitative Figure 4 relation; the smallest networks may dip
    # under because label counts grow with timetable density).
    larger = sum(1 for d in ttl if ttl[d] > csa[d])
    assert larger >= len(ttl) // 2
