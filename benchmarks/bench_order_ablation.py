"""Node-order ablation (supplementary): five strategies head-to-head.

Extends Figures 9/10 with the two extra baselines this repository
ships — degree order and untimed betweenness centrality — isolating
what H-Order's timetable-aware sampling buys over pure topology.
"""

import time

import pytest

from repro.bench.experiments import SMALL_DATASETS
from repro.bench.harness import render_table
from repro.core import build_index
from repro.core.order import (
    betweenness_order,
    degree_order,
    hub_order,
    random_order,
)

from conftest import CACHE, write_result

DATASETS = [
    d for d in CACHE.config.datasets if d in SMALL_DATASETS
] or CACHE.config.datasets[:1]

ORDERS = [
    ("H-Order", hub_order),
    ("Betweenness", betweenness_order),
    ("Degree", degree_order),
    ("Rand-Order", lambda g: random_order(g, seed=1)),
]


def _measure():
    rows = []
    for dataset in DATASETS:
        graph = CACHE.graph(dataset)
        row = [dataset]
        for _, order_fn in ORDERS:
            start = time.perf_counter()
            index = build_index(graph, order=order_fn(graph))
            seconds = time.perf_counter() - start
            row.extend([index.num_labels, seconds])
        rows.append(row)
    return rows


def test_order_ablation(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    headers = ["dataset"]
    for name, _ in ORDERS:
        headers.extend([f"{name} labels", f"{name} (s)"])
    table = render_table(
        "Node-order ablation: labels and build time", headers, rows
    )
    write_result("order_ablation", table)

    for row in rows:
        h_labels = row[1]
        rand_labels = row[7]
        # H-Order beats random on every dataset; topology-only orders
        # land in between (not asserted — that's the observation the
        # table exists to show).
        assert h_labels <= rand_labels
