"""Scaling sweep (supplementary) — how the TTL/CSA gap grows with m.

The paper's datasets have millions of connections; at that scale CSA's
linear scans cost milliseconds while TTL stays at microseconds (three
orders of magnitude, Figure 3).  Our pure-Python substrate runs at
thousands of connections, where CSA's scans are short — so this sweep
demonstrates the *trend* behind the paper's headline: as the network
scales up, CSA and CHT query times grow with the connection count
while TTL's stay roughly flat (they depend on label-set sizes, which
the paper observes depend on topology, not size).
"""

import pytest

from repro.baselines import CHTPlanner, CSAPlanner
from repro.bench.harness import render_table, time_queries
from repro.core import TTLPlanner
from repro.datasets import QueryWorkload, load_dataset

from conftest import write_result

SCALES = [0.5, 1.0, 1.5, 2.0]
DATASET = "Budapest"

_ROWS = {}


def _measure(scale: float):
    if scale in _ROWS:
        return _ROWS[scale]
    graph = load_dataset(DATASET, scale=scale)
    queries = QueryWorkload(graph, seed=11).generate(100)
    row = {"m": graph.m}
    for planner in (TTLPlanner(graph), CSAPlanner(graph), CHTPlanner(graph)):
        planner.preprocess()
        row[planner.name] = time_queries(planner, queries, "sdp") * 1e6
    _ROWS[scale] = row
    return row


@pytest.mark.parametrize("scale", SCALES)
def test_scale_point(benchmark, scale):
    row = benchmark.pedantic(_measure, args=(scale,), rounds=1, iterations=1)
    benchmark.extra_info.update(
        {k: round(v, 1) for k, v in row.items()}
    )


def test_scaling_table(benchmark):
    def build_table():
        rows = []
        for scale in SCALES:
            row = _measure(scale)
            rows.append(
                [scale, row["m"], row["TTL"], row["CHT"], row["CSA"]]
            )
        return rows

    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    table = render_table(
        f"Scaling sweep ({DATASET}, SDP)",
        ["scale", "connections", "TTL (us)", "CHT (us)", "CSA (us)"],
        rows,
    )
    write_result("scaling", table)

    # CSA grows roughly linearly with m; TTL grows far slower.
    first, last = rows[0], rows[-1]
    m_growth = last[1] / first[1]
    csa_growth = last[4] / first[4]
    ttl_growth = last[2] / first[2]
    assert csa_growth > 1.5
    assert ttl_growth < csa_growth
    # The TTL:CSA advantage widens as the network grows.
    assert (last[4] / last[2]) > (first[4] / first[2])
