"""Section 9's related-work claim, reproduced.

The paper dismisses time-expanded-graph techniques as "generally not
comparable to the state-of-the-art methods that process queries on G".
This benchmark runs the faithfully implemented time-expanded router
against CSA and TTL on the smaller datasets and asserts the ordering
(TimeExpanded slower than CSA, both far above TTL).
"""

import pytest

from repro.baselines import TimeExpandedPlanner
from repro.bench.harness import render_table, run_queries, time_queries

from conftest import CACHE, ROUNDS, write_result

DATASETS = [
    d for d in CACHE.config.datasets if d in ("Austin", "Denver", "Toronto")
] or CACHE.config.datasets[:1]

_TE = {}


def _expanded(dataset: str) -> TimeExpandedPlanner:
    if dataset not in _TE:
        planner = TimeExpandedPlanner(CACHE.graph(dataset))
        planner.preprocess()
        _TE[dataset] = planner
    return _TE[dataset]


@pytest.mark.parametrize("dataset", DATASETS)
def test_time_expanded_eap_batch(benchmark, dataset):
    planner = _expanded(dataset)
    queries = CACHE.queries(dataset)
    benchmark.extra_info["queries_per_batch"] = len(queries)
    benchmark.pedantic(
        run_queries, args=(planner, queries, "eap"),
        rounds=ROUNDS, iterations=1,
    )


def test_related_work_table(benchmark):
    def build():
        rows = []
        for dataset in DATASETS:
            queries = CACHE.queries(dataset)
            ttl = CACHE.planner(dataset, "TTL")
            csa = CACHE.planner(dataset, "CSA")
            expanded = _expanded(dataset)
            rows.append(
                [
                    dataset,
                    time_queries(ttl, queries, "eap") * 1e6,
                    time_queries(csa, queries, "eap") * 1e6,
                    time_queries(expanded, queries, "eap") * 1e6,
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = render_table(
        "Section 9: time-expanded graphs are not competitive (EAP)",
        ["dataset", "TTL (us)", "CSA (us)", "TimeExpanded (us)"],
        rows,
    )
    write_result("related_work", table)
    for row in rows:
        # The paper's claim: per-event processing loses to the direct
        # timetable methods.
        assert row[3] > row[2]
        assert row[3] > row[1]
