"""Label-store benchmark: sealed flat columns vs the legacy layout.

The pre-sealed index kept every label twice over: list-backed
``LabelGroup`` columns (one Python int object per field) plus two
tuple-keyed dicts (``_by_dep`` / ``_by_arr``) so PathUnfold could
resolve children in O(1).  The sealed :class:`~repro.core.store
.LabelStore` replaces all of that with four ``array('q')`` columns and
bisection.  This benchmark reconstructs the legacy layout from the
same label data and reports, for one dataset:

* retained resident memory of each representation (tracemalloc);
* median EAP query latency through the identical selector code.

Run standalone (not a pytest-benchmark file)::

    PYTHONPATH=src python benchmarks/bench_label_store.py           # Berlin
    PYTHONPATH=src python benchmarks/bench_label_store.py --smoke   # Austin

Results land in ``benchmarks/results/label_store.txt`` (smoke runs
write ``label_store_smoke.txt``).
"""

from __future__ import annotations

import argparse
import gc
import statistics
import time
import tracemalloc
from pathlib import Path
from typing import Dict, List, Tuple

RESULTS_DIR = Path(__file__).parent / "results"


def extract_payload(index) -> List[List[tuple]]:
    """Per-node in+out group payloads as plain Python data, so both
    representations under test are built from the same source."""
    tables = []
    for groups_per_node in (index.in_groups, index.out_groups):
        table = []
        for groups in groups_per_node:
            table.append(
                [
                    (
                        g.hub,
                        g.rank,
                        list(g.deps),
                        list(g.arrs),
                        list(g.trips),
                        list(g.pivots),
                    )
                    for g in groups
                ]
            )
        tables.append(table)
    return tables


class _PlainGroup:
    """Minimal group-like record for LabelStore.from_groups."""

    __slots__ = ("hub", "rank", "deps", "arrs", "trips", "pivots")

    def __init__(self, hub, rank, deps, arrs, trips, pivots) -> None:
        self.hub = hub
        self.rank = rank
        self.deps = deps
        self.arrs = arrs
        self.trips = trips
        self.pivots = pivots

    def __len__(self) -> int:
        return len(self.deps)


def build_legacy(payload, ranks):
    """The pre-sealed layout: list-backed groups per node plus the two
    tuple-keyed child-lookup dicts PathUnfold used to consult."""
    from repro.core.label import LabelGroup

    in_table, out_table = payload
    by_dep: Dict[Tuple[int, int, int], tuple] = {}
    by_arr: Dict[Tuple[int, int, int], tuple] = {}

    def rebuild(table, node_is_dst):
        per_node = []
        for node, group_payloads in enumerate(table):
            groups = []
            for hub, rank, deps, arrs, trips, pivots in group_payloads:
                group = LabelGroup(hub, rank)
                for i in range(len(deps)):
                    group.append(deps[i], arrs[i], trips[i], pivots[i])
                    src, dst = (hub, node) if node_is_dst else (node, hub)
                    entry = (deps[i], arrs[i], trips[i], pivots[i])
                    by_dep[(src, dst, deps[i])] = entry
                    by_arr[(src, dst, arrs[i])] = entry
                groups.append(group)
            per_node.append(groups)
        return per_node

    in_groups = rebuild(in_table, node_is_dst=True)
    out_groups = rebuild(out_table, node_is_dst=False)
    return in_groups, out_groups, by_dep, by_arr


def build_sealed(payload):
    """The sealed layout: flat stores plus materialized group views."""
    from repro.core.store import LabelStore

    stores = []
    views = []
    for table in payload:
        store = LabelStore.from_groups(
            [[_PlainGroup(*g) for g in groups] for groups in table]
        )
        stores.append(store)
        views.append([store.views(v) for v in range(store.n)])
    return stores, views


def retained_bytes(builder, *args) -> Tuple[int, object]:
    """Construct under tracemalloc; return (retained bytes, object)."""
    gc.collect()
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    built = builder(*args)
    gc.collect()
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return after - before, built


def median_eap_latency(out_lists, in_lists, queries, repeats) -> float:
    """Median per-query EAP selector latency in microseconds."""
    from repro.core.sketch import best_eap_sketch_from_lists

    timings = []
    for query in queries:
        u, v, t = query.source, query.destination, query.t_start
        start = time.perf_counter()
        for _ in range(repeats):
            best_eap_sketch_from_lists(out_lists[u], in_lists[v], u, v, t)
        timings.append(
            (time.perf_counter() - start) / repeats * 1e6
        )
    return statistics.median(timings)


def run(dataset: str, num_queries: int, repeats: int) -> str:
    from repro.core.build import build_index
    from repro.datasets import QueryWorkload, load_dataset

    graph = load_dataset(dataset)
    build_start = time.perf_counter()
    index = build_index(graph)
    build_seconds = time.perf_counter() - build_start
    payload = extract_payload(index)
    stats = index.stats()

    legacy_bytes, legacy = retained_bytes(
        build_legacy, payload, index.ranks
    )
    in_groups, out_groups, by_dep, by_arr = legacy
    sealed_bytes, sealed = retained_bytes(build_sealed, payload)
    _, (in_views, out_views) = sealed

    queries = QueryWorkload(graph, seed=42).generate(num_queries)
    # Warm both representations, then alternate measurement rounds and
    # keep the best of each so clock drift doesn't bias the ratio.
    median_eap_latency(out_groups, in_groups, queries, 1)
    median_eap_latency(out_views, in_views, queries, 1)
    legacy_us = min(
        median_eap_latency(out_groups, in_groups, queries, repeats)
        for _ in range(2)
    )
    sealed_us = min(
        median_eap_latency(out_views, in_views, queries, repeats)
        for _ in range(2)
    )

    reduction = 100.0 * (1.0 - sealed_bytes / legacy_bytes)
    ratio = sealed_us / legacy_us
    lines = [
        f"label-store benchmark — dataset {dataset}",
        f"stations            {graph.n}",
        f"labels              {stats.num_labels}",
        f"index build         {build_seconds:.2f}s",
        "",
        f"legacy resident     {legacy_bytes / 1e6:8.2f} MB "
        f"(list groups + {len(by_dep) + len(by_arr)} dict entries)",
        f"sealed resident     {sealed_bytes / 1e6:8.2f} MB "
        f"(flat columns: {index.store_bytes() / 1e6:.2f} MB)",
        f"memory reduction    {reduction:8.1f} %",
        "",
        f"EAP median latency  legacy {legacy_us:8.1f} us   "
        f"sealed {sealed_us:8.1f} us   ({num_queries} queries)",
        f"latency ratio       {ratio:8.2f} x (sealed / legacy)",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small dataset + few queries (CI sanity run)",
    )
    parser.add_argument("--dataset", help="override the dataset name")
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)

    dataset = args.dataset or ("Austin" if args.smoke else "Berlin")
    num_queries = args.queries or (20 if args.smoke else 200)
    repeats = args.repeats or (1 if args.smoke else 5)
    report = run(dataset, num_queries, repeats)
    print(report)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    name = "label_store_smoke" if args.smoke else "label_store"
    (RESULTS_DIR / f"{name}.txt").write_text(report + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
