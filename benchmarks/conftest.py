"""Shared infrastructure for the paper-experiment benchmarks.

Every benchmark file regenerates one table or figure of the paper (see
DESIGN.md's per-experiment index).  Rendered text tables are written to
``benchmarks/results/`` so a full ``pytest benchmarks/ --benchmark-only``
run leaves the paper's rows/series on disk next to pytest-benchmark's
own timing table.

Environment knobs: ``REPRO_SCALE``, ``REPRO_DATASETS``,
``REPRO_QUERIES`` (see :mod:`repro.bench.harness`) and
``REPRO_BENCH_ROUNDS`` (measurement rounds per query benchmark,
default 2).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.harness import BenchConfig, PlannerCache

RESULTS_DIR = Path(__file__).parent / "results"

#: Measurement rounds for query-batch benchmarks.
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "2"))

#: One shared cache: planners are preprocessed once per session.
CONFIG = BenchConfig.from_env()
CACHE = PlannerCache(CONFIG)


def write_result(name: str, result) -> None:
    """Persist a rendered experiment table under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(str(result) + "\n")


@pytest.fixture(scope="session")
def cache() -> PlannerCache:
    return CACHE


@pytest.fixture(scope="session", autouse=True)
def _drop_dataset_cache():
    """Release the (LRU-bounded) graph cache when the session ends so a
    benchmark sweep does not leave every generated graph resident."""
    yield
    from repro.datasets import clear_dataset_cache

    clear_dataset_cache()
