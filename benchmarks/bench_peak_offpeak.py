"""Peak vs off-peak query cost (supplementary).

The synthetic feeds run denser service during rush hours (07-09,
16-18).  Scan-based methods pay for density — CSA walks every extra
connection in the window — while TTL's cost tracks label-set sizes,
which density barely moves.  This bench measures SDP latency for
workloads confined to the morning peak vs midday and asserts CSA's
peak penalty exceeds TTL's.
"""

from repro.bench.harness import render_table, time_queries
from repro.datasets import QueryWorkload
from repro.timeutil import hms

from conftest import CACHE, write_result

DATASET = "Paris" if "Paris" in CACHE.config.datasets else (
    CACHE.config.datasets[-1]
)

WINDOWS = {
    "peak (07-09)": (hms(7), hms(9)),
    "midday (11-13)": (hms(11), hms(13)),
}


def _measure():
    graph = CACHE.graph(DATASET)
    rows = []
    for label, window in WINDOWS.items():
        queries = QueryWorkload(
            graph, seed=5, time_window=window
        ).generate(CACHE.config.num_queries)
        row = [label]
        for method in ("TTL", "CSA", "CHT"):
            planner = CACHE.planner(DATASET, method)
            row.append(time_queries(planner, queries, "sdp") * 1e6)
        rows.append(row)
    return rows


def test_peak_vs_offpeak(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = render_table(
        f"Peak vs off-peak SDP cost ({DATASET})",
        ["window", "TTL (us)", "CSA (us)", "CHT (us)"],
        rows,
    )
    write_result("peak_offpeak", table)

    by_window = {row[0]: row for row in rows}
    peak = by_window["peak (07-09)"]
    midday = by_window["midday (11-13)"]
    # TTL stays fast in both windows and beats CSA in both.
    assert peak[1] < peak[2]
    assert midday[1] < midday[2]
