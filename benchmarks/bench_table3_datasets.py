"""Table 3 — dataset characteristics.

Regenerates the paper's dataset table (stations, connections, trips,
routes per dataset) and writes it to ``results/table3.txt``.
"""

from repro.bench.experiments import table3_datasets

from conftest import CACHE, write_result


def test_table3_dataset_characteristics(benchmark):
    result = benchmark.pedantic(
        table3_datasets, args=(CACHE,), rounds=1, iterations=1
    )
    write_result("table3", result)
    assert len(result.rows) == len(CACHE.config.datasets)
    for row in result.rows:
        name, stations, connections, trips, routes = row
        assert stations >= 4
        assert connections > 0
        assert trips > 0
        assert routes > 0
