"""Prefork serving benchmark: worker-count RPS sweep + cold-start cost.

Two questions the prefork + mmap redesign must answer with numbers:

* **Does adding workers add throughput?**  The GIL caps a single
  process near one core for CPU-bound label scans, so a threaded
  server flatlines; forked workers should not.  The sweep starts a
  :class:`~repro.serving.ServingSupervisor` with 1 / 2 / 4 workers
  over one shared listening socket and hammers ``/v1/eap`` from
  concurrent client threads, reporting achieved RPS and median
  latency per worker count.

* **What does a worker pay to come up?**  Each worker memory-maps the
  same TTLIDX03 file instead of materialising its own heap copy.  The
  cold-start section times ``load_index(path, graph)`` (heap) against
  ``load_index(path, graph, mmap=True)`` (zero-copy) and reports the
  resident delta per extra worker.

* **What does the answer cache buy on a realistic workload?**  Journey
  traffic is Zipfian, so the cache section replays a Zipf-distributed
  request sequence (theoretical hit rate >= 0.9) against one
  cache-enabled and one cache-disabled service, comparing server-side
  ``meta.elapsed_us`` p50/p99, then measures a live-churn run where
  disruptions drive the taint-directed invalidation sweep.  Both
  sections land machine-readable in
  ``benchmarks/results/BENCH_serving.json``.

Run standalone (not a pytest-benchmark file)::

    PYTHONPATH=src python benchmarks/bench_serving_throughput.py           # Berlin
    PYTHONPATH=src python benchmarks/bench_serving_throughput.py --smoke   # Austin

Results land in ``benchmarks/results/serving_throughput.txt`` (smoke
runs write ``serving_throughput_smoke.txt``) plus ``BENCH_serving.json``.
"""

from __future__ import annotations

import argparse
import gc
import json
import random
import statistics
import time
import tracemalloc
import urllib.request
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def _get(port: int, path: str) -> dict:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=30
    ) as response:
        return json.loads(response.read())


def _client_main(port, paths, queue):
    """One load-generator process: issue each path, report latencies."""
    latencies = []
    try:
        for path in paths:
            started = time.perf_counter()
            _get(port, path)
            latencies.append((time.perf_counter() - started) * 1e6)
    except Exception as exc:  # noqa: BLE001 - report, don't mask
        queue.put(("error", repr(exc)))
        return
    queue.put(("ok", latencies))


def _hammer(port, paths, num_clients):
    """Issue every path once, split across ``num_clients`` forked
    client processes (threads would serialise on the client's GIL and
    cap the server far below its capacity).

    Returns (wall seconds, per-request latencies in microseconds).
    """
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()
    clients = [
        ctx.Process(
            target=_client_main,
            args=(port, paths[i::num_clients], queue),
        )
        for i in range(num_clients)
    ]
    started = time.perf_counter()
    for client in clients:
        client.start()
    results = [queue.get(timeout=300) for _ in clients]
    wall = time.perf_counter() - started
    for client in clients:
        client.join(timeout=30)
    for status, payload in results:
        if status == "error":
            raise RuntimeError(f"load-generator client failed: {payload}")
    return wall, [value for _, chunk in results for value in chunk]


def _timed_load(path, graph, use_mmap):
    """(load seconds, retained MB, first-query seconds) for one loader."""
    from repro.core.queries import TTLPlanner
    from repro.core.serialize import load_index

    gc.collect()
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    started = time.perf_counter()
    index = load_index(path, graph, mmap=use_mmap)
    load_seconds = time.perf_counter() - started
    gc.collect()
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    planner = TTLPlanner(graph, index=index)
    started = time.perf_counter()
    planner.earliest_arrival(0, graph.n - 1, 8 * 3600)
    first_query = time.perf_counter() - started
    return load_seconds, (after - before) / 1e6, first_query


def run(dataset, worker_counts, num_requests, num_clients, repeats):
    from repro.core.build import build_index
    from repro.core.serialize import save_index
    from repro.datasets import QueryWorkload, load_dataset
    from repro.serving import ServingSupervisor, mapped_planner_factory

    import os

    graph = load_dataset(dataset)
    index = build_index(graph)
    index_path = RESULTS_DIR / f".bench_serving_{dataset.lower()}.ttl"
    save_index(index, index_path)

    cores = len(os.sched_getaffinity(0))
    lines = [
        f"prefork serving benchmark — dataset {dataset}",
        f"stations            {graph.n}",
        f"labels              {index.num_labels}",
        f"index file          {index_path.stat().st_size / 1e6:.2f} MB (TTLIDX03)",
        f"cpu cores           {cores}",
        "",
        "cold start: heap copy vs zero-copy mmap (median of "
        f"{repeats} loads)",
    ]

    for label, use_mmap in (("heap", False), ("mmap", True)):
        loads, residents, first = [], [], []
        for _ in range(repeats):
            seconds, resident, first_query = _timed_load(
                index_path, graph, use_mmap
            )
            loads.append(seconds)
            residents.append(resident)
            first.append(first_query)
        lines.append(
            f"  {label}  load {statistics.median(loads) * 1e3:8.2f} ms   "
            f"resident {statistics.median(residents):7.2f} MB   "
            f"first query {statistics.median(first) * 1e6:8.1f} us"
        )

    queries = QueryWorkload(graph, seed=7).generate(num_requests)
    paths = [
        f"/v1/eap?from={q.source}&to={q.destination}&t={q.t_start}"
        for q in queries
    ]

    lines += [
        "",
        f"throughput sweep: {num_requests} /v1/eap requests, "
        f"{num_clients} client processes",
        f"  {'workers':>7}  {'RPS':>8}  {'median us':>10}  {'p99 us':>10}",
    ]
    if cores < max(worker_counts):
        lines.append(
            f"  note: only {cores} core(s) visible — worker counts past "
            "that measure prefork overhead, not scaling"
        )
    for workers in worker_counts:
        supervisor = ServingSupervisor(
            mapped_planner_factory(graph, index_path),
            workers=workers,
        )
        port = supervisor.start()
        try:
            supervisor.wait_ready(timeout_s=60)
            _hammer(port, paths[: max(num_clients * 4, 32)], num_clients)
            wall, latencies = _hammer(port, paths, num_clients)
        finally:
            supervisor.stop()
        latencies.sort()
        p99 = latencies[int(0.99 * (len(latencies) - 1))]
        lines.append(
            f"  {workers:>7}  {len(paths) / wall:>8.0f}  "
            f"{statistics.median(latencies):>10.0f}  {p99:>10.0f}"
        )

    index_path.unlink()
    return "\n".join(lines)


def _zipf_requests(graph, num_requests, seed=1234):
    """A Zipf-distributed ``/v1/eap`` request sequence.

    The distinct-key count is sized so the *theoretical* hit rate of an
    unbounded cache over the sequence — ``1 - unique/total`` — clears
    0.9; the sequence itself then reports the exact figure.
    """
    rng = random.Random(seed)
    num_keys = max(6, num_requests // 50)
    pairs = []
    while len(pairs) < num_keys:
        u = rng.randrange(graph.n)
        v = rng.randrange(graph.n)
        if u != v:
            pairs.append((u, v))
    times = (28800, 32400, 36000)
    keys = [
        (u, v, times[i % len(times)]) for i, (u, v) in enumerate(pairs)
    ]
    weights = [1.0 / (rank + 1) ** 1.1 for rank in range(len(keys))]
    sequence = rng.choices(keys, weights=weights, k=num_requests)
    theoretical = 1.0 - len(set(sequence)) / len(sequence)
    return (
        [f"/v1/eap?from={u}&to={v}&t={t}" for u, v, t in sequence],
        theoretical,
    )


def _replay(port, paths):
    """Serially replay paths; returns (server-side us list, wall s)."""
    elapsed = []
    started = time.perf_counter()
    for path in paths:
        elapsed.append(_get(port, path)["meta"]["elapsed_us"])
    return elapsed, time.perf_counter() - started


def _percentiles(samples):
    ordered = sorted(samples)
    return {
        "p50_us": ordered[len(ordered) // 2],
        "p99_us": ordered[int(0.99 * (len(ordered) - 1))],
    }


def run_cache(dataset, num_requests):
    """The answer-cache sections; returns (report text, JSON dict)."""
    from repro.core.build import build_index
    from repro.core.queries import TTLPlanner
    from repro.datasets import clear_dataset_cache, load_dataset
    from repro.live import LiveOverlayEngine
    from repro.resilience import ResilienceConfig
    from repro.service import PlannerService

    graph = load_dataset(dataset)
    index = build_index(graph)
    paths, theoretical = _zipf_requests(graph, num_requests)

    # -- Zipf replay: cache on vs cache off --------------------------
    modes = {}
    for label, cache_size in (("cache", 512), ("nocache", 0)):
        service = PlannerService(
            TTLPlanner(graph, index=index),
            resilience=ResilienceConfig(cache_size=cache_size),
        )
        port = service.start(port=0)
        try:
            _replay(port, paths[:32])  # warm sockets + JIT-ish caches
            if service.cache is not None:
                service.cache.clear()
                service.cache.stats.invalidations = 0
            elapsed, wall = _replay(port, paths)
        finally:
            service.stop()
        stats = _percentiles(elapsed)
        stats["rps"] = round(len(paths) / wall)
        counters = service.counters()
        stats["cache_hits"] = counters["cache_hits"]
        stats["cache_misses"] = counters["cache_misses"]
        lookups = counters["cache_hits"] + counters["cache_misses"]
        stats["hit_rate"] = (
            round(counters["cache_hits"] / lookups, 4) if lookups else 0.0
        )
        modes[label] = stats

    p50_improvement = (
        (modes["nocache"]["p50_us"] - modes["cache"]["p50_us"])
        / modes["nocache"]["p50_us"]
        if modes["nocache"]["p50_us"]
        else 0.0
    )

    # -- Live churn: disruptions drive the invalidation sweep --------
    cached = PlannerService(
        LiveOverlayEngine(graph),
        resilience=ResilienceConfig(cache_size=512),
    )
    plain = PlannerService(LiveOverlayEngine(graph))
    cached_port = cached.start(port=0)
    plain_port = plain.start(port=0)
    rng = random.Random(4321)
    trip_ids = sorted(graph.trips)
    hot = paths[: max(24, len(paths) // 50)]
    churn_elapsed = []
    stale = 0
    try:
        for round_no in range(4):
            for path in hot:
                body = _get(cached_port, path)
                churn_elapsed.append(body["meta"]["elapsed_us"])
                reference = _get(plain_port, path)
                if json.dumps(body["data"], sort_keys=True) != json.dumps(
                    reference["data"], sort_keys=True
                ):
                    stale += 1
            event = {
                "kind": "delay",
                "trip_id": rng.choice(trip_ids),
                "delay": rng.randrange(60, 900),
            }
            for port in (cached_port, plain_port):
                request = urllib.request.Request(
                    f"http://127.0.0.1:{port}/v1/live/events",
                    data=json.dumps(event).encode(),
                    headers={"Content-Type": "application/json"},
                    method="POST",
                )
                with urllib.request.urlopen(request, timeout=30):
                    pass
        churn_counters = cached.counters()
    finally:
        cached.stop()
        plain.stop()
    clear_dataset_cache()

    churn = _percentiles(churn_elapsed)
    churn["cache_hits"] = churn_counters["cache_hits"]
    churn["cache_invalidations"] = churn_counters["cache_invalidations"]
    churn["stale_answers"] = stale

    payload = {
        "dataset": dataset,
        "requests": num_requests,
        "zipf_theoretical_hit_rate": round(theoretical, 4),
        "zipf": modes,
        "p50_improvement": round(p50_improvement, 4),
        "live_churn": churn,
    }
    lines = [
        "",
        f"answer cache: {num_requests} Zipf /v1/eap requests "
        f"(theoretical hit rate {theoretical:.3f})",
        f"  {'mode':>8}  {'p50 us':>8}  {'p99 us':>8}  {'RPS':>8}  "
        f"{'hit rate':>8}",
    ]
    for label in ("cache", "nocache"):
        stats = modes[label]
        lines.append(
            f"  {label:>8}  {stats['p50_us']:>8}  {stats['p99_us']:>8}  "
            f"{stats['rps']:>8}  {stats['hit_rate']:>8.3f}"
        )
    lines += [
        f"  p50 improvement     {p50_improvement:.1%}",
        "",
        "live churn (cached /v1 vs uncached reference, delay events "
        "between rounds)",
        f"  p50 {churn['p50_us']} us   hits {churn['cache_hits']}   "
        f"invalidations {churn['cache_invalidations']}   "
        f"stale answers {churn['stale_answers']}",
    ]
    if stale:
        lines.append("  ERROR: cache served stale answers!")
    return "\n".join(lines), payload


def run_kernels(dataset, sources=16, profile_pairs=200):
    """Columnar-kernel section: scalar oracle vs numpy kernels,
    in-process (no HTTP noise); returns (report text, JSON dict).

    Times three workloads under ``REPRO_SCALAR_KERNELS=1`` and under
    the default dispatch, on the same sealed index:

    * ``one_to_many`` — one-to-all arrivals per source (the
      ``/v1/batch`` hot loop);
    * ``matrix`` — the many-to-many fan-out;
    * ``profile`` — wide-window profile enumeration point queries
      (forced through the kernels with ``REPRO_KERNEL_MIN_LABELS=0``).
    """
    import os

    from repro.core import kernels
    from repro.core.batch import batch_plan
    from repro.core.build import build_index
    from repro.core.queries import TTLPlanner
    from repro.datasets import QueryWorkload, load_dataset
    from repro.query import BatchQuery, QueryRequest

    graph = load_dataset(dataset)
    index = build_index(graph)
    planner = TTLPlanner(graph, index=index)
    rng = random.Random(99)
    all_targets = tuple(range(graph.n))
    o2m = [
        BatchQuery(
            kind="one_to_many",
            sources=(rng.randrange(graph.n),),
            targets=all_targets,
            t=28800 + 600 * i,
        )
        for i in range(sources)
    ]
    matrix = [
        BatchQuery(
            kind="matrix",
            sources=tuple(rng.randrange(graph.n) for _ in range(8)),
            targets=tuple(rng.randrange(graph.n) for _ in range(8)),
            t=30000,
        )
        for _ in range(sources)
    ]
    profiles = [
        QueryRequest(
            "profile", q.source, q.destination, t=q.t_start,
            t_end=q.t_start + 6 * 3600,
        )
        for q in QueryWorkload(graph, seed=41).generate(profile_pairs)
    ]

    def one_to_many_run():
        batch_plan(index, o2m)

    def matrix_run():
        batch_plan(index, matrix)

    def profile_run():
        for request in profiles:
            planner.plan(request)

    workloads = {
        "one_to_many": one_to_many_run,
        "matrix": matrix_run,
        "profile": profile_run,
    }
    section = {"vectorized": kernels.vectorized_available()}
    lines = [
        "",
        f"columnar kernels vs scalar oracle (in-process, {dataset})",
        "  (dispatch = production default: kernel where it pays, "
        "scalar below threshold)",
        f"  {'workload':>12}  {'scalar s':>9}  {'kernel s':>9}  "
        f"{'dispatch s':>10}  {'speedup':>8}",
    ]
    for name, fn in workloads.items():
        timings = {}
        for mode, env in (
            ("scalar", {kernels.SCALAR_ENV: "1"}),
            ("kernel", {kernels.POINT_MIN_LABELS_ENV: "0"}),
            ("dispatch", {}),
        ):
            saved = {
                k: os.environ.get(k)
                for k in (kernels.SCALAR_ENV, kernels.POINT_MIN_LABELS_ENV)
            }
            for key in saved:
                os.environ.pop(key, None)
            os.environ.update(env)
            try:
                fn()  # warm derived-array caches out of the timing
                best = min(
                    _timed(fn) for _ in range(5)
                )
            finally:
                for key, value in saved.items():
                    if value is None:
                        os.environ.pop(key, None)
                    else:
                        os.environ[key] = value
            timings[mode] = best
        speedup = (
            timings["scalar"] / timings["dispatch"]
            if timings["dispatch"]
            else 0.0
        )
        section[name] = {
            "scalar_s": round(timings["scalar"], 4),
            "vectorized_s": round(timings["kernel"], 4),
            "dispatch_s": round(timings["dispatch"], 4),
            "speedup": round(speedup, 2),
        }
        lines.append(
            f"  {name:>12}  {timings['scalar']:>9.3f}  "
            f"{timings['kernel']:>9.3f}  {timings['dispatch']:>10.3f}  "
            f"{speedup:>7.1f}x"
        )
    return "\n".join(lines), section


def _timed(fn):
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small dataset + few requests (CI sanity run)",
    )
    parser.add_argument("--dataset", help="override the dataset name")
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--clients", type=int, default=None)
    args = parser.parse_args(argv)

    dataset = args.dataset or ("Austin" if args.smoke else "Berlin")
    num_requests = args.requests or (200 if args.smoke else 3000)
    num_clients = args.clients or (4 if args.smoke else 8)
    worker_counts = (1, 2) if args.smoke else (1, 2, 4)
    repeats = 3 if args.smoke else 5

    report = run(dataset, worker_counts, num_requests, num_clients, repeats)
    cache_report, cache_payload = run_cache(
        dataset, max(num_requests, 1000) if not args.smoke else num_requests
    )
    report += "\n" + cache_report
    kernel_report, kernel_payload = run_kernels(
        dataset,
        sources=4 if args.smoke else 64,
        profile_pairs=40 if args.smoke else 200,
    )
    report += "\n" + kernel_report
    from repro.core import kernels as _kernels

    cache_payload["vectorized"] = _kernels.vectorized_available()
    cache_payload["kernels"] = kernel_payload
    if not args.smoke:
        # The batch kernels pay off with network size (scalar cost is
        # one pair merge per target; the kernel is one columnar pass),
        # so also measure the largest catalogue network.
        large = "Sweden"
        large_report, large_payload = run_kernels(
            large, sources=32, profile_pairs=100
        )
        report += "\n" + large_report
        cache_payload["kernels_large"] = {
            "dataset": large, **large_payload
        }
    print(report)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    name = "serving_throughput_smoke" if args.smoke else "serving_throughput"
    (RESULTS_DIR / f"{name}.txt").write_text(report + "\n")
    # Merge, don't clobber: the soak harness (scripts/soak.py) keeps
    # its trajectory under the "soak" key of the same file.
    bench_path = RESULTS_DIR / "BENCH_serving.json"
    merged = {}
    if bench_path.exists():
        try:
            merged = json.loads(bench_path.read_text())
        except (json.JSONDecodeError, OSError):
            merged = {}
    merged.update(cache_payload)
    bench_path.write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n"
    )

    from repro.datasets import clear_dataset_cache

    clear_dataset_cache()
    if cache_payload["live_churn"]["stale_answers"]:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
