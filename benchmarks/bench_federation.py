"""Federation benchmark: what does region sharding cost per query?

Three questions the federated serving mode must answer with numbers:

* **Intra vs cross latency.**  Intra-region requests are proxied
  whole to the owning worker — one hop, the monolithic query path on
  a smaller index — while cross-region requests pay the router's
  stitch: four worker sub-requests (EAP/LDP) joined through the
  border mini-index.  The sweep replays a deterministic workload
  split into the two classes and reports server-side ``elapsed_us``
  p50/p99 per class, next to a monolithic supervisor answering the
  same queries.

* **Fan-out overhead.**  Cross p50 over monolithic p50 on the same
  query set, plus the router's sub-request counter — the multiplier
  the stitch costs over a single index lookup.

* **Per-worker memory.**  Each federation worker mmaps only its
  region shard plus the shared border index, so its RSS (and its
  shard's on-disk/loaded bytes) must stay well under the monolithic
  worker's — the bound that lets a country-scale network be served
  by laptop-sized workers.

Run standalone (not a pytest-benchmark file)::

    PYTHONPATH=src python benchmarks/bench_federation.py           # Berlin split
    PYTHONPATH=src python benchmarks/bench_federation.py --smoke   # TwinCities

The default run partitions Berlin with the METIS-lite heuristic
(k=2, seed 0) — the "Berlin-split" line committed in
``benchmarks/results/BENCH_federation.json``; smoke runs use the
tagged TwinCities dataset and write ``federation_smoke.txt``.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import tempfile
import time
import urllib.request
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def _get(port: int, path: str) -> dict:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=30
    ) as response:
        return json.loads(response.read())


def _rss_kb(pid: int) -> int:
    """Resident set size of ``pid`` in kilobytes (/proc)."""
    try:
        with open(f"/proc/{pid}/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return 0


def _percentiles(values):
    if not values:
        return {"p50": None, "p99": None, "mean": None}
    ordered = sorted(values)
    return {
        "p50": ordered[len(ordered) // 2],
        "p99": ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))],
        "mean": round(statistics.fmean(ordered), 1),
    }


def _replay(port: int, queries) -> list:
    """Issue each query sequentially (single-core client), collecting
    the server-side elapsed_us from the /v1 envelope."""
    elapsed = []
    for q in queries:
        body = _get(
            port,
            f"/v1/eap?from={q.source}&to={q.destination}&t={q.t_start}",
        )
        elapsed.append(body["meta"]["elapsed_us"])
    return elapsed


def run(dataset: str, k: int, num_queries: int, seed: int) -> dict:
    from repro.core import build_index
    from repro.core.serialize import save_index
    from repro.datasets import QueryWorkload, load_dataset
    from repro.federation import (
        build_federation,
        partition_graph,
        region_map_from_names,
    )
    from repro.federation.serve import FederationSupervisor
    from repro.serving import ServingSupervisor

    graph = load_dataset(dataset)
    partition = region_map_from_names(graph)
    partition_kind = "name-map"
    if partition is None or partition.num_regions != k:
        partition = partition_graph(graph, k, seed=seed)
        partition_kind = f"heuristic(seed={seed})"

    queries = QueryWorkload(graph, seed=seed).generate(num_queries * 3)
    intra, cross = [], []
    for q in queries:
        same = partition.region_of[q.source] == partition.region_of[
            q.destination
        ]
        bucket = intra if same else cross
        if len(bucket) < num_queries:
            bucket.append(q)
    intra = intra[:num_queries]
    cross = cross[:num_queries]

    result = {
        "dataset": dataset,
        "stations": graph.n,
        "connections": graph.m,
        "regions": k,
        "partition": partition_kind,
        "cut_connections": partition.cut_size(graph),
        "border_stops": len(partition.border_stops(graph)),
        "queries_per_class": {"intra": len(intra), "cross": len(cross)},
    }

    with tempfile.TemporaryDirectory(prefix="bench_fed_") as tmp:
        built = time.perf_counter()
        manifest = build_federation(graph, partition, tmp)
        result["federation_build_s"] = round(
            time.perf_counter() - built, 2
        )
        result["shard_bytes"] = {
            str(entry.region): os.path.getsize(
                os.path.join(tmp, entry.path)
            )
            for entry in manifest.regions
        }
        result["border_bytes"] = os.path.getsize(
            os.path.join(tmp, manifest.border_path)
        )

        built = time.perf_counter()
        index = build_index(graph)
        result["monolith_build_s"] = round(time.perf_counter() - built, 2)
        mono_path = os.path.join(tmp, "monolith.ttl")
        save_index(index, mono_path)
        result["monolith_bytes"] = os.path.getsize(mono_path)

        # --- Federated cluster ---------------------------------------
        fed = FederationSupervisor(
            graph, os.path.join(tmp, "federation.json")
        )
        fed_port = fed.start()
        try:
            fed.wait_ready(timeout_s=120)
            fed_intra = _replay(fed_port, intra)
            fed_cross = _replay(fed_port, cross)
            metrics = _get(fed_port, "/v1/metrics")
            router = metrics["data"]["federation"]["router"]
            health = _get(fed_port, "/v1/healthz")["data"]
            worker_rss = {
                str(s["region"]): _rss_kb(s["pid"])
                for s in health["shards"]
            }
        finally:
            fed.stop()

        # --- Monolithic baseline (one worker, same box) --------------
        mono = ServingSupervisor(
            planner_factory=lambda: __import__(
                "repro.core", fromlist=["TTLPlanner"]
            ).TTLPlanner(graph, index=index),
            workers=1,
        )
        mono_port = mono.start()
        try:
            mono.wait_ready(timeout_s=120)
            mono_intra = _replay(mono_port, intra)
            mono_cross = _replay(mono_port, cross)
            mono_rss = {
                str(w): _rss_kb(pid)
                for w, pid in mono.worker_pids().items()
            }
        finally:
            mono.stop()

    result["latency_us"] = {
        "federated": {
            "intra": _percentiles(fed_intra),
            "cross": _percentiles(fed_cross),
        },
        "monolith": {
            "intra": _percentiles(mono_intra),
            "cross": _percentiles(mono_cross),
        },
    }
    mono_p50 = result["latency_us"]["monolith"]["cross"]["p50"] or 1
    result["fanout"] = {
        "cross_over_monolith_p50": round(
            (result["latency_us"]["federated"]["cross"]["p50"] or 0)
            / mono_p50,
            2,
        ),
        "router_subrequests": router["subrequests"],
        "cross_stitched": router["cross_stitched"],
        "intra_proxied": router["intra_proxied"],
        "subrequests_per_cross": round(
            router["subrequests"] / max(1, router["cross_stitched"]), 2
        ),
    }
    result["rss_kb"] = {
        "federated_workers": worker_rss,
        "federated_worker_max": max(worker_rss.values() or [0]),
        "monolith_worker": max(mono_rss.values() or [0]),
    }
    return result


def render(result: dict) -> str:
    lines = [
        "Federation benchmark "
        f"({result['dataset']}, {result['regions']} regions, "
        f"{result['partition']})",
        "=" * 66,
        f"stations {result['stations']}  connections "
        f"{result['connections']}  cut {result['cut_connections']}  "
        f"border stops {result['border_stops']}",
        f"build: federation {result['federation_build_s']}s  "
        f"monolith {result['monolith_build_s']}s",
        "",
        f"{'class':<10}{'server':<12}{'p50 us':>10}{'p99 us':>10}",
    ]
    for server in ("federated", "monolith"):
        for klass in ("intra", "cross"):
            p = result["latency_us"][server][klass]
            lines.append(
                f"{klass:<10}{server:<12}{p['p50']:>10}{p['p99']:>10}"
            )
    fanout = result["fanout"]
    lines += [
        "",
        f"fan-out: cross/monolith p50 x{fanout['cross_over_monolith_p50']}"
        f"  subrequests/cross {fanout['subrequests_per_cross']}"
        f"  (intra proxied: {fanout['intra_proxied']}, zero fan-out)",
        f"memory: worker RSS max {result['rss_kb']['federated_worker_max']} kB"
        f" vs monolith {result['rss_kb']['monolith_worker']} kB; "
        f"shard bytes {sum(result['shard_bytes'].values())}"
        f" + border {result['border_bytes']}"
        f" vs monolith {result['monolith_bytes']}",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tagged TwinCities dataset + few queries (CI sanity run)",
    )
    parser.add_argument("--dataset", help="override the dataset name")
    parser.add_argument("--regions", type=int, default=2)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    dataset = args.dataset or ("TwinCities" if args.smoke else "Berlin")
    num_queries = args.queries or (20 if args.smoke else 150)

    result = run(dataset, args.regions, num_queries, args.seed)
    report = render(result)
    print(report)

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    name = "federation_smoke" if args.smoke else "federation"
    (RESULTS_DIR / f"{name}.txt").write_text(report + "\n")
    if not args.smoke:
        (RESULTS_DIR / "BENCH_federation.json").write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n"
        )

    # Sanity gates: intra must never pay the fan-out path, and a
    # federation worker must stay under the monolithic worker's RSS.
    if result["fanout"]["intra_proxied"] < 1:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
