"""Figure 6 (Appendix D.1) — EAP query time for every method.

Also checks the appendix's observation that CSA and CHT answer EAP
queries several times faster than SDP queries (their SDP processing
maintains per-node non-dominated lists).
"""

import pytest

from repro.bench.experiments import QUERY_METHODS, figure3_sdp, figure6_eap
from repro.bench.harness import run_queries

from conftest import CACHE, ROUNDS, write_result


@pytest.mark.parametrize("dataset", CACHE.config.datasets)
@pytest.mark.parametrize("method", QUERY_METHODS)
def test_eap_query_batch(benchmark, dataset, method):
    planner = CACHE.planner(dataset, method)
    queries = CACHE.queries(dataset)
    benchmark.extra_info["queries_per_batch"] = len(queries)
    benchmark.pedantic(
        run_queries, args=(planner, queries, "eap"),
        rounds=ROUNDS, iterations=1,
    )


def test_figure6_table(benchmark):
    result = benchmark.pedantic(
        figure6_eap, args=(CACHE,), rounds=1, iterations=1
    )
    write_result("figure6", result)
    from repro.bench.charts import chart_from_result

    write_result("figure6_chart", chart_from_result(result, unit="us"))
    sdp = figure3_sdp(CACHE)
    eap_csa = result.by_dataset("CSA (us)")
    sdp_csa = sdp.by_dataset("CSA (us)")
    # Appendix D.1: the scan baselines answer EAP much faster than SDP.
    faster = sum(1 for d in eap_csa if eap_csa[d] < sdp_csa[d])
    assert faster >= len(eap_csa) - 1
