"""Table 4 — label-count reduction of the compression schemes.

One benchmark per (dataset, mode) measures the compression pass
itself; the table test records the paper's Δ1/|L|, Δ2/|L|, Δ3/|L|
percentages.
"""

import pytest

from repro.bench.experiments import table4_compression
from repro.core import compress_index

from conftest import CACHE, write_result

MODES = ["route", "pivot", "both"]


def _index_for(dataset: str):
    planner = CACHE.planner(dataset, "TTL")
    return planner.index


@pytest.mark.parametrize("dataset", CACHE.config.datasets)
@pytest.mark.parametrize("mode", MODES)
def test_compression_pass(benchmark, dataset, mode):
    index = _index_for(dataset)
    _, stats = benchmark.pedantic(
        compress_index, args=(index, mode), rounds=1, iterations=1
    )
    benchmark.extra_info["reduction_pct"] = round(100 * stats.reduction, 2)
    assert 0.0 <= stats.reduction < 1.0


def test_table4(benchmark):
    result = benchmark.pedantic(
        table4_compression, args=(CACHE,), rounds=1, iterations=1
    )
    write_result("table4", result)
    for row in result.rows:
        name, labels, d1, d2, d3 = row
        # Combined compression is at least as strong as each scheme.
        assert d3 >= d1 - 1e-9
        assert d3 >= d2 - 1e-9
    # Both schemes bite on a clear majority of datasets.
    d1s = result.column("route d1 (%)")
    assert sum(1 for d in d1s if d > 5) >= len(d1s) // 2
