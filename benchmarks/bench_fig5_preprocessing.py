"""Figure 5 — preprocessing time of every method.

Each (dataset, method) benchmark performs one *fresh* build (rounds=1:
index construction is deterministic and expensive, so we measure it
once, exactly as the paper reports a single preprocessing run).
"""

import pytest

from repro.baselines import CHTPlanner, CSAPlanner
from repro.bench.experiments import figure5_preprocessing
from repro.core import build_index, compress_index

from conftest import CACHE, write_result

METHODS = ["CSA", "CHT", "TTL", "C-TTL"]


def _fresh_build(dataset: str, method: str):
    graph = CACHE.graph(dataset)
    if method == "CSA":
        CSAPlanner(graph).preprocess()
    elif method == "CHT":
        CHTPlanner(graph).preprocess()
    elif method == "TTL":
        build_index(graph)
    else:  # C-TTL: build plus both compression schemes
        compress_index(build_index(graph), mode="both")


@pytest.mark.parametrize("dataset", CACHE.config.datasets)
@pytest.mark.parametrize("method", METHODS)
def test_preprocessing(benchmark, dataset, method):
    benchmark.pedantic(
        _fresh_build, args=(dataset, method), rounds=1, iterations=1
    )


def test_figure5_table(benchmark):
    result = benchmark.pedantic(
        figure5_preprocessing, args=(CACHE,), rounds=1, iterations=1
    )
    write_result("figure5", result)
    from repro.bench.charts import chart_from_result

    write_result("figure5_chart", chart_from_result(result, unit="s"))
    for row in result.rows:
        name, csa_s, cht_s, ttl_s, cttl_s = row
        # The paper's ordering: CSA << CHT < TTL ~ C-TTL.
        assert csa_s < cht_s < ttl_s
        assert ttl_s <= cttl_s
        # Compression adds only a small fraction on top of IndexBuild.
        assert cttl_s < ttl_s * 1.8
