"""Figure 7 (Appendix D.1) — LDP query time for every method."""

import pytest

from repro.bench.experiments import QUERY_METHODS, figure7_ldp
from repro.bench.harness import run_queries

from conftest import CACHE, ROUNDS, write_result


@pytest.mark.parametrize("dataset", CACHE.config.datasets)
@pytest.mark.parametrize("method", QUERY_METHODS)
def test_ldp_query_batch(benchmark, dataset, method):
    planner = CACHE.planner(dataset, method)
    queries = CACHE.queries(dataset)
    benchmark.extra_info["queries_per_batch"] = len(queries)
    benchmark.pedantic(
        run_queries, args=(planner, queries, "ldp"),
        rounds=ROUNDS, iterations=1,
    )


def test_figure7_table(benchmark):
    result = benchmark.pedantic(
        figure7_ldp, args=(CACHE,), rounds=1, iterations=1
    )
    write_result("figure7", result)
    from repro.bench.charts import chart_from_result

    write_result("figure7_chart", chart_from_result(result, unit="us"))
    ttl = result.by_dataset("TTL (us)")
    csa = result.by_dataset("CSA (us)")
    # TTL wins LDP on (at least almost) every dataset.
    wins = sum(1 for d in ttl if ttl[d] < csa[d])
    assert wins >= len(ttl) - 1
