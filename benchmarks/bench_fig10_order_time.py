"""Figure 10 (Appendix D.2) — total preprocessing time per node order.

A-Order costs orders of magnitude more than H-Order; Rand-Order saves
ordering time but pays it back in a slower IndexBuild over its much
larger label sets.
"""

from repro.bench.experiments import SMALL_DATASETS, figure10_order_time

from conftest import CACHE, write_result

DATASETS = [d for d in CACHE.config.datasets if d in SMALL_DATASETS] or (
    SMALL_DATASETS[:1]
)


def test_figure10_order_times(benchmark):
    result = benchmark.pedantic(
        figure10_order_time, args=(CACHE, DATASETS), rounds=1, iterations=1
    )
    write_result("figure10", result)
    for row in result.rows:
        name, h_seconds, rand_seconds, a_seconds = row
        assert h_seconds > 0 and rand_seconds > 0
        if a_seconds is not None:
            # A-Order's total preprocessing dwarfs H-Order's.
            assert a_seconds > h_seconds * 2
