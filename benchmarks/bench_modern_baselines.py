"""Supplementary: TTL vs the modern open-source standard (RAPTOR).

The calibration note for this reproduction observes that open-source
transit routing today standardizes on RAPTOR/CSA, while timetable
2-hop labels are absent.  This benchmark adds RAPTOR to the paper's
line-up: like CSA it needs near-zero preprocessing, and like CHT it
beats CSA on queries — but the labelling approach still wins queries
by an order of magnitude, which is the paper's thesis restated against
the modern baseline.
"""

import pytest

from repro.baselines import RaptorPlanner
from repro.bench.harness import render_table, run_queries, time_queries

from conftest import CACHE, ROUNDS, write_result

DATASETS = CACHE.config.datasets

_RAPTOR = {}


def _raptor(dataset: str) -> RaptorPlanner:
    if dataset not in _RAPTOR:
        planner = RaptorPlanner(CACHE.graph(dataset))
        planner.preprocess()
        _RAPTOR[dataset] = planner
    return _RAPTOR[dataset]


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("kind", ["eap", "sdp"])
def test_raptor_query_batch(benchmark, dataset, kind):
    planner = _raptor(dataset)
    queries = CACHE.queries(dataset)
    benchmark.extra_info["queries_per_batch"] = len(queries)
    benchmark.pedantic(
        run_queries, args=(planner, queries, kind),
        rounds=ROUNDS, iterations=1,
    )


def test_modern_baseline_table(benchmark):
    def build():
        rows = []
        for dataset in DATASETS:
            queries = CACHE.queries(dataset)
            ttl = CACHE.planner(dataset, "TTL")
            csa = CACHE.planner(dataset, "CSA")
            raptor = _raptor(dataset)
            rows.append(
                [
                    dataset,
                    time_queries(ttl, queries, "eap") * 1e6,
                    time_queries(raptor, queries, "eap") * 1e6,
                    time_queries(csa, queries, "eap") * 1e6,
                    time_queries(ttl, queries, "sdp") * 1e6,
                    time_queries(raptor, queries, "sdp") * 1e6,
                    time_queries(csa, queries, "sdp") * 1e6,
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = render_table(
        "Supplementary: TTL vs RAPTOR vs CSA",
        [
            "dataset",
            "TTL eap (us)",
            "RAPTOR eap (us)",
            "CSA eap (us)",
            "TTL sdp (us)",
            "RAPTOR sdp (us)",
            "CSA sdp (us)",
        ],
        rows,
    )
    write_result("modern_baselines", table)

    # RAPTOR's sanity: exact answers already asserted in tests; here,
    # TTL must beat RAPTOR on SDP on every dataset.
    for row in rows:
        assert row[4] < row[5]
