#!/usr/bin/env python3
"""A departure board: profile queries on the TTL index.

Given an origin/destination pair, prints *all* non-dominated journeys
in a time window — the "next connections" list every journey planner
shows — using the profile-query extension built on SketchGen
(``repro.core.profile_queries``).

Run with::

    python examples/departure_board.py [--dataset Madrid]
"""

import argparse
import random

from repro import TTLPlanner, format_duration, format_time
from repro.datasets import load_dataset
from repro.timeutil import hms


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="Madrid")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--pairs", type=int, default=3)
    args = parser.parse_args()

    graph = load_dataset(args.dataset, scale=args.scale)
    planner = TTLPlanner(graph, concise=True)
    planner.preprocess()

    rng = random.Random(12)
    window = (hms(7), hms(10))
    shown = 0
    attempts = 0
    while shown < args.pairs and attempts < 200:
        attempts += 1
        u = rng.randrange(graph.n)
        v = rng.randrange(graph.n)
        if u == v:
            continue
        pairs = planner.profile(u, v, *window)
        if len(pairs) < 3:
            continue
        shown += 1
        print(f"\n=== {graph.station_name(u)} -> {graph.station_name(v)} "
              f"({format_time(window[0])} - {format_time(window[1])}) ===")
        print(f"{'depart':>9s} {'arrive':>9s} {'duration':>9s} {'legs':>5s}")
        for dep, arr in pairs:
            journey = planner.earliest_arrival(u, v, dep)
            assert journey is not None and journey.arr == arr
            print(f"{format_time(dep):>9s} {format_time(arr):>9s} "
                  f"{format_duration(arr - dep):>9s} "
                  f"{len(journey.legs):5d}")
        best = min(pairs, key=lambda p: p[1] - p[0])
        print(f"fastest: {format_time(best[0])} -> {format_time(best[1])} "
              f"({format_duration(best[1] - best[0])})")


if __name__ == "__main__":
    main()
