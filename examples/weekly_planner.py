#!/usr/bin/env python3
"""A week-level journey planner (Section 8's index partitioning).

Cities run different weekday and weekend timetables.  Section 8's
recipe — one two-day TTL index per consecutive day pair — is wrapped
by ``MultiDayPlanner``: queries carry absolute week timestamps
(seconds since Monday 00:00) and are routed to the right partition,
including journeys that cross midnight into the next day's (different)
timetable.

Run with::

    python examples/weekly_planner.py
"""

import time

from repro.core.multiday import MultiDayPlanner, WeeklyCalendar
from repro.datasets.synthetic import CitySpec, generate_city_radial
from repro.timeutil import SECONDS_PER_DAY, format_time, hms

DAY_NAMES = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"]


def week_time(day: int, seconds: int) -> int:
    return day * SECONDS_PER_DAY + seconds


def show(journey, label):
    if journey is None:
        print(f"  {label}: no feasible journey")
        return
    dep_day, dep = divmod(journey.dep, SECONDS_PER_DAY)
    arr_day, arr = divmod(journey.arr, SECONDS_PER_DAY)
    print(f"  {label}: depart {DAY_NAMES[dep_day]} {format_time(dep)}, "
          f"arrive {DAY_NAMES[arr_day]} {format_time(arr)}")


def main():
    # Weekday service: frequent; weekend service: same network at a
    # third of the frequency.
    weekday = generate_city_radial(
        CitySpec("wk", stations=49, routes=10, headway=900, seed=6)
    )
    weekend = generate_city_radial(
        CitySpec("wk", stations=49, routes=10, headway=2700, seed=6)
    )
    print(f"weekday: {weekday.m} connections, "
          f"weekend: {weekend.m} connections")

    calendar = WeeklyCalendar.weekday_weekend(weekday, weekend)
    planner = MultiDayPlanner(calendar)

    origin, destination = 1, weekday.n - 1
    start = time.perf_counter()

    # Same clock time, different days: the weekend timetable bites.
    for day in (2, 5):  # Wednesday vs Saturday
        journey = planner.earliest_arrival(
            origin, destination, week_time(day, hms(9, 30))
        )
        show(journey, f"{DAY_NAMES[day]} 09:30 departure")

    # A deadline on Saturday morning: the planner may answer with a
    # Friday-evening departure (crossing midnight between timetables).
    journey = planner.latest_departure(
        origin, destination, week_time(5, hms(8, 0))
    )
    show(journey, "arrive by Sat 08:00 (may leave Friday)")

    elapsed = time.perf_counter() - start
    print(f"\nbuilt {planner.num_built_indices()} two-day indices "
          f"lazily in {elapsed:.1f}s")


if __name__ == "__main__":
    main()
