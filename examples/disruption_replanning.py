#!/usr/bin/env python3
"""Disruptions and the static-index trade-off.

TTL trades preprocessing for query speed; the flip side (which the
paper scopes out) is that a schedule change invalidates the index.
This example delays 10% of trips on a city network and quantifies the
realistic operational trade:

* CSA needs only a re-sort (milliseconds) to serve the new timetable;
* TTL needs a rebuild (seconds) — after which its queries are again
  orders of magnitude faster.

It also shows how individual journeys change under the disruption.

Run with::

    python examples/disruption_replanning.py [--dataset Houston]
"""

import argparse
import time

from repro import CSAPlanner, TTLPlanner, format_duration, format_time
from repro.datasets import QueryWorkload, load_dataset
from repro.datasets.disruptions import delay_trips, random_delays


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="Houston")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--fraction", type=float, default=0.10)
    parser.add_argument("--max-delay", type=int, default=900)
    args = parser.parse_args()

    graph = load_dataset(args.dataset, scale=args.scale)
    print(f"{args.dataset}: {graph.n} stations, {graph.m} connections")

    delays = random_delays(
        graph, fraction=args.fraction, max_delay=args.max_delay, seed=4
    )
    disrupted = delay_trips(graph, delays)
    print(f"disruption: {len(delays)} trips delayed by up to "
          f"{args.max_delay // 60} min\n")

    # Re-preprocessing cost per method.
    start = time.perf_counter()
    csa = CSAPlanner(disrupted)
    csa.preprocess()
    csa_seconds = time.perf_counter() - start
    start = time.perf_counter()
    ttl = TTLPlanner(disrupted)
    ttl.preprocess()
    ttl_seconds = time.perf_counter() - start
    print(f"re-preprocessing after the disruption: "
          f"CSA {csa_seconds * 1000:.1f} ms, TTL {ttl_seconds:.2f} s")

    baseline = TTLPlanner(graph)
    baseline.preprocess()

    # How did journeys change?
    queries = QueryWorkload(graph, seed=21).generate(400)
    worse = unchanged = better = 0
    worst = None
    for q in queries:
        before = baseline.earliest_arrival(q.source, q.destination, q.t_start)
        after = ttl.earliest_arrival(q.source, q.destination, q.t_start)
        if before is None or after is None:
            continue
        delta = after.arr - before.arr
        if delta > 0:
            worse += 1
            if worst is None or delta > worst[0]:
                worst = (delta, q, before, after)
        elif delta < 0:
            better += 1
        else:
            unchanged += 1

    total = worse + unchanged + better
    print(f"\nof {total} journeys: {unchanged} unchanged, "
          f"{worse} arrive later, {better} arrive earlier")
    if worst is not None:
        delta, q, before, after = worst
        print(f"\nworst-hit journey "
              f"({graph.station_name(q.source)} -> "
              f"{graph.station_name(q.destination)}):")
        print(f"  planned:   arrive {format_time(before.arr)}")
        print(f"  disrupted: arrive {format_time(after.arr)} "
              f"(+{format_duration(delta)})")


if __name__ == "__main__":
    main()
