#!/usr/bin/env python3
"""Quickstart: build a tiny timetable, index it, answer all three
query types.

Run with::

    python examples/quickstart.py
"""

from repro import GraphBuilder, TTLPlanner, format_time, hms


def build_network():
    """Two bus lines through a four-stop corridor plus an express."""
    builder = GraphBuilder()
    harbour = builder.add_station("Harbour")
    market = builder.add_station("Market")
    museum = builder.add_station("Museum")
    airport = builder.add_station("Airport")

    local = builder.add_route(
        [harbour, market, museum, airport], name="local 1"
    )
    # A local bus every 15 minutes, 6:00 - 10:00.
    for minute in range(0, 241, 15):
        builder.add_trip_departures(
            local, hms(6) + minute * 60, [420, 360, 540], dwell=30
        )

    express = builder.add_route([harbour, airport], name="airport express")
    # An express every 30 minutes.
    for minute in range(10, 241, 30):
        builder.add_trip_departures(express, hms(6) + minute * 60, [900])

    return builder.build(), harbour, airport


def main():
    graph, harbour, airport = build_network()
    print(f"network: {graph.n} stations, {graph.m} connections, "
          f"{len(graph.routes)} routes\n")

    planner = TTLPlanner(graph)
    seconds = planner.preprocess()
    stats = planner.index.stats()
    print(f"TTL index built in {seconds * 1000:.1f} ms "
          f"({stats.num_labels} labels)\n")

    # EAP: "I am at the Harbour at 7:05 — when can I reach the Airport?"
    journey = planner.earliest_arrival(harbour, airport, hms(7, 5))
    print("Earliest arrival from 07:05:")
    print(journey.describe(graph), "\n")

    # LDP: "I must be at the Airport by 8:00 — when can I leave latest?"
    journey = planner.latest_departure(harbour, airport, hms(8))
    print("Latest departure to arrive by 08:00:")
    print(journey.describe(graph), "\n")

    # SDP: "between 6:30 and 9:00, which trip is fastest?"
    journey = planner.shortest_duration(
        harbour, airport, hms(6, 30), hms(9)
    )
    print("Shortest duration inside [06:30, 09:00]:")
    print(journey.describe(graph), "\n")

    # Concise answers (Section 8): boarding instructions only.
    concise = TTLPlanner(graph, index=planner.index, concise=True)
    journey = concise.earliest_arrival(harbour, airport, hms(7, 5))
    print("Same EAP as boarding instructions:")
    print(journey.describe(graph))
    print(f"\n(arrive {format_time(journey.arr)}, "
          f"{journey.transfers} transfers)")


if __name__ == "__main__":
    main()
