#!/usr/bin/env python3
"""Explore the compression trade-off (Section 7 / Table 4).

For one dataset, builds the plain TTL index and all three compressed
variants, then reports label counts, model bytes, and query latency —
the space/time trade the paper quantifies in Table 4 and Figure 3.

Run with::

    python examples/compression_tradeoffs.py [--dataset Budapest]
"""

import argparse
import time

from repro import TTLPlanner
from repro.core import build_index, compress_index
from repro.core.cindex import CompressedTTLPlanner
from repro.core.serialize import index_bytes
from repro.datasets import QueryWorkload, load_dataset


def time_sdp(planner, queries):
    start = time.perf_counter()
    for q in queries:
        planner.shortest_duration(q.source, q.destination, q.t_start, q.t_end)
    return (time.perf_counter() - start) / len(queries) * 1e6


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="Budapest")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--queries", type=int, default=300)
    args = parser.parse_args()

    graph = load_dataset(args.dataset, scale=args.scale)
    queries = QueryWorkload(graph, seed=3).generate(args.queries)

    index = build_index(graph)
    plain = TTLPlanner(graph, index=index)
    rows = [
        (
            "TTL (uncompressed)",
            index.num_labels,
            index_bytes(index),
            time_sdp(plain, queries),
        )
    ]
    for mode in ("route", "pivot", "both"):
        compressed, stats = compress_index(index, mode=mode)
        planner = CompressedTTLPlanner(graph, cindex=compressed)
        rows.append(
            (
                f"C-TTL ({mode})",
                stats.labels_after,
                compressed.compressed_bytes(),
                time_sdp(planner, queries),
            )
        )

    print(f"{args.dataset}: {graph.n} stations, {graph.m} connections")
    print(f"{'variant':22s} {'labels':>9s} {'bytes':>11s} "
          f"{'us/SDP query':>13s} {'space saved':>12s}")
    base_bytes = rows[0][2]
    for name, labels, size, micros in rows:
        saved = 100.0 * (1 - size / base_bytes)
        print(f"{name:22s} {labels:9,d} {size:11,d} {micros:13.1f} "
              f"{saved:11.1f}%")

    print("\nInterpretation (cf. Table 4): route-based compression")
    print("collapses single-vehicle label groups onto the route")
    print("timetable; pivot-based compression collapses transfer label")
    print("groups onto their pivot; combined they shrink the index by")
    print("double-digit percentages at a modest query-time cost.")


if __name__ == "__main__":
    main()
