#!/usr/bin/env python3
"""Accessibility isochrones from batched label queries.

Transit accessibility analysis asks: from a given station at a given
time, how much of the city is reachable within 15 / 30 / 45 minutes?
With a TTL index every answer is a label merge (no graph search), so
whole isochrone families come back in milliseconds — a workload the
index serves that the paper's per-query framing only implies.

Run with::

    python examples/accessibility_isochrones.py [--dataset Madrid]
"""

import argparse
import time

from repro.core import batch_plan, build_index
from repro.query import BatchQuery
from repro.datasets import load_dataset
from repro.timeutil import format_time, hms


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="Madrid")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--station", type=int, default=0)
    parser.add_argument("--time", default="08:00")
    args = parser.parse_args()

    graph = load_dataset(args.dataset, scale=args.scale)
    print(f"{args.dataset}: {graph.n} stations, {graph.m} connections")
    index = build_index(graph)

    from repro.timeutil import parse_time

    t = parse_time(args.time)
    source = args.station
    print(f"\nisochrones from {graph.station_name(source)} at "
          f"{format_time(t)}:")

    start = time.perf_counter()
    budgets = [15, 30, 45, 60]
    queries = [
        BatchQuery(
            kind="isochrone", sources=(source,), t=t, budget=minutes * 60
        )
        for minutes in budgets
    ]
    rings = dict(zip(budgets, batch_plan(index, queries)))
    elapsed = time.perf_counter() - start

    for minutes in budgets:
        count = len(rings[minutes])
        share = count / graph.n
        bar = "#" * round(40 * share)
        print(f"  within {minutes:3d} min: {count:4d} stations "
              f"({share:5.1%}) {bar}")
    print(f"\ncomputed {len(budgets)} isochrones in "
          f"{elapsed * 1000:.1f} ms (label merges only)")

    # Show the frontier of the 30-minute ring: the last few stations
    # that make it.
    [arrivals] = batch_plan(
        index,
        [
            BatchQuery(
                kind="one_to_many",
                sources=(source,),
                targets=tuple(rings[30]),
                t=t,
            )
        ],
    )
    frontier = sorted(rings[30], key=lambda s: arrivals[s])[-5:]
    print("\n30-minute frontier:")
    for station in frontier:
        print(f"  {graph.station_name(station):28s} "
              f"arrive {format_time(arrivals[station])}")


if __name__ == "__main__":
    main()
