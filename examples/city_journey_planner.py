#!/usr/bin/env python3
"""A city journey planner over a catalogue dataset.

Builds the synthetic "Berlin" network, indexes it with TTL, and runs an
interactive-style batch of door-to-door queries, comparing TTL's
answers (and speed) against the Connection Scan baseline — the paper's
Figure 3/6 scenario in miniature.

Run with::

    python examples/city_journey_planner.py [--dataset Berlin] [--scale 1.0]
"""

import argparse
import random
import time

from repro import CSAPlanner, TTLPlanner, format_duration, format_time
from repro.datasets import load_dataset


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="Berlin")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--trips", type=int, default=5,
                        help="journeys to plan and print")
    args = parser.parse_args()

    graph = load_dataset(args.dataset, scale=args.scale)
    stats = graph.stats()
    print(f"{args.dataset}: {stats.num_stations} stations, "
          f"{stats.num_connections} connections, "
          f"{stats.num_routes} routes")

    ttl = TTLPlanner(graph, concise=True)
    build_seconds = ttl.preprocess()
    print(f"TTL index: {ttl.index.stats().num_labels} labels, "
          f"built in {build_seconds:.2f}s")
    csa = CSAPlanner(graph)
    csa.preprocess()

    rng = random.Random(7)
    printed = 0
    ttl_time = csa_time = 0.0
    queries = 0
    while printed < args.trips and queries < 500:
        queries += 1
        u = rng.randrange(graph.n)
        v = rng.randrange(graph.n)
        if u == v:
            continue
        t = rng.randint(stats.min_time, stats.max_time)

        start = time.perf_counter()
        journey = ttl.earliest_arrival(u, v, t)
        ttl_time += time.perf_counter() - start

        start = time.perf_counter()
        reference = csa.earliest_arrival(u, v, t)
        csa_time += time.perf_counter() - start

        if journey is None:
            continue
        assert reference is not None and reference.arr == journey.arr

        printed += 1
        print(f"\n#{printed}  {graph.station_name(u)} -> "
              f"{graph.station_name(v)}  (ready at {format_time(t)})")
        for leg in journey.legs:
            route = graph.route_of_trip(leg.trip)
            route_name = route.name or f"route {route.route_id}"
            print(f"    {format_time(leg.time)}  board {route_name} "
                  f"at {graph.station_name(leg.station)}")
        print(f"    {format_time(journey.arr)}  arrive "
              f"({format_duration(journey.duration)}, "
              f"{journey.transfers} transfers)")

    if queries:
        print(f"\nasked {queries} EAP queries: "
              f"TTL {ttl_time / queries * 1e6:.0f} us/query, "
              f"CSA {csa_time / queries * 1e6:.0f} us/query")


if __name__ == "__main__":
    main()
