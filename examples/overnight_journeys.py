#!/usr/bin/env python3
"""Extended timetables: planning past midnight (Section 8).

A single-day index cannot answer "leave Saturday 23:40, arrive Sunday
morning".  Section 8's fix is to index two consecutive service days;
this example builds both indices on a country network and shows the
overnight journey appearing once the timetable is extended.

Run with::

    python examples/overnight_journeys.py
"""

from repro import TTLPlanner, extend_with_next_day, format_time, hms
from repro.datasets import load_dataset


def main():
    graph = load_dataset("Sweden", scale=0.6)
    stats = graph.stats()
    print(f"Sweden (scaled): {stats.num_stations} stations, "
          f"{stats.num_connections} connections")
    print(f"service day: {format_time(stats.min_time)} - "
          f"{format_time(stats.max_time)}\n")

    # Pick two stations in different cities: centres carry the "/centre"
    # suffix in the synthetic country generator.
    centres = [
        s for s in range(graph.n)
        if graph.station_name(s).endswith("/centre")
    ]
    origin, destination = centres[0], centres[-1]
    late = hms(23, 0)

    single = TTLPlanner(graph, concise=True)
    single.preprocess()
    journey = single.earliest_arrival(origin, destination, late)
    print(f"{graph.station_name(origin)} -> "
          f"{graph.station_name(destination)}, ready at "
          f"{format_time(late)}")
    if journey is None:
        print("  single-day index: no feasible journey "
              "(the last rail connection has left)\n")
    else:
        print(f"  single-day index: arrive {format_time(journey.arr)}\n")

    extended_graph = extend_with_next_day(graph)
    print(f"extended timetable: {extended_graph.m} connections "
          f"(two consecutive days)")
    extended = TTLPlanner(extended_graph, concise=True)
    seconds = extended.preprocess()
    print(f"extended TTL index built in {seconds:.1f}s "
          f"({extended.index.stats().num_labels} labels)\n")

    journey = extended.earliest_arrival(origin, destination, late)
    assert journey is not None, "extended index must find the journey"
    print("overnight journey (times past 24:00 are next-day):")
    print(journey.describe(extended_graph))

    if journey.arr >= hms(24):
        print(f"\narrives the NEXT day at "
              f"{format_time(journey.arr - hms(24))}")


if __name__ == "__main__":
    main()
