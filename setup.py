"""Setup shim for environments without the `wheel` package.

`pip install -e .` (PEP 660) requires `wheel`; on offline machines
without it, `python setup.py develop` installs the same editable
package using plain setuptools. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
