#!/usr/bin/env python
"""Sustained chaos soak for the journalled live-prefork serving stack.

An **open-loop** load generator (arrivals at a fixed rate, independent
of completions — the closed-loop trap of "wait for the response, then
send" hides every queueing collapse) drives mixed ``/v1`` journey
traffic against a 2+-worker :class:`~repro.serving.ServingSupervisor`
while live disruptions stream through the supervisor's journalled
control plane and seeded chaos kills workers mid-flight.  Four phases:

* **steady** — queries only; the latency baseline.
* **churn**  — queries + live events; measures journal fan-out
  (convergence lag: event ack → every worker's scoreboard row at the
  journal tail) on an otherwise healthy fleet.
* **chaos**  — churn plus a seeded worker-SIGKILL schedule and an
  injected-latency fault plan; respawned workers must replay the
  journal before readmission, so convergence keeps holding.
* **drain**  — traffic continues while the supervisor SIGTERM-drains:
  zero connection resets allowed, workers exit 0.

After the chaos phase the harness quiesces and compares a sample of
worker answers byte-for-byte against the supervisor's own reference
engine on the control port (cache disabled there) — the zero-stale
oracle.  Any mismatch, reset, or non-converged worker fails the run.

Per-phase p50/p99 latency and SLO attainment (fraction of requests
answered 200 within the deadline budget) land in a trajectory entry
appended under the ``"soak"`` key of
``benchmarks/results/BENCH_serving.json``.

Run (CI smoke is ~30 s)::

    PYTHONPATH=src python scripts/soak.py --smoke
    PYTHONPATH=src python scripts/soak.py --duration 300 --rate 80
"""

from __future__ import annotations

import argparse
import json
import os
import random
import statistics
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

RESULTS = REPO / "benchmarks" / "results" / "BENCH_serving.json"


# ----------------------------------------------------------------------
# HTTP helpers
# ----------------------------------------------------------------------


def _get(port: int, path: str, timeout: float = 30.0) -> dict:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=timeout
    ) as response:
        return json.loads(response.read())


def _post(port: int, path: str, body: dict, timeout: float = 30.0):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


# ----------------------------------------------------------------------
# Open-loop load generator
# ----------------------------------------------------------------------


class OpenLoopLoad:
    """Fire requests at a fixed arrival rate from a sender pool.

    Arrivals are scheduled on the clock, not on completions: if the
    server slows down, requests pile into the sender pool's queue and
    latency (not offered load) absorbs the damage — which is exactly
    what the soak wants to observe.  Each completion is recorded as
    ``(phase, latency_s, status, kind)`` where ``kind`` is:

    * ``"ok"`` / ``"http"`` — got a response (2xx / other status);
    * ``"refused"`` — connection refused: the listener was already
      closed.  Only legitimate in the drain phase (a real deployment's
      LB stops routing; a straggler client sees a clean refusal);
    * ``"reset"`` — the connection was *accepted* and then torn down
      without a complete response (ECONNRESET / server hung up
      mid-exchange).  Never acceptable: the drain contract is that an
      accepted request always gets its answer.
    """

    def __init__(self, port: int, paths, rate_hz: float, senders: int = 8):
        self.port = port
        self.paths = paths
        self.rate_hz = rate_hz
        self.records = []
        self._lock = threading.Lock()
        self._queue: list = []
        self._queued = threading.Semaphore(0)
        self._stop = threading.Event()
        self._paused = threading.Event()
        self.phase = "steady"
        self._senders = [
            threading.Thread(target=self._sender, daemon=True)
            for _ in range(senders)
        ]
        self._clock = threading.Thread(target=self._arrivals, daemon=True)
        self._index = 0

    def start(self) -> None:
        for thread in self._senders:
            thread.start()
        self._clock.start()

    def pause(self) -> None:
        """Stop scheduling new arrivals; queued/in-flight requests
        still complete (the drain handshake needs exactly this)."""
        self._paused.set()

    def stop(self) -> None:
        self._paused.set()
        self._stop.set()
        for _ in self._senders:
            self._queued.release()
        self._clock.join(timeout=5)
        for thread in self._senders:
            thread.join(timeout=30)

    def _arrivals(self) -> None:
        interval = 1.0 / self.rate_hz
        next_at = time.monotonic()
        while not self._stop.is_set():
            if self._paused.is_set():
                time.sleep(0.02)
                next_at = time.monotonic()
                continue
            now = time.monotonic()
            if now < next_at:
                time.sleep(min(interval, next_at - now))
                continue
            next_at += interval
            with self._lock:
                path = self.paths[self._index % len(self.paths)]
                self._index += 1
                self._queue.append((self.phase, path))
            self._queued.release()

    @staticmethod
    def _classify(exc) -> str:
        reason = getattr(exc, "reason", exc)
        if isinstance(reason, ConnectionRefusedError):
            return "refused"
        return "reset"

    def _sender(self) -> None:
        import http.client

        while True:
            self._queued.acquire()
            if self._stop.is_set():
                return
            with self._lock:
                if not self._queue:
                    continue
                phase, path = self._queue.pop(0)
            started = time.perf_counter()
            status, kind = 0, "reset"
            try:
                _get(self.port, path, timeout=30)
                status, kind = 200, "ok"
            except urllib.error.HTTPError as exc:
                status, kind = exc.code, "http"
            except (
                http.client.RemoteDisconnected,
                ConnectionError,
                urllib.error.URLError,
                OSError,
            ) as exc:
                kind = self._classify(exc)
            latency = time.perf_counter() - started
            with self._lock:
                self.records.append((phase, latency, status, kind))


def _phase_stats(records, phase: str, deadline_s: float) -> dict:
    rows = [r for r in records if r[0] == phase]
    if not rows:
        return {"requests": 0}
    latencies = sorted(r[1] for r in rows)
    ok = [r for r in rows if r[2] == 200]
    within = [r for r in ok if r[1] <= deadline_s]
    resets = sum(1 for r in rows if r[3] == "reset")
    refused = sum(1 for r in rows if r[3] == "refused")

    def pct(p):
        return round(
            latencies[min(len(latencies) - 1, int(p * len(latencies)))]
            * 1e3,
            2,
        )

    return {
        "requests": len(rows),
        "p50_ms": pct(0.50),
        "p99_ms": pct(0.99),
        "ok": len(ok),
        "slo_attainment": round(len(within) / len(rows), 4),
        "resets": resets,
        "refused": refused,
    }


# ----------------------------------------------------------------------
# The soak itself
# ----------------------------------------------------------------------


def run_soak(args) -> int:
    from repro.core import build_index
    from repro.datasets import load_dataset
    from repro.live import LiveOverlayEngine
    from repro.resilience import FaultPlan, FaultRule, ResilienceConfig
    from repro.serving import ServingSupervisor

    rng = random.Random(args.seed)
    print(f"soak: dataset={args.dataset} workers={args.workers} "
          f"rate={args.rate}/s duration={args.duration}s seed={args.seed}",
          flush=True)

    graph = load_dataset(args.dataset)
    index = build_index(graph)
    trip_ids = sorted(graph.trips)

    deadline_s = args.deadline_ms / 1e3
    config = ResilienceConfig(
        deadline_ms=args.deadline_ms,
        cache_size=args.cache_size,
        drain_grace_s=args.drain_grace,
    )
    fault_plan = FaultPlan(
        rules=[
            FaultRule(
                site="planner.query",
                kind="latency",
                seconds=min(0.05, deadline_s / 4),
                probability=0.05,
            )
        ],
        seed=args.seed,
    )
    journal_path = args.journal or tempfile.mktemp(
        prefix="repro-soak-", suffix=".wal"
    )
    supervisor = ServingSupervisor(
        lambda: LiveOverlayEngine(graph, index=index),
        workers=args.workers,
        resilience=config,
        fault_plan=fault_plan,
        journal_path=journal_path,
        heartbeat_interval_s=0.1,
    )
    port = supervisor.start()
    supervisor.wait_ready(60)
    control = supervisor.control_port
    print(f"fleet up: data :{port}  control :{control}  "
          f"journal {journal_path}", flush=True)

    # Query mix: Zipf-ish hot pairs, fixed departure buckets.
    pairs = []
    while len(pairs) < 40:
        u, v = rng.randrange(graph.n), rng.randrange(graph.n)
        if u != v:
            pairs.append((u, v))
    times = (28800, 32400, 36000)
    paths = [
        f"/v1/eap?from={u}&to={v}&t={times[i % len(times)]}"
        for i, (u, v) in enumerate(
            rng.choices(pairs, weights=[1 / (r + 1) for r in range(40)],
                        k=400)
        )
    ]

    load = OpenLoopLoad(port, paths, rate_hz=args.rate)
    load.start()

    phase_s = args.duration / 4.0
    convergence_lags = []
    clock = 0
    failures = []

    def emit_event() -> None:
        nonlocal clock
        kind = rng.random()
        if kind < 0.7:
            body = {
                "kind": "delay",
                "trip_id": rng.choice(trip_ids),
                "delay": rng.randrange(60, 900),
                "expires_at": clock + rng.randrange(1800, 7200),
            }
            _post(control, "/live/events", body)
        elif kind < 0.9:
            body = {
                "kind": "cancel",
                "trip_id": rng.choice(trip_ids),
                "expires_at": clock + rng.randrange(1800, 7200),
            }
            _post(control, "/live/events", body)
        else:
            clock += rng.randrange(60, 300)
            _post(control, "/live/advance", {"now": clock})
        appended = time.monotonic()
        while not supervisor.converged():
            if time.monotonic() - appended > 30:
                failures.append("convergence timeout after live event")
                return
            time.sleep(0.01)
        convergence_lags.append(time.monotonic() - appended)

    # -- steady ---------------------------------------------------------
    time.sleep(phase_s)

    # -- churn ----------------------------------------------------------
    load.phase = "churn"
    churn_end = time.monotonic() + phase_s
    while time.monotonic() < churn_end:
        emit_event()
        time.sleep(max(0.05, phase_s / max(1, args.events_per_phase)))

    # -- chaos ----------------------------------------------------------
    load.phase = "chaos"
    chaos_end = time.monotonic() + phase_s
    kills = 0
    next_kill = time.monotonic() + phase_s / (args.kills + 1)
    while time.monotonic() < chaos_end:
        emit_event()
        if kills < args.kills and time.monotonic() >= next_kill:
            victim = rng.randrange(args.workers)
            try:
                pid = supervisor.kill_worker(victim)
                kills += 1
                print(f"chaos: SIGKILL worker {victim} (pid {pid})",
                      flush=True)
            except ValueError:
                pass  # already down, mid-respawn
            next_kill += phase_s / (args.kills + 1)
        time.sleep(max(0.05, phase_s / max(1, args.events_per_phase)))

    # Quiesce: wait for respawns to replay to the tail, then run the
    # zero-stale oracle against the reference engine.
    try:
        supervisor.wait_ready(60)
    except Exception as exc:  # noqa: BLE001
        failures.append(f"fleet not ready after chaos: {exc}")
    stale = 0
    compared = 0
    for u, v in pairs[:20]:
        path = f"/v1/eap?from={u}&to={v}&t={times[compared % len(times)]}"
        try:
            worker_body = _get(port, path)
            reference_body = _get(control, path)
        except urllib.error.HTTPError:
            continue
        if worker_body["data"].get("degraded"):
            continue  # breaker fallback is allowed to differ
        compared += 1
        if json.dumps(worker_body["data"], sort_keys=True) != json.dumps(
            reference_body["data"], sort_keys=True
        ):
            stale += 1
            failures.append(f"stale answer on {path}")
    print(f"oracle: {compared} answers compared, {stale} stale", flush=True)
    if compared == 0:
        failures.append("oracle compared zero answers")

    # -- drain ----------------------------------------------------------
    # Keep traffic flowing into the drain phase, then pause arrivals
    # and SIGTERM immediately: everything queued or in flight races the
    # shutdown, and each of those requests must either complete or be
    # cleanly refused — never reset mid-exchange.
    load.phase = "drain"
    time.sleep(min(1.0, phase_s / 4))
    drain_started = time.monotonic()
    load.pause()
    clean = supervisor.drain(grace_s=config.drain_grace_s)
    drain_wall = time.monotonic() - drain_started
    load.stop()
    if not clean:
        failures.append("drain escalated to SIGKILL or nonzero exit")

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    records = load.records
    phases = {
        phase: _phase_stats(records, phase, deadline_s)
        for phase in ("steady", "churn", "chaos", "drain")
    }
    # The drain contract: an accepted request always completes, so a
    # connection *reset* is a failure in every phase.  A clean
    # *refusal* is only legitimate during drain (listener closed).
    for phase in ("steady", "churn", "chaos", "drain"):
        stats = phases[phase]
        if stats.get("resets"):
            failures.append(f"{stats['resets']} connection resets in "
                            f"{phase} phase")
        if phase != "drain" and stats.get("refused"):
            failures.append(f"{stats['refused']} connections refused in "
                            f"{phase} phase")

    entry = {
        "dataset": args.dataset,
        "workers": args.workers,
        "rate_hz": args.rate,
        "duration_s": args.duration,
        "seed": args.seed,
        "deadline_ms": args.deadline_ms,
        "phases": phases,
        "events": len(convergence_lags),
        "kills": kills,
        "respawns": supervisor.respawns,
        "convergence_lag_ms": {
            "p50": round(
                statistics.median(convergence_lags) * 1e3, 2
            )
            if convergence_lags
            else None,
            "max": round(max(convergence_lags) * 1e3, 2)
            if convergence_lags
            else None,
        },
        "oracle": {"compared": compared, "stale": stale},
        "drain_wall_s": round(drain_wall, 3),
        "drain_clean": clean,
        "failures": failures,
    }

    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    merged = {}
    if RESULTS.exists():
        try:
            merged = json.loads(RESULTS.read_text())
        except (json.JSONDecodeError, OSError):
            merged = {}
    merged.setdefault("soak", []).append(entry)
    RESULTS.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")

    print(json.dumps(entry, indent=2, sort_keys=True))
    if args.journal is None and os.path.exists(journal_path):
        os.unlink(journal_path)
    if failures:
        print(f"SOAK FAILED: {failures}", file=sys.stderr)
        return 1
    print("soak passed: zero stale answers, fleet converged, clean drain")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument("--dataset", default="Austin")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--duration", type=float, default=120.0,
                        help="total seconds, split evenly across phases")
    parser.add_argument("--rate", type=float, default=40.0,
                        help="open-loop arrival rate, requests/second")
    parser.add_argument("--deadline-ms", type=float, default=2000.0)
    parser.add_argument("--cache-size", type=int, default=256)
    parser.add_argument("--drain-grace", type=float, default=5.0)
    parser.add_argument("--events-per-phase", type=int, default=12,
                        help="live mutations emitted per churn/chaos phase")
    parser.add_argument("--kills", type=int, default=2,
                        help="seeded worker SIGKILLs in the chaos phase")
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--journal", help="journal path (default: temp)")
    parser.add_argument("--smoke", action="store_true",
                        help="~30 s CI profile: low rate, 1 kill")
    args = parser.parse_args(argv)
    if args.smoke:
        args.duration = min(args.duration, 28.0)
        args.rate = min(args.rate, 25.0)
        args.kills = 1
        args.events_per_phase = 6
    return run_soak(args)


if __name__ == "__main__":
    raise SystemExit(main())
