"""End-to-end prefork serving smoke: the CI counterpart of
``tests/test_serving.py``, but through the real CLI entry point.

Launches ``repro-ttl serve <dataset> --workers 2 --mmap --index <path>``
as a subprocess, then asserts the whole redesign in one pass:

1. both workers report alive in ``/v1/healthz``;
2. ``/v1/eap`` answers arrive in the versioned envelope and the
   legacy ``/eap`` path still answers (with a ``Deprecation`` header);
3. ``/v1/batch`` answers a one-to-many request;
4. SIGKILL of one worker is followed by a respawn (fresh pid, same
   worker id) and the aggregated ``/metrics`` counters never move
   backwards across the kill.

A second phase starts two single-process ``--live`` servers — one
with ``--cache-size``, one without — primes hot pairs until the cache
reports a positive hit rate, injects the same delay event into both,
and asserts every answer stays byte-identical to the cache-disabled
reference (zero stale answers across the invalidation sweep).

Exit code 0 on success; any assertion failure or timeout is fatal.

Usage::

    PYTHONPATH=src python scripts/serving_smoke.py /tmp/austin.ttl \
        --dataset Austin --requests 50
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request

SERVE_LINE = re.compile(r"http://127\.0\.0\.1:(\d+)")


def get(port, path):
    request = urllib.request.Request(f"http://127.0.0.1:{port}{path}")
    with urllib.request.urlopen(request, timeout=15) as response:
        return json.loads(response.read()), dict(response.headers)


def post(port, path, body):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=15) as response:
        return json.loads(response.read()), dict(response.headers)


def alive_workers(port):
    body, _ = get(port, "/v1/healthz")
    return {
        row["worker"]: row["pid"]
        for row in body["data"]["workers"]
        if row["alive"]
    }


def cluster_totals(port):
    body, _ = get(port, "/metrics")
    return body["cluster"]["totals"]


def wait_for(predicate, timeout_s, what):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            result = predicate()
        except Exception:
            result = None
        if result:
            return result
        time.sleep(0.2)
    raise SystemExit(f"timed out after {timeout_s}s waiting for {what}")


def launch(cli_args):
    """Start ``repro-ttl serve`` and return (process, bound port)."""
    # -u: the child's "serving ..." line must not sit in a block buffer.
    server = subprocess.Popen(
        [
            sys.executable,
            "-u",
            "-m",
            "repro.cli",
            "serve",
            *cli_args,
            "--port",
            "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    line = server.stdout.readline()
    print(f"server: {line.strip()}")
    match = SERVE_LINE.search(line)
    if not match:
        server.terminate()
        raise SystemExit(f"could not parse serve line: {line!r}")
    return server, int(match.group(1))


def shutdown(server):
    server.terminate()
    try:
        server.wait(timeout=15)
    except subprocess.TimeoutExpired:
        server.kill()


def answer_blob(port, path):
    body, _ = get(port, path)
    return json.dumps(body["data"], sort_keys=True)


def cache_live_smoke(dataset: str) -> None:
    """Phase 2: cached vs uncached ``--live`` servers must agree."""
    cached, cached_port = launch([dataset, "--live", "--cache-size", "256"])
    plain, plain_port = launch([dataset, "--live"])
    try:
        for port in (cached_port, plain_port):
            wait_for(
                lambda: get(port, "/v1/healthz/ready")[0]["data"]["ready"],
                60,
                "live server readiness",
            )
        stations, _ = get(cached_port, "/v1/stations")
        n = len(stations["data"]["stations"])
        hot = [
            f"/v1/eap?from={i % n}&to={(i + 5) % n}&t={28800 + 60 * i}"
            for i in range(8)
        ]

        # Prime, then replay: the replay pass must be served from the
        # cache, and every answer must match the uncached reference.
        for _ in range(2):
            for path in hot:
                if answer_blob(cached_port, path) != answer_blob(
                    plain_port, path
                ):
                    raise SystemExit(f"cached answer diverged on {path}")
        metrics, _ = get(cached_port, "/v1/metrics")
        cache_stats = metrics["data"]["cache"]
        assert cache_stats["hits"] > 0, cache_stats
        assert cache_stats["hit_rate"] > 0, cache_stats
        print(
            f"cache warm: {cache_stats['hits']} hits, "
            f"hit rate {cache_stats['hit_rate']}"
        )

        # Disrupt a trip a hot journey actually rides, on BOTH servers.
        trip_id = None
        for path in hot:
            body, _ = get(cached_port, path)
            journey = body["data"]["journey"]
            if journey and journey.get("path"):
                trip_id = journey["path"][0][4]
                break
        if trip_id is None:
            raise SystemExit("no feasible hot journey to disrupt")
        event = {"kind": "delay", "trip_id": trip_id, "delay": 900}
        for port in (cached_port, plain_port):
            post(port, "/v1/live/events", event)
        print(f"injected delay on trip {trip_id}")

        # Zero stale answers: every hot pair, twice (the second pass
        # exercises entries the sweep re-keyed or repopulated).
        stale = [
            path
            for _ in range(2)
            for path in hot
            if answer_blob(cached_port, path)
            != answer_blob(plain_port, path)
        ]
        assert not stale, f"stale cached answers after event: {stale}"
        metrics, _ = get(cached_port, "/v1/metrics")
        after = metrics["data"]["cache"]
        assert after["invalidations"] > 0, after
        print(
            f"invalidation sweep ok: {after['invalidations']} evicted, "
            "0 stale answers"
        )
        print("cache+live smoke OK")
    finally:
        shutdown(cached)
        shutdown(plain)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("index", help="saved TTLIDX03 index file")
    parser.add_argument("--dataset", default="Austin")
    parser.add_argument("--requests", type=int, default=50)
    args = parser.parse_args(argv)

    server, port = launch(
        [
            args.dataset,
            "--workers",
            "2",
            "--mmap",
            "--index",
            args.index,
        ]
    )
    try:
        workers = wait_for(
            lambda: len(alive_workers(port)) == 2 and alive_workers(port),
            30,
            "both workers alive",
        )
        print(f"workers alive: {workers}")

        # Versioned envelope, and the legacy surface still answers.
        body, headers = get(port, "/v1/eap?from=0&to=5&t=28800")
        assert set(body) >= {"data", "meta"}, body
        assert body["meta"]["worker"] in workers, body["meta"]
        legacy, legacy_headers = get(port, "/eap?from=0&to=5&t=28800")
        assert legacy_headers.get("Deprecation") == "true", legacy_headers
        assert "Deprecation" not in headers, headers

        stations, _ = get(port, "/v1/stations")
        n = len(stations["data"]["stations"])
        answered = set()
        for i in range(args.requests):
            reply, _ = get(
                port, f"/v1/eap?from={i % n}&to={(i + 7) % n}&t={28800 + i}"
            )
            answered.add(reply["meta"]["worker"])
        print(f"hammered /v1/eap x{args.requests}; answered by {answered}")

        batch, _ = post(
            port,
            "/v1/batch",
            {"kind": "one_to_many", "source": 0, "targets": [1, 2, 3], "t": 28800},
        )
        assert len(batch["data"]["arrivals"]) == 3, batch
        print("batch one_to_many ok")

        # Workers publish counters on a heartbeat, so the aggregate can
        # lag a beat — wait for it to cover the hammer we just sent.
        wait_for(
            lambda: cluster_totals(port)["requests"] >= args.requests,
            10,
            "aggregated request counter to catch up",
        )
        before = cluster_totals(port)

        victim_id, victim_pid = sorted(workers.items())[0]
        os.kill(victim_pid, signal.SIGKILL)
        print(f"killed worker {victim_id} (pid {victim_pid})")

        respawned = wait_for(
            lambda: (
                (current := alive_workers(port)).get(victim_id)
                not in (None, victim_pid)
                and len(current) == 2
                and current
            ),
            30,
            "worker respawn",
        )
        print(f"respawned: {respawned}")

        for i in range(20):
            get(port, f"/v1/eap?from={i % n}&to={(i + 3) % n}&t=30000")
        after = cluster_totals(port)
        regressions = {
            field: (before[field], after[field])
            for field in before
            if after[field] < before[field]
        }
        assert not regressions, f"counters moved backwards: {regressions}"
        print("aggregated metrics stayed monotonic across the kill")
        print("prefork smoke OK")
    finally:
        shutdown(server)

    cache_live_smoke(args.dataset)
    print("serving smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
