"""End-to-end federation smoke: the CI counterpart of
``tests/test_federation_serving.py``, but through the real CLI.

Runs the whole federated pipeline the way an operator would:

1. ``repro-ttl partition <dataset> --from-names`` — the region split;
2. ``repro-ttl build <dataset> <dir> --from-names --jobs 2`` — region
   shards built in parallel plus the border mini-index and the
   ``TTLFED01`` manifest;
3. ``repro-ttl serve <dataset> --federation <dir>`` as a subprocess;
4. asserts ``/v1/healthz`` reports every region shard alive with its
   port, pid, border count, and the manifest epoch;
5. replays a deterministic workload and checks *both* routing
   classes against a monolithic in-process planner: intra-region
   answers are proxied (``meta.worker`` = region id — never the
   fan-out path) and cross-region answers are stitched
   (``meta.worker`` = -1), all byte-equal on the journey corners;
6. asserts ``/v1/batch`` one-to-many matches the monolithic
   one-to-many, then SIGTERM-drains the server and requires the
   clean-shutdown line.

Exit code 0 on success; any assertion failure or timeout is fatal.

Usage::

    PYTHONPATH=src python scripts/federation_smoke.py /tmp/fed \
        --dataset TwinCities --queries 30
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request

SERVE_LINE = re.compile(r"http://127\.0\.0\.1:(\d+)")


def get(port, path):
    request = urllib.request.Request(f"http://127.0.0.1:{port}{path}")
    with urllib.request.urlopen(request, timeout=15) as response:
        return json.loads(response.read())


def post(port, path, body):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=15) as response:
        return json.loads(response.read())


def run_cli(*argv):
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        raise SystemExit(
            f"repro-ttl {' '.join(argv)} failed "
            f"({result.returncode}):\n{result.stdout}{result.stderr}"
        )
    return result.stdout


def wait_port(proc) -> int:
    """Read the serve banner until the router port appears."""
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit("serve exited before printing its banner")
        sys.stdout.write(line)
        match = SERVE_LINE.search(line)
        if match:
            return int(match.group(1))
    raise SystemExit("timed out waiting for the serve banner")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("directory", help="federation output directory")
    parser.add_argument("--dataset", default="TwinCities")
    parser.add_argument("--queries", type=int, default=30)
    args = parser.parse_args()

    # 1+2: partition (printed for the log), then the federated build.
    print(run_cli("partition", args.dataset, "--from-names"), end="")
    print(
        run_cli(
            "build",
            args.dataset,
            args.directory,
            "--from-names",
            "--jobs",
            "2",
        ),
        end="",
    )
    manifest_path = os.path.join(args.directory, "federation.json")
    with open(manifest_path) as fh:
        manifest = json.load(fh)
    num_regions = manifest["num_regions"]
    region_of = manifest["region_of"]

    # The monolithic oracle, in-process.
    from repro.core import TTLPlanner
    from repro.datasets import QueryWorkload, load_dataset

    graph = load_dataset(args.dataset)
    mono = TTLPlanner(graph)
    mono.preprocess()

    # 3: the federated server through the CLI.
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            args.dataset,
            "--federation",
            args.directory,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        port = wait_port(proc)

        # 4: shard payload.
        health = get(port, "/v1/healthz")["data"]
        assert health["planner"] == "TTL-fed", health
        assert health["federation"] is True, health
        assert health["ready"] is True, health
        assert health["epoch"] == manifest["epoch"], health
        shards = health["shards"]
        assert len(shards) == num_regions, shards
        for shard in shards:
            assert shard["alive"] and shard["pid"] > 0, shard
            assert shard["port"] and shard["borders"] > 0, shard
        print(
            f"healthz: {num_regions} region shards alive, epoch "
            f"{health['epoch']}"
        )

        # 5: equivalence over both routing classes.
        intra = cross = 0
        for q in QueryWorkload(graph, seed=17).generate(args.queries):
            body = get(
                port,
                f"/v1/eap?from={q.source}&to={q.destination}"
                f"&t={q.t_start}",
            )
            same = region_of[q.source] == region_of[q.destination]
            if same:
                assert body["meta"]["worker"] == region_of[q.source], body
                intra += 1
            else:
                assert body["meta"]["worker"] == -1, body
                cross += 1
            expected = mono.earliest_arrival(
                q.source, q.destination, q.t_start
            )
            journey = body["data"]["journey"]
            assert (journey is None) == (expected is None), (q, journey)
            if journey is not None:
                assert journey["arr"] == expected.arr, (q, journey)
        assert intra and cross, (intra, cross)
        print(
            f"equivalence: {intra} intra (proxied) + {cross} cross "
            "(stitched) EAP answers match the monolith"
        )

        # 6: batch, then drain.
        from repro.core import build_index
        from repro.core.batch import batch_plan
        from repro.query import BatchQuery

        index = build_index(graph)
        targets = list(range(graph.n))
        body = post(
            port,
            "/v1/batch",
            {"kind": "one_to_many", "source": 0, "targets": targets,
             "t": 30000},
        )
        [monolith] = batch_plan(
            index,
            [
                BatchQuery(
                    kind="one_to_many",
                    sources=(0,),
                    targets=tuple(targets),
                    t=30000,
                )
            ],
        )
        expected = {str(k): v for k, v in monolith.items()}
        assert body["data"]["arrivals"] == expected
        print("batch: federated one-to-many matches the monolith")

        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
        sys.stdout.write(out)
        assert "drained" in out, out
        assert proc.returncode == 0, proc.returncode
        print("federation smoke passed")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


if __name__ == "__main__":
    raise SystemExit(main())
