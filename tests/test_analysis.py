"""Tests for the analysis subpackage."""

import pytest

from repro.analysis import (
    hub_report,
    label_distribution,
    reachability_report,
    temporal_components,
)
from repro.core.build import build_index
from repro.graph.builders import GraphBuilder, graph_from_connections


class TestLabelDistribution:
    def test_counts_add_up(self, route_graph):
        index = build_index(route_graph)
        dist = label_distribution(index)
        assert dist.total_labels == index.num_labels
        assert dist.mean == pytest.approx(
            index.num_labels / route_graph.n
        )
        assert sum(count for _, count in dist.histogram) == route_graph.n
        assert dist.maximum >= dist.p90 >= dist.median >= 0

    def test_render(self, route_graph):
        index = build_index(route_graph)
        text = label_distribution(index).render()
        assert "labels total" in text
        assert "<=" in text

    def test_empty_index(self):
        from repro.graph.timetable import TimetableGraph

        dist = label_distribution(build_index(TimetableGraph(0, [])))
        assert dist.total_labels == 0


class TestHubReport:
    def test_top_hub_is_high_rank(self, route_graph):
        index = build_index(route_graph)
        report = hub_report(index, top=5)
        if not report.top_hubs:
            pytest.skip("no labels")
        counts = [count for _, _, count in report.top_hubs]
        assert counts == sorted(counts, reverse=True)
        assert 0.0 <= report.top_decile_share <= 1.0

    def test_render_uses_names(self, route_graph):
        index = build_index(route_graph)
        text = hub_report(index).render(route_graph)
        assert "labels" in text


class TestTransferHistogram:
    def test_counts_match_workload(self, route_graph):
        from repro.analysis import transfer_histogram
        from repro.core import TTLPlanner
        from repro.datasets import QueryWorkload

        planner = TTLPlanner(route_graph)
        queries = QueryWorkload(route_graph, seed=2).generate(60)
        histogram = transfer_histogram(planner, queries)
        answered = sum(
            1
            for q in queries
            if planner.shortest_duration(
                q.source, q.destination, q.t_start, q.t_end
            )
            is not None
        )
        assert sum(histogram.values()) == answered
        assert all(k >= 0 for k in histogram)

    def test_direct_only_network(self):
        from repro.analysis import transfer_histogram
        from repro.core import TTLPlanner
        from repro.datasets.queries import Query
        from repro.graph.builders import GraphBuilder

        builder = GraphBuilder()
        builder.add_stations(2)
        route = builder.add_route([0, 1])
        builder.add_trip_departures(route, 10, [10])
        graph = builder.build()
        planner = TTLPlanner(graph)
        histogram = transfer_histogram(
            planner, [Query(0, 1, 0, 100)]
        )
        assert histogram == {0: 1}


class TestTemporalComponents:
    def test_single_cycle(self):
        graph = graph_from_connections(
            [(0, 1, 0, 1), (1, 2, 2, 3), (2, 0, 4, 5)]
        )
        components = temporal_components(graph)
        assert components == [[0, 1, 2]]

    def test_one_way_chain_is_singletons(self):
        graph = graph_from_connections([(0, 1, 0, 1), (1, 2, 2, 3)])
        components = temporal_components(graph)
        assert sorted(map(tuple, components)) == [(0,), (1,), (2,)]

    def test_two_islands(self):
        graph = graph_from_connections(
            [(0, 1, 0, 1), (1, 0, 2, 3), (2, 3, 0, 1), (3, 2, 2, 3)]
        )
        components = temporal_components(graph)
        assert sorted(map(tuple, components)) == [(0, 1), (2, 3)]

    def test_bidirectional_route_graph_one_component(self):
        builder = GraphBuilder()
        builder.add_stations(5)
        fwd = builder.add_route([0, 1, 2, 3, 4])
        rev = builder.add_route([4, 3, 2, 1, 0])
        builder.add_trip_departures(fwd, 0, [10] * 4)
        builder.add_trip_departures(rev, 100, [10] * 4)
        graph = builder.build()
        assert len(temporal_components(graph)) == 1


class TestReachabilityReport:
    def test_fractions_in_range(self, route_graph):
        report = reachability_report(route_graph, probes=20)
        assert 0.0 <= report.min_reachable_fraction <= 1.0
        assert (
            report.min_reachable_fraction
            <= report.mean_reachable_fraction
            <= 1.0
        )
        assert "reachability" in report.render()

    def test_empty_graph(self):
        from repro.graph.timetable import TimetableGraph

        report = reachability_report(TimetableGraph(0, []))
        assert report.probes == 0

    def test_full_reachability_on_dense_loop(self):
        builder = GraphBuilder()
        builder.add_stations(4)
        loopf = builder.add_route([0, 1, 2, 3])
        loopb = builder.add_route([3, 2, 1, 0])
        for start in range(0, 500, 20):
            builder.add_trip_departures(loopf, start, [5, 5, 5])
            builder.add_trip_departures(loopb, start + 3, [5, 5, 5])
        graph = builder.build()
        report = reachability_report(graph, probes=30)
        assert report.largest_component_fraction == 1.0
        assert report.mean_reachable_fraction > 0.9


class TestComparePlanners:
    def test_exact_planners_agree(self, route_graph):
        from repro.analysis import compare_planners
        from repro.algorithms.temporal_dijkstra import DijkstraPlanner
        from repro.baselines import CSAPlanner
        from repro.core import TTLPlanner
        from repro.datasets import QueryWorkload

        queries = QueryWorkload(route_graph, seed=9).generate(25)
        report = compare_planners(
            [DijkstraPlanner(route_graph), CSAPlanner(route_graph),
             TTLPlanner(route_graph)],
            queries,
        )
        assert report.agree
        assert report.queries_checked == 25 * 3 * 2
        assert "AGREE" in report.summary()

    def test_detects_broken_planner(self, route_graph):
        from repro.analysis import compare_planners
        from repro.algorithms.temporal_dijkstra import DijkstraPlanner
        from repro.datasets import QueryWorkload

        class LyingPlanner(DijkstraPlanner):
            name = "Liar"

            def earliest_arrival(self, source, destination, t):
                journey = super().earliest_arrival(source, destination, t)
                if journey is not None:
                    journey.arr += 1  # off by one
                return journey

        queries = QueryWorkload(route_graph, seed=9).generate(25)
        report = compare_planners(
            [DijkstraPlanner(route_graph), LyingPlanner(route_graph)],
            queries,
            kinds=("eap",),
        )
        # Agreement only if no query was answerable at all.
        answerable = any(
            DijkstraPlanner(route_graph).earliest_arrival(
                q.source, q.destination, q.t_start
            )
            for q in queries
        )
        if answerable:
            assert not report.agree
            assert "DISAGREE" in report.summary()
            assert report.disagreements[0].planner == "Liar"

    def test_requires_a_planner(self):
        from repro.analysis import compare_planners

        with pytest.raises(ValueError):
            compare_planners([], [])
