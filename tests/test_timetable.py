"""Unit tests for the timetable graph."""

import pytest

from repro.errors import (
    UnknownRouteError,
    UnknownStationError,
    UnknownTripError,
    ValidationError,
)
from repro.graph.builders import GraphBuilder, graph_from_connections
from repro.graph.connection import Connection
from repro.graph.timetable import TimetableGraph


@pytest.fixture
def small_graph():
    return graph_from_connections(
        [
            (0, 1, 10, 20),
            (0, 1, 30, 45),
            (1, 2, 25, 40),
            (2, 0, 50, 70),
            (0, 2, 5, 60),
        ]
    )


class TestConstruction:
    def test_counts(self, small_graph):
        assert small_graph.n == 3
        assert small_graph.m == 5

    def test_out_adjacency_sorted_by_departure(self, small_graph):
        deps = [c.dep for c in small_graph.out[0]]
        assert deps == sorted(deps)

    def test_in_adjacency_sorted_by_arrival(self, small_graph):
        arrs = [c.arr for c in small_graph.inc[1]]
        assert arrs == sorted(arrs)

    def test_key_arrays_parallel(self, small_graph):
        for station in range(small_graph.n):
            assert small_graph.out_deps[station] == [
                c.dep for c in small_graph.out[station]
            ]
            assert small_graph.inc_arrs[station] == [
                c.arr for c in small_graph.inc[station]
            ]

    def test_degrees(self, small_graph):
        assert small_graph.out_degree(0) == 3
        assert small_graph.in_degree(2) == 2

    def test_departure_times_distinct_sorted(self):
        graph = graph_from_connections(
            [(0, 1, 10, 20), (0, 1, 10, 25), (0, 1, 5, 9)]
        )
        assert graph.departure_times(0) == [5, 10]

    def test_arrival_times(self, small_graph):
        assert small_graph.arrival_times(1) == [20, 45]


class TestSearchSupport:
    def test_first_boardable(self, small_graph):
        # out[0] departures: 5, 10, 30
        assert small_graph.first_boardable(0, 0) == 0
        assert small_graph.first_boardable(0, 6) == 1
        assert small_graph.first_boardable(0, 10) == 1
        assert small_graph.first_boardable(0, 31) == 3

    def test_last_alightable(self, small_graph):
        # inc[1] arrivals: 20, 45
        assert small_graph.last_alightable(1, 19) == 0
        assert small_graph.last_alightable(1, 20) == 1
        assert small_graph.last_alightable(1, 100) == 2


class TestValidation:
    def test_off_graph_connection_rejected(self):
        with pytest.raises(ValidationError, match="off the graph"):
            TimetableGraph(2, [Connection(0, 5, 1, 2, 0)])

    def test_self_loop_rejected(self):
        with pytest.raises(ValidationError, match="self-loop"):
            TimetableGraph(2, [Connection(1, 1, 1, 2, 0)])

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValidationError, match="positive time"):
            TimetableGraph(2, [Connection(0, 1, 5, 5, 0)])

    def test_name_count_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="names"):
            TimetableGraph(2, [], station_names=["only-one"])

    def test_route_with_unknown_station_rejected(self):
        builder = GraphBuilder()
        builder.add_stations(2)
        builder.add_route([0, 1])
        graph = builder.build()
        graph.routes[0].stops = (0, 99)
        with pytest.raises(ValidationError, match="unknown station"):
            graph.validate()


class TestLookupErrors:
    def test_unknown_station(self, small_graph):
        with pytest.raises(UnknownStationError):
            small_graph.out_degree(99)
        with pytest.raises(UnknownStationError):
            small_graph.station_name(-1)

    def test_unknown_trip(self, small_graph):
        with pytest.raises(UnknownTripError):
            small_graph.route_of_trip(10**9)

    def test_unknown_route(self, small_graph):
        with pytest.raises(UnknownRouteError):
            small_graph.route(10**9)


class TestStats:
    def test_stats_row(self, small_graph):
        stats = small_graph.stats()
        assert stats.row() == (3, 5, 5, 5)
        assert stats.min_time == 5
        assert stats.max_time == 70
        assert stats.avg_out_degree == pytest.approx(5 / 3)

    def test_empty_graph_stats(self):
        graph = TimetableGraph(0, [])
        stats = graph.stats()
        assert stats.num_connections == 0
        assert stats.avg_out_degree == 0.0

    def test_station_names(self):
        builder = GraphBuilder()
        builder.add_station("alpha")
        builder.add_station("beta")
        graph = builder.build()
        assert graph.station_name(0) == "alpha"
        assert graph.station_name(1) == "beta"

    def test_station_name_fallback(self, small_graph):
        # graph_from_connections auto-names stations s0, s1, ...
        assert small_graph.station_name(0) == "s0"
