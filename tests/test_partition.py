"""Region partitioning: validation, determinism, name maps, digests.

The federation's correctness argument starts here — every downstream
artifact (shards, border index, manifest epoch) is keyed off the
partition, so the partitioner must be deterministic under seed and the
explicit name-map path must recover exactly the regions the
multi-region generator laid down.
"""

import random

import pytest

from repro.datasets import load_dataset
from repro.errors import FederationError
from repro.federation import (
    Partition,
    partition_from_regions,
    partition_graph,
    region_map_from_names,
)
from tests.conftest import make_random_route_graph


class TestPartitionValidation:
    def test_empty_region_rejected(self):
        with pytest.raises(FederationError, match="empty"):
            Partition(region_of=(0, 0, 0), num_regions=2)

    def test_out_of_range_region_rejected(self):
        with pytest.raises(FederationError):
            Partition(region_of=(0, 1, 5), num_regions=2)

    def test_zero_regions_rejected(self):
        with pytest.raises(FederationError):
            Partition(region_of=(), num_regions=0)

    def test_empty_map_rejected(self):
        with pytest.raises(FederationError, match="empty"):
            partition_from_regions([])

    def test_regions_and_sizes(self):
        p = partition_from_regions([1, 0, 1, 0, 1])
        assert p.num_regions == 2
        assert p.regions() == [[1, 3], [0, 2, 4]]
        assert p.sizes() == [2, 3]
        assert p.n == 5

    def test_graph_mismatch_rejected(self):
        graph = make_random_route_graph(random.Random(1), 10, 5)
        p = partition_from_regions([0, 1])
        with pytest.raises(FederationError, match="10"):
            p.cut_size(graph)


class TestPartitionDigest:
    def test_digest_is_stable(self):
        a = partition_from_regions([0, 1, 0, 1])
        b = partition_from_regions([0, 1, 0, 1])
        assert a.digest() == b.digest()

    def test_digest_tracks_assignment(self):
        a = partition_from_regions([0, 1, 0, 1])
        b = partition_from_regions([0, 1, 1, 0])
        assert a.digest() != b.digest()


class TestPartitionGraph:
    def test_deterministic_under_seed(self):
        graph = load_dataset("Austin")
        a = partition_graph(graph, 2, seed=7)
        b = partition_graph(graph, 2, seed=7)
        assert a.region_of == b.region_of
        assert a.digest() == b.digest()

    def test_covers_every_station_and_balances(self):
        graph = load_dataset("Austin")
        p = partition_graph(graph, 3, seed=0)
        assert p.n == graph.n
        sizes = p.sizes()
        assert all(size >= 1 for size in sizes)
        # The growth cap bounds any region near tolerance * n/k.
        assert max(sizes) <= int(1.3 * graph.n / 3) + 2

    def test_single_region_is_trivial(self):
        graph = make_random_route_graph(random.Random(2), 12, 6)
        p = partition_graph(graph, 1, seed=0)
        assert p.num_regions == 1
        assert set(p.region_of) == {0}
        assert p.cut_size(graph) == 0
        assert p.border_stops(graph) == []

    def test_too_many_regions_rejected(self):
        graph = make_random_route_graph(random.Random(3), 6, 4)
        with pytest.raises(FederationError):
            partition_graph(graph, 7, seed=0)

    def test_border_stops_are_cut_endpoints(self):
        graph = load_dataset("Austin")
        p = partition_graph(graph, 2, seed=1)
        border = set(p.border_stops(graph))
        endpoints = set()
        for c in p.cut_connections(graph):
            assert p.region_of[c.u] != p.region_of[c.v]
            endpoints.add(c.u)
            endpoints.add(c.v)
        assert border == endpoints
        assert border  # a connected network always has a cut


class TestRegionMapFromNames:
    def test_multi_region_dataset_tags_recovered(self):
        graph = load_dataset("TwinCities")
        p = region_map_from_names(graph)
        assert p is not None
        assert p.num_regions == 2
        assert p.n == graph.n
        # Every station's tag agrees with its assigned region.
        for station in range(graph.n):
            assert f"/r{p.region_of[station]}/" in graph.station_name(
                station
            )

    def test_three_region_dataset(self):
        graph = load_dataset("RheinRuhr")
        p = region_map_from_names(graph)
        assert p is not None
        assert p.num_regions == 3
        assert sum(p.sizes()) == graph.n

    def test_country_city_tags_recovered(self):
        graph = load_dataset("Sweden")
        p = region_map_from_names(graph)
        assert p is not None
        assert p.num_regions >= 2

    def test_untagged_dataset_returns_none(self):
        graph = load_dataset("Austin")
        assert region_map_from_names(graph) is None

    def test_name_map_cut_beats_nothing(self):
        # The intended split keeps the cut to the sparse intercity
        # expresses: far below the all-connections total.
        graph = load_dataset("TwinCities")
        p = region_map_from_names(graph)
        assert p.cut_size(graph) < graph.m // 4
