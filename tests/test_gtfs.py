"""Tests for the CSV (GTFS-lite) persistence layer."""

import pytest

from repro.errors import SerializationError
from repro.graph.gtfs import load_graph_csv, save_graph_csv


class TestRoundtrip:
    def test_connections_preserved(self, line_graph, tmp_path):
        save_graph_csv(line_graph, tmp_path)
        loaded = load_graph_csv(tmp_path)
        assert loaded.n == line_graph.n
        assert {tuple(c) for c in loaded.connections} == {
            tuple(c) for c in line_graph.connections
        }

    def test_routes_preserved(self, line_graph, tmp_path):
        save_graph_csv(line_graph, tmp_path)
        loaded = load_graph_csv(tmp_path)
        assert len(loaded.routes) == len(line_graph.routes)
        for route_id, route in line_graph.routes.items():
            assert loaded.routes[route_id].stops == route.stops
            assert loaded.routes[route_id].name == route.name

    def test_station_names_preserved(self, line_graph, tmp_path):
        save_graph_csv(line_graph, tmp_path)
        loaded = load_graph_csv(tmp_path)
        for s in range(line_graph.n):
            assert loaded.station_name(s) == line_graph.station_name(s)

    def test_random_route_graph_roundtrip(self, route_graph, tmp_path):
        save_graph_csv(route_graph, tmp_path)
        loaded = load_graph_csv(tmp_path)
        assert {tuple(c) for c in loaded.connections} == {
            tuple(c) for c in route_graph.connections
        }

    def test_queries_agree_after_roundtrip(self, line_graph, tmp_path):
        from repro.algorithms.temporal_dijkstra import DijkstraPlanner

        save_graph_csv(line_graph, tmp_path)
        loaded = load_graph_csv(tmp_path)
        a = DijkstraPlanner(line_graph).earliest_arrival(0, 3, 150)
        b = DijkstraPlanner(loaded).earliest_arrival(0, 3, 150)
        assert a is not None and b is not None
        assert a.arr == b.arr


class TestErrors:
    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SerializationError, match="missing"):
            load_graph_csv(tmp_path)

    def test_sparse_station_ids_rejected(self, line_graph, tmp_path):
        save_graph_csv(line_graph, tmp_path)
        stations = (tmp_path / "stations.csv").read_text().splitlines()
        del stations[1]
        (tmp_path / "stations.csv").write_text("\n".join(stations) + "\n")
        with pytest.raises(SerializationError, match="densely"):
            load_graph_csv(tmp_path)

    def test_trip_referencing_unknown_route_rejected(
        self, line_graph, tmp_path
    ):
        save_graph_csv(line_graph, tmp_path)
        path = tmp_path / "stop_times.csv"
        lines = path.read_text().splitlines()
        parts = lines[1].split(",")
        parts[1] = "999"
        # Rewrite every row of that trip to keep it single-route.
        trip_id = parts[0]
        fixed = [lines[0]]
        for line in lines[1:]:
            cells = line.split(",")
            if cells[0] == trip_id:
                cells[1] = "999"
            fixed.append(",".join(cells))
        path.write_text("\n".join(fixed) + "\n")
        with pytest.raises(SerializationError, match="unknown route"):
            load_graph_csv(tmp_path)
