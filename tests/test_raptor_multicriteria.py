"""Tests for RAPTOR's multicriteria (vehicles, arrival) profiles."""

import random

import pytest

from repro.baselines.raptor import RaptorPlanner
from repro.timeutil import INF
from tests.conftest import make_random_connection_graph, make_random_route_graph


def oracle_rounds(graph, source, t, max_rounds):
    """Per-round DP: tau[k][v] = earliest arrival with <= k vehicles.

    Scans every trip once per round — obviously correct, no FIFO
    assumptions, used as the reference for RAPTOR's round semantics.
    """
    n = graph.n
    tau = [[INF] * n]
    tau[0][source] = t
    for _ in range(max_rounds):
        cur = list(tau[-1])
        for route in graph.routes.values():
            for trip in route.trips:
                onboard = False
                for i, stop in enumerate(route.stops):
                    if onboard:
                        arr = trip.stop_times[i].arr
                        if arr < cur[stop]:
                            cur[stop] = arr
                    if (
                        i < len(route.stops) - 1
                        and tau[-1][stop] <= trip.stop_times[i].dep
                    ):
                        onboard = True
        tau.append(cur)
        if cur == tau[-2]:
            break
    return tau


def oracle_pareto(graph, u, v, t, max_rounds):
    tau = oracle_rounds(graph, u, t, max_rounds)
    result = []
    previous = INF
    for k in range(1, len(tau)):
        arr = tau[k][v]
        if arr < previous:
            result.append((k, arr))
            previous = arr
    return result


class TestAgainstRoundDP:
    @pytest.mark.parametrize("seed", [3, 4])
    def test_pareto_matches(self, seed):
        rng = random.Random(seed)
        for trial in range(8):
            if trial % 2:
                graph = make_random_route_graph(rng, 9, 6)
            else:
                graph = make_random_connection_graph(
                    rng, rng.randrange(4, 9), rng.randrange(5, 35)
                )
            planner = RaptorPlanner(graph)
            planner.preprocess()
            for _ in range(25):
                u, v = rng.randrange(graph.n), rng.randrange(graph.n)
                if u == v:
                    continue
                t = rng.randrange(0, 220)
                rounds = graph.n + 2
                assert planner.pareto_arrivals(
                    u, v, t, max_rounds=rounds
                ) == oracle_pareto(graph, u, v, t, rounds)


class TestParetoShape:
    def test_strictly_improving(self, route_graph, rng):
        planner = RaptorPlanner(route_graph)
        planner.preprocess()
        for _ in range(40):
            u, v = rng.randrange(route_graph.n), rng.randrange(route_graph.n)
            if u == v:
                continue
            pairs = planner.pareto_arrivals(u, v, rng.randrange(0, 250))
            for (k1, a1), (k2, a2) in zip(pairs, pairs[1:]):
                assert k1 < k2 and a1 > a2

    def test_last_pair_is_overall_eap(self, route_graph, rng):
        planner = RaptorPlanner(route_graph)
        planner.preprocess()
        for _ in range(40):
            u, v = rng.randrange(route_graph.n), rng.randrange(route_graph.n)
            if u == v:
                continue
            t = rng.randrange(0, 250)
            pairs = planner.pareto_arrivals(u, v, t)
            eap = planner.earliest_arrival(u, v, t)
            if not pairs:
                assert eap is None
            else:
                assert eap is not None
                assert pairs[-1][1] == eap.arr

    def test_transfer_vs_express_tradeoff(self):
        """A slow direct bus vs a faster two-leg metro connection must
        yield two Pareto pairs."""
        from repro.graph.builders import GraphBuilder

        builder = GraphBuilder()
        builder.add_stations(3)
        direct = builder.add_route([0, 2])
        builder.add_trip_departures(direct, 10, [100])  # arrive 110
        leg1 = builder.add_route([0, 1])
        builder.add_trip_departures(leg1, 10, [20])  # arrive 30
        leg2 = builder.add_route([1, 2])
        builder.add_trip_departures(leg2, 40, [20])  # arrive 60
        graph = builder.build()
        planner = RaptorPlanner(graph)
        pairs = planner.pareto_arrivals(0, 2, 0)
        assert pairs == [(1, 110), (2, 60)]

    def test_same_station(self, route_graph):
        planner = RaptorPlanner(route_graph)
        assert planner.pareto_arrivals(1, 1, 50) == [(0, 50)]
