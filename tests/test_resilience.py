"""Unit tests for the resilience primitives (no HTTP involved)."""

import threading

import pytest

from repro.errors import DeadlineExceeded, FaultInjected, Overloaded
from repro.resilience import (
    AdmissionController,
    CircuitBreaker,
    CLOSED,
    Deadline,
    FaultInjector,
    FaultPlan,
    FaultRule,
    HALF_OPEN,
    OPEN,
    ResilienceConfig,
    ResilientExecutor,
    active_deadline,
    check_deadline,
    deadline_scope,
)


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_fresh_deadline_passes_check(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        deadline.check()
        assert not deadline.expired()
        assert deadline.remaining() == pytest.approx(1.0)

    def test_expired_deadline_raises(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(1.0)
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded):
            deadline.check()

    def test_after_ms(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(250, clock=clock)
        assert deadline.remaining() == pytest.approx(0.25)

    def test_check_deadline_noop_without_installed_deadline(self):
        assert active_deadline() is None
        check_deadline()  # must not raise

    def test_deadline_scope_installs_and_restores(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        with deadline_scope(deadline):
            assert active_deadline() is deadline
            check_deadline()
            clock.advance(2.0)
            with pytest.raises(DeadlineExceeded):
                check_deadline()
        assert active_deadline() is None
        check_deadline()

    def test_deadline_scope_none_is_noop(self):
        with deadline_scope(None):
            assert active_deadline() is None

    def test_scope_is_per_thread(self):
        clock = FakeClock()
        expired = Deadline(0.0, clock=clock)
        clock.advance(1.0)
        seen = {}

        def other_thread():
            seen["deadline"] = active_deadline()

        with deadline_scope(expired):
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        assert seen["deadline"] is None


class TestAdmission:
    def test_admits_up_to_limit_then_sheds(self):
        gate = AdmissionController(max_inflight=2, clock=FakeClock())
        gate.acquire()
        gate.acquire()
        with pytest.raises(Overloaded) as err:
            gate.acquire()
        assert err.value.retry_after == 1.0
        gate.release()
        gate.acquire()  # slot freed, admitted again
        assert gate.inflight == 2

    def test_admit_context_manager_releases_on_error(self):
        gate = AdmissionController(max_inflight=1, clock=FakeClock())
        with pytest.raises(RuntimeError):
            with gate.admit():
                assert gate.inflight == 1
                raise RuntimeError("boom")
        assert gate.inflight == 0
        with gate.admit():
            pass

    def test_shedding_signal_with_grace_window(self):
        clock = FakeClock()
        gate = AdmissionController(
            max_inflight=1, shed_grace_s=5.0, clock=clock
        )
        assert not gate.shedding
        gate.acquire()
        assert gate.shedding  # gate full
        with pytest.raises(Overloaded):
            gate.acquire()
        gate.release()
        assert gate.shedding  # inside the grace window
        clock.advance(5.0)
        assert not gate.shedding

    def test_snapshot_counters(self):
        gate = AdmissionController(max_inflight=1, clock=FakeClock())
        gate.acquire()
        with pytest.raises(Overloaded):
            gate.acquire()
        snap = gate.snapshot()
        assert snap["admitted"] == 1
        assert snap["shed"] == 1
        assert snap["inflight"] == 1
        assert snap["peak_inflight"] == 1

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)


def make_breaker(clock, **kwargs):
    defaults = dict(
        window=8,
        min_samples=4,
        failure_threshold=0.5,
        slow_threshold_s=0.1,
        cooldown_s=10.0,
        clock=clock,
    )
    defaults.update(kwargs)
    return CircuitBreaker(**defaults)


class TestCircuitBreaker:
    def test_stays_closed_on_fast_successes(self):
        breaker = make_breaker(FakeClock())
        for _ in range(20):
            assert breaker.allow_exact()
            breaker.record(latency_s=0.01)
        assert breaker.state == CLOSED

    def test_trips_open_on_failure_rate(self):
        breaker = make_breaker(FakeClock())
        for _ in range(4):
            breaker.record(failure=True)
        assert breaker.state == OPEN
        assert not breaker.allow_exact()

    def test_slow_successes_count_as_failures(self):
        breaker = make_breaker(FakeClock())
        for _ in range(4):
            breaker.record(latency_s=0.5)  # above slow_threshold_s
        assert breaker.state == OPEN

    def test_below_min_samples_never_trips(self):
        breaker = make_breaker(FakeClock())
        for _ in range(3):
            breaker.record(failure=True)
        assert breaker.state == CLOSED

    def test_half_open_probe_recovers(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record(failure=True)
        assert not breaker.allow_exact()
        clock.advance(10.0)
        assert breaker.allow_exact()  # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow_exact()  # only one probe at a time
        breaker.record(latency_s=0.01)
        assert breaker.state == CLOSED
        assert breaker.allow_exact()

    def test_failed_probe_reopens_and_restarts_cooldown(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record(failure=True)
        clock.advance(10.0)
        assert breaker.allow_exact()
        breaker.record(failure=True)
        assert breaker.state == OPEN
        assert not breaker.allow_exact()  # cooldown restarted
        clock.advance(10.0)
        assert breaker.allow_exact()
        breaker.record(latency_s=0.01)
        assert breaker.state == CLOSED

    def test_snapshot_fields(self):
        breaker = make_breaker(FakeClock())
        breaker.record(latency_s=0.01)
        snap = breaker.snapshot()
        assert snap["state"] == CLOSED
        assert snap["successes"] == 1
        assert snap["window_samples"] == 1


class TestFaultPlan:
    def test_roundtrip_json(self):
        plan = FaultPlan(
            rules=[
                FaultRule(site="planner.query", kind="latency", seconds=0.2,
                          times=3),
                FaultRule(site="clock", kind="clock_skew", seconds=10.0,
                          probability=0.5),
            ],
            seed=7,
        )
        restored = FaultPlan.from_json(plan.to_json())
        assert restored.seed == 7
        assert [r.to_dict() for r in restored.rules] == [
            r.to_dict() for r in plan.rules
        ]

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultRule(site="x", kind="meteor")

    def test_rejects_bad_json(self):
        with pytest.raises(ValueError):
            FaultPlan.from_json("{not json")
        with pytest.raises(ValueError):
            FaultPlan.from_json("[1, 2]")
        with pytest.raises(ValueError):
            FaultPlan.from_json('{"rules": [{"site": "x"}]}')

    def test_latency_rule_sleeps_and_exhausts(self):
        sleeps = []
        plan = FaultPlan(
            rules=[FaultRule(site="s", kind="latency", seconds=0.2, times=2)]
        )
        injector = FaultInjector(plan, sleep=sleeps.append)
        injector.fire("s")
        injector.fire("s")
        injector.fire("s")  # exhausted: no-op
        injector.fire("other")  # different site: no-op
        assert sleeps == [0.2, 0.2]
        assert injector.snapshot()["fired"] == {"s": 2}

    def test_error_rule_raises(self):
        plan = FaultPlan(
            rules=[FaultRule(site="s", kind="error", times=1,
                             message="kapow")]
        )
        injector = FaultInjector(plan)
        with pytest.raises(FaultInjected, match="kapow"):
            injector.fire("s")
        injector.fire("s")  # exhausted

    def test_clock_skew_consumed_separately(self):
        plan = FaultPlan(
            rules=[FaultRule(site="clock", kind="clock_skew", seconds=10.0,
                             times=1)]
        )
        injector = FaultInjector(plan)
        injector.fire("clock")  # fire() ignores clock_skew rules
        assert injector.clock_skew() == 10.0
        assert injector.clock_skew() == 0.0  # consumed

    def test_probabilistic_rule_is_seed_deterministic(self):
        def fired_count(seed):
            plan = FaultPlan(
                rules=[FaultRule(site="s", kind="latency", seconds=0.01,
                                 probability=0.5)],
                seed=seed,
            )
            injector = FaultInjector(plan, sleep=lambda _s: None)
            for _ in range(50):
                injector.fire("s")
            return injector.snapshot()["fired"].get("s", 0)

        assert fired_count(3) == fired_count(3)
        assert 0 < fired_count(3) < 50


class TestExecutor:
    def test_plain_call_passes_through(self):
        executor = ResilientExecutor(ResilienceConfig())
        result, degraded = executor.run(lambda: 42)
        assert result == 42
        assert degraded is False

    def test_disabled_config_bypasses_pipeline(self):
        executor = ResilientExecutor(ResilienceConfig(enabled=False))
        result, degraded = executor.run(lambda: "ok")
        assert result == "ok"
        assert degraded is False
        assert executor.admission.snapshot()["admitted"] == 0

    def test_lock_is_held_during_call(self):
        executor = ResilientExecutor(ResilienceConfig())
        lock = threading.RLock()

        def probe():
            # RLock can't tell us the owner; use a non-blocking acquire
            # from another thread to prove the call holds it.
            grabbed = {}

            def try_grab():
                grabbed["ok"] = lock.acquire(blocking=False)
                if grabbed["ok"]:
                    lock.release()

            t = threading.Thread(target=try_grab)
            t.start()
            t.join()
            return grabbed["ok"]

        result, _ = executor.run(probe, lock=lock)
        assert result is False  # another thread couldn't take the lock

    def test_injected_latency_plus_deadline_maps_to_deadline_exceeded(self):
        plan = FaultPlan(
            rules=[FaultRule(site="planner.query", kind="latency",
                             seconds=0.05, times=1)]
        )
        executor = ResilientExecutor(
            ResilienceConfig(deadline_ms=10.0),
            injector=FaultInjector(plan),
        )
        with pytest.raises(DeadlineExceeded):
            executor.run(lambda: 1)
        # Fault exhausted: next call is healthy.
        assert executor.run(lambda: 1) == (1, False)
        assert executor.snapshot()["deadline_exceeded"] == 1

    def test_clock_skew_shrinks_budget(self):
        plan = FaultPlan(
            rules=[FaultRule(site="clock", kind="clock_skew", seconds=10.0,
                             times=1)]
        )
        executor = ResilientExecutor(
            ResilienceConfig(deadline_ms=50.0),
            injector=FaultInjector(plan),
        )
        with pytest.raises(DeadlineExceeded):
            executor.run(lambda: 1)
        assert executor.run(lambda: 1) == (1, False)

    def test_breaker_opens_then_degraded_answers(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        executor = ResilientExecutor(ResilienceConfig(), breaker=breaker)
        for _ in range(4):
            executor.run(lambda: "exact", degraded_fn=lambda: "frozen")
            breaker.record(failure=True)  # simulate slowness externally
        result, degraded = executor.run(
            lambda: "exact", degraded_fn=lambda: "frozen"
        )
        assert (result, degraded) == ("frozen", True)
        clock.advance(10.0)
        result, degraded = executor.run(
            lambda: "exact", degraded_fn=lambda: "frozen"
        )
        assert (result, degraded) == ("exact", False)  # successful probe
        assert breaker.state == CLOSED

    def test_injected_error_feeds_breaker_failure(self):
        clock = FakeClock()
        breaker = make_breaker(clock, min_samples=1)
        plan = FaultPlan(
            rules=[FaultRule(site="live.exact", kind="error", times=1)]
        )
        executor = ResilientExecutor(
            ResilienceConfig(), breaker=breaker,
            injector=FaultInjector(plan),
        )
        with pytest.raises(FaultInjected):
            executor.run(lambda: "exact", degraded_fn=lambda: "frozen")
        assert breaker.state == OPEN

    def test_sheds_when_gate_full(self):
        executor = ResilientExecutor(ResilienceConfig(max_inflight=1))
        started = threading.Event()
        finish = threading.Event()

        def slow():
            started.set()
            finish.wait(5)
            return "slow"

        worker = threading.Thread(
            target=lambda: executor.run(slow), daemon=True
        )
        worker.start()
        assert started.wait(5)
        with pytest.raises(Overloaded):
            executor.run(lambda: "fast")
        finish.set()
        worker.join(timeout=5)
        assert executor.run(lambda: "fast") == ("fast", False)
