"""Tests for the hybrid live overlay engine."""

import pytest

from repro.algorithms.temporal_dijkstra import DijkstraPlanner
from repro.errors import LiveEventError, UnknownTripError
from repro.live import (
    EventFeed,
    ExtraTrip,
    LiveOverlayEngine,
    TimedEvent,
    TripCancellation,
    TripDelay,
    replay,
    synthetic_feed,
)


@pytest.fixture
def engine(route_graph):
    eng = LiveOverlayEngine(route_graph)
    eng.preprocess()
    return eng


def assert_matches_oracle(engine, graph, t_lo=0, t_hi=260, step=65):
    """Engine answers must equal temporal Dijkstra on the overlay."""
    oracle = DijkstraPlanner(engine.overlay)
    for u in range(graph.n):
        for v in range(graph.n):
            if u == v:
                continue
            for t in range(t_lo, t_hi, step):
                a = engine.earliest_arrival(u, v, t)
                b = oracle.earliest_arrival(u, v, t)
                assert (a is None) == (b is None), (u, v, t)
                if a is not None:
                    assert a.arr == b.arr, (u, v, t)
                a = engine.latest_departure(u, v, t)
                b = oracle.latest_departure(u, v, t)
                assert (a is None) == (b is None), (u, v, t)
                if a is not None:
                    assert a.dep == b.dep, (u, v, t)
                a = engine.shortest_duration(u, v, t, t + 200)
                b = oracle.shortest_duration(u, v, t, t + 200)
                assert (a is None) == (b is None), (u, v, t)
                if a is not None:
                    assert a.duration == b.duration, (u, v, t)


class TestNoEvents:
    def test_all_queries_fast_path(self, engine, route_graph):
        assert_matches_oracle(engine, route_graph)
        assert engine.stats.fallbacks == 0
        assert engine.stats.fast_path_rate == 1.0

    def test_generation_starts_at_one(self, engine):
        assert engine.generation == 1


class TestWithEvents:
    def test_delays_and_cancellations_exact(self, engine, route_graph):
        trip_ids = sorted(route_graph.trips)
        engine.apply_event(TripDelay(trip_id=trip_ids[0], delay=40))
        engine.apply_event(
            TripDelay(trip_id=trip_ids[1], delay=25, from_stop=1)
        )
        engine.apply_event(TripCancellation(trip_id=trip_ids[2]))
        assert_matches_oracle(engine, route_graph)
        assert engine.stats.queries > 0

    def test_extra_trip_exact(self, engine, route_graph):
        engine.apply_event(
            ExtraTrip(stops=(0, 5, 9), times=((0, 10), (40, 45), (80, 80)))
        )
        assert_matches_oracle(engine, route_graph)

    def test_generation_bumps_on_every_swap(self, engine, route_graph):
        trip_id = sorted(route_graph.trips)[0]
        g0 = engine.generation
        eid = engine.apply_event(TripDelay(trip_id=trip_id, delay=30))
        assert engine.generation == g0 + 1
        engine.clear_event(eid)
        assert engine.generation == g0 + 2

    def test_clear_restores_static_answers(self, engine, route_graph):
        ttl_answers = {}
        for u in range(route_graph.n):
            journey = engine.earliest_arrival(u, (u + 1) % route_graph.n, 0)
            ttl_answers[u] = journey.arr if journey else None
        eid = engine.apply_event(
            TripCancellation(trip_id=sorted(route_graph.trips)[0])
        )
        engine.clear_event(eid)
        assert engine.patch.is_empty()
        for u in range(route_graph.n):
            journey = engine.earliest_arrival(u, (u + 1) % route_graph.n, 0)
            assert (journey.arr if journey else None) == ttl_answers[u]

    def test_unknown_trip_rejected_eagerly(self, engine):
        with pytest.raises(UnknownTripError):
            engine.apply_event(TripCancellation(trip_id=10**9))
        assert engine.events() == []

    def test_clear_unknown_id_rejected(self, engine):
        with pytest.raises(LiveEventError):
            engine.clear_event(424242)

    def test_clear_all(self, engine, route_graph):
        trip_ids = sorted(route_graph.trips)[:3]
        for trip_id in trip_ids:
            engine.apply_event(TripDelay(trip_id=trip_id, delay=10))
        assert engine.clear_all() == 3
        assert engine.events() == []
        assert engine.patch.is_empty()


class TestClock:
    def test_pending_event_invisible_until_apply_at(
        self, engine, route_graph
    ):
        trip_id = sorted(route_graph.trips)[0]
        engine.apply_event(
            TripDelay(trip_id=trip_id, delay=60, apply_at=100,
                      expires_at=200)
        )
        assert engine.patch.is_empty()  # now == 0 < apply_at
        engine.advance_to(150)
        assert not engine.patch.is_empty()
        engine.advance_to(250)
        assert engine.patch.is_empty()
        assert engine.events() == []  # expired events are dropped

    def test_clock_cannot_move_backwards(self, engine):
        engine.advance_to(100)
        with pytest.raises(LiveEventError):
            engine.advance_to(50)

    def test_taint_report_follows_clock(self, engine, route_graph):
        trip_id = sorted(route_graph.trips)[0]
        engine.apply_event(
            TripCancellation(trip_id=trip_id, apply_at=100)
        )
        assert engine.taint_report().num_tainted == 0
        engine.advance_to(100)
        assert engine.taint_report().num_tainted > 0


class TestFeeds:
    def test_replay_drives_clock_and_events(self, engine, route_graph):
        feed = synthetic_feed(route_graph, rate=0.4, seed=5)
        assert len(feed) > 0
        played = list(replay(engine, feed))
        assert len(played) == len(feed)
        assert engine.now == feed.records[-1].at
        assert_matches_oracle(engine, route_graph)

    def test_replay_until(self, engine, route_graph):
        trip_ids = sorted(route_graph.trips)[:2]
        feed = EventFeed(
            [
                TimedEvent(10, TripDelay(trip_id=trip_ids[0], delay=5)),
                TimedEvent(90, TripDelay(trip_id=trip_ids[1], delay=5)),
            ]
        )
        played = list(replay(engine, feed, until=50))
        assert len(played) == 1

    def test_feed_json_round_trip(self, route_graph):
        feed = synthetic_feed(
            route_graph, rate=0.3, seed=8, extra_share=0.5, duration=600
        )
        assert EventFeed.from_json(feed.to_json()).records == feed.records

    def test_malformed_feed_rejected(self):
        with pytest.raises(LiveEventError):
            EventFeed.from_json("{not json")
        with pytest.raises(LiveEventError):
            EventFeed.from_json('{"at": 3}')
        with pytest.raises(LiveEventError):
            EventFeed.from_json('[{"event": {"kind": "cancel"}}]')

    def test_bad_rate_rejected(self, route_graph):
        with pytest.raises(LiveEventError):
            synthetic_feed(route_graph, rate=2.0)


class TestFeedRobustness:
    """A long-running consumer must survive a misbehaving feed."""

    def test_tolerant_from_json_skips_and_counts(self):
        import json

        text = json.dumps(
            [
                {"at": 5, "event": {"kind": "cancel", "trip_id": 0}},
                {"at": 7},  # missing event payload
                "garbage",  # not even an object
                {"at": 9, "event": {"kind": "warp"}},  # unknown kind
            ]
        )
        with pytest.warns(UserWarning):
            feed = EventFeed.from_json(text, strict=False)
        assert len(feed) == 1
        assert feed.skipped == 3
        # The envelope itself must still be well-formed.
        with pytest.raises(LiveEventError):
            EventFeed.from_json("{not json", strict=False)
        with pytest.raises(LiveEventError):
            EventFeed.from_json('{"at": 3}', strict=False)

    def test_strict_from_json_still_raises(self):
        with pytest.raises(LiveEventError):
            EventFeed.from_json('[{"at": 7}]')

    def test_replay_skips_out_of_order_and_rejected(
        self, engine, route_graph
    ):
        trip = sorted(route_graph.trips)[0]
        engine.advance_to(50)
        feed = EventFeed(
            [
                # Announced behind the engine clock: out of order.
                TimedEvent(10, TripDelay(trip_id=trip, delay=5)),
                # Unknown trip: the engine rejects it on apply.
                TimedEvent(60, TripDelay(trip_id=10**9, delay=5)),
                # Healthy record.
                TimedEvent(70, TripDelay(trip_id=trip, delay=5)),
            ]
        )
        with pytest.warns(UserWarning):
            played = list(replay(engine, feed))
        assert [at for at, _, _ in played] == [70]
        assert engine.feed_skipped == 2
        assert engine.now == 70

    def test_replay_raise_mode_fails_fast(self, engine, route_graph):
        trip = sorted(route_graph.trips)[0]
        engine.advance_to(50)
        feed = EventFeed([TimedEvent(10, TripDelay(trip_id=trip, delay=5))])
        with pytest.raises(LiveEventError):
            list(replay(engine, feed, on_error="raise"))
        assert engine.feed_skipped == 0

    def test_replay_rejects_bad_on_error(self, engine):
        with pytest.raises(ValueError):
            list(replay(engine, EventFeed(), on_error="ignore"))


class TestStats:
    def test_counters_add_up(self, engine, route_graph):
        feed = synthetic_feed(route_graph, rate=0.3, seed=1)
        for _ in replay(engine, feed):
            pass
        assert_matches_oracle(engine, route_graph)
        stats = engine.stats
        assert stats.queries == stats.fast_path + stats.fallbacks
        snapshot = stats.snapshot()
        assert snapshot["queries"] == stats.queries
        stats.reset()
        assert stats.queries == 0
