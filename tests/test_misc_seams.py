"""Small seam tests: CLI registry integrity, multiday week wrap,
formatting helpers."""

import pytest

from repro.bench import experiments
from repro.cli import _EXPERIMENTS, build_parser


class TestCliRegistry:
    def test_every_experiment_name_resolves(self):
        for attr in _EXPERIMENTS.values():
            assert callable(getattr(experiments, attr))

    def test_parser_covers_all_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in (
            "datasets", "info", "generate", "build", "query",
            "bench", "verify", "profile", "analyze", "report", "serve",
        ):
            assert command in text


class TestMultidayWrap:
    def test_sunday_pairs_with_monday(self, rng):
        from repro.core.multiday import MultiDayPlanner, WeeklyCalendar
        from repro.timeutil import SECONDS_PER_DAY
        from tests.conftest import make_random_route_graph

        graph = make_random_route_graph(rng, 6, 4)
        planner = MultiDayPlanner(WeeklyCalendar([graph] * 7))
        # Sunday queries must work (the pair index wraps to Monday).
        journey = planner.earliest_arrival(0, 1, 6 * SECONDS_PER_DAY)
        # Feasibility depends on the random graph; the call itself must
        # not raise and any answer must be inside the week+1 frame.
        if journey is not None:
            assert journey.dep >= 6 * SECONDS_PER_DAY


class TestFormatters:
    def test_harness_fmt_variants(self):
        from repro.bench.harness import _fmt

        assert _fmt(0) == "0"
        assert _fmt(12345) == "12,345"
        assert _fmt(0.5) == "0.5000"
        assert _fmt(3.25) == "3.25"
        assert _fmt(1234.5) == "1,234" or "," in _fmt(1234.5)
        assert _fmt("text") == "text"

    def test_charts_fmt_variants(self):
        from repro.bench.charts import _fmt

        assert _fmt(5.25) == "5.2" or _fmt(5.25) == "5.3"
        assert _fmt(42.0) == "42"
        assert "," in _fmt(123456.0)


class TestVerifySampling:
    def test_seed_changes_sample(self, route_graph):
        from repro.core import build_index
        from repro.core.verify import verify_index

        index = build_index(route_graph)
        a = verify_index(index, label_samples=5, query_samples=5, seed=1)
        b = verify_index(index, label_samples=5, query_samples=5, seed=2)
        assert a.ok and b.ok
        assert a.labels_checked == b.labels_checked == 5
