"""Tests for the Contraction Hierarchies for Timetables baseline."""

import random

import pytest

from repro.algorithms.temporal_dijkstra import DijkstraPlanner
from repro.baselines.cht import CHTPlanner, Shortcut, _expand, _merge_profiles
from repro.algorithms.profiles import ParetoProfile
from repro.graph.connection import Connection, validate_path
from tests.conftest import make_random_connection_graph, make_random_route_graph


class TestMergeProfiles:
    def test_minimal_wait_pairing(self):
        left = ParetoProfile()
        left.add(0, 10, payload="l0")
        left.add(20, 30, payload="l1")
        right = ParetoProfile()
        right.add(10, 15, payload="r0")
        right.add(35, 40, payload="r1")
        merged = _merge_profiles(left, right)
        assert [(d, a) for d, a, _ in merged] == [(0, 15), (20, 40)]

    def test_dedupes_same_arrival(self):
        left = ParetoProfile([(0, 10), (5, 12)])
        right = ParetoProfile([(12, 20)])
        merged = _merge_profiles(left, right)
        # Both left entries reach the same right entry: keep the later
        # departure only.
        assert [(d, a) for d, a, _ in merged] == [(5, 20)]

    def test_empty_when_no_connection(self):
        left = ParetoProfile([(0, 50)])
        right = ParetoProfile([(10, 20)])
        assert _merge_profiles(left, right) == []


class TestExpand:
    def test_nested_shortcut_order(self):
        c1 = Connection(0, 1, 0, 1, 0)
        c2 = Connection(1, 2, 2, 3, 0)
        c3 = Connection(2, 3, 4, 5, 0)
        payload = Shortcut(Shortcut(c1, c2), c3)
        assert _expand(payload) == [c1, c2, c3]


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", [10, 20, 30])
    def test_all_query_types(self, seed):
        rng = random.Random(seed)
        for _ in range(5):
            graph = make_random_connection_graph(
                rng, rng.randrange(4, 12), rng.randrange(5, 60)
            )
            oracle = DijkstraPlanner(graph)
            cht = CHTPlanner(graph)
            cht.preprocess()
            for _ in range(30):
                u, v = rng.randrange(graph.n), rng.randrange(graph.n)
                if u == v:
                    continue
                t = rng.randrange(0, 220)
                t2 = t + rng.randrange(1, 250)

                a = oracle.earliest_arrival(u, v, t)
                b = cht.earliest_arrival(u, v, t)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.arr == b.arr
                    validate_path(b.path)

                a = oracle.latest_departure(u, v, t)
                b = cht.latest_departure(u, v, t)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.dep == b.dep
                    validate_path(b.path)

                a = oracle.shortest_duration(u, v, t, t2)
                b = cht.shortest_duration(u, v, t, t2)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.duration == b.duration

    def test_route_graphs(self, rng):
        for _ in range(4):
            graph = make_random_route_graph(rng, 9, 6)
            oracle = DijkstraPlanner(graph)
            cht = CHTPlanner(graph)
            for _ in range(25):
                u, v = rng.randrange(graph.n), rng.randrange(graph.n)
                if u == v:
                    continue
                t = rng.randrange(0, 250)
                a = oracle.earliest_arrival(u, v, t)
                b = cht.earliest_arrival(u, v, t)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.arr == b.arr


class TestStructure:
    def test_rank_is_permutation(self, route_graph):
        cht = CHTPlanner(route_graph)
        cht.preprocess()
        assert sorted(cht.rank) == list(range(route_graph.n))

    def test_up_edges_point_up(self, route_graph):
        cht = CHTPlanner(route_graph)
        cht.preprocess()
        for x in range(route_graph.n):
            for edge in cht._up_out[x]:
                assert cht.rank[edge.other] > cht.rank[x]
            for edge in cht._down_out[x]:
                assert cht.rank[edge.other] < cht.rank[x]

    def test_pair_edges_are_staircases(self, route_graph):
        cht = CHTPlanner(route_graph)
        cht.preprocess()
        for adjacency in (cht._up_out, cht._down_out):
            for edges in adjacency:
                for edge in edges:
                    for i in range(len(edge.deps) - 1):
                        assert edge.deps[i] < edge.deps[i + 1]
                        assert edge.arrs[i] < edge.arrs[i + 1]

    def test_paths_only_use_original_connections(self, route_graph, rng):
        cht = CHTPlanner(route_graph)
        originals = set(route_graph.connections)
        for _ in range(30):
            u, v = rng.randrange(route_graph.n), rng.randrange(route_graph.n)
            if u == v:
                continue
            journey = cht.earliest_arrival(u, v, rng.randrange(0, 200))
            if journey is not None:
                assert all(c in originals for c in journey.path)

    def test_index_bytes_positive(self, route_graph):
        cht = CHTPlanner(route_graph)
        cht.preprocess()
        assert cht.index_bytes() > 0


class TestEdgeCases:
    def test_same_station(self, line_graph):
        cht = CHTPlanner(line_graph)
        journey = cht.shortest_duration(1, 1, 0, 10)
        assert journey is not None and journey.duration == 0

    def test_unreachable(self, line_graph):
        cht = CHTPlanner(line_graph)
        assert cht.earliest_arrival(3, 0, 0) is None
        assert cht.latest_departure(3, 0, 10**6) is None
        assert cht.shortest_duration(3, 0, 0, 10**6) is None

    def test_line_graph_answers(self, line_graph):
        cht = CHTPlanner(line_graph)
        assert cht.earliest_arrival(0, 3, 95).arr == 130
        assert cht.latest_departure(0, 3, 330).dep == 300
        assert cht.shortest_duration(0, 3, 0, 400).duration == 25
