"""Hot-pair answer cache suite.

Three layers:

* unit tests over :class:`~repro.serving.cache.AnswerCache` — keying,
  LRU accounting, and the revalidation protocol in isolation;
* an end-to-end selective-invalidation test over real HTTP — two
  disjoint corridors, a delay on one, and the *other* corridor's
  cached answer must survive the sweep (taint-driven, not
  flush-the-world);
* the metamorphic property the whole design hangs on: a cache-enabled
  service is byte-for-byte indistinguishable from a cache-disabled one
  before, during, and after seeded live-event churn.
"""

import json
import random
import urllib.error
import urllib.request

import pytest

from repro.graph.builders import GraphBuilder
from repro.live import LiveOverlayEngine, TripCancellation, TripDelay
from repro.resilience import ResilienceConfig
from repro.serving.cache import AnswerCache
from repro.service import PlannerService
from tests.conftest import make_random_route_graph

#: Committed seeds: CI replays these exact disruption sequences.
SEEDS = (11, 23, 47)


def fetch(port, path):
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=10
        ) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def post(port, path, body):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


def start_service(request, planner, cache_size):
    svc = PlannerService(
        planner,
        resilience=ResilienceConfig(cache_size=cache_size),
    )
    port = svc.start(port=0)
    request.addfinalizer(svc.stop)
    return svc, port


class TestAnswerCacheUnit:
    def make(self, capacity=4, bucket_s=900):
        return AnswerCache(capacity, bucket_s=bucket_s)

    def key(self, cache, origin=1, destination=2, t=1000, generation=0,
            **kw):
        return cache.make_key(
            "eap", origin, destination, t, epoch="e", generation=generation,
            **kw
        )

    def test_exact_params_in_key(self):
        cache = self.make()
        # Same bucket, different t: distinct keys — a hit must be the
        # byte-for-byte identical question.
        a = self.key(cache, t=1000)
        b = self.key(cache, t=1001)
        assert a.departure_bucket == b.departure_bucket
        assert a != b
        cache.put(a, {"journey": "A"}, static_ok=True)
        assert cache.get(b) is None
        assert cache.get(a) == {"journey": "A"}

    def test_hit_returns_a_copy(self):
        cache = self.make()
        key = self.key(cache)
        cache.put(key, {"journey": "x", "degraded": False}, static_ok=True)
        first = cache.get(key)
        first.pop("degraded")  # what the /v1 envelope does to bodies
        second = cache.get(key)
        assert second == {"journey": "x", "degraded": False}

    def test_lru_eviction_and_counters(self):
        cache = self.make(capacity=2)
        k1, k2, k3 = (self.key(cache, t=t) for t in (1, 2, 3))
        cache.put(k1, {"j": 1}, static_ok=True)
        cache.put(k2, {"j": 2}, static_ok=True)
        cache.get(k1)  # refresh k1: k2 becomes the LRU victim
        cache.put(k3, {"j": 3}, static_ok=True)
        assert cache.get(k2) is None
        assert cache.get(k1) == {"j": 1}
        assert cache.get(k3) == {"j": 3}
        assert cache.stats.evictions == 1
        assert cache.stats.hits == 3
        assert cache.stats.misses == 1
        assert cache.counters()["cache_evictions"] == 1

    def test_revalidate_rekeys_only_certified_static_entries(self):
        cache = self.make()
        static = self.key(cache, origin=1, destination=2, generation=1)
        tainted = self.key(cache, origin=3, destination=4, generation=1)
        overlay = self.key(cache, origin=5, destination=6, generation=1)
        current = self.key(cache, origin=7, destination=8, generation=2)
        cache.put(static, {"j": "s"}, static_ok=True)
        cache.put(tainted, {"j": "t"}, static_ok=True)
        cache.put(overlay, {"j": "o"}, static_ok=False)
        cache.put(current, {"j": "c"}, static_ok=True)
        invalidated = cache.revalidate(
            2, certify=lambda entry: entry.origin == 1
        )
        # static: certified, re-keyed to generation 2.  tainted:
        # certify refused.  overlay: never certifiable.  current:
        # already at generation 2, untouched.
        assert invalidated == 2
        assert cache.stats.invalidations == 2
        assert cache.get(static._replace(live_generation=2)) == {"j": "s"}
        assert cache.get(static) is None  # old key gone
        assert cache.get(tainted._replace(live_generation=2)) is None
        assert cache.get(overlay._replace(live_generation=2)) is None
        assert cache.get(current) == {"j": "c"}

    def test_revalidate_without_certify_drops_old_generations(self):
        cache = self.make()
        key = self.key(cache, generation=1)
        cache.put(key, {"j": 1}, static_ok=True)
        assert cache.revalidate(2) == 1
        assert len(cache) == 0

    def test_clear_counts_invalidations(self):
        cache = self.make()
        cache.put(self.key(cache), {"j": 1}, static_ok=True)
        assert cache.clear() == 1
        assert cache.stats.invalidations == 1
        assert len(cache) == 0

    def test_snapshot_shape(self):
        cache = self.make(capacity=3, bucket_s=60)
        key = self.key(cache)
        cache.put(key, {"j": 1}, static_ok=True)
        cache.get(key)
        snap = cache.snapshot()
        assert snap["capacity"] == 3
        assert snap["bucket_s"] == 60
        assert snap["size"] == 1
        assert snap["hits"] == 1
        assert snap["hit_rate"] == 1.0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            AnswerCache(0)
        with pytest.raises(ValueError):
            AnswerCache(4, bucket_s=0)


def two_corridor_graph():
    """Two disjoint line corridors: 0-1-2 (trips 0..) and 3-4-5."""
    builder = GraphBuilder()
    builder.add_stations(6)
    a = builder.add_route([0, 1, 2])
    b = builder.add_route([3, 4, 5])
    for start in (0, 30, 60):
        builder.add_trip_departures(a, start, [10, 10])
        builder.add_trip_departures(b, start, [10, 10])
    return builder.build()


class TestSelectiveInvalidation:
    def test_disjoint_corridor_survives_sweep(self, request):
        graph = two_corridor_graph()
        engine = LiveOverlayEngine(graph)
        service, port = start_service(request, engine, cache_size=32)

        # Prime both corridors.
        status, before_a = fetch(port, "/v1/eap?from=0&to=2&t=0")
        assert status == 200
        status, before_b = fetch(port, "/v1/eap?from=3&to=5&t=0")
        assert status == 200
        assert service.cache.stats.misses == 2

        # Delay corridor A's first trip enough to change its answer.
        trip_a = before_a["data"]["journey"]["path"][0][4]
        status, _ = post(
            port,
            "/v1/live/events",
            {"kind": "delay", "trip_id": trip_a, "delay": 100},
        )
        assert status == 200

        # Corridor B's entry was certified clean and re-keyed: a hit.
        hits_before = service.cache.stats.hits
        status, after_b = fetch(port, "/v1/eap?from=3&to=5&t=0")
        assert status == 200
        assert service.cache.stats.hits == hits_before + 1
        assert after_b["data"] == before_b["data"]

        # Corridor A's entry was invalidated and recomputed fresh.
        assert service.cache.stats.invalidations >= 1
        status, after_a = fetch(port, "/v1/eap?from=0&to=2&t=0")
        assert status == 200
        assert after_a["data"] != before_a["data"]
        oracle = engine.earliest_arrival(0, 2, 0)
        assert after_a["data"]["journey"]["arr"] == oracle.arr


def seeded_events(graph, rng, count=4):
    """A seeded mix of delays and cancellations over real trips."""
    trip_ids = sorted(graph.trips)
    events = []
    for _ in range(count):
        trip_id = rng.choice(trip_ids)
        if rng.random() < 0.5:
            events.append(
                {"kind": "delay", "trip_id": trip_id,
                 "delay": rng.randrange(5, 120)}
            )
        else:
            events.append({"kind": "cancel", "trip_id": trip_id})
    return events


@pytest.mark.parametrize("seed", SEEDS)
class TestMetamorphicCacheTransparency:
    """Cached answers must be byte-identical to a cache-disabled
    worker before, during, and after disruptions."""

    def assert_identical(self, cached_port, plain_port, queries):
        for path in queries:
            status_c, body_c = fetch(cached_port, path)
            status_p, body_p = fetch(plain_port, path)
            assert status_c == status_p == 200, path
            blob_c = json.dumps(body_c["data"], sort_keys=True)
            blob_p = json.dumps(body_p["data"], sort_keys=True)
            assert blob_c == blob_p, path
            assert (
                body_c["meta"]["degraded"] == body_p["meta"]["degraded"]
            )

    def test_cache_is_observably_transparent(self, request, seed):
        rng = random.Random(seed)
        graph = make_random_route_graph(rng, 8, 5)
        cached_svc, cached_port = start_service(
            request, LiveOverlayEngine(graph), cache_size=128
        )
        _, plain_port = start_service(
            request, LiveOverlayEngine(graph), cache_size=0
        )

        pairs = [
            (u, v)
            for u in range(graph.n)
            for v in range(graph.n)
            if u != v
        ]
        rng.shuffle(pairs)
        hot = pairs[:6]
        times = [0, 40, 90]
        queries = [
            f"/v1/eap?from={u}&to={v}&t={t}" for u, v in hot for t in times
        ] + [
            f"/v1/ldp?from={u}&to={v}&t=500" for u, v in hot[:3]
        ] + [
            f"/v1/sdp?from={u}&to={v}&t=0&t_end=500" for u, v in hot[:3]
        ]

        # Before any disruption — and twice, so the second pass is
        # served from the cache.
        self.assert_identical(cached_port, plain_port, queries)
        self.assert_identical(cached_port, plain_port, queries)

        # During churn: apply each event to BOTH services, re-compare
        # (twice again: the repeat pass hits whatever survived or was
        # restored by the sweep).  One event is aimed at a trip a hot
        # cached journey actually rides, so at least one sweep must
        # invalidate rather than re-key.
        events = seeded_events(graph, rng)
        for u, v in hot:
            _, body = fetch(cached_port, f"/v1/eap?from={u}&to={v}&t=0")
            journey = body["data"]["journey"]
            if journey and journey.get("path"):
                events.append(
                    {"kind": "cancel", "trip_id": journey["path"][0][4]}
                )
                break
        event_ids = []
        for event in events:
            status, applied = post(cached_port, "/v1/live/events", event)
            assert status == 200
            post(plain_port, "/v1/live/events", event)
            event_ids.append(applied["data"]["id"])
            self.assert_identical(cached_port, plain_port, queries)
            self.assert_identical(cached_port, plain_port, queries)

        # After: clear one event by id, then the rest wholesale.
        post(cached_port, "/v1/live/clear", {"id": event_ids[0]})
        post(plain_port, "/v1/live/clear", {"id": event_ids[0]})
        self.assert_identical(cached_port, plain_port, queries)
        post(cached_port, "/v1/live/clear", {})
        post(plain_port, "/v1/live/clear", {})
        self.assert_identical(cached_port, plain_port, queries)
        self.assert_identical(cached_port, plain_port, queries)

        # The property is vacuous unless the cache actually served
        # hits and the churn actually invalidated entries.
        stats = cached_svc.cache.stats
        assert stats.hits > 0
        assert stats.invalidations > 0

        # The counters thread through to /metrics and /resilience.
        _, metrics = fetch(cached_port, "/v1/metrics")
        assert metrics["data"]["cache"]["hits"] == stats.hits
        _, resilience = fetch(cached_port, "/v1/resilience")
        assert resilience["data"]["cache"]["hits"] == stats.hits
