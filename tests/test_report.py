"""Tests for the one-shot reproduction report."""

import pytest

from repro.bench.harness import BenchConfig, PlannerCache
from repro.bench.report import generate_report


@pytest.fixture(scope="module")
def report_text():
    config = BenchConfig(
        scale=0.5, datasets=["Austin", "Toronto"], num_queries=15
    )
    return generate_report(PlannerCache(config))


def test_all_sections_present(report_text):
    for heading in (
        "Table 3",
        "Figure 3",
        "Figure 4",
        "Figure 5",
        "Table 4",
        "Figure 8",
        "Figure 9",
        "Figure 10",
    ):
        assert heading in report_text


def test_verdicts_present(report_text):
    assert "TTL beats CSA" in report_text
    assert "compression" in report_text


def test_datasets_listed(report_text):
    assert "Austin, Toronto" in report_text


def test_cli_report(tmp_path, capsys):
    from repro.cli import main

    out_file = tmp_path / "r.md"
    assert (
        main(
            [
                "report", "-o", str(out_file),
                "--datasets", "Austin", "--queries", "10",
                "--scale", "0.5",
            ]
        )
        == 0
    )
    assert out_file.exists()
    assert "# TTL reproduction report" in out_file.read_text()
