"""Tests for the Connection Scan Algorithm baseline."""

import random

import pytest

from repro.algorithms.temporal_dijkstra import DijkstraPlanner
from repro.baselines.csa import CSAPlanner
from repro.graph.connection import validate_path
from tests.conftest import make_random_connection_graph, make_random_route_graph


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_all_query_types(self, seed):
        rng = random.Random(seed)
        for _ in range(6):
            graph = make_random_connection_graph(
                rng, rng.randrange(4, 10), rng.randrange(5, 40)
            )
            oracle = DijkstraPlanner(graph)
            csa = CSAPlanner(graph)
            for _ in range(30):
                u, v = rng.randrange(graph.n), rng.randrange(graph.n)
                if u == v:
                    continue
                t = rng.randrange(0, 220)
                t2 = t + rng.randrange(1, 250)

                a = oracle.earliest_arrival(u, v, t)
                b = csa.earliest_arrival(u, v, t)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.arr == b.arr

                a = oracle.latest_departure(u, v, t)
                b = csa.latest_departure(u, v, t)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.dep == b.dep

                a = oracle.shortest_duration(u, v, t, t2)
                b = csa.shortest_duration(u, v, t, t2)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.duration == b.duration

    def test_route_graphs(self, rng):
        for _ in range(5):
            graph = make_random_route_graph(rng, 9, 6)
            oracle = DijkstraPlanner(graph)
            csa = CSAPlanner(graph)
            for _ in range(25):
                u, v = rng.randrange(graph.n), rng.randrange(graph.n)
                if u == v:
                    continue
                t = rng.randrange(0, 250)
                a = oracle.earliest_arrival(u, v, t)
                b = csa.earliest_arrival(u, v, t)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.arr == b.arr


class TestPaths:
    def test_eap_path_valid(self, line_graph):
        csa = CSAPlanner(line_graph)
        journey = csa.earliest_arrival(0, 3, 95)
        assert journey is not None
        validate_path(journey.path)
        assert journey.path[0].u == 0
        assert journey.path[-1].v == 3

    def test_ldp_path_valid(self, line_graph):
        csa = CSAPlanner(line_graph)
        journey = csa.latest_departure(0, 3, 330)
        assert journey is not None
        validate_path(journey.path)
        assert journey.dep == 300

    def test_sdp_returns_express(self, line_graph):
        csa = CSAPlanner(line_graph)
        journey = csa.shortest_duration(0, 3, 0, 400)
        assert journey is not None
        assert journey.duration == 25


class TestEdgeCases:
    def test_same_station(self, line_graph):
        csa = CSAPlanner(line_graph)
        journey = csa.earliest_arrival(2, 2, 100)
        assert journey is not None and journey.duration == 0

    def test_unreachable(self, line_graph):
        csa = CSAPlanner(line_graph)
        assert csa.earliest_arrival(3, 0, 0) is None
        assert csa.latest_departure(3, 0, 1000) is None
        assert csa.shortest_duration(3, 0, 0, 1000) is None

    def test_query_after_last_departure(self, line_graph):
        csa = CSAPlanner(line_graph)
        assert csa.earliest_arrival(0, 3, 10**7) is None

    def test_index_bytes(self, line_graph):
        csa = CSAPlanner(line_graph)
        csa.preprocess()
        assert csa.index_bytes() == 2 * 20 * line_graph.m

    def test_preprocess_idempotent(self, line_graph):
        csa = CSAPlanner(line_graph)
        first = csa.preprocess()
        assert csa.preprocess() == first
