"""Fidelity tests against the paper's own worked examples.

Appendix C (Example 6) traces IndexBuild on the Figure 2a graph — one
route ``r1 = (v1, v2, v3)`` served by three vehicles — with the node
order ``o(v2)=1, o(v1)=2, o(v3)=3``, and Table 5 lists the exact six
labels the construction must produce.  Section 7.1 (Figure 2b-2d) then
compresses those labels route-wise.  Reproducing the example verbatim
pins the implementation to the paper's semantics, not just to our own
oracle.
"""

import pytest

from repro.core.build import build_index
from repro.core.compression import ROUTE, compress_index
from repro.core.label import Label
from repro.graph.builders import GraphBuilder


@pytest.fixture(scope="module")
def figure2a():
    """Figure 2a: vehicles b1, b2, b3 on route v1 -> v2 -> v3.

    Timetable (from Table 5's labels): b_k departs v1 at k, reaches v2
    at k+1, departs immediately, reaches v3 at k+2.
    """
    builder = GraphBuilder()
    v1 = builder.add_station("v1")
    v2 = builder.add_station("v2")
    v3 = builder.add_station("v3")
    r1 = builder.add_route([v1, v2, v3], name="r1")
    trips = [
        builder.add_trip(r1, [(k, k), (k + 1, k + 1), (k + 2, k + 2)])
        for k in (1, 2, 3)
    ]
    graph = builder.build()
    #          v1  v2  v3   (o(v2)=1 -> rank 0, o(v1)=2 -> rank 1, ...)
    ranks = [1, 0, 2]
    return graph, ranks, trips, (v1, v2, v3)


class TestTable5:
    def test_exact_label_sets(self, figure2a):
        graph, ranks, trips, (v1, v2, v3) = figure2a
        index = build_index(graph, order=ranks)
        b1, b2, b3 = trips

        # Table 5: L_out(v1) = {(v2,1,2,b1), (v2,2,3,b2), (v2,3,4,b3)}.
        assert index.out_labels(v1) == [
            Label(v2, 1, 2, b1, None),
            Label(v2, 2, 3, b2, None),
            Label(v2, 3, 4, b3, None),
        ]
        # Table 5: L_in(v3) = {(v2,2,3,b1), (v2,3,4,b2), (v2,4,5,b3)}.
        assert index.in_labels(v3) == [
            Label(v2, 2, 3, b1, None),
            Label(v2, 3, 4, b2, None),
            Label(v2, 4, 5, b3, None),
        ]
        # Table 5: v2 and v1-in / v3-out sets are empty.
        assert index.in_labels(v2) == []
        assert index.out_labels(v2) == []
        assert index.in_labels(v1) == []
        assert index.out_labels(v3) == []
        # "ending up with 6 labels".
        assert index.num_labels == 6

    def test_brute_force_matches_example(self, figure2a):
        from repro.core.build import build_index_brute_force

        graph, ranks, _, _ = figure2a
        fast = build_index(graph, order=ranks)
        brute = build_index_brute_force(graph, order=ranks)
        for v in range(graph.n):
            assert fast.in_labels(v) == brute.in_labels(v)
            assert fast.out_labels(v) == brute.out_labels(v)


class TestFigure2Compression:
    def test_route_compression_collapses_both_groups(self, figure2a):
        """Figure 2c: the three labels per set collapse into a single
        route-referencing label each (6 labels -> 2)."""
        graph, ranks, _, _ = figure2a
        index = build_index(graph, order=ranks)
        compressed, stats = compress_index(index, mode="route")
        assert stats.labels_before == 6
        assert stats.labels_after == 2
        assert stats.route_groups == 2
        kinds = {
            cgroup.kind
            for table in (compressed.in_cgroups, compressed.out_cgroups)
            for groups in table
            for cgroup in groups
        }
        assert kinds == {ROUTE}

    def test_decompression_reproduces_figure2b(self, figure2a):
        """Figure 2d: decompression reads the route timetable back."""
        graph, ranks, trips, (v1, v2, v3) = figure2a
        index = build_index(graph, order=ranks)
        compressed, _ = compress_index(index, mode="route")
        view = compressed._materialize_pair(v1, v2)
        assert list(zip(view.deps, view.arrs)) == [(1, 2), (2, 3), (3, 4)]
        view = compressed._materialize_pair(v2, v3)
        assert list(zip(view.deps, view.arrs)) == [(2, 3), (3, 4), (4, 5)]

    def test_queries_identical_after_compression(self, figure2a):
        from repro.core.cindex import CompressedTTLPlanner
        from repro.core.queries import TTLPlanner

        graph, ranks, _, (v1, v2, v3) = figure2a
        index = build_index(graph, order=ranks)
        compressed, _ = compress_index(index, mode="route")
        plain = TTLPlanner(graph, index=index)
        cttl = CompressedTTLPlanner(graph, cindex=compressed)
        for t in range(0, 5):
            for (u, v) in ((v1, v2), (v1, v3), (v2, v3)):
                a = plain.earliest_arrival(u, v, t)
                b = cttl.earliest_arrival(u, v, t)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.arr == b.arr


class TestExample4Style:
    def test_pivot_recorded_for_transfer_paths(self):
        """Example 4's shape: a two-vehicle answer unfolds through its
        pivot into the exact connection sequence."""
        builder = GraphBuilder()
        v2 = builder.add_station("v2")
        v6 = builder.add_station("v6")
        v4 = builder.add_station("v4")
        first = builder.add_route([v2, v6])
        b2a = builder.add_trip(first, [(11, 11), (12, 12)])
        second = builder.add_route([v6, v4])
        b2b = builder.add_trip(second, [(12, 12), (13, 13)])
        graph = builder.build()
        # Rank the transfer station highest so it becomes the pivot's
        # hub; endpoints lower.
        ranks = [1, 0, 2]  # o(v6) highest
        from repro.core.queries import TTLPlanner

        planner = TTLPlanner(graph, order=ranks)
        journey = planner.shortest_duration(v2, v4, 8, 13)
        assert journey is not None
        assert [tuple(c) for c in journey.path] == [
            (v2, v6, 11, 12, b2a),
            (v6, v4, 12, 13, b2b),
        ]
