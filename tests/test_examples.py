"""Smoke tests: every example script must run cleanly end to end.

Examples run in-process (imported as modules with patched argv) so the
suite stays fast and failures give real tracebacks.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(monkeypatch, capsys, name, argv=()):
    monkeypatch.setattr(sys, "argv", [name, *argv])
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "quickstart.py")
    assert "Earliest arrival" in out
    assert "Latest departure" in out
    assert "Shortest duration" in out
    assert "board trip" in out


def test_city_journey_planner(monkeypatch, capsys):
    out = run_example(
        monkeypatch,
        capsys,
        "city_journey_planner.py",
        ["--dataset", "Austin", "--scale", "0.7", "--trips", "2"],
    )
    assert "us/query" in out
    assert "arrive" in out


def test_compression_tradeoffs(monkeypatch, capsys):
    out = run_example(
        monkeypatch,
        capsys,
        "compression_tradeoffs.py",
        ["--dataset", "Austin", "--scale", "0.7", "--queries", "40"],
    )
    assert "TTL (uncompressed)" in out
    assert "C-TTL (both)" in out


def test_departure_board(monkeypatch, capsys):
    out = run_example(
        monkeypatch,
        capsys,
        "departure_board.py",
        ["--dataset", "Toronto", "--scale", "1.0", "--pairs", "1"],
    )
    assert "fastest:" in out


def test_disruption_replanning(monkeypatch, capsys):
    out = run_example(
        monkeypatch,
        capsys,
        "disruption_replanning.py",
        ["--dataset", "Austin", "--scale", "0.7"],
    )
    assert "re-preprocessing" in out
    assert "journeys:" in out


def test_accessibility_isochrones(monkeypatch, capsys):
    out = run_example(
        monkeypatch,
        capsys,
        "accessibility_isochrones.py",
        ["--dataset", "Austin", "--scale", "0.7"],
    )
    assert "isochrones" in out
    assert "frontier" in out


def test_weekly_planner(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "weekly_planner.py")
    assert "two-day indices" in out
    assert "Sat" in out


@pytest.mark.slow
def test_overnight_journeys(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "overnight_journeys.py")
    assert "overnight journey" in out
    assert "NEXT day" in out
