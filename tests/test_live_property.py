"""Hypothesis property: the hybrid live engine is indistinguishable
from temporal Dijkstra on the overlay graph.

The engine's fast path serves static TTL answers whenever its taint +
improvement analysis proves them safe; this property drives random
event streams (delays from arbitrary stops, cancellations, extra
trips) against random route-structured timetables and demands the
engine's EAP/LDP/SDP objectives match an oracle that always searches
the patched schedule.  Any unsound shortcut in the safety argument
shows up here as a mismatch.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.temporal_dijkstra import DijkstraPlanner
from repro.graph.builders import GraphBuilder
from repro.live import (
    ExtraTrip,
    LiveOverlayEngine,
    TripCancellation,
    TripDelay,
)


@st.composite
def route_structured_graphs(draw):
    n = draw(st.integers(min_value=3, max_value=6))
    builder = GraphBuilder()
    builder.add_stations(n)
    n_routes = draw(st.integers(min_value=1, max_value=3))
    for _ in range(n_routes):
        length = draw(st.integers(min_value=2, max_value=min(4, n)))
        stops = draw(
            st.permutations(range(n)).map(lambda p: list(p)[:length])
        )
        if len(stops) < 2:
            continue
        route = builder.add_route(stops)
        n_trips = draw(st.integers(min_value=1, max_value=3))
        start = draw(st.integers(min_value=0, max_value=60))
        for k in range(n_trips):
            legs = [
                draw(st.integers(min_value=1, max_value=25))
                for _ in range(len(stops) - 1)
            ]
            headway = draw(st.integers(min_value=5, max_value=40))
            builder.add_trip_departures(route, start + k * headway, legs)
    return builder.build()


# (kind, trip index, delay, from_stop) — resolved modulo the actual
# trip/stop counts once the graph is known.
event_specs = st.tuples(
    st.sampled_from(["delay", "cancel", "extra"]),
    st.integers(min_value=0, max_value=11),
    st.integers(min_value=1, max_value=90),
    st.integers(min_value=0, max_value=4),
)

query_params = st.tuples(
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=150),
    st.integers(min_value=1, max_value=120),
)


def resolve_events(graph, specs):
    trip_ids = sorted(graph.trips)
    events = []
    for kind, trip_index, delay, from_stop in specs:
        trip_id = trip_ids[trip_index % len(trip_ids)]
        if kind == "cancel":
            events.append(TripCancellation(trip_id=trip_id))
        elif kind == "delay":
            n_stops = len(graph.trips[trip_id].stop_times)
            events.append(
                TripDelay(
                    trip_id=trip_id,
                    delay=delay,
                    from_stop=from_stop % n_stops,
                )
            )
        else:
            # Shadow the trip with a relief vehicle ``delay`` later.
            route = graph.route_of_trip(trip_id)
            times = tuple(
                (st_.arr + delay, st_.dep + delay)
                for st_ in graph.trips[trip_id].stop_times
            )
            events.append(ExtraTrip(stops=route.stops, times=times))
    return events


@given(
    route_structured_graphs(),
    st.lists(event_specs, min_size=1, max_size=5),
    st.lists(query_params, min_size=1, max_size=4),
)
@settings(max_examples=50, deadline=None)
def test_live_engine_matches_overlay_oracle(graph, specs, query_list):
    if graph.m == 0:
        return
    engine = LiveOverlayEngine(graph)
    engine.preprocess()
    for event in resolve_events(graph, specs):
        engine.apply_event(event)
    oracle = DijkstraPlanner(engine.overlay)
    for u, v, t, window in query_list:
        u %= graph.n
        v %= graph.n
        if u == v:
            continue
        got = engine.earliest_arrival(u, v, t)
        ref = oracle.earliest_arrival(u, v, t)
        assert (got is None) == (ref is None)
        if ref is not None:
            assert got.arr == ref.arr

        got = engine.latest_departure(u, v, t)
        ref = oracle.latest_departure(u, v, t)
        assert (got is None) == (ref is None)
        if ref is not None:
            assert got.dep == ref.dep

        got = engine.shortest_duration(u, v, t, t + window)
        ref = oracle.shortest_duration(u, v, t, t + window)
        assert (got is None) == (ref is None)
        if ref is not None:
            assert got.duration == ref.duration


@given(
    route_structured_graphs(),
    st.lists(event_specs, min_size=1, max_size=4),
)
@settings(max_examples=30, deadline=None)
def test_fast_path_answers_exist_in_live_schedule(graph, specs):
    """Every journey the engine returns must be feasible on the live
    schedule — its connections all exist in the overlay."""
    if graph.m == 0:
        return
    engine = LiveOverlayEngine(graph)
    engine.preprocess()
    for event in resolve_events(graph, specs):
        engine.apply_event(event)
    live_conns = set(engine.overlay.connections)
    for u in range(graph.n):
        for v in range(graph.n):
            if u == v:
                continue
            journey = engine.earliest_arrival(u, v, 0)
            if journey is not None and journey.path:
                assert all(c in live_conns for c in journey.path)
