"""Tests for index persistence and size accounting."""

import random

import pytest

from repro.core.build import build_index
from repro.core.queries import TTLPlanner
from repro.core.serialize import (
    BYTES_PER_LABEL,
    connections_bytes,
    index_bytes,
    load_index,
    save_index,
)
from repro.errors import SerializationError
from tests.conftest import make_random_route_graph


class TestRoundtrip:
    def test_label_sets_identical(self, route_graph, tmp_path):
        index = build_index(route_graph)
        path = tmp_path / "index.ttl"
        save_index(index, path)
        loaded = load_index(path, route_graph)
        assert loaded.ranks == index.ranks
        for v in range(route_graph.n):
            assert loaded.in_labels(v) == index.in_labels(v)
            assert loaded.out_labels(v) == index.out_labels(v)

    def test_loaded_index_answers_queries(self, route_graph, tmp_path, rng):
        index = build_index(route_graph)
        path = tmp_path / "index.ttl"
        save_index(index, path)
        loaded = load_index(path, route_graph)
        original = TTLPlanner(route_graph, index=index)
        restored = TTLPlanner(route_graph, index=loaded)
        for _ in range(40):
            u, v = rng.randrange(route_graph.n), rng.randrange(route_graph.n)
            if u == v:
                continue
            t = rng.randrange(0, 250)
            a = original.earliest_arrival(u, v, t)
            b = restored.earliest_arrival(u, v, t)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.arr == b.arr

    def test_invariants_after_load(self, route_graph, tmp_path):
        index = build_index(route_graph)
        path = tmp_path / "index.ttl"
        save_index(index, path)
        load_index(path, route_graph).check_invariants()


class TestErrors:
    def test_bad_magic(self, route_graph, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"NOTANIDX" + b"\x00" * 64)
        with pytest.raises(SerializationError, match="not a TTL index"):
            load_index(path, route_graph)

    def test_truncated_file(self, route_graph, tmp_path):
        index = build_index(route_graph)
        path = tmp_path / "index.ttl"
        save_index(index, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(SerializationError, match="truncated"):
            load_index(path, route_graph)

    def test_station_count_mismatch(self, route_graph, tmp_path, rng):
        index = build_index(route_graph)
        path = tmp_path / "index.ttl"
        save_index(index, path)
        other = make_random_route_graph(rng, route_graph.n + 3, 4)
        with pytest.raises(SerializationError, match="stations"):
            load_index(path, other)


class TestSizeAccounting:
    def test_index_bytes_scales_with_labels(self, route_graph):
        index = build_index(route_graph)
        assert index_bytes(index) >= index.num_labels * BYTES_PER_LABEL

    def test_connections_bytes(self):
        assert connections_bytes(100) == 2000

    def test_empty_index_bytes(self):
        from repro.graph.timetable import TimetableGraph

        index = build_index(TimetableGraph(0, []))
        assert index_bytes(index) == 0
