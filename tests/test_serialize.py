"""Tests for index persistence and size accounting."""

import random

import pytest

from repro.core.build import build_index
from repro.core.queries import TTLPlanner
from repro.core.serialize import (
    BYTES_PER_LABEL,
    connections_bytes,
    index_bytes,
    load_index,
    save_index,
)
from repro.errors import SerializationError
from tests.conftest import make_random_route_graph


class TestRoundtrip:
    def test_label_sets_identical(self, route_graph, tmp_path):
        index = build_index(route_graph)
        path = tmp_path / "index.ttl"
        save_index(index, path)
        loaded = load_index(path, route_graph)
        assert loaded.ranks == index.ranks
        for v in range(route_graph.n):
            assert loaded.in_labels(v) == index.in_labels(v)
            assert loaded.out_labels(v) == index.out_labels(v)

    def test_loaded_index_answers_queries(self, route_graph, tmp_path, rng):
        index = build_index(route_graph)
        path = tmp_path / "index.ttl"
        save_index(index, path)
        loaded = load_index(path, route_graph)
        original = TTLPlanner(route_graph, index=index)
        restored = TTLPlanner(route_graph, index=loaded)
        for _ in range(40):
            u, v = rng.randrange(route_graph.n), rng.randrange(route_graph.n)
            if u == v:
                continue
            t = rng.randrange(0, 250)
            a = original.earliest_arrival(u, v, t)
            b = restored.earliest_arrival(u, v, t)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.arr == b.arr

    def test_invariants_after_load(self, route_graph, tmp_path):
        index = build_index(route_graph)
        path = tmp_path / "index.ttl"
        save_index(index, path)
        load_index(path, route_graph).check_invariants()


def _first_group_hub_offset(data: bytes, n: int) -> int:
    """Byte offset of the first group record's hub field, or -1."""
    import struct

    off = 16 + 8 * n  # magic + station count + rank array
    for _ in range(2 * n):
        (count,) = struct.unpack_from("<q", data, off)
        off += 8
        if count > 0:
            return off
        # count == 0: nothing to skip; negative never written.
    return -1


class TestBuildStatsFooter:
    def test_file_carries_current_magic(self, route_graph, tmp_path):
        index = build_index(route_graph)
        path = tmp_path / "index.ttl"
        save_index(index, path)
        assert path.read_bytes()[:8] == b"TTLIDX03"

    def test_version_2_writes_legacy_magic(self, route_graph, tmp_path):
        index = build_index(route_graph)
        path = tmp_path / "index.ttl"
        save_index(index, path, version=2)
        assert path.read_bytes()[:8] == b"TTLIDX02"
        loaded = load_index(path, route_graph)
        assert loaded.ranks == index.ranks

    def test_unknown_version_rejected(self, route_graph, tmp_path):
        index = build_index(route_graph)
        with pytest.raises(ValueError, match="version"):
            save_index(index, tmp_path / "index.ttl", version=7)

    def test_build_stats_roundtrip(self, route_graph, tmp_path):
        index = build_index(route_graph)
        assert index.build_stats is not None
        assert index.build_stats.seconds > 0.0
        path = tmp_path / "index.ttl"
        save_index(index, path)
        loaded = load_index(path, route_graph)
        assert loaded.build_stats is not None
        for field in (
            "seconds",
            "order_seconds",
            "num_labels",
            "forward_pops",
            "backward_pops",
            "cover_pruned",
            "dominance_pruned",
            "dijkstra_runs",
        ):
            assert getattr(loaded.build_stats, field) == getattr(
                index.build_stats, field
            )

    def test_planner_reports_loaded_build_time(
        self, route_graph, tmp_path
    ):
        index = build_index(route_graph)
        path = tmp_path / "index.ttl"
        save_index(index, path)
        planner = TTLPlanner(route_graph, index=load_index(path, route_graph))
        assert planner.preprocess_seconds > 0.0
        assert planner.preprocess() == planner.preprocess_seconds

    def test_legacy_v1_file_loads_without_stats(
        self, route_graph, tmp_path
    ):
        import struct

        index = build_index(route_graph)
        path = tmp_path / "index.ttl"
        save_index(index, path, version=2)
        data = path.read_bytes()
        # A v1 file is the v2 body without the stats footer.
        footer = 8 + (struct.calcsize("<2d6q") if index.build_stats else 0)
        legacy = tmp_path / "legacy.ttl"
        legacy.write_bytes(b"TTLIDX01" + data[8:-footer])
        loaded = load_index(legacy, route_graph)
        assert loaded.build_stats is None
        assert loaded.ranks == index.ranks
        for v in range(route_graph.n):
            assert loaded.in_labels(v) == index.in_labels(v)


class TestErrors:
    def test_bad_hub_id_rejected(self, route_graph, tmp_path):
        # Patches a v2 group record; v3 hub corruption is covered by
        # the TTLIDX03 fuzz tests in tests/test_mmap_store.py.
        import struct

        index = build_index(route_graph)
        path = tmp_path / "index.ttl"
        save_index(index, path, version=2)
        data = bytearray(path.read_bytes())
        off = _first_group_hub_offset(data, route_graph.n)
        if off < 0:
            pytest.skip("index has no label groups")
        struct.pack_into("<q", data, off, route_graph.n + 7)
        path.write_bytes(bytes(data))
        with pytest.raises(SerializationError, match="hub"):
            load_index(path, route_graph)

    def test_duplicate_rank_rejected(self, route_graph, tmp_path):
        import struct

        index = build_index(route_graph)
        path = tmp_path / "index.ttl"
        save_index(index, path)
        data = bytearray(path.read_bytes())
        # Overwrite node 0's rank with node 1's: no longer a permutation.
        struct.pack_into("<q", data, 16, index.ranks[1])
        path.write_bytes(bytes(data))
        with pytest.raises(SerializationError, match="permutation"):
            load_index(path, route_graph)

    def test_out_of_range_rank_rejected(self, route_graph, tmp_path):
        import struct

        index = build_index(route_graph)
        path = tmp_path / "index.ttl"
        save_index(index, path)
        data = bytearray(path.read_bytes())
        struct.pack_into("<q", data, 16, route_graph.n)
        path.write_bytes(bytes(data))
        with pytest.raises(SerializationError, match="permutation"):
            load_index(path, route_graph)

    def test_bad_magic(self, route_graph, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"NOTANIDX" + b"\x00" * 64)
        with pytest.raises(SerializationError, match="not a TTL index"):
            load_index(path, route_graph)

    def test_truncated_file(self, route_graph, tmp_path):
        index = build_index(route_graph)
        path = tmp_path / "index.ttl"
        save_index(index, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(SerializationError, match="truncated"):
            load_index(path, route_graph)

    def test_station_count_mismatch(self, route_graph, tmp_path, rng):
        index = build_index(route_graph)
        path = tmp_path / "index.ttl"
        save_index(index, path)
        other = make_random_route_graph(rng, route_graph.n + 3, 4)
        with pytest.raises(SerializationError, match="stations"):
            load_index(path, other)


class TestSizeAccounting:
    def test_index_bytes_scales_with_labels(self, route_graph):
        index = build_index(route_graph)
        assert index_bytes(index) >= index.num_labels * BYTES_PER_LABEL

    def test_connections_bytes(self):
        assert connections_bytes(100) == 2000

    def test_empty_index_bytes(self):
        from repro.graph.timetable import TimetableGraph

        index = build_index(TimetableGraph(0, []))
        assert index_bytes(index) == 0
