"""Tests for the flat sealed label store."""

import pytest

from repro.core.build import build_index
from repro.core.label import LabelGroup
from repro.core.store import NONE_SENTINEL, GroupView, LabelStore


def make_store():
    """Two nodes: node 0 has two groups, node 1 has none."""
    g1 = LabelGroup(hub=1, rank=0)
    g1.append(10, 20, 7, None)
    g1.append(15, 25, 8, 3)
    g2 = LabelGroup(hub=2, rank=1)
    g2.append(5, 9, None, None)
    return LabelStore.from_groups([[g1, g2], []])


class TestLabelStore:
    def test_offsets_and_counts(self):
        store = make_store()
        assert store.n == 2
        assert store.num_labels == 3
        assert store.num_groups == 2
        assert store.node_label_count(0) == 3
        assert store.node_label_count(1) == 0
        assert list(store.node_starts) == [0, 2, 2]
        assert list(store.group_starts) == [0, 2, 3]

    def test_none_encoded_as_sentinel(self):
        store = make_store()
        assert store.trips[2] == NONE_SENTINEL
        assert store.pivots[0] == NONE_SENTINEL

    def test_views_decode_back(self):
        store = make_store()
        first, second = store.views(0)
        assert (first.hub, first.rank) == (1, 0)
        assert list(first.deps) == [10, 15]
        assert list(first.arrs) == [20, 25]
        assert list(first.trips) == [7, 8]
        assert list(first.pivots) == [None, 3]
        assert (second.hub, len(second)) == (2, 1)
        assert second.trips[0] is None
        assert store.views(1) == []

    def test_nbytes_counts_all_columns(self):
        store = make_store()
        # 3 labels * 4 columns + 2 groups * 2 columns + offsets.
        expected = 8 * (3 * 4 + 2 * 2 + 3 + 3)
        assert store.nbytes() == expected

    def test_empty_store(self):
        store = LabelStore.from_groups([])
        assert store.num_labels == 0
        assert store.num_groups == 0


class TestGroupView:
    def test_label_records(self):
        store = make_store()
        view = store.views(0)[0]
        label = view.label(1)
        assert (label.hub, label.dep, label.arr) == (1, 15, 25)
        assert (label.trip, label.pivot) == (8, 3)
        assert [l.dep for l in view.labels()] == [10, 15]

    def test_deps_are_writable_in_place(self):
        store = make_store()
        view = store.views(0)[0]
        view.deps[0] = 11
        # Consumers share the view object, so the mutation is seen by
        # everything reading through it (tests corrupt groups this way).
        assert view.deps[0] == 11
        assert view.label(0).dep == 11

    def test_check_invariants_detects_violation(self):
        store = make_store()
        view = store.views(0)[0]
        view.check_invariants()
        view.arrs[1] = view.arrs[0]
        with pytest.raises(AssertionError, match="Pareto"):
            view.check_invariants()

    def test_matches_index_groups(self, route_graph):
        index = build_index(route_graph)
        for v in range(route_graph.n):
            for group in index.in_groups[v]:
                assert isinstance(group, GroupView)
                assert len(group.labels()) == len(group)


class TestLazyColumns:
    def test_trips_decode_lazily_and_cache(self):
        store = make_store()
        view = store.views(0)[0]
        assert view._trips is None  # not decoded until touched
        trips = view.trips
        assert trips == [7, 8]
        assert view.trips is trips  # cached after first access

    def test_pivots_decode_sentinel_to_none(self):
        store = make_store()
        assert store.views(0)[0].pivots == [None, 3]
        assert store.views(0)[1].trips == [None]
