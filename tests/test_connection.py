"""Unit tests for connections and path predicates."""

import pytest

from repro.errors import ValidationError
from repro.graph.connection import (
    Connection,
    path_duration,
    path_transfers,
    path_vehicle,
    validate_path,
)


def conn(u, v, dep, arr, trip=0):
    return Connection(u, v, dep, arr, trip)


class TestConnection:
    def test_fields(self):
        c = conn(1, 2, 10, 15, trip=7)
        assert (c.u, c.v, c.dep, c.arr, c.trip) == (1, 2, 10, 15, 7)

    def test_duration(self):
        assert conn(0, 1, 10, 25).duration == 15

    def test_is_tuple(self):
        # NamedTuple behaviour is relied on by several hot paths.
        assert tuple(conn(1, 2, 3, 4, 5)) == (1, 2, 3, 4, 5)


class TestPathPredicates:
    def test_duration_of_multileg(self):
        path = [conn(0, 1, 10, 20), conn(1, 2, 25, 40)]
        assert path_duration(path) == 30

    def test_duration_empty_rejected(self):
        with pytest.raises(ValidationError):
            path_duration([])

    def test_vehicle_single_trip(self):
        path = [conn(0, 1, 10, 20, trip=3), conn(1, 2, 20, 40, trip=3)]
        assert path_vehicle(path) == 3

    def test_vehicle_with_transfer_is_none(self):
        path = [conn(0, 1, 10, 20, trip=3), conn(1, 2, 25, 40, trip=4)]
        assert path_vehicle(path) is None

    def test_transfers_counted(self):
        path = [
            conn(0, 1, 0, 1, trip=1),
            conn(1, 2, 2, 3, trip=1),
            conn(2, 3, 4, 5, trip=2),
            conn(3, 4, 6, 7, trip=1),
        ]
        assert path_transfers(path) == 2


class TestValidatePath:
    def test_valid_path_passes(self):
        validate_path([conn(0, 1, 10, 20), conn(1, 2, 20, 30)])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            validate_path([])

    def test_station_break_rejected(self):
        with pytest.raises(ValidationError, match="broken"):
            validate_path([conn(0, 1, 10, 20), conn(2, 3, 25, 30)])

    def test_time_travel_rejected(self):
        with pytest.raises(ValidationError, match="time-feasible"):
            validate_path([conn(0, 1, 10, 20), conn(1, 2, 15, 30)])

    def test_zero_duration_connection_rejected(self):
        with pytest.raises(ValidationError, match="positive"):
            validate_path([conn(0, 1, 10, 10)])

    def test_zero_wait_transfer_allowed(self):
        # Departure exactly at the previous arrival is legal
        # (Section 5.1: "departure time no sooner than t_a").
        validate_path([conn(0, 1, 0, 5), conn(1, 2, 5, 9)])
