"""Tests for calendar-aware multi-day planning (Section 8)."""

import random

import pytest

from repro.algorithms.temporal_dijkstra import DijkstraPlanner
from repro.core.multiday import (
    MultiDayPlanner,
    WeeklyCalendar,
    _shift_graph_pair,
)
from repro.errors import QueryError, ValidationError
from repro.graph.builders import GraphBuilder
from repro.graph.connection import validate_path
from repro.timeutil import SECONDS_PER_DAY, hms
from tests.conftest import make_random_route_graph


@pytest.fixture
def calendar(rng):
    weekday = make_random_route_graph(rng, 8, 6)
    weekend = make_random_route_graph(rng, 8, 3)
    return WeeklyCalendar.weekday_weekend(weekday, weekend)


@pytest.fixture
def overnight_calendar():
    """Weekday: late trip 0->1 plus early trip 1->2 (next morning)."""
    builder = GraphBuilder()
    builder.add_stations(3)
    late = builder.add_route([0, 1])
    builder.add_trip_departures(late, hms(23, 30), [1800])
    early = builder.add_route([1, 2])
    builder.add_trip_departures(early, hms(6), [1800])
    day = builder.build()
    return WeeklyCalendar([day] * 7)


class TestWeeklyCalendar:
    def test_needs_seven_days(self, rng):
        graph = make_random_route_graph(rng, 5, 2)
        with pytest.raises(ValidationError, match="7 day graphs"):
            WeeklyCalendar([graph] * 6)

    def test_station_universe_must_match(self, rng):
        a = make_random_route_graph(rng, 5, 2)
        b = make_random_route_graph(rng, 6, 2)
        with pytest.raises(ValidationError, match="station universe"):
            WeeklyCalendar([a] * 6 + [b])


class TestShiftGraphPair:
    def test_doubles_content(self, rng):
        day = make_random_route_graph(rng, 6, 4)
        pair = _shift_graph_pair(day, day)
        assert pair.m == 2 * day.m
        assert len(pair.routes) == 2 * len(day.routes)

    def test_second_day_shifted(self, rng):
        day = make_random_route_graph(rng, 6, 4)
        pair = _shift_graph_pair(day, day)
        times = sorted(c.dep for c in pair.connections)
        originals = sorted(c.dep for c in day.connections)
        assert times[: len(originals)] == originals
        assert times[len(originals):] == [
            t + SECONDS_PER_DAY for t in originals
        ]

    def test_trip_ids_unique(self, rng):
        day = make_random_route_graph(rng, 6, 4)
        pair = _shift_graph_pair(day, day)
        trip_ids = [t.trip_id for r in pair.routes.values() for t in r.trips]
        assert len(trip_ids) == len(set(trip_ids))


class TestQueries:
    def test_eap_matches_reference(self, calendar, rng):
        planner = MultiDayPlanner(calendar)
        for _ in range(40):
            u, v = rng.randrange(8), rng.randrange(8)
            if u == v:
                continue
            day = rng.randrange(0, 7)
            local = rng.randrange(0, 400)
            t = day * SECONDS_PER_DAY + local
            got = planner.earliest_arrival(u, v, t)
            ref_graph = _shift_graph_pair(
                calendar.day_graphs[day],
                calendar.day_graphs[(day + 1) % 7],
            )
            ref = DijkstraPlanner(ref_graph).earliest_arrival(u, v, local)
            assert (got is None) == (ref is None)
            if got is not None:
                assert got.arr == ref.arr + day * SECONDS_PER_DAY
                assert got.dep >= t

    def test_overnight_journey_found(self, overnight_calendar):
        planner = MultiDayPlanner(overnight_calendar)
        # Tuesday 23:00 -> arrives Wednesday morning.
        t = 1 * SECONDS_PER_DAY + hms(23)
        journey = planner.earliest_arrival(0, 2, t)
        assert journey is not None
        assert journey.arr == 2 * SECONDS_PER_DAY + hms(6, 30)
        validate_path(journey.path)

    def test_ldp_considers_previous_day(self, overnight_calendar):
        planner = MultiDayPlanner(overnight_calendar)
        # Arrive station 2 by Wednesday 07:00: the latest departure is
        # Tuesday 23:30 (the overnight chain).
        t = 2 * SECONDS_PER_DAY + hms(7)
        journey = planner.latest_departure(0, 2, t)
        assert journey is not None
        assert journey.dep == 1 * SECONDS_PER_DAY + hms(23, 30)
        assert journey.arr <= t

    def test_sdp_window_within_day(self, calendar, rng):
        planner = MultiDayPlanner(calendar)
        found = 0
        for _ in range(60):
            u, v = rng.randrange(8), rng.randrange(8)
            if u == v:
                continue
            day = rng.randrange(0, 7)
            t = day * SECONDS_PER_DAY + rng.randrange(0, 200)
            t_end = t + rng.randrange(60, 600)
            journey = planner.shortest_duration(u, v, t, t_end)
            if journey is not None:
                found += 1
                assert t <= journey.dep <= journey.arr <= t_end
        assert found > 0

    def test_indices_built_lazily(self, calendar):
        planner = MultiDayPlanner(calendar)
        assert planner.num_built_indices() == 0
        planner.earliest_arrival(0, 1, 100)
        assert planner.num_built_indices() == 1
        planner.earliest_arrival(0, 1, 5 * SECONDS_PER_DAY + 100)
        assert planner.num_built_indices() == 2

    def test_weekday_indices_shared_structurally(self, calendar):
        planner = MultiDayPlanner(calendar)
        # Monday and Tuesday use distinct (day, day+1) indices even
        # with identical timetables: partitioning is per day pair.
        planner.earliest_arrival(0, 1, 100)
        planner.earliest_arrival(0, 1, SECONDS_PER_DAY + 100)
        assert planner.num_built_indices() == 2


class TestValidation:
    def test_negative_time_rejected(self, calendar):
        planner = MultiDayPlanner(calendar)
        with pytest.raises(QueryError):
            planner.earliest_arrival(0, 1, -5)

    def test_beyond_week_rejected(self, calendar):
        planner = MultiDayPlanner(calendar)
        with pytest.raises(QueryError):
            planner.earliest_arrival(0, 1, 8 * SECONDS_PER_DAY)

    def test_oversized_sdp_window_rejected(self, calendar):
        planner = MultiDayPlanner(calendar)
        with pytest.raises(QueryError, match="24h"):
            planner.shortest_duration(0, 1, 0, 2 * SECONDS_PER_DAY)

    def test_empty_window_rejected(self, calendar):
        planner = MultiDayPlanner(calendar)
        with pytest.raises(QueryError, match="empty"):
            planner.shortest_duration(0, 1, 100, 50)
