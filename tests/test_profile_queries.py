"""Tests for profile queries (all non-dominated journeys)."""

import random

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.build import build_index
from repro.core.profile_queries import oracle_profile, ttl_profile
from repro.core.queries import TTLPlanner
from repro.errors import QueryError
from repro.graph.builders import graph_from_connections
from repro.timeutil import INF, NEG_INF
from tests.conftest import make_random_route_graph


class TestAgainstOracle:
    def test_random_route_graphs(self, rng):
        for _ in range(6):
            graph = make_random_route_graph(rng, 10, 7)
            index = build_index(graph)
            for _ in range(50):
                u, v = rng.randrange(graph.n), rng.randrange(graph.n)
                if u == v:
                    continue
                t = rng.randrange(0, 200)
                t_end = t + rng.randrange(1, 300)
                assert ttl_profile(index, u, v, t, t_end) == oracle_profile(
                    graph, u, v, t, t_end
                )

    def test_unbounded_window(self, rng):
        graph = make_random_route_graph(rng, 9, 6)
        index = build_index(graph)
        for _ in range(40):
            u, v = rng.randrange(graph.n), rng.randrange(graph.n)
            if u == v:
                continue
            assert ttl_profile(index, u, v, NEG_INF, INF) == oracle_profile(
                graph, u, v, NEG_INF, INF
            )


class TestProfileShape:
    def test_profile_is_staircase(self, rng):
        graph = make_random_route_graph(rng, 9, 6)
        index = build_index(graph)
        for _ in range(40):
            u, v = rng.randrange(graph.n), rng.randrange(graph.n)
            if u == v:
                continue
            pairs = ttl_profile(index, u, v, 0, 400)
            for (d1, a1), (d2, a2) in zip(pairs, pairs[1:]):
                assert d1 < d2 and a1 < a2

    def test_profile_consistent_with_point_queries(self, rng):
        """Each profile pair's arrival equals the EAP at its departure,
        and the minimal duration equals the SDP answer."""
        graph = make_random_route_graph(rng, 9, 6)
        planner = TTLPlanner(graph)
        planner.preprocess()
        for _ in range(40):
            u, v = rng.randrange(graph.n), rng.randrange(graph.n)
            if u == v:
                continue
            t, t_end = 0, 400
            pairs = planner.profile(u, v, t, t_end)
            sdp = planner.shortest_duration(u, v, t, t_end)
            if not pairs:
                assert sdp is None
                continue
            assert sdp is not None
            assert min(a - d for d, a in pairs) == sdp.duration
            for dep, arr in pairs:
                eap = planner.earliest_arrival(u, v, dep)
                assert eap is not None and eap.arr == arr


class TestEdgeCases:
    def test_line_graph_profile(self, line_graph):
        index = build_index(line_graph)
        pairs = ttl_profile(index, 0, 3, 0, 400)
        # Locals at 100/200/300 (30s) are all non-dominated; the
        # express (210 -> 235) dominates the 200 local (200 -> 230)?
        # No: 200 local arrives 230 < 235, both survive.
        assert (100, 130) in pairs
        assert (210, 235) in pairs
        assert pairs == sorted(pairs)

    def test_empty_profile(self, line_graph):
        index = build_index(line_graph)
        assert ttl_profile(index, 3, 0, 0, 1000) == []

    def test_same_station(self, line_graph):
        planner = TTLPlanner(line_graph)
        assert planner.profile(2, 2, 10, 20) == [(10, 10)]

    def test_planner_validation(self, line_graph):
        planner = TTLPlanner(line_graph)
        with pytest.raises(QueryError):
            planner.profile(0, 99, 0, 10)
        with pytest.raises(QueryError):
            planner.profile(0, 1, 10, 0)


@st.composite
def small_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    m = draw(st.integers(min_value=1, max_value=18))
    conns = []
    for _ in range(m):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            v = (v + 1) % n
        dep = draw(st.integers(min_value=0, max_value=80))
        conns.append((u, v, dep, dep + draw(st.integers(1, 30))))
    return graph_from_connections(conns, n)


@given(small_graphs(), st.integers(0, 5), st.integers(0, 5))
@settings(max_examples=80, deadline=None)
def test_profile_property(graph, u, v):
    u %= graph.n
    v %= graph.n
    if u == v:
        return
    index = build_index(graph)
    assert ttl_profile(index, u, v, 0, 200) == oracle_profile(
        graph, u, v, 0, 200
    )
