"""Tests for index verification (the fsck)."""

import pytest

from repro.core.build import build_index
from repro.core.verify import verify_index
from tests.conftest import make_random_route_graph


class TestHealthyIndex:
    def test_fresh_index_verifies(self, route_graph):
        index = build_index(route_graph)
        report = verify_index(index, label_samples=100, query_samples=50)
        assert report.ok
        assert report.labels_checked > 0
        assert report.queries_checked > 0
        assert "OK" in report.summary()

    def test_loaded_index_verifies(self, route_graph, tmp_path):
        from repro.core.serialize import load_index, save_index

        index = build_index(route_graph)
        path = tmp_path / "i.ttl"
        save_index(index, path)
        report = verify_index(load_index(path, route_graph))
        assert report.ok

    def test_empty_index_verifies(self):
        from repro.graph.timetable import TimetableGraph

        index = build_index(TimetableGraph(0, []))
        report = verify_index(index)
        assert report.ok
        assert report.labels_checked == 0


class TestCorruption:
    def test_detects_wrong_arrival(self, route_graph):
        index = build_index(route_graph)
        # Corrupt: worsen one label's arrival time.
        for v in range(route_graph.n):
            if index.in_groups[v]:
                group = index.in_groups[v][0]
                group.arrs[-1] += 10_000
                break
        report = verify_index(index, label_samples=10**6, query_samples=0)
        assert not report.ok
        assert report.label_errors

    def test_detects_missing_labels(self, route_graph):
        index = build_index(route_graph)
        removed = 0
        # Corrupt: drop a whole node's in-labels (queries to it break).
        for v in range(route_graph.n):
            if index.in_groups[v]:
                index.in_groups[v] = []
                removed += 1
                if removed >= route_graph.n // 2:
                    break
        report = verify_index(index, label_samples=0, query_samples=400)
        assert not report.ok
        assert report.query_errors

    def test_detects_structural_breakage(self, route_graph):
        index = build_index(route_graph)
        for v in range(route_graph.n):
            for group in index.in_groups[v]:
                if len(group) >= 2:
                    group.deps[0], group.deps[1] = (
                        group.deps[1],
                        group.deps[0],
                    )
                    report = verify_index(
                        index, label_samples=0, query_samples=0
                    )
                    assert not report.structure_ok
                    assert "CORRUPT" in report.summary()
                    return
        pytest.skip("no group with two labels")

    def test_wrong_graph_detected(self, rng):
        graph_a = make_random_route_graph(rng, 9, 6)
        graph_b = make_random_route_graph(rng, 9, 6)
        index = build_index(graph_a)
        # Pretend the index belongs to a different timetable.
        index.graph = graph_b
        report = verify_index(index, label_samples=300, query_samples=100)
        assert not report.ok
