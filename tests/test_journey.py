"""Unit tests for query results (Journey / ConciseLeg)."""

import pytest

from repro.errors import ValidationError
from repro.graph.connection import Connection
from repro.journey import ConciseLeg, Journey


def conn(u, v, dep, arr, trip=0):
    return Connection(u, v, dep, arr, trip)


@pytest.fixture
def two_leg_journey():
    return Journey.from_path(
        [conn(0, 1, 10, 20, trip=1), conn(1, 2, 25, 40, trip=2)]
    )


class TestFromPath:
    def test_fields(self, two_leg_journey):
        j = two_leg_journey
        assert (j.source, j.destination) == (0, 2)
        assert (j.dep, j.arr) == (10, 40)
        assert j.duration == 30

    def test_transfers(self, two_leg_journey):
        assert two_leg_journey.transfers == 1

    def test_invalid_path_rejected(self):
        with pytest.raises(ValidationError):
            Journey.from_path([conn(0, 1, 10, 20), conn(5, 6, 30, 40)])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            Journey.from_path([])


class TestFromLegs:
    def test_fields(self):
        legs = [ConciseLeg(0, 1, 10), ConciseLeg(1, 2, 25)]
        j = Journey.from_legs(legs, destination=2, arr=40)
        assert (j.source, j.destination, j.dep, j.arr) == (0, 2, 10, 40)
        assert j.transfers == 1

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            Journey.from_legs([], destination=0, arr=0)


class TestToConcise:
    def test_merges_same_trip(self):
        j = Journey.from_path(
            [
                conn(0, 1, 0, 5, trip=1),
                conn(1, 2, 5, 9, trip=1),
                conn(2, 3, 12, 20, trip=2),
            ]
        )
        concise = j.to_concise()
        assert concise.legs == [ConciseLeg(0, 1, 0), ConciseLeg(2, 2, 12)]
        assert concise.same_times(j)

    def test_idempotent_on_concise(self):
        legs = [ConciseLeg(0, 1, 10)]
        j = Journey.from_legs(legs, destination=1, arr=20)
        assert j.to_concise() is j

    def test_requires_path_or_legs(self):
        j = Journey(0, 1, 0, 10)
        with pytest.raises(ValidationError):
            j.to_concise()


class TestMisc:
    def test_arrival_before_departure_rejected(self):
        with pytest.raises(ValidationError):
            Journey(0, 1, dep=10, arr=5)

    def test_same_times(self, two_leg_journey):
        other = Journey(0, 2, 10, 40)
        assert two_leg_journey.same_times(other)
        assert not two_leg_journey.same_times(Journey(0, 2, 10, 41))

    def test_transfers_unknown_without_detail(self):
        assert Journey(0, 1, 0, 10).transfers is None

    def test_describe_with_and_without_graph(
        self, two_leg_journey, line_graph
    ):
        text = two_leg_journey.describe()
        assert "s0" in text and "->" in text
        named = two_leg_journey.describe(line_graph)
        assert line_graph.station_name(0) in named

    def test_describe_concise(self):
        legs = [ConciseLeg(0, 7, 10)]
        j = Journey.from_legs(legs, destination=1, arr=20)
        assert "board trip 7" in j.describe()


class TestSerialization:
    def test_path_roundtrip(self, two_leg_journey):
        import json

        data = json.loads(json.dumps(two_leg_journey.to_dict()))
        restored = Journey.from_dict(data)
        assert restored.same_times(two_leg_journey)
        assert restored.path == two_leg_journey.path

    def test_legs_roundtrip(self):
        import json

        original = Journey.from_legs(
            [ConciseLeg(0, 1, 10), ConciseLeg(1, 2, 25)],
            destination=2,
            arr=40,
        )
        data = json.loads(json.dumps(original.to_dict()))
        restored = Journey.from_dict(data)
        assert restored.legs == original.legs
        assert restored.destination == 2

    def test_minimal_roundtrip(self):
        original = Journey(0, 1, 5, 9)
        restored = Journey.from_dict(original.to_dict())
        assert restored.path is None and restored.legs is None
        assert restored.same_times(original)
