"""Prefork serving: scoreboard arithmetic and supervisor behavior.

The end-to-end class exercises the real thing — forked workers
accepting on one shared socket, a chaos kill, a respawn — against a
small in-memory dataset, with the monotonic-aggregate invariant the
CI smoke job also asserts.
"""

import json
import random
import time
import urllib.error
import urllib.request

import pytest

from repro.core import TTLPlanner, build_index
from repro.errors import ServiceNotReady
from repro.serving import COUNTER_FIELDS, Scoreboard, ServingSupervisor
from tests.conftest import make_random_route_graph


def get(port, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=10
    ) as response:
        return response.status, json.loads(response.read())


def post(port, path, body):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


class TestScoreboard:
    def test_publish_and_read_back(self):
        board = Scoreboard(2)
        board.publish(
            0, {"requests": 5, "queries": 3}, pid=123, generation=1
        )
        row = board.row(0)
        assert row["pid"] == 123
        assert row["generation"] == 1
        assert row["alive"]
        assert row["counters"]["requests"] == 5
        assert row["counters"]["queries"] == 3
        assert row["counters"]["shed"] == 0

    def test_unpublished_worker_is_dead(self):
        board = Scoreboard(2)
        row = board.row(1)
        assert not row["alive"]
        assert row["pid"] == 0
        assert row["heartbeat_age_s"] is None

    def test_stale_heartbeat_is_dead(self):
        board = Scoreboard(1, liveness_timeout_s=0.5)
        board.publish(0, {}, pid=9, now=time.monotonic() - 10.0)
        assert not board.row(0)["alive"]

    def test_liveness_ignores_wall_clock_steps(self):
        # Regression: liveness used time.time(), so an NTP step could
        # mark healthy workers dead (forward jump) or report negative
        # heartbeat ages (backward jump).  Liveness math must run
        # exclusively on the fake *monotonic* stamps below, no matter
        # how absurd the wall clock gets.
        board = Scoreboard(1, liveness_timeout_s=2.0)
        fake_mono = 1000.0
        for wall in (0.0, 1e9, 123.456):  # wall clock jumping wildly
            board.publish(0, {}, pid=9, now=fake_mono, wall=wall)
            row = board.row(0, now=fake_mono + 0.5)
            assert row["alive"]
            assert row["heartbeat_age_s"] == 0.5
            assert row["last_heartbeat_unix"] == round(wall, 3)
        # Expiry is likewise a monotonic-only decision.
        assert not board.row(0, now=fake_mono + 3.0)["alive"]

    def test_totals_sum_workers(self):
        board = Scoreboard(2)
        board.publish(0, {"requests": 5, "labels_scanned": 100})
        board.publish(1, {"requests": 7, "labels_scanned": 50})
        totals = board.totals()
        assert totals["requests"] == 12
        assert totals["labels_scanned"] == 150

    def test_retire_keeps_totals_monotonic(self):
        board = Scoreboard(2)
        board.publish(0, {"requests": 5})
        board.publish(1, {"requests": 7})
        before = board.totals()
        board.retire(0)
        # Slot cleared, counters preserved in the retired row.
        assert board.row(0)["pid"] == 0
        assert board.totals() == before
        assert board.retired_totals()["requests"] == 5
        # The replacement starts from zero; totals only grow.
        board.publish(0, {"requests": 2}, pid=321, generation=2)
        assert board.totals()["requests"] == 14

    def test_counter_fields_match_service(self):
        from repro.service import PlannerService

        graph = make_random_route_graph(random.Random(5), 6, 3)
        service = PlannerService(TTLPlanner(graph))
        assert set(service.counters()) == set(COUNTER_FIELDS)

    def test_live_generation_and_journal_seq_published(self):
        # Convergence state is identity, not a counter: it must show
        # per row and must never leak into the summed totals.
        board = Scoreboard(2)
        board.publish(0, {}, pid=1, live_generation=7, journal_seq=12)
        board.publish(1, {}, pid=2)
        assert board.row(0)["live_generation"] == 7
        assert board.row(0)["journal_seq"] == 12
        assert board.row(1)["live_generation"] == 0
        assert "live_generation" not in board.totals()
        assert "journal_seq" not in board.totals()

    def test_retire_clears_convergence_state(self):
        board = Scoreboard(1)
        board.publish(0, {}, pid=1, live_generation=7, journal_seq=12)
        board.retire(0)
        assert board.row(0)["journal_seq"] == 0
        assert board.row(0)["live_generation"] == 0

    def test_bad_worker_id_rejected(self):
        board = Scoreboard(2)
        with pytest.raises(ValueError, match="worker id"):
            board.publish(2, {})
        with pytest.raises(ValueError):
            Scoreboard(0)


@pytest.fixture(scope="module")
def cluster(request):
    graph = make_random_route_graph(random.Random(23), 12, 7)
    index = build_index(graph)
    supervisor = ServingSupervisor(
        lambda: TTLPlanner(graph, index=index),
        workers=2,
        heartbeat_interval_s=0.1,
        respawn_backoff_s=0.05,
    )
    port = supervisor.start()
    supervisor.wait_ready(timeout_s=30)
    request.addfinalizer(supervisor.stop)
    return graph, supervisor, port


class TestSupervisor:
    def test_both_workers_alive_in_healthz(self, cluster):
        _, supervisor, port = cluster
        _, body = get(port, "/v1/healthz")
        workers = body["data"]["workers"]
        assert len(workers) == 2
        assert all(w["alive"] for w in workers)
        assert len(supervisor.worker_pids()) == 2

    def test_queries_answered_with_worker_identity(self, cluster):
        graph, _, port = cluster
        seen = set()
        for i in range(40):
            status, body = get(
                port, f"/v1/eap?from={i % graph.n}&to={(i + 3) % graph.n}&t=0"
            )
            assert status == 200
            seen.add(body["meta"]["worker"])
        # The kernel load-balances; with 40 requests both workers
        # should have answered at least once.
        assert seen <= {0, 1}

    def test_batch_over_shared_socket(self, cluster):
        graph, _, port = cluster
        status, body = post(
            port,
            "/v1/batch",
            {
                "kind": "one_to_many",
                "source": 0,
                "targets": list(range(graph.n)),
                "t": 0,
            },
        )
        assert status == 200
        assert len(body["data"]["arrivals"]) == graph.n

    def test_metrics_aggregate_cluster(self, cluster):
        _, _, port = cluster
        _, body = get(port, "/metrics")
        cluster_view = body["cluster"]
        assert len(cluster_view["workers"]) == 2
        assert set(cluster_view["totals"]) == set(COUNTER_FIELDS)
        assert cluster_view["totals"]["requests"] > 0

    def test_kill_respawn_and_monotonic_totals(self, cluster):
        graph, supervisor, port = cluster
        for i in range(10):
            get(port, f"/v1/eap?from={i % graph.n}&to={(i + 1) % graph.n}&t=0")
        _, body = get(port, "/metrics")
        before = body["cluster"]["totals"]

        old_pid = supervisor.kill_worker(0)
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            pids = supervisor.worker_pids()
            if len(pids) == 2 and pids.get(0) not in (None, old_pid):
                break
            time.sleep(0.05)
        else:
            pytest.fail("worker 0 was not respawned")
        assert supervisor.respawns >= 1

        # The replacement serves, and aggregated counters never move
        # backwards despite a worker's in-memory counters dying with it.
        for i in range(10):
            status, _ = get(
                port, f"/v1/eap?from={i % graph.n}&to={(i + 2) % graph.n}&t=0"
            )
            assert status == 200
        _, body = get(port, "/metrics")
        after = body["cluster"]["totals"]
        for field in COUNTER_FIELDS:
            assert after[field] >= before[field], field

    def test_wait_ready_times_out_cleanly(self):
        graph = make_random_route_graph(random.Random(3), 5, 3)

        def factory():
            raise RuntimeError("factory deliberately broken")

        supervisor = ServingSupervisor(
            factory, workers=1, respawn=False, heartbeat_interval_s=0.1
        )
        supervisor.start()
        try:
            with pytest.raises(ServiceNotReady):
                supervisor.wait_ready(timeout_s=1.0)
        finally:
            supervisor.stop()
