"""Smoke tests for the ``repro-ttl`` command-line interface."""

import pytest

from repro.cli import main


class TestDatasets:
    def test_lists_catalogue(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "Austin" in out and "Sweden" in out

    def test_info(self, capsys):
        assert main(["info", "Austin", "--scale", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "stations" in out and "connections" in out


class TestGenerate:
    def test_writes_csv_bundle(self, tmp_path, capsys):
        assert (
            main(["generate", "Austin", str(tmp_path), "--scale", "0.4"]) == 0
        )
        assert (tmp_path / "stations.csv").exists()
        assert (tmp_path / "routes.csv").exists()
        assert (tmp_path / "stop_times.csv").exists()


class TestBuildAndQuery:
    def test_build_saves_index(self, tmp_path, capsys):
        index_path = tmp_path / "austin.ttl"
        assert (
            main(
                ["build", "Austin", str(index_path), "--scale", "0.4"]
            )
            == 0
        )
        assert index_path.exists()
        out = capsys.readouterr().out
        assert "labels" in out
        assert "building:" in out  # progress line

    def test_query_all_methods_agree(self, tmp_path, capsys):
        assert (
            main(
                [
                    "query", "Austin", "eap", "0", "10",
                    "--start", "08:00", "--scale", "0.4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.strip()]
        assert len(lines) == 5  # Dijkstra, CSA, CHT, TTL, C-TTL
        arrs = {line.split("arr")[1].split()[0] for line in lines if "arr" in line}
        assert len(arrs) <= 1  # all methods agree (or all infeasible)

    def test_query_with_saved_index(self, tmp_path, capsys):
        index_path = tmp_path / "a.ttl"
        main(["build", "Austin", str(index_path), "--scale", "0.4"])
        capsys.readouterr()
        assert (
            main(
                [
                    "query", "Austin", "sdp", "0", "10",
                    "--start", "07:00", "--end", "12:00",
                    "--index", str(index_path), "--scale", "0.4",
                ]
            )
            == 0
        )

    def test_query_missing_time_flag(self, capsys):
        assert (
            main(["query", "Austin", "eap", "0", "1", "--scale", "0.4"]) == 2
        )

    def test_query_stats_prints_metrics(self, capsys):
        assert (
            main(
                [
                    "query", "Austin", "eap", "0", "10",
                    "--start", "08:00", "--scale", "0.4", "--stats",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "per-planner query metrics:" in out
        assert "queries=1" in out
        assert "labels_scanned=" in out
        # Both labelling planners report their counters.
        stats_lines = [l for l in out.splitlines() if "queries=" in l]
        names = {line.split()[0] for line in stats_lines}
        assert {"TTL", "C-TTL"} <= names


class TestAnalyzeAndProfile:
    def test_analyze(self, capsys):
        assert main(["analyze", "Austin", "--scale", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "reachability" in out
        assert "labels total" in out
        assert "hubs carry" in out

    def test_profile_happy_path(self, capsys):
        assert (
            main(
                [
                    "profile", "Austin", "0", "10",
                    "--start", "06:00", "--end", "22:00",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "depart" in out or "no feasible" in out


class TestBench:
    def test_table3(self, capsys):
        assert (
            main(
                [
                    "bench", "table3",
                    "--datasets", "Austin", "--scale", "0.4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Table 3" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "figure99"])


class TestErrorHandling:
    def test_unknown_dataset_clean_error(self, capsys):
        assert main(["info", "Atlantis"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_time_clean_error(self, capsys):
        assert (
            main(["query", "Austin", "eap", "0", "1",
                  "--start", "nonsense", "--scale", "0.4"])
            == 2
        )
        assert "error:" in capsys.readouterr().err

    def test_verify_missing_index_clean_error(self, capsys, tmp_path):
        missing = tmp_path / "nope.ttl"
        missing.write_bytes(b"JUNKJUNK")
        assert (
            main(["verify", "Austin", str(missing), "--scale", "0.4"]) == 2
        )
        assert "error:" in capsys.readouterr().err


class TestLive:
    def test_live_replay_reports_stats(self, capsys):
        assert (
            main(["live", "Austin", "--scale", "0.4", "--rate", "0.1",
                  "--queries", "30"])
            == 0
        )
        out = capsys.readouterr().out
        assert "fast path" in out and "fallbacks" in out
        assert "tainted" in out

    def test_live_feed_file(self, capsys, tmp_path):
        from repro.datasets import load_dataset
        from repro.live import (
            EventFeed,
            TimedEvent,
            TripCancellation,
        )

        graph = load_dataset("Austin", scale=0.4)
        trip_id = sorted(graph.trips)[0]
        feed = EventFeed([TimedEvent(0, TripCancellation(trip_id=trip_id))])
        path = tmp_path / "feed.json"
        path.write_text(feed.to_json())
        assert (
            main(["live", "Austin", "--scale", "0.4", "--feed", str(path),
                  "--queries", "12", "-v"])
            == 0
        )
        out = capsys.readouterr().out
        assert "1 applied" in out

    def test_live_bad_rate_clean_error(self, capsys):
        assert (
            main(["live", "Austin", "--scale", "0.4", "--rate", "7"]) == 2
        )
        assert "error:" in capsys.readouterr().err
