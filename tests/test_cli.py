"""Smoke tests for the ``repro-ttl`` command-line interface."""

import pytest

from repro.cli import main


class TestDatasets:
    def test_lists_catalogue(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "Austin" in out and "Sweden" in out

    def test_info(self, capsys):
        assert main(["info", "Austin", "--scale", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "stations" in out and "connections" in out


class TestGenerate:
    def test_writes_csv_bundle(self, tmp_path, capsys):
        assert (
            main(["generate", "Austin", str(tmp_path), "--scale", "0.4"]) == 0
        )
        assert (tmp_path / "stations.csv").exists()
        assert (tmp_path / "routes.csv").exists()
        assert (tmp_path / "stop_times.csv").exists()


class TestBuildAndQuery:
    def test_build_saves_index(self, tmp_path, capsys):
        index_path = tmp_path / "austin.ttl"
        assert (
            main(
                ["build", "Austin", str(index_path), "--scale", "0.4"]
            )
            == 0
        )
        assert index_path.exists()
        out = capsys.readouterr().out
        assert "labels" in out
        assert "building:" in out  # progress line

    def test_query_all_methods_agree(self, tmp_path, capsys):
        assert (
            main(
                [
                    "query", "Austin", "eap", "0", "10",
                    "--start", "08:00", "--scale", "0.4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.strip()]
        assert len(lines) == 5  # Dijkstra, CSA, CHT, TTL, C-TTL
        arrs = {line.split("arr")[1].split()[0] for line in lines if "arr" in line}
        assert len(arrs) <= 1  # all methods agree (or all infeasible)

    def test_query_with_saved_index(self, tmp_path, capsys):
        index_path = tmp_path / "a.ttl"
        main(["build", "Austin", str(index_path), "--scale", "0.4"])
        capsys.readouterr()
        assert (
            main(
                [
                    "query", "Austin", "sdp", "0", "10",
                    "--start", "07:00", "--end", "12:00",
                    "--index", str(index_path), "--scale", "0.4",
                ]
            )
            == 0
        )

    def test_query_missing_time_flag(self, capsys):
        assert (
            main(["query", "Austin", "eap", "0", "1", "--scale", "0.4"]) == 2
        )

    def test_query_stats_prints_metrics(self, capsys):
        assert (
            main(
                [
                    "query", "Austin", "eap", "0", "10",
                    "--start", "08:00", "--scale", "0.4", "--stats",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "per-planner query metrics:" in out
        assert "queries=1" in out
        assert "labels_scanned=" in out
        # Both labelling planners report their counters.
        stats_lines = [l for l in out.splitlines() if "queries=" in l]
        names = {line.split()[0] for line in stats_lines}
        assert {"TTL", "C-TTL"} <= names


class TestAnalyzeAndProfile:
    def test_analyze(self, capsys):
        assert main(["analyze", "Austin", "--scale", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "reachability" in out
        assert "labels total" in out
        assert "hubs carry" in out

    def test_profile_happy_path(self, capsys):
        assert (
            main(
                [
                    "profile", "Austin", "0", "10",
                    "--start", "06:00", "--end", "22:00",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "depart" in out or "no feasible" in out


class TestBench:
    def test_table3(self, capsys):
        assert (
            main(
                [
                    "bench", "table3",
                    "--datasets", "Austin", "--scale", "0.4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Table 3" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "figure99"])


class TestErrorHandling:
    def test_unknown_dataset_clean_error(self, capsys):
        assert main(["info", "Atlantis"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_time_clean_error(self, capsys):
        assert (
            main(["query", "Austin", "eap", "0", "1",
                  "--start", "nonsense", "--scale", "0.4"])
            == 2
        )
        assert "error:" in capsys.readouterr().err

    def test_verify_missing_index_clean_error(self, capsys, tmp_path):
        missing = tmp_path / "nope.ttl"
        missing.write_bytes(b"JUNKJUNK")
        assert (
            main(["verify", "Austin", str(missing), "--scale", "0.4"]) == 2
        )
        assert "error:" in capsys.readouterr().err


class TestLive:
    def test_live_replay_reports_stats(self, capsys):
        assert (
            main(["live", "Austin", "--scale", "0.4", "--rate", "0.1",
                  "--queries", "30"])
            == 0
        )
        out = capsys.readouterr().out
        assert "fast path" in out and "fallbacks" in out
        assert "tainted" in out

    def test_live_feed_file(self, capsys, tmp_path):
        from repro.datasets import load_dataset
        from repro.live import (
            EventFeed,
            TimedEvent,
            TripCancellation,
        )

        graph = load_dataset("Austin", scale=0.4)
        trip_id = sorted(graph.trips)[0]
        feed = EventFeed([TimedEvent(0, TripCancellation(trip_id=trip_id))])
        path = tmp_path / "feed.json"
        path.write_text(feed.to_json())
        assert (
            main(["live", "Austin", "--scale", "0.4", "--feed", str(path),
                  "--queries", "12", "-v"])
            == 0
        )
        out = capsys.readouterr().out
        assert "1 applied" in out

    def test_live_bad_rate_clean_error(self, capsys):
        assert (
            main(["live", "Austin", "--scale", "0.4", "--rate", "7"]) == 2
        )
        assert "error:" in capsys.readouterr().err


class TestSeedFlag:
    def test_seed_changes_generated_data(self, tmp_path, capsys):
        first = tmp_path / "a"
        second = tmp_path / "b"
        third = tmp_path / "c"
        for target, seed in ((first, "5"), (second, "5"), (third, "6")):
            assert (
                main(
                    [
                        "generate", "Austin", str(target),
                        "--scale", "0.4", "--seed", seed,
                    ]
                )
                == 0
            )
        same = (first / "stop_times.csv").read_bytes()
        assert same == (second / "stop_times.csv").read_bytes()
        assert same != (third / "stop_times.csv").read_bytes()

    def test_info_accepts_seed(self, capsys):
        assert main(["info", "Austin", "--scale", "0.4", "--seed", "9"]) == 0
        assert "stations" in capsys.readouterr().out


def assert_index_files_equal(first, second):
    """Two saved indexes carry identical labels and ranks.

    The whole files are not compared byte for byte because the footer
    records build wall-clock stats, which legitimately differ.
    """
    from repro.core.serialize import load_index
    from repro.datasets import load_dataset

    graph = load_dataset("Austin", 0.4)
    a = load_index(first, graph)
    b = load_index(second, graph)
    assert a.ranks == b.ranks
    for direction in ("in_store", "out_store"):
        for column in ("node_starts", "group_starts", "hubs",
                       "deps", "arrs", "trips", "pivots"):
            assert list(getattr(getattr(a, direction), column)) == list(
                getattr(getattr(b, direction), column)
            ), f"{direction}.{column} differs"


class TestBuildFarmCli:
    def test_parallel_build_writes_identical_index(self, tmp_path, capsys):
        serial = tmp_path / "serial.ttl"
        parallel = tmp_path / "parallel.ttl"
        assert main(["build", "Austin", str(serial), "--scale", "0.4"]) == 0
        assert (
            main(
                [
                    "build", "Austin", str(parallel),
                    "--scale", "0.4", "--jobs", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "pipeline" in out and "jobs 2" in out
        assert_index_files_equal(serial, parallel)

    def test_kill_and_resume_round_trip(self, tmp_path, capsys):
        serial = tmp_path / "serial.ttl"
        resumed = tmp_path / "resumed.ttl"
        ckpt = tmp_path / "ck"
        assert main(["build", "Austin", str(serial), "--scale", "0.4"]) == 0
        assert (
            main(
                [
                    "build", "Austin", str(resumed), "--scale", "0.4",
                    "--jobs", "2", "--chunk-size", "4",
                    "--checkpoint-dir", str(ckpt),
                    "--fail-after-chunks", "1",
                ]
            )
            == 2
        )
        assert not resumed.exists()
        assert (
            main(
                [
                    "build", "Austin", str(resumed), "--scale", "0.4",
                    "--jobs", "2", "--chunk-size", "4",
                    "--checkpoint-dir", str(ckpt), "--resume",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "resumed" in out
        assert_index_files_equal(serial, resumed)
