"""Unit tests for label records and groups."""

import pytest

from repro.core.label import Label, LabelGroup, total_label_count


class TestLabel:
    def test_fields(self):
        label = Label(hub=3, dep=10, arr=20, trip=5, pivot=None)
        assert label.hub == 3
        assert label.trip == 5
        assert label.pivot is None


class TestLabelGroup:
    def test_append_and_read(self):
        group = LabelGroup(hub=2, rank=0)
        group.append(10, 20, 5, None)
        group.append(30, 40, None, 7)
        assert len(group) == 2
        assert group.label(0) == Label(2, 10, 20, 5, None)
        assert group.labels()[1] == Label(2, 30, 40, None, 7)

    def test_reverse(self):
        group = LabelGroup(hub=1, rank=0)
        group.append(30, 40, None, None)
        group.append(10, 20, None, None)
        group.reverse()
        assert group.deps == [10, 30]
        assert group.arrs == [20, 40]

    def test_invariants_pass_on_staircase(self):
        group = LabelGroup(
            hub=1, rank=0, deps=[1, 5], arrs=[3, 9],
            trips=[None, None], pivots=[None, None],
        )
        group.check_invariants()

    def test_invariants_fail_on_equal_deps(self):
        group = LabelGroup(
            hub=1, rank=0, deps=[1, 1], arrs=[3, 9],
            trips=[None, None], pivots=[None, None],
        )
        with pytest.raises(AssertionError):
            group.check_invariants()

    def test_invariants_fail_on_nonincreasing_arrs(self):
        group = LabelGroup(
            hub=1, rank=0, deps=[1, 5], arrs=[9, 3],
            trips=[None, None], pivots=[None, None],
        )
        with pytest.raises(AssertionError):
            group.check_invariants()


class TestTotalLabelCount:
    def test_counts(self):
        g1 = LabelGroup(0, 0, [1], [2], [None], [None])
        g2 = LabelGroup(1, 1, [1, 3], [2, 4], [None, None], [None, None])
        assert total_label_count([[g1], [g2], []]) == 3
