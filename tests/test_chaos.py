"""End-to-end chaos suite: injected faults over real HTTP.

Each test starts a real :class:`~repro.service.PlannerService` with a
seeded :class:`~repro.resilience.FaultPlan` and asserts that every
injected failure surfaces as its *documented* status code — never a
crash, never a hung socket — and that the service recovers to exact
answers once the faults are exhausted.  The suite is parametrized over
committed seeds so CI replays identical failure sequences.
"""

import json
import random
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core import TTLPlanner
from repro.live import LiveOverlayEngine
from repro.resilience import (
    CLOSED,
    CircuitBreaker,
    FaultPlan,
    FaultRule,
    ResilienceConfig,
)
from repro.service import PlannerService
from tests.conftest import make_random_route_graph

#: Committed chaos seeds: CI replays these exact failure sequences.
SEEDS = (11, 23, 47)

pytestmark = pytest.mark.parametrize("seed", SEEDS)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def fetch(port, path):
    """GET that never raises on HTTP errors: (status, headers, body)."""
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=10
        ) as response:
            return response.status, dict(response.headers), json.loads(
                response.read()
            )
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), json.loads(err.read())


def post(port, path, body):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


def feasible_pair(graph, planner):
    """First (u, v) with a non-trivial journey at t=0."""
    for u in range(graph.n):
        for v in range(graph.n):
            if u == v:
                continue
            journey = planner.earliest_arrival(u, v, 0)
            if journey is not None and journey.path:
                return u, v, journey
    pytest.skip("no feasible pair in sampled graph")


def start_service(request, planner, config, plan=None, breaker=None,
                  warm=True):
    svc = PlannerService(
        planner, resilience=config, fault_plan=plan, breaker=breaker
    )
    port = svc.start(port=0, warm=warm)
    request.addfinalizer(svc.stop)
    return svc, port


class TestLatencyToDeadline:
    def test_injected_latency_maps_to_504_then_recovers(self, request, seed):
        graph = make_random_route_graph(random.Random(seed), 10, 7)
        planner = TTLPlanner(graph)
        u, v, _ = feasible_pair(graph, planner)
        plan = FaultPlan(
            rules=[
                FaultRule(site="planner.query", kind="latency",
                          seconds=0.2, times=1)
            ],
            seed=seed,
        )
        _, port = start_service(
            request, planner, ResilienceConfig(deadline_ms=50.0), plan
        )
        status, _, body = fetch(port, f"/eap?from={u}&to={v}&t=0")
        assert status == 504
        assert "deadline" in body["error"]
        # Fault exhausted: the very next request is healthy and exact.
        status, _, body = fetch(port, f"/eap?from={u}&to={v}&t=0")
        assert status == 200
        expected = planner.earliest_arrival(u, v, 0)
        assert body["journey"]["arr"] == expected.arr
        _, _, snap = fetch(port, "/resilience")
        assert snap["deadline_exceeded"] == 1


class TestClockSkew:
    def test_clock_skew_eats_budget_maps_to_504(self, request, seed):
        graph = make_random_route_graph(random.Random(seed), 10, 7)
        planner = TTLPlanner(graph)
        u, v, _ = feasible_pair(graph, planner)
        plan = FaultPlan(
            rules=[
                FaultRule(site="clock", kind="clock_skew", seconds=10.0,
                          times=1)
            ],
            seed=seed,
        )
        _, port = start_service(
            request, planner, ResilienceConfig(deadline_ms=100.0), plan
        )
        status, _, _ = fetch(port, f"/eap?from={u}&to={v}&t=0")
        assert status == 504
        status, _, _ = fetch(port, f"/eap?from={u}&to={v}&t=0")
        assert status == 200


class TestSaturation:
    def test_saturated_gate_sheds_429_and_readiness_503(
        self, request, seed
    ):
        graph = make_random_route_graph(random.Random(seed), 10, 7)
        planner = TTLPlanner(graph)
        u, v, _ = feasible_pair(graph, planner)
        plan = FaultPlan(
            rules=[
                # A lock-hold spike: the admitted request sits on the
                # planner lock while the gate stays full behind it.
                FaultRule(site="service.lock", kind="latency",
                          seconds=1.0, times=1)
            ],
            seed=seed,
        )
        config = ResilienceConfig(
            deadline_ms=10_000.0,
            max_inflight=1,
            retry_after_s=2.0,
            shed_grace_s=0.5,
        )
        _, port = start_service(request, planner, config, plan)

        slow_result = {}

        def slow_request():
            slow_result["status"] = fetch(
                port, f"/eap?from={u}&to={v}&t=0"
            )[0]

        worker = threading.Thread(target=slow_request)
        worker.start()
        # Wait until the slow request occupies the only slot.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            _, _, snap = fetch(port, "/resilience")
            if snap["admission"]["inflight"] >= 1:
                break
            time.sleep(0.01)
        else:
            pytest.fail("slow request never occupied the gate")

        status, headers, body = fetch(port, f"/eap?from={u}&to={v}&t=0")
        assert status == 429
        assert headers["Retry-After"] == "2"
        assert "in-flight" in body["error"]

        # Readiness flips 503 while shedding (inside the grace window).
        status, headers, _ = fetch(port, "/healthz/ready")
        assert status == 503
        assert "Retry-After" in headers
        # Liveness never flips.
        assert fetch(port, "/healthz/live")[0] == 200

        worker.join(timeout=10)
        assert slow_result["status"] == 200  # the admitted one finished
        time.sleep(0.6)  # let the shed grace window lapse
        assert fetch(port, "/healthz/ready")[0] == 200
        assert fetch(port, f"/eap?from={u}&to={v}&t=0")[0] == 200


class TestPreReady:
    def test_warming_service_answers_503_until_ready(self, request, seed):
        graph = make_random_route_graph(random.Random(seed), 10, 7)
        planner = TTLPlanner(graph)
        plan = FaultPlan(
            rules=[
                FaultRule(site="service.preprocess", kind="latency",
                          seconds=0.75, times=1)
            ],
            seed=seed,
        )
        svc, port = start_service(
            request, planner, ResilienceConfig(), plan, warm=False
        )

        status, _, body = fetch(port, "/healthz")
        assert status == 200
        if not svc.ready:  # raced only if warm-up beat us despite the fault
            assert body["ready"] is False
            status, headers, body = fetch(port, "/healthz/ready")
            assert status == 503
            assert "Retry-After" in headers
            status, _, body = fetch(port, "/eap?from=0&to=1&t=0")
            assert status == 503
            assert "warming" in body["error"]
        assert fetch(port, "/healthz/live")[0] == 200

        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if fetch(port, "/healthz/ready")[0] == 200:
                break
            time.sleep(0.05)
        else:
            pytest.fail("service never became ready")
        assert fetch(port, "/eap?from=0&to=1&t=0")[0] == 200
        assert fetch(port, "/healthz")[2]["ready"] is True


class TestBreakerDegradation:
    def test_tripped_breaker_serves_frozen_answers_then_recovers(
        self, request, seed
    ):
        graph = make_random_route_graph(random.Random(seed), 10, 7)
        engine = LiveOverlayEngine(graph)
        frozen = TTLPlanner(graph)
        u, v, frozen_journey = feasible_pair(graph, frozen)

        clock = FakeClock()
        breaker = CircuitBreaker(
            window=8,
            min_samples=2,
            failure_threshold=0.5,
            slow_threshold_s=0.05,
            cooldown_s=60.0,
            clock=clock,
        )
        plan = FaultPlan(
            rules=[
                FaultRule(site="live.exact", kind="latency",
                          seconds=0.1, times=2)
            ],
            seed=seed,
        )
        _, port = start_service(
            request, engine, ResilienceConfig(deadline_ms=10_000.0),
            plan, breaker=breaker,
        )

        # Disrupt the trip the frozen journey rides, so exact overlay
        # answers can genuinely differ from frozen ones.
        disrupted_trip = frozen_journey.path[0][4]
        post(port, "/live/events",
             {"kind": "delay", "trip_id": disrupted_trip, "delay": 300})
        exact = engine.earliest_arrival(u, v, 0)

        # Two slow exact answers feed the breaker past its threshold.
        for _ in range(2):
            status, _, body = fetch(port, f"/eap?from={u}&to={v}&t=0")
            assert status == 200
            assert body["degraded"] is False
            if exact is None:
                assert body["journey"] is None
            else:
                assert body["journey"]["arr"] == exact.arr
        assert breaker.state == "open"

        # Tripped: answers come from the frozen timetable, flagged.
        status, _, body = fetch(port, f"/eap?from={u}&to={v}&t=0")
        assert status == 200
        assert body["degraded"] is True
        assert body["journey"]["arr"] == frozen_journey.arr
        _, _, snap = fetch(port, "/resilience")
        assert snap["degraded_served"] >= 1
        assert snap["breaker"]["state"] == "open"

        # Cooldown elapses (fake clock); the latency faults are
        # exhausted, so the half-open probe is fast and closes the
        # circuit — answers are exact (overlay) again.
        clock.advance(60.0)
        status, _, body = fetch(port, f"/eap?from={u}&to={v}&t=0")
        assert status == 200
        assert body["degraded"] is False
        if exact is None:
            assert body["journey"] is None
        else:
            assert body["journey"]["arr"] == exact.arr
        assert breaker.state == CLOSED


class TestInjectedError:
    def test_injected_exception_maps_to_500_and_server_survives(
        self, request, seed
    ):
        graph = make_random_route_graph(random.Random(seed), 10, 7)
        planner = TTLPlanner(graph)
        u, v, _ = feasible_pair(graph, planner)
        plan = FaultPlan(
            rules=[
                FaultRule(site="planner.query", kind="error", times=1,
                          message="chaos monkey")
            ],
            seed=seed,
        )
        _, port = start_service(request, planner, ResilienceConfig(), plan)
        status, headers, body = fetch(port, f"/eap?from={u}&to={v}&t=0")
        assert status == 500
        assert headers["Content-Type"] == "application/json"
        assert "chaos monkey" in body["error"]
        # The handler thread survived; service keeps answering.
        assert fetch(port, f"/eap?from={u}&to={v}&t=0")[0] == 200
        assert fetch(port, "/healthz")[0] == 200
