"""The unified query surface: ``QueryRequest`` validation,
``RoutePlanner.plan`` dispatch, and the typed capability error."""

import json
import random
import urllib.error
import urllib.request

import pytest

from repro.algorithms.temporal_dijkstra import DijkstraPlanner
from repro.baselines.csa import CSAPlanner
from repro.core import TTLPlanner
from repro.errors import QueryError, UnsupportedQueryError
from repro.query import QUERY_TYPES, QueryRequest
from tests.conftest import make_random_route_graph


def _dump(journey):
    return None if journey is None else journey.to_dict()


@pytest.fixture(scope="module")
def setting():
    rng = random.Random(31)
    graph = make_random_route_graph(rng, 12, 8)
    planner = TTLPlanner(graph)
    planner.preprocess()
    return graph, planner


class TestValidation:
    def test_unknown_type(self):
        with pytest.raises(QueryError, match="unknown query type"):
            QueryRequest("teleport", 0, 1, t=0).validated()

    @pytest.mark.parametrize("kind", ["eap", "sdp", "profile"])
    def test_missing_t(self, kind):
        with pytest.raises(QueryError, match="requires t "):
            QueryRequest(kind, 0, 1, t=None, t_end=100).validated()

    @pytest.mark.parametrize("kind", ["ldp", "sdp", "profile"])
    def test_missing_t_end(self, kind):
        with pytest.raises(QueryError, match="requires t_end"):
            QueryRequest(kind, 0, 1, t=0, t_end=None).validated()

    def test_bad_max_results(self):
        with pytest.raises(QueryError, match="max_results"):
            QueryRequest("profile", 0, 1, t=0, t_end=9, max_results=0
                         ).validated()

    def test_validated_chains(self):
        request = QueryRequest("eap", 0, 1, t=0)
        assert request.validated() is request

    def test_hashable_and_frozen(self):
        request = QueryRequest("eap", 0, 1, t=0)
        assert hash(request) == hash(QueryRequest("eap", 0, 1, t=0))
        with pytest.raises(AttributeError):
            request.t = 5


class TestPlanDispatch:
    def test_matches_direct_methods(self, setting):
        graph, planner = setting
        rng = random.Random(5)
        for _ in range(25):
            u = rng.randrange(graph.n)
            v = rng.randrange(graph.n)
            t = rng.randrange(0, 250)
            t_end = t + rng.randrange(0, 250)
            eap = planner.plan(QueryRequest("eap", u, v, t=t))
            assert _dump(eap.journey) == _dump(
                planner.earliest_arrival(u, v, t)
            )
            ldp = planner.plan(QueryRequest("ldp", u, v, t_end=t_end))
            assert _dump(ldp.journey) == _dump(
                planner.latest_departure(u, v, t_end)
            )
            sdp = planner.plan(
                QueryRequest("sdp", u, v, t=t, t_end=t_end)
            )
            assert _dump(sdp.journey) == _dump(
                planner.shortest_duration(u, v, t, t_end)
            )
            prof = planner.plan(
                QueryRequest("profile", u, v, t=t, t_end=t_end)
            )
            assert list(prof.pairs) == [
                tuple(p) for p in planner.profile(u, v, t, t_end)
            ]

    def test_feasible_semantics(self, setting):
        graph, planner = setting
        result = planner.plan(QueryRequest("eap", 0, 1, t=0))
        assert result.feasible == (result.journey is not None)
        prof = planner.plan(QueryRequest("profile", 0, 1, t=0, t_end=300))
        assert prof.feasible == bool(prof.pairs)

    def test_max_results_truncates(self, setting):
        graph, planner = setting
        full = None
        for u in range(graph.n):
            for v in range(graph.n):
                if u == v:
                    continue
                pairs = planner.profile(u, v, 0, 400)
                if len(pairs) >= 2:
                    full = (u, v, pairs)
                    break
            if full:
                break
        assert full is not None, "workload has no multi-pair profile"
        u, v, pairs = full
        result = planner.plan(
            QueryRequest("profile", u, v, t=0, t_end=400, max_results=1)
        )
        assert list(result.pairs) == [tuple(pairs[0])]

    def test_plan_validates(self, setting):
        graph, planner = setting
        with pytest.raises(QueryError):
            planner.plan(QueryRequest("eap", 0, 1))

    def test_all_types_through_dijkstra_oracle(self, setting):
        graph, ttl = setting
        oracle = DijkstraPlanner(graph)
        oracle.preprocess()
        for kind in QUERY_TYPES:
            request = QueryRequest(kind, 0, 3, t=0, t_end=400)
            a = ttl.plan(request)
            b = oracle.plan(request)
            if kind == "profile":
                assert a.pairs == b.pairs
            else:
                feasible = a.journey is not None
                assert feasible == (b.journey is not None)
                if feasible and kind == "eap":
                    assert a.journey.arr == b.journey.arr


class TestCapabilityError:
    def test_csa_profile_unsupported(self, setting):
        graph, _ = setting
        csa = CSAPlanner(graph)
        csa.preprocess()
        with pytest.raises(UnsupportedQueryError) as err:
            csa.plan(QueryRequest("profile", 0, 1, t=0, t_end=100))
        assert "CSA" in str(err.value)
        assert "profile" in str(err.value)

    def test_is_a_query_error(self):
        assert issubclass(UnsupportedQueryError, QueryError)

    def test_service_maps_to_400(self, setting):
        from repro.service import PlannerService

        graph, _ = setting
        svc = PlannerService(CSAPlanner(graph))
        port = svc.start(port=0)
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/profile"
                    "?from=0&to=1&t=0&t_end=100",
                    timeout=10,
                )
            assert err.value.code == 400
            body = json.loads(err.value.read())
            assert "profile" in body["error"]
        finally:
            svc.stop()
