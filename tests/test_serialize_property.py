"""Property-based serialization roundtrips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.build import build_index
from repro.core.serialize import load_index, save_index
from repro.graph.builders import graph_from_connections
from repro.graph.gtfs import load_graph_csv, save_graph_csv


@st.composite
def small_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=7))
    m = draw(st.integers(min_value=1, max_value=20))
    conns = []
    for _ in range(m):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            v = (v + 1) % n
        dep = draw(st.integers(min_value=0, max_value=100))
        conns.append((u, v, dep, dep + draw(st.integers(1, 40))))
    return graph_from_connections(conns, n)


@given(small_graphs())
@settings(max_examples=40, deadline=None)
def test_index_roundtrip_property(tmp_path_factory, graph):
    tmp_path = tmp_path_factory.mktemp("idx")
    index = build_index(graph)
    path = tmp_path / "index.ttl"
    save_index(index, path)
    loaded = load_index(path, graph)
    assert loaded.ranks == index.ranks
    for v in range(graph.n):
        assert loaded.in_labels(v) == index.in_labels(v)
        assert loaded.out_labels(v) == index.out_labels(v)


@given(small_graphs())
@settings(max_examples=40, deadline=None)
def test_graph_csv_roundtrip_property(tmp_path_factory, graph):
    tmp_path = tmp_path_factory.mktemp("csv")
    save_graph_csv(graph, tmp_path)
    loaded = load_graph_csv(tmp_path)
    assert loaded.n == graph.n
    assert {tuple(c) for c in loaded.connections} == {
        tuple(c) for c in graph.connections
    }
