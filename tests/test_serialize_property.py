"""Property-based serialization roundtrips."""

import contextlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.serialize as serialize_module
from repro.core.build import build_index
from repro.core.queries import TTLPlanner
from repro.core.serialize import load_index, save_index
from repro.errors import SerializationError
from repro.graph.builders import graph_from_connections
from repro.graph.gtfs import load_graph_csv, save_graph_csv


@st.composite
def small_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=7))
    m = draw(st.integers(min_value=1, max_value=20))
    conns = []
    for _ in range(m):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            v = (v + 1) % n
        dep = draw(st.integers(min_value=0, max_value=100))
        conns.append((u, v, dep, dep + draw(st.integers(1, 40))))
    return graph_from_connections(conns, n)


@given(small_graphs())
@settings(max_examples=40, deadline=None)
def test_index_roundtrip_property(tmp_path_factory, graph):
    tmp_path = tmp_path_factory.mktemp("idx")
    index = build_index(graph)
    path = tmp_path / "index.ttl"
    save_index(index, path)
    loaded = load_index(path, graph)
    assert loaded.ranks == index.ranks
    for v in range(graph.n):
        assert loaded.in_labels(v) == index.in_labels(v)
        assert loaded.out_labels(v) == index.out_labels(v)


@given(small_graphs(), st.data())
@settings(max_examples=25, deadline=None)
def test_roundtripped_index_answers_match_fresh(
    tmp_path_factory, graph, data
):
    """Every query kind answers identically from a save->load index."""
    tmp_path = tmp_path_factory.mktemp("idx")
    index = build_index(graph)
    path = tmp_path / "index.ttl"
    save_index(index, path)
    fresh = TTLPlanner(graph, index=index)
    restored = TTLPlanner(graph, index=load_index(path, graph))
    station = st.integers(min_value=0, max_value=graph.n - 1)
    for _ in range(5):
        u = data.draw(station)
        v = data.draw(station)
        t = data.draw(st.integers(min_value=0, max_value=160))
        t_end = t + data.draw(st.integers(min_value=0, max_value=160))
        for a, b in (
            (fresh.earliest_arrival(u, v, t),
             restored.earliest_arrival(u, v, t)),
            (fresh.latest_departure(u, v, t_end),
             restored.latest_departure(u, v, t_end)),
            (fresh.shortest_duration(u, v, t, t_end),
             restored.shortest_duration(u, v, t, t_end)),
        ):
            assert (a is None) == (b is None)
            if a is not None:
                assert (a.dep, a.arr) == (b.dep, b.arr)
        assert fresh.profile(u, v, t, t_end) == restored.profile(
            u, v, t, t_end
        )


@given(
    small_graphs(),
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=0, max_value=255),
)
@settings(max_examples=40, deadline=None)
def test_corrupted_file_never_leaks_raw_errors(
    tmp_path_factory, graph, position, byte
):
    """Any single-byte corruption either loads or raises
    SerializationError — never IndexError / struct.error."""
    tmp_path = tmp_path_factory.mktemp("fuzz")
    index = build_index(graph)
    path = tmp_path / "index.ttl"
    save_index(index, path)
    data = bytearray(path.read_bytes())
    data[position % len(data)] = byte
    path.write_bytes(bytes(data))
    try:
        load_index(path, graph)
    except SerializationError:
        pass


@given(small_graphs(), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=40, deadline=None)
def test_truncated_file_raises_serialization_error(
    tmp_path_factory, graph, cut
):
    tmp_path = tmp_path_factory.mktemp("trunc")
    index = build_index(graph)
    path = tmp_path / "index.ttl"
    save_index(index, path)
    data = path.read_bytes()
    path.write_bytes(data[: cut % len(data)])
    try:
        load_index(path, graph)
    except SerializationError:
        pass


class _SimulatedCrash(BaseException):
    """Raised mid-save; BaseException so except-Exception can't eat it."""


@contextlib.contextmanager
def _crash_at(point):
    """Break one step of ``save_index`` (plain try/finally patching —
    hypothesis forbids function-scoped monkeypatch fixtures)."""
    if point == "mid_write":
        saved = serialize_module._write_stats
        def fail(*_args, **_kwargs):
            raise _SimulatedCrash
        serialize_module._write_stats = fail
        try:
            yield
        finally:
            serialize_module._write_stats = saved
    elif point == "fsync":
        saved = serialize_module.os.fsync
        def fail(*_args, **_kwargs):
            raise _SimulatedCrash
        serialize_module.os.fsync = fail
        try:
            yield
        finally:
            serialize_module.os.fsync = saved
    elif point == "replace":
        saved = serialize_module.os.replace
        def fail(*_args, **_kwargs):
            raise _SimulatedCrash
        serialize_module.os.replace = fail
        try:
            yield
        finally:
            serialize_module.os.replace = saved
    else:  # pragma: no cover - guard against typo'd points
        raise AssertionError(point)


@given(small_graphs(), st.sampled_from(["mid_write", "fsync", "replace"]))
@settings(max_examples=25, deadline=None)
def test_interrupted_save_leaves_previous_index_intact(
    tmp_path_factory, graph, point
):
    """A save that dies mid-write, at fsync, or at the final rename
    must leave the previous index byte-identical and loadable, and no
    temp file behind."""
    tmp_path = tmp_path_factory.mktemp("atomic")
    index = build_index(graph)
    path = tmp_path / "index.ttl"
    save_index(index, path)
    original = path.read_bytes()

    with _crash_at(point):
        with pytest.raises(_SimulatedCrash):
            save_index(index, path)

    assert path.read_bytes() == original
    assert [p.name for p in tmp_path.iterdir()] == ["index.ttl"]
    loaded = load_index(path, graph)
    assert loaded.ranks == index.ranks


@given(small_graphs(), st.sampled_from(["mid_write", "fsync", "replace"]))
@settings(max_examples=15, deadline=None)
def test_interrupted_first_save_leaves_no_file(
    tmp_path_factory, graph, point
):
    """With no previous index, an interrupted save leaves *nothing* —
    never a truncated file a later start would trip over."""
    tmp_path = tmp_path_factory.mktemp("atomic-first")
    index = build_index(graph)
    path = tmp_path / "index.ttl"

    with _crash_at(point):
        with pytest.raises(_SimulatedCrash):
            save_index(index, path)

    assert list(tmp_path.iterdir()) == []


@given(small_graphs())
@settings(max_examples=40, deadline=None)
def test_graph_csv_roundtrip_property(tmp_path_factory, graph):
    tmp_path = tmp_path_factory.mktemp("csv")
    save_graph_csv(graph, tmp_path)
    loaded = load_graph_csv(tmp_path)
    assert loaded.n == graph.n
    assert {tuple(c) for c in loaded.connections} == {
        tuple(c) for c in graph.connections
    }
