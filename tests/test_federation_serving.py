"""Federated serving end to end: router + per-region workers.

Starts a real :class:`FederationSupervisor` over a two-region
federation — forked workers each holding one shard plus the border
index — and checks the two routing classes against a monolithic
planner: intra-region requests are proxied whole to the owning worker
(``meta.worker`` is the region id, no fan-out), cross-region requests
are stitched by the router (``meta.worker`` is ``-1``), and both give
exactly the monolithic answers.  Ends with a chaos kill + respawn and
a clean drain, like the CI federation smoke job.
"""

import json
import os
import time
import urllib.error
import urllib.request

import pytest

from repro.core import TTLPlanner, build_index
from repro.core.batch import batch_plan
from repro.query import BatchQuery
from repro.datasets import QueryWorkload, load_dataset
from repro.federation import (
    build_federation,
    region_map_from_names,
)
from repro.federation.serve import FederationSupervisor


def get(port, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=10
    ) as response:
        return response.status, json.loads(response.read())


def post(port, path, body):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    """A running two-region federation plus the monolithic oracle."""
    out = str(tmp_path_factory.mktemp("fed_serving"))
    graph = load_dataset("TwinCities")
    partition = region_map_from_names(graph)
    manifest = build_federation(graph, partition, out)
    sup = FederationSupervisor(
        graph,
        os.path.join(out, "federation.json"),
        heartbeat_interval_s=0.1,
    )
    port = sup.start()
    try:
        sup.wait_ready(timeout_s=60)
        mono = TTLPlanner(graph)
        mono.preprocess()
        yield {
            "sup": sup,
            "port": port,
            "graph": graph,
            "manifest": manifest,
            "mono": mono,
        }
    finally:
        sup.stop()


def split_queries(cluster, count=15):
    """Deterministic workload split into intra / cross pairs."""
    graph = cluster["graph"]
    manifest = cluster["manifest"]
    intra, cross = [], []
    for q in QueryWorkload(graph, seed=9).generate(60):
        same = manifest.stop_region(q.source) == manifest.stop_region(
            q.destination
        )
        bucket = intra if same else cross
        if len(bucket) < count:
            bucket.append(q)
    assert len(intra) == count and len(cross) == count
    return intra, cross


class TestFederatedServing:
    def test_healthz_reports_shards(self, cluster):
        status, body = get(cluster["port"], "/v1/healthz")
        assert status == 200
        data = body["data"]
        assert data["status"] == "ok"
        assert data["planner"] == "TTL-fed"
        assert data["federation"] is True
        assert data["ready"] is True
        assert data["epoch"] == cluster["manifest"].epoch
        assert data["regions"] == 2
        shards = data["shards"]
        assert [s["region"] for s in shards] == [0, 1]
        for shard in shards:
            assert shard["alive"]
            assert shard["pid"] > 0
            assert shard["stations"] > 0
            assert shard["borders"] > 0
            assert shard["labels"] > 0
            assert shard["port"] == cluster["sup"].worker_ports[
                shard["region"]
            ]

    def test_ready_endpoint(self, cluster):
        status, body = get(cluster["port"], "/v1/healthz/ready")
        assert status == 200
        assert body["data"]["ready"] is True

    def test_intra_is_proxied_and_exact(self, cluster):
        """Same-region queries hit the owning worker directly — one
        hop, no router stitching — and still match the monolith."""
        manifest = cluster["manifest"]
        mono = cluster["mono"]
        intra, _ = split_queries(cluster)
        for q in intra:
            status, body = get(
                cluster["port"],
                f"/v1/eap?from={q.source}&to={q.destination}"
                f"&t={q.t_start}",
            )
            assert status == 200
            assert body["meta"]["worker"] == manifest.stop_region(
                q.source
            )
            expected = mono.earliest_arrival(
                q.source, q.destination, q.t_start
            )
            journey = body["data"]["journey"]
            assert (journey is None) == (expected is None)
            if journey is not None:
                assert journey["arr"] == expected.arr

    def test_cross_is_stitched_and_exact(self, cluster):
        mono = cluster["mono"]
        _, cross = split_queries(cluster)
        for q in cross:
            status, body = get(
                cluster["port"],
                f"/v1/eap?from={q.source}&to={q.destination}"
                f"&t={q.t_start}",
            )
            assert status == 200
            assert body["meta"]["worker"] == -1
            expected = mono.earliest_arrival(
                q.source, q.destination, q.t_start
            )
            journey = body["data"]["journey"]
            assert (journey is None) == (expected is None)
            if journey is not None:
                assert journey["arr"] == expected.arr

            status, body = get(
                cluster["port"],
                f"/v1/ldp?from={q.source}&to={q.destination}"
                f"&t={q.t_end}",
            )
            expected = mono.latest_departure(
                q.source, q.destination, q.t_end
            )
            journey = body["data"]["journey"]
            assert (journey is None) == (expected is None)
            if journey is not None:
                assert journey["dep"] == expected.dep

    def test_cross_profile_and_sdp(self, cluster):
        mono = cluster["mono"]
        _, cross = split_queries(cluster, count=6)
        for q in cross:
            status, body = get(
                cluster["port"],
                f"/v1/profile?from={q.source}&to={q.destination}"
                f"&t={q.t_start}&t_end={q.t_end}",
            )
            assert status == 200
            expected = mono.profile(
                q.source, q.destination, q.t_start, q.t_end
            )
            assert body["data"]["pairs"] == [list(p) for p in expected]

            status, body = get(
                cluster["port"],
                f"/v1/sdp?from={q.source}&to={q.destination}"
                f"&t={q.t_start}&t_end={q.t_end}",
            )
            expected = mono.shortest_duration(
                q.source, q.destination, q.t_start, q.t_end
            )
            journey = body["data"]["journey"]
            assert (journey is None) == (expected is None)
            if journey is not None:
                duration = journey["arr"] - journey["dep"]
                assert duration == expected.arr - expected.dep

    def test_batch_matches_monolith(self, cluster):
        graph = cluster["graph"]
        index = build_index(graph)
        targets = list(range(graph.n))
        t = 30000
        status, body = post(
            cluster["port"],
            "/v1/batch",
            {
                "kind": "one_to_many",
                "source": 0,
                "targets": targets,
                "t": t,
            },
        )
        assert status == 200
        [monolith] = batch_plan(
            index,
            [
                BatchQuery(
                    kind="one_to_many",
                    sources=(0,),
                    targets=tuple(targets),
                    t=t,
                )
            ],
        )
        expected = {str(k): v for k, v in monolith.items()}
        assert body["data"]["arrivals"] == expected

        status, body = post(
            cluster["port"],
            "/v1/batch",
            {"kind": "isochrone", "source": 0, "t": t, "budget": 3600},
        )
        assert status == 200
        [ring] = batch_plan(
            index,
            [BatchQuery(kind="isochrone", sources=(0,), t=t, budget=3600)],
        )
        assert body["data"]["stations"] == ring

    def test_router_metrics_count_both_paths(self, cluster):
        status, body = get(cluster["port"], "/v1/metrics")
        assert status == 200
        router = body["data"]["federation"]["router"]
        assert router["intra_proxied"] > 0
        assert router["cross_stitched"] > 0
        assert router["batch_requests"] >= 2
        assert router["subrequests"] > 0

    def test_kill_respawn_requery(self, cluster):
        """A dead region worker comes back on the same port and
        answers again — the chaos drill the smoke job runs."""
        sup = cluster["sup"]
        port_before = sup.worker_ports[0]
        old_pid = sup.kill_worker(0)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            pids = sup.worker_pids()
            if pids.get(0) not in (None, old_pid):
                break
            time.sleep(0.05)
        sup.wait_ready(timeout_s=30)
        assert sup.worker_ports[0] == port_before
        stops = cluster["manifest"].region_entry(0).stops
        u, v = stops[0], stops[-1]
        status, body = get(
            cluster["port"], f"/v1/eap?from={u}&to={v}&t=0"
        )
        assert status == 200
        assert body["meta"]["worker"] == 0

    def test_drain_is_clean(self, cluster):
        # Runs last: drains the cluster; the fixture's stop() is then
        # a no-op on already-exited workers.
        assert cluster["sup"].drain(grace_s=10)
