"""Stress and adversarial-structure tests.

Exercises shapes that break naive implementations: long chains (deep
unfolding), heavy parallel multi-edges (dominance churn), stations
with no service, single-route graphs, and dense transfer meshes.
"""

import random

import pytest

from repro.algorithms.temporal_dijkstra import DijkstraPlanner
from repro.baselines import CHTPlanner, CSAPlanner, RaptorPlanner
from repro.core import CompressedTTLPlanner, TTLPlanner, build_index
from repro.graph.builders import GraphBuilder, graph_from_connections
from repro.graph.connection import validate_path


class TestLongChain:
    @pytest.fixture(scope="class")
    def chain_graph(self):
        """One route over 400 stations, several trips: unfolding the
        end-to-end journey must not recurse or quadratically blow up."""
        builder = GraphBuilder()
        n = 400
        builder.add_stations(n)
        route = builder.add_route(list(range(n)))
        for start in (0, 5000, 10000):
            builder.add_trip_departures(route, start, [10] * (n - 1))
        return builder.build()

    def test_full_path_reconstruction(self, chain_graph):
        planner = TTLPlanner(chain_graph)
        journey = planner.earliest_arrival(0, chain_graph.n - 1, 0)
        assert journey is not None
        assert len(journey.path) == chain_graph.n - 1
        validate_path(journey.path)

    def test_concise_reconstruction(self, chain_graph):
        planner = TTLPlanner(chain_graph, concise=True)
        journey = planner.earliest_arrival(0, chain_graph.n - 1, 0)
        assert journey is not None
        assert len(journey.legs) == 1  # single vehicle end to end

    def test_mid_chain_queries(self, chain_graph):
        planner = TTLPlanner(chain_graph)
        oracle = DijkstraPlanner(chain_graph)
        rng = random.Random(3)
        for _ in range(20):
            u = rng.randrange(chain_graph.n)
            v = rng.randrange(chain_graph.n)
            if u == v:
                continue
            t = rng.randrange(0, 12000)
            a = oracle.earliest_arrival(u, v, t)
            b = planner.earliest_arrival(u, v, t)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.arr == b.arr


class TestParallelMultiEdges:
    def test_hundred_parallel_connections(self):
        """100 connections between one pair: only the Pareto frontier
        may become labels."""
        rng = random.Random(4)
        conns = []
        for _ in range(100):
            dep = rng.randrange(0, 500)
            conns.append((0, 1, dep, dep + rng.randrange(1, 100)))
        graph = graph_from_connections(conns, 2)
        index = build_index(graph)
        index.check_invariants()
        oracle = DijkstraPlanner(graph)
        planner = TTLPlanner(graph, index=index)
        for t in range(0, 600, 13):
            a = oracle.earliest_arrival(0, 1, t)
            b = planner.earliest_arrival(0, 1, t)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.arr == b.arr

    def test_labels_bounded_by_frontier(self):
        conns = [(0, 1, d, d + 10) for d in range(0, 300, 10)]
        # All 30 connections are mutually non-dominated.
        graph = graph_from_connections(conns, 2)
        index = build_index(graph)
        assert index.num_labels == 30


class TestDegenerateStations:
    def test_isolated_stations(self):
        graph = graph_from_connections([(0, 1, 0, 10)], num_stations=5)
        for planner_cls in (TTLPlanner, CSAPlanner, CHTPlanner, RaptorPlanner):
            planner = planner_cls(graph)
            assert planner.earliest_arrival(3, 4, 0) is None
            assert planner.earliest_arrival(0, 1, 0) is not None

    def test_sink_only_station(self):
        graph = graph_from_connections([(0, 1, 0, 10), (2, 1, 5, 9)])
        planner = TTLPlanner(graph)
        assert planner.earliest_arrival(1, 0, 0) is None
        assert planner.earliest_arrival(2, 1, 0).arr == 9


class TestTransferMesh:
    def test_dense_mesh_all_planners_agree(self):
        """Complete digraph on 6 stations, frequent service: a worst
        case for dominance bookkeeping."""
        rng = random.Random(9)
        builder = GraphBuilder()
        n = 6
        builder.add_stations(n)
        for u in range(n):
            for v in range(n):
                if u == v:
                    continue
                route = builder.add_route([u, v])
                for k in range(6):
                    start = rng.randrange(0, 50) + 40 * k
                    builder.add_trip_departures(
                        route, start, [rng.randrange(5, 60)]
                    )
        graph = builder.build()
        oracle = DijkstraPlanner(graph)
        planners = [
            TTLPlanner(graph),
            CompressedTTLPlanner(graph),
            CSAPlanner(graph),
            CHTPlanner(graph),
            RaptorPlanner(graph),
        ]
        for _ in range(60):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            t = rng.randrange(0, 300)
            t2 = t + rng.randrange(1, 200)
            ref = oracle.shortest_duration(u, v, t, t2)
            for planner in planners:
                got = planner.shortest_duration(u, v, t, t2)
                assert (ref is None) == (got is None), planner.name
                if ref is not None:
                    assert got.duration == ref.duration, planner.name


class TestZeroWaitChains:
    def test_instantaneous_transfers(self):
        """Chains where every transfer has zero wait (dep == arr)."""
        conns = [
            (0, 1, 0, 10),
            (1, 2, 10, 20),
            (2, 3, 20, 30),
            (3, 4, 30, 40),
        ]
        graph = graph_from_connections(conns)
        for planner_cls in (TTLPlanner, CSAPlanner, CHTPlanner, RaptorPlanner):
            journey = planner_cls(graph).earliest_arrival(0, 4, 0)
            assert journey is not None, planner_cls.name
            assert journey.arr == 40
            assert journey.transfers == 3
