"""Stress and adversarial-structure tests.

Exercises shapes that break naive implementations: long chains (deep
unfolding), heavy parallel multi-edges (dominance churn), stations
with no service, single-route graphs, dense transfer meshes — and the
HTTP service hammered concurrently while a fault plan is active.
"""

import json
import random
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.algorithms.temporal_dijkstra import DijkstraPlanner
from repro.baselines import CHTPlanner, CSAPlanner, RaptorPlanner
from repro.core import CompressedTTLPlanner, TTLPlanner, build_index
from repro.graph.builders import GraphBuilder, graph_from_connections
from repro.graph.connection import validate_path


class TestLongChain:
    @pytest.fixture(scope="class")
    def chain_graph(self):
        """One route over 400 stations, several trips: unfolding the
        end-to-end journey must not recurse or quadratically blow up."""
        builder = GraphBuilder()
        n = 400
        builder.add_stations(n)
        route = builder.add_route(list(range(n)))
        for start in (0, 5000, 10000):
            builder.add_trip_departures(route, start, [10] * (n - 1))
        return builder.build()

    def test_full_path_reconstruction(self, chain_graph):
        planner = TTLPlanner(chain_graph)
        journey = planner.earliest_arrival(0, chain_graph.n - 1, 0)
        assert journey is not None
        assert len(journey.path) == chain_graph.n - 1
        validate_path(journey.path)

    def test_concise_reconstruction(self, chain_graph):
        planner = TTLPlanner(chain_graph, concise=True)
        journey = planner.earliest_arrival(0, chain_graph.n - 1, 0)
        assert journey is not None
        assert len(journey.legs) == 1  # single vehicle end to end

    def test_mid_chain_queries(self, chain_graph):
        planner = TTLPlanner(chain_graph)
        oracle = DijkstraPlanner(chain_graph)
        rng = random.Random(3)
        for _ in range(20):
            u = rng.randrange(chain_graph.n)
            v = rng.randrange(chain_graph.n)
            if u == v:
                continue
            t = rng.randrange(0, 12000)
            a = oracle.earliest_arrival(u, v, t)
            b = planner.earliest_arrival(u, v, t)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.arr == b.arr


class TestParallelMultiEdges:
    def test_hundred_parallel_connections(self):
        """100 connections between one pair: only the Pareto frontier
        may become labels."""
        rng = random.Random(4)
        conns = []
        for _ in range(100):
            dep = rng.randrange(0, 500)
            conns.append((0, 1, dep, dep + rng.randrange(1, 100)))
        graph = graph_from_connections(conns, 2)
        index = build_index(graph)
        index.check_invariants()
        oracle = DijkstraPlanner(graph)
        planner = TTLPlanner(graph, index=index)
        for t in range(0, 600, 13):
            a = oracle.earliest_arrival(0, 1, t)
            b = planner.earliest_arrival(0, 1, t)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.arr == b.arr

    def test_labels_bounded_by_frontier(self):
        conns = [(0, 1, d, d + 10) for d in range(0, 300, 10)]
        # All 30 connections are mutually non-dominated.
        graph = graph_from_connections(conns, 2)
        index = build_index(graph)
        assert index.num_labels == 30


class TestDegenerateStations:
    def test_isolated_stations(self):
        graph = graph_from_connections([(0, 1, 0, 10)], num_stations=5)
        for planner_cls in (TTLPlanner, CSAPlanner, CHTPlanner, RaptorPlanner):
            planner = planner_cls(graph)
            assert planner.earliest_arrival(3, 4, 0) is None
            assert planner.earliest_arrival(0, 1, 0) is not None

    def test_sink_only_station(self):
        graph = graph_from_connections([(0, 1, 0, 10), (2, 1, 5, 9)])
        planner = TTLPlanner(graph)
        assert planner.earliest_arrival(1, 0, 0) is None
        assert planner.earliest_arrival(2, 1, 0).arr == 9


class TestTransferMesh:
    def test_dense_mesh_all_planners_agree(self):
        """Complete digraph on 6 stations, frequent service: a worst
        case for dominance bookkeeping."""
        rng = random.Random(9)
        builder = GraphBuilder()
        n = 6
        builder.add_stations(n)
        for u in range(n):
            for v in range(n):
                if u == v:
                    continue
                route = builder.add_route([u, v])
                for k in range(6):
                    start = rng.randrange(0, 50) + 40 * k
                    builder.add_trip_departures(
                        route, start, [rng.randrange(5, 60)]
                    )
        graph = builder.build()
        oracle = DijkstraPlanner(graph)
        planners = [
            TTLPlanner(graph),
            CompressedTTLPlanner(graph),
            CSAPlanner(graph),
            CHTPlanner(graph),
            RaptorPlanner(graph),
        ]
        for _ in range(60):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            t = rng.randrange(0, 300)
            t2 = t + rng.randrange(1, 200)
            ref = oracle.shortest_duration(u, v, t, t2)
            for planner in planners:
                got = planner.shortest_duration(u, v, t, t2)
                assert (ref is None) == (got is None), planner.name
                if ref is not None:
                    assert got.duration == ref.duration, planner.name


class TestServiceUnderChaos:
    """Concurrent load against a live service with faults firing.

    The contract under chaos: every response carries a *documented*
    status (never a 500 — all injected faults here are latency/skew,
    not errors), no request deadlocks, and once the fault budget is
    exhausted and the breaker closes again the answers are exact.
    """

    def _fetch(self, port, path):
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}{path}", timeout=15
            ) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read())

    def _post(self, port, path, body):
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}",
            data=json.dumps(body).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=15) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read())

    def test_concurrent_chaos_no_500s_no_deadlocks_exact_after(self):
        from tests.conftest import make_random_route_graph
        from repro.live import LiveOverlayEngine
        from repro.resilience import (
            CLOSED,
            CircuitBreaker,
            FaultPlan,
            FaultRule,
            ResilienceConfig,
        )
        from repro.service import PlannerService

        graph = make_random_route_graph(random.Random(29), 12, 8)
        engine = LiveOverlayEngine(graph)
        breaker = CircuitBreaker(
            window=8,
            min_samples=4,
            failure_threshold=0.5,
            slow_threshold_s=0.05,
            cooldown_s=0.2,
        )
        plan = FaultPlan(
            rules=[
                FaultRule(site="planner.query", kind="latency",
                          seconds=0.1, times=6, probability=0.5),
                FaultRule(site="live.exact", kind="latency",
                          seconds=0.1, times=6, probability=0.5),
                FaultRule(site="service.lock", kind="latency",
                          seconds=0.1, times=4, probability=0.5),
                FaultRule(site="clock", kind="clock_skew",
                          seconds=10.0, times=3),
            ],
            seed=7,
        )
        config = ResilienceConfig(
            deadline_ms=60.0, max_inflight=4, shed_grace_s=0.1
        )
        service = PlannerService(
            engine, resilience=config, fault_plan=plan, breaker=breaker
        )
        port = service.start(port=0)
        try:
            statuses = []
            record = threading.Lock()
            trip_ids = sorted(graph.trips)

            def hammer(worker_seed):
                rng = random.Random(worker_seed)
                for _ in range(25):
                    u = rng.randrange(graph.n)
                    v = (u + rng.randrange(1, graph.n)) % graph.n
                    t = rng.randrange(0, 200)
                    path = rng.choice(
                        [
                            f"/eap?from={u}&to={v}&t={t}",
                            f"/ldp?from={u}&to={v}&t={t + 300}",
                            f"/sdp?from={u}&to={v}&t={t}&t_end={t + 400}",
                        ]
                    )
                    status, _ = self._fetch(port, path)
                    with record:
                        statuses.append(status)

            def churn(worker_seed):
                rng = random.Random(worker_seed)
                for _ in range(10):
                    trip = rng.choice(trip_ids)
                    status, _ = self._post(
                        port,
                        "/live/events",
                        {"kind": "delay", "trip_id": trip,
                         "delay": rng.randrange(30, 300)},
                    )
                    assert status in (200, 400)
                    status, _ = self._post(port, "/live/clear", {})
                    assert status == 200

            workers = [
                threading.Thread(target=hammer, args=(100 + i,))
                for i in range(6)
            ]
            workers.append(threading.Thread(target=churn, args=(999,)))
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(timeout=120)
            assert not any(w.is_alive() for w in workers), "deadlocked"

            # Every response carried a documented status; no 500s.
            assert statuses and set(statuses) <= {200, 429, 503, 504}

            # Drain whatever fault budget the stress phase left armed
            # (exact-path sites do not fire while the breaker is open,
            # so budgets can survive the hammering), then let the
            # breaker probe its way closed.
            self._post(port, "/live/clear", {})
            drain_deadline = time.monotonic() + 60
            while time.monotonic() < drain_deadline:
                _, snap = self._fetch(port, "/resilience")
                if all(r == 0 for r in snap["faults"]["remaining"]):
                    break
                self._fetch(port, "/eap?from=0&to=1&t=0")
                time.sleep(0.05)
            else:
                pytest.fail("fault budget never drained")
            recover_deadline = time.monotonic() + 30
            while (
                breaker.state != CLOSED
                and time.monotonic() < recover_deadline
            ):
                time.sleep(0.25)
                self._fetch(port, "/eap?from=0&to=1&t=0")
            assert breaker.state == CLOSED
            exact = TTLPlanner(graph)
            checked = 0
            for u in range(graph.n):
                for v in range(graph.n):
                    if u == v:
                        continue
                    status, body = self._fetch(
                        port, f"/eap?from={u}&to={v}&t=0"
                    )
                    assert status == 200
                    assert body["degraded"] is False
                    expected = exact.earliest_arrival(u, v, 0)
                    if expected is None:
                        assert body["journey"] is None
                    else:
                        assert body["journey"]["arr"] == expected.arr
                        checked += 1
                    if checked >= 10:
                        break
                if checked >= 10:
                    break
        finally:
            service.stop()


class TestZeroWaitChains:
    def test_instantaneous_transfers(self):
        """Chains where every transfer has zero wait (dep == arr)."""
        conns = [
            (0, 1, 0, 10),
            (1, 2, 10, 20),
            (2, 3, 20, 30),
            (3, 4, 30, 40),
        ]
        graph = graph_from_connections(conns)
        for planner_cls in (TTLPlanner, CSAPlanner, CHTPlanner, RaptorPlanner):
            journey = planner_cls(graph).earliest_arrival(0, 4, 0)
            assert journey is not None, planner_cls.name
            assert journey.arr == 40
            assert journey.transfers == 3
