"""Tests for the label-safety (taint) analyzer."""

from repro.core import TTLPlanner, build_index
from repro.core.sketch import best_eap_sketch
from repro.live import PatchSet, TaintAnalyzer, TripCancellation, TripDelay


def make_analyzer(graph, events):
    index = build_index(graph)
    return index, TaintAnalyzer(index, PatchSet.compile(graph, events))


class TestTaint:
    def test_empty_patch_taints_nothing(self, route_graph):
        _, analyzer = make_analyzer(route_graph, [])
        report = analyzer.report()
        assert report.num_tainted == 0
        assert report.fraction == 0.0

    def test_cancelled_trip_taints_its_labels(self, figure1_graph):
        trip_id = sorted(figure1_graph.trips)[0]
        _, analyzer = make_analyzer(
            figure1_graph, [TripCancellation(trip_id=trip_id)]
        )
        report = analyzer.report()
        assert 0 < report.num_tainted < report.num_labels
        assert 0.0 < report.fraction < 1.0

    def test_clean_sketch_unfolds_without_patched_connections(
        self, route_graph
    ):
        """A clean verdict must be a proof: the unfolded path avoids
        every removed connection."""
        trip_ids = sorted(route_graph.trips)[:4]
        events = [TripDelay(trip_id=t, delay=50) for t in trip_ids]
        index, analyzer = make_analyzer(route_graph, events)
        planner = TTLPlanner(route_graph, index=index)
        removed = analyzer.patch.removed
        checked = 0
        for u in range(route_graph.n):
            for v in range(route_graph.n):
                if u == v:
                    continue
                journey = planner.earliest_arrival(u, v, 0)
                if journey is None:
                    continue
                sketch = best_eap_sketch(index, u, v, 0)
                if sketch is not None and not analyzer.sketch_tainted(
                    sketch
                ):
                    checked += 1
                    assert not (set(journey.path) & removed)
        assert checked > 0

    def test_memoization_is_consistent(self, route_graph):
        trip_id = sorted(route_graph.trips)[0]
        _, analyzer = make_analyzer(
            route_graph, [TripCancellation(trip_id=trip_id)]
        )
        first = analyzer.report()
        second = analyzer.report()
        assert first == second

    def test_trip_window_check(self, line_graph):
        trip_id = sorted(line_graph.trips)[0]
        conns = sorted(
            (c for c in line_graph.connections if c.trip == trip_id),
            key=lambda c: c.dep,
        )
        # Delay only from the last boardable stop: earlier legs of the
        # same trip stay clean.
        last_leg = conns[-1]
        from_stop = len(conns) - 1
        _, analyzer = make_analyzer(
            line_graph,
            [TripDelay(trip_id=trip_id, delay=60, from_stop=from_stop)],
        )
        assert analyzer.trip_segment_tainted(
            trip_id, last_leg.dep, last_leg.arr
        )
        first_leg = conns[0]
        assert not analyzer.trip_segment_tainted(
            trip_id, first_leg.dep, first_leg.arr
        )

    def test_memo_never_crosses_patch_generations(self, route_graph):
        """Taint verdicts are memoized per analyzer, and an analyzer is
        bound to one PatchSet: every overlay swap must start from an
        empty memo, or a clean verdict decided under one patch could
        certify a path against a different one."""
        from repro.live import LiveOverlayEngine

        engine = LiveOverlayEngine(route_graph)
        engine.preprocess()
        trip_id = sorted(route_graph.trips)[0]
        event_id = engine.apply_event(TripCancellation(trip_id=trip_id))
        first = engine._ready_state().taint
        assert first.patch is engine._ready_state().patch
        # Queries populate the memo.
        for u in range(route_graph.n):
            engine.earliest_arrival(u, (u + 1) % route_graph.n, 0)
        assert first.memo_size > 0
        populated = first.memo_size
        # Clearing the event swaps the overlay: a *fresh* analyzer,
        # empty memo, bound to the new (empty) patch-set.
        engine.clear_event(event_id)
        second = engine._ready_state().taint
        assert second is not first
        assert second.memo_size == 0
        assert second.patch is engine._ready_state().patch
        assert not second.patch.removed
        # The old analyzer's verdicts were not carried over...
        assert first.memo_size == populated
        # ...and the new patch-set taints nothing.
        assert second.report().num_tainted == 0

    def test_tainted_hub_sets(self, figure1_graph):
        trip_id = sorted(figure1_graph.trips)[0]
        _, analyzer = make_analyzer(
            figure1_graph, [TripCancellation(trip_id=trip_id)]
        )
        any_out = any(
            analyzer.tainted_hubs_out(s) for s in range(figure1_graph.n)
        )
        any_in = any(
            analyzer.tainted_hubs_in(s) for s in range(figure1_graph.n)
        )
        assert any_out or any_in
