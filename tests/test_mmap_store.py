"""TTLIDX03 zero-copy store: round-trip, corruption fuzz, fork-share.

The contract under test: a memory-mapped TTLIDX03 load is
*indistinguishable* from the in-memory index it was saved from —
column for column, query for query, across process boundaries — and
every way the bytes can rot surfaces as a clean
:class:`~repro.errors.SerializationError`, never a wrong answer.
"""

import multiprocessing
import random
import struct
import zlib

import pytest

from repro.core.build import build_index
from repro.core.queries import TTLPlanner
from repro.core.serialize import load_index, save_index
from repro.core.store import COLUMN_NAMES
from repro.datasets import load_dataset
from repro.errors import SerializationError
from tests.conftest import make_random_route_graph

_STATS_FORMAT = "<2d6q"
_DIR_ENTRY = "<3q"


def _v3_layout(data: bytes):
    """Parse (n, directory_offset, entries) out of a TTLIDX03 blob."""
    assert data[:8] == b"TTLIDX03"
    (n,) = struct.unpack_from("<q", data, 8)
    off = 16 + 8 * n
    (present,) = struct.unpack_from("<q", data, off)
    off += 8
    if present:
        off += struct.calcsize(_STATS_FORMAT)
    (ncols,) = struct.unpack_from("<q", data, off)
    off += 8
    entries = [
        struct.unpack_from(_DIR_ENTRY, data, off + i * 24)
        for i in range(ncols)
    ]
    return n, off, entries


@pytest.fixture(scope="module")
def saved(tmp_path_factory):
    rng = random.Random(0xBEEF)
    graph = make_random_route_graph(rng, 25, 8)
    index = build_index(graph)
    path = tmp_path_factory.mktemp("v3") / "index.ttl"
    save_index(index, path)
    return graph, index, path


class TestRoundtripColumns:
    def test_every_column_identical_heap(self, saved):
        graph, index, path = saved
        loaded = load_index(path, graph)
        assert not loaded.mapped
        for direction in ("in_store", "out_store"):
            original = getattr(index, direction)
            restored = getattr(loaded, direction)
            for name in COLUMN_NAMES:
                assert list(getattr(restored, name)) == list(
                    getattr(original, name)
                ), f"{direction}.{name}"

    def test_every_column_identical_mmap(self, saved):
        graph, index, path = saved
        mapped = load_index(path, graph, mmap=True)
        assert mapped.mapped
        for direction in ("in_store", "out_store"):
            original = getattr(index, direction)
            restored = getattr(mapped, direction)
            assert restored.mapped
            for name in COLUMN_NAMES:
                assert list(getattr(restored, name)) == list(
                    getattr(original, name)
                ), f"{direction}.{name}"

    def test_label_surface_identical(self, saved):
        graph, index, path = saved
        mapped = load_index(path, graph, mmap=True)
        mapped.check_invariants()
        for v in range(graph.n):
            assert mapped.in_labels(v) == index.in_labels(v)
            assert mapped.out_labels(v) == index.out_labels(v)

    def test_build_stats_roundtrip(self, saved):
        graph, index, path = saved
        mapped = load_index(path, graph, mmap=True)
        assert mapped.build_stats is not None
        assert mapped.build_stats.num_labels == index.build_stats.num_labels
        assert mapped.build_stats.seconds == index.build_stats.seconds

    def test_mmap_refused_for_v2_files(self, saved, tmp_path):
        graph, index, _ = saved
        path = tmp_path / "v2.ttl"
        save_index(index, path, version=2)
        with pytest.raises(SerializationError, match="memory-map"):
            load_index(path, graph, mmap=True)


class TestBerlinEqualityGate:
    """The acceptance gate: a TTLIDX03 mmap load answers EAP / LDP /
    SDP / profile byte-identically to a TTLIDX02 heap load on Berlin.
    """

    @pytest.fixture(scope="class")
    def planners(self, tmp_path_factory):
        graph = load_dataset("Berlin")
        index = build_index(graph)
        directory = tmp_path_factory.mktemp("berlin")
        v2 = directory / "berlin.v2.ttl"
        v3 = directory / "berlin.v3.ttl"
        save_index(index, v2, version=2)
        save_index(index, v3)
        heap = TTLPlanner(graph, index=load_index(v2, graph))
        mapped_index = load_index(v3, graph, mmap=True)
        assert mapped_index.mapped
        mapped = TTLPlanner(graph, index=mapped_index)
        return graph, heap, mapped

    def test_point_queries_identical(self, planners):
        graph, heap, mapped = planners
        rng = random.Random(2015)
        for _ in range(150):
            u = rng.randrange(graph.n)
            v = rng.randrange(graph.n)
            if u == v:
                continue
            t = rng.randrange(0, 24 * 3600)
            for kind in ("earliest_arrival", "latest_departure"):
                a = getattr(heap, kind)(u, v, t)
                b = getattr(mapped, kind)(u, v, t)
                assert (a is None) == (b is None), (kind, u, v, t)
                if a is not None:
                    assert a.to_dict() == b.to_dict(), (kind, u, v, t)

    def test_window_queries_identical(self, planners):
        graph, heap, mapped = planners
        rng = random.Random(4103)
        for _ in range(60):
            u = rng.randrange(graph.n)
            v = rng.randrange(graph.n)
            if u == v:
                continue
            t = rng.randrange(0, 20 * 3600)
            t_end = t + rng.randrange(3600, 6 * 3600)
            a = heap.shortest_duration(u, v, t, t_end)
            b = mapped.shortest_duration(u, v, t, t_end)
            assert (a is None) == (b is None), (u, v, t, t_end)
            if a is not None:
                assert a.to_dict() == b.to_dict(), (u, v, t, t_end)
            assert heap.profile(u, v, t, t_end) == mapped.profile(
                u, v, t, t_end
            ), (u, v, t, t_end)


def _fuzz_load(path, graph, data: bytes):
    path.write_bytes(data)
    with pytest.raises(SerializationError) as err:
        load_index(path, graph, mmap=True)
    return err.value


class TestCorruptionFuzz:
    def test_truncated_blob(self, saved, tmp_path):
        graph, _, path = saved
        data = path.read_bytes()
        target = tmp_path / "trunc.ttl"
        exc = _fuzz_load(target, graph, data[: len(data) - 9])
        assert "truncated" in str(exc)

    def test_truncated_header(self, saved, tmp_path):
        graph, _, path = saved
        data = path.read_bytes()
        target = tmp_path / "header.ttl"
        exc = _fuzz_load(target, graph, data[:20])
        assert "truncated" in str(exc)

    def test_bad_offset(self, saved, tmp_path):
        graph, _, path = saved
        data = bytearray(path.read_bytes())
        _, dir_off, entries = _v3_layout(data)
        # Point the first column far past the end of the file.
        offset, count, crc = entries[0]
        struct.pack_into(
            _DIR_ENTRY, data, dir_off, offset + (1 << 40), count, crc
        )
        exc = _fuzz_load(tmp_path / "offset.ttl", graph, bytes(data))
        assert "truncated" in str(exc)
        assert exc.hint is not None

    def test_misaligned_offset(self, saved, tmp_path):
        graph, _, path = saved
        data = bytearray(path.read_bytes())
        _, dir_off, entries = _v3_layout(data)
        offset, count, crc = entries[0]
        struct.pack_into(
            _DIR_ENTRY, data, dir_off, offset + 4, count, crc
        )
        exc = _fuzz_load(tmp_path / "align.ttl", graph, bytes(data))
        assert "truncated" in str(exc)

    def test_digest_mismatch(self, saved, tmp_path):
        graph, _, path = saved
        data = bytearray(path.read_bytes())
        _, _, entries = _v3_layout(data)
        offset, count, _ = entries[0]
        assert count > 0
        data[offset] ^= 0xFF
        exc = _fuzz_load(tmp_path / "digest.ttl", graph, bytes(data))
        assert "digest mismatch" in str(exc)

    def test_bad_column_count(self, saved, tmp_path):
        graph, _, path = saved
        data = bytearray(path.read_bytes())
        _, dir_off, _ = _v3_layout(data)
        struct.pack_into("<q", data, dir_off - 8, 99)
        exc = _fuzz_load(tmp_path / "ncols.ttl", graph, bytes(data))
        assert "columns" in str(exc)

    def test_rank_corruption(self, saved, tmp_path):
        graph, index, path = saved
        data = bytearray(path.read_bytes())
        struct.pack_into("<q", data, 16, index.ranks[1])
        exc = _fuzz_load(tmp_path / "rank.ttl", graph, bytes(data))
        assert "permutation" in str(exc)

    def test_hub_out_of_range_caught_structurally(self, saved, tmp_path):
        # Flip a hub id to an invalid station AND fix the digest, so
        # only the structural check can catch it.
        graph, _, path = saved
        data = bytearray(path.read_bytes())
        _, dir_off, entries = _v3_layout(data)
        hubs_entry = COLUMN_NAMES.index("hubs")  # in-direction hubs
        offset, count, _ = entries[hubs_entry]
        assert count > 0
        struct.pack_into("<q", data, offset, graph.n + 5)
        blob = bytes(data[offset:offset + 8 * count])
        struct.pack_into(
            _DIR_ENTRY,
            data,
            dir_off + hubs_entry * 24,
            offset,
            count,
            zlib.crc32(blob),
        )
        exc = _fuzz_load(tmp_path / "hub.ttl", graph, bytes(data))
        assert "hub" in str(exc)

    def test_station_count_mismatch(self, saved, tmp_path):
        graph, _, path = saved
        rng = random.Random(99)
        other = make_random_route_graph(rng, graph.n + 3, 4)
        with pytest.raises(SerializationError, match="stations"):
            load_index(path, other, mmap=True)

    def test_skip_verify_skips_digests_not_structure(self, saved, tmp_path):
        graph, _, path = saved
        data = bytearray(path.read_bytes())
        _, _, entries = _v3_layout(data)
        offset, count, _ = entries[0]  # in-direction deps payload
        assert count > 0
        data[offset] ^= 0x01
        target = tmp_path / "unverified.ttl"
        target.write_bytes(bytes(data))
        with pytest.raises(SerializationError, match="digest"):
            load_index(target, graph, mmap=True)
        # verify=False trusts the digests away; structure still holds.
        loaded = load_index(target, graph, mmap=True, verify=False)
        assert loaded.mapped


def _forked_reader(path, graph, queries, queue):
    index = load_index(path, graph, mmap=True)
    planner = TTLPlanner(graph, index=index)
    answers = []
    for u, v, t in queries:
        journey = planner.earliest_arrival(u, v, t)
        answers.append(journey.to_dict() if journey else None)
    queue.put(answers)


class TestForkedReaders:
    def test_two_processes_answer_identically(self, saved):
        graph, index, path = saved
        rng = random.Random(7)
        queries = [
            (rng.randrange(graph.n), rng.randrange(graph.n), rng.randrange(200))
            for _ in range(50)
        ]
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        procs = [
            ctx.Process(
                target=_forked_reader,
                args=(path, graph, queries, queue),
            )
            for _ in range(2)
        ]
        for proc in procs:
            proc.start()
        first = queue.get(timeout=60)
        second = queue.get(timeout=60)
        for proc in procs:
            proc.join(timeout=30)
            assert proc.exitcode == 0
        assert first == second
        # ...and both match the parent's in-memory index.
        planner = TTLPlanner(graph, index=index)
        expected = []
        for u, v, t in queries:
            journey = planner.earliest_arrival(u, v, t)
            expected.append(journey.to_dict() if journey else None)
        assert first == expected
