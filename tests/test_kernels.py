"""Kernel-vs-scalar equality: the numpy columnar kernels of
:mod:`repro.core.kernels` must answer byte-identically to the scalar
selector loops they replace.

Three layers of evidence:

* hypothesis property tests over random sealed stores and query
  windows (sketch merge, dominance filter, profile enumeration,
  one-to-many), plus mmap-vs-heap kernel equality;
* the Berlin equality gate — every query type, the live overlay, and
  federation stitching answered twice (``REPRO_SCALAR_KERNELS=1`` vs
  the vectorized default) and diffed;
* the numpy-absent degrade contract (scalar fallback + one warning).
"""

import os
import random
from unittest import mock

import pytest

np = pytest.importorskip("numpy")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.profiles import ParetoProfile
from repro.core import TTLPlanner, batch_plan, build_index, kernels
from repro.core.profile_queries import profile_from_lists
from repro.core.serialize import load_index, save_index
from repro.core.sketch import (
    best_eap_sketch_from_lists,
    best_ldp_sketch_from_lists,
    best_sdp_sketch_from_lists,
)
from repro.datasets import QueryWorkload, load_dataset
from repro.query import BatchQuery
from tests.conftest import make_random_route_graph

FORCE_KERNELS = {kernels.POINT_MIN_LABELS_ENV: "0"}
FORCE_SCALAR = {kernels.SCALAR_ENV: "1"}


@pytest.fixture(scope="module")
def small():
    rng = random.Random(99)
    graph = make_random_route_graph(rng, 14, 10)
    return graph, build_index(graph)


@pytest.fixture(scope="module")
def mapped(small, tmp_path_factory):
    graph, index = small
    path = tmp_path_factory.mktemp("idx") / "small.ttlidx"
    save_index(index, str(path))
    return load_index(str(path), graph, mmap=True)


def _lists(index, u, v):
    return index.out_label_groups(u), index.in_label_groups(v)


stations = st.integers(min_value=0, max_value=13)
times = st.integers(min_value=0, max_value=320)
spans = st.integers(min_value=0, max_value=320)


class TestPointKernelProperties:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(u=stations, v=stations, t=times, span=spans)
    def test_sketches_match_scalar(self, small, u, v, t, span):
        graph, index = small
        out_list, in_list = _lists(index, u, v)
        assert kernels.eap_sketch(index, u, v, t) == (
            best_eap_sketch_from_lists(out_list, in_list, u, v, t)
        )
        assert kernels.ldp_sketch(index, u, v, t) == (
            best_ldp_sketch_from_lists(out_list, in_list, u, v, t)
        )
        assert kernels.sdp_sketch(index, u, v, t, t + span) == (
            best_sdp_sketch_from_lists(
                out_list, in_list, u, v, t, t + span
            )
        )

    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(u=stations, v=stations, t=times, span=spans)
    def test_profile_matches_scalar(self, small, u, v, t, span):
        graph, index = small
        out_list, in_list = _lists(index, u, v)
        assert kernels.profile_pairs(index, u, v, t, t + span) == (
            profile_from_lists(out_list, in_list, u, v, t, t + span)
        )

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(u=stations, t=times)
    def test_one_to_many_matches_scalar(self, small, u, t):
        graph, index = small
        vec = kernels.one_to_many_values(index, u, range(graph.n), t)
        out_list = index.out_label_groups(u)
        for v in range(graph.n):
            if v == u:
                assert vec[v] == t
                continue
            sketch = best_eap_sketch_from_lists(
                out_list, index.in_label_groups(v), u, v, t
            )
            assert vec[v] == (sketch.arr if sketch is not None else None)

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(u=stations, v=stations, t=times, span=spans)
    def test_mapped_matches_heap(self, small, mapped, u, v, t, span):
        graph, index = small
        assert kernels.eap_sketch(index, u, v, t) == kernels.eap_sketch(
            mapped, u, v, t
        )
        assert kernels.ldp_sketch(index, u, v, t) == kernels.ldp_sketch(
            mapped, u, v, t
        )
        assert kernels.profile_pairs(
            index, u, v, t, t + span
        ) == kernels.profile_pairs(mapped, u, v, t, t + span)
        assert kernels.one_to_many_values(
            index, u, range(graph.n), t
        ) == kernels.one_to_many_values(mapped, u, range(graph.n), t)


class TestParetoFilterProperty:
    @settings(max_examples=120, deadline=None)
    @given(
        raw=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=0, max_value=30),
            ),
            max_size=40,
        )
    )
    def test_matches_pareto_profile_fold(self, raw):
        # ParetoProfile rejects arr < dep, so sample durations.
        pairs = [(dep, dep + span) for dep, span in raw]
        profile = ParetoProfile()
        for dep, arr in pairs:
            profile.add(dep, arr)
        deps = np.array([p[0] for p in pairs], dtype=np.int64)
        arrs = np.array([p[1] for p in pairs], dtype=np.int64)
        assert kernels.pareto_filter(deps, arrs) == profile.pairs()


def _journey_payload(result):
    if result.request.query_type == "profile":
        return list(result.pairs)
    journey = result.journey
    return None if journey is None else journey.to_dict()


def _berlin_requests(graph, count):
    from repro.bench.harness import query_request

    queries = QueryWorkload(graph, seed=2015).generate(count)
    return [
        query_request(q, kind)
        for q in queries
        for kind in ("eap", "ldp", "sdp", "profile")
    ]


@pytest.fixture(scope="module")
def berlin():
    graph = load_dataset("Berlin")
    return graph, build_index(graph)


class TestBerlinEqualityGate:
    """Byte-identical journeys on Berlin, vectorized vs scalar."""

    def test_all_query_types_identical(self, berlin):
        graph, index = berlin
        requests = _berlin_requests(graph, 25)

        def run():
            planner = TTLPlanner(graph, index=index)
            return [
                _journey_payload(planner.plan(r)) for r in requests
            ]

        with mock.patch.dict(os.environ, FORCE_KERNELS):
            vectorized = run()
        with mock.patch.dict(os.environ, FORCE_SCALAR):
            scalar = run()
        assert vectorized == scalar

    def test_batch_identical(self, berlin):
        graph, index = berlin
        queries = [
            BatchQuery(
                kind="one_to_many",
                sources=(0,),
                targets=tuple(range(graph.n)),
                t=30000,
            ),
            BatchQuery(
                kind="matrix",
                sources=(0, 1, 2),
                targets=(3, 4, 5, 6),
                t=28800,
            ),
            BatchQuery(
                kind="isochrone", sources=(5,), t=30000, budget=3600
            ),
        ]
        with mock.patch.dict(os.environ, FORCE_KERNELS):
            vectorized = batch_plan(index, queries)
        with mock.patch.dict(os.environ, FORCE_SCALAR):
            scalar = batch_plan(index, queries)
        assert vectorized == scalar

    def test_live_overlay_identical(self, berlin):
        from repro.live import LiveOverlayEngine, replay, synthetic_feed

        graph, index = berlin
        requests = _berlin_requests(graph, 10)

        def run():
            engine = LiveOverlayEngine(graph, index=index)
            engine.preprocess()
            feed = synthetic_feed(graph, seed=7)
            for _ in replay(engine, feed):
                pass
            return [_journey_payload(engine.plan(r)) for r in requests]

        with mock.patch.dict(os.environ, FORCE_KERNELS):
            vectorized = run()
        with mock.patch.dict(os.environ, FORCE_SCALAR):
            scalar = run()
        assert vectorized == scalar

    def test_federation_stitch_identical(self, berlin, tmp_path):
        from repro.federation import (
            build_federation,
            load_federation,
            partition_graph,
        )

        graph, index = berlin
        partition = partition_graph(graph, 2, seed=0)
        build_federation(graph, partition, str(tmp_path))
        requests = _berlin_requests(graph, 6)
        manifest = os.path.join(str(tmp_path), "federation.json")

        def run():
            fed = load_federation(manifest, graph)
            return [_journey_payload(fed.plan(r)) for r in requests]

        with mock.patch.dict(os.environ, FORCE_KERNELS):
            vectorized = run()
        with mock.patch.dict(os.environ, FORCE_SCALAR):
            scalar = run()
        assert vectorized == scalar


class TestDegrade:
    def test_scalar_env_disables_kernels(self):
        with mock.patch.dict(os.environ, FORCE_SCALAR):
            assert not kernels.vectorized_available()
        cleared = {
            k: v
            for k, v in os.environ.items()
            if k != kernels.SCALAR_ENV
        }
        with mock.patch.dict(os.environ, cleared, clear=True):
            assert kernels.vectorized_available()

    def test_numpy_absent_degrades_with_one_warning(self, caplog, small):
        graph, index = small
        cleared = {
            k: v
            for k, v in os.environ.items()
            if k != kernels.SCALAR_ENV
        }
        with mock.patch.dict(
            os.environ, cleared, clear=True
        ), mock.patch.object(kernels, "np", None), mock.patch.object(
            kernels, "_warned_absent", False
        ):
            with caplog.at_level("WARNING", logger="repro.core.kernels"):
                assert not kernels.vectorized_available()
                assert not kernels.vectorized_available()
            warnings = [
                r for r in caplog.records if "numpy" in r.getMessage()
            ]
            assert len(warnings) == 1
            # Queries still answer (scalar fallback).
            planner = TTLPlanner(graph, index=index)
            journey = planner.earliest_arrival(0, 5, 50)
            [batch] = batch_plan(
                index,
                [
                    BatchQuery(
                        kind="one_to_many",
                        sources=(0,),
                        targets=(5,),
                        t=50,
                    )
                ],
            )
            assert batch[5] == (
                journey.arr if journey is not None else None
            )

    def test_point_threshold_env(self):
        with mock.patch.dict(
            os.environ, {kernels.POINT_MIN_LABELS_ENV: "123"}
        ):
            assert kernels.point_min_labels() == 123
        with mock.patch.dict(
            os.environ, {kernels.POINT_MIN_LABELS_ENV: "nonsense"}
        ):
            assert kernels.point_min_labels() == (
                kernels._DEFAULT_POINT_MIN_LABELS
            )
