"""Tests for GTFS export and exporter/importer roundtrips."""

import csv

import pytest

from repro.graph.gtfs_export import save_gtfs
from repro.graph.gtfs_real import load_gtfs


class TestExport:
    def test_all_files_written(self, line_graph, tmp_path):
        save_gtfs(line_graph, tmp_path)
        for name in (
            "stops.txt", "routes.txt", "trips.txt",
            "stop_times.txt", "calendar.txt",
        ):
            assert (tmp_path / name).exists(), name

    def test_stop_times_rows(self, line_graph, tmp_path):
        save_gtfs(line_graph, tmp_path)
        with open(tmp_path / "stop_times.txt", newline="") as fh:
            rows = list(csv.DictReader(fh))
        # One row per (trip, stop).
        expected = sum(
            len(r.trips) * len(r.stops) for r in line_graph.routes.values()
        )
        assert len(rows) == expected

    def test_after_midnight_times(self, tmp_path):
        from repro.graph.builders import GraphBuilder
        from repro.timeutil import hms

        builder = GraphBuilder()
        builder.add_stations(2)
        route = builder.add_route([0, 1])
        builder.add_trip_departures(route, hms(23, 50), [1800])
        graph = builder.build()
        save_gtfs(graph, tmp_path)
        text = (tmp_path / "stop_times.txt").read_text()
        assert "24:20:00" in text


class TestRoundtrip:
    def test_connections_survive(self, route_graph, tmp_path):
        save_gtfs(route_graph, tmp_path)
        loaded, report = load_gtfs(tmp_path)
        assert report.trips_dropped == 0
        assert loaded.n == route_graph.n
        # Station ids may be renumbered; compare by name.
        def named(graph):
            return {
                (
                    graph.station_name(c.u),
                    graph.station_name(c.v),
                    c.dep,
                    c.arr,
                )
                for c in graph.connections
            }

        # Import appends the GTFS id to station names, so compare the
        # (dep, arr) multisets here; the query-agreement test below
        # checks full endpoint structure through a name mapping.
        assert sorted((d, r) for *_, d, r in named(route_graph)) == sorted(
            (d, r) for *_, d, r in named(loaded)
        )

    def test_queries_agree_after_roundtrip(self, route_graph, tmp_path, rng):
        from repro.algorithms.temporal_dijkstra import DijkstraPlanner

        save_gtfs(route_graph, tmp_path)
        loaded, _ = load_gtfs(tmp_path)
        # Map stations by name prefix.
        mapping = {}
        for s in range(route_graph.n):
            name = route_graph.station_name(s)
            for s2 in range(loaded.n):
                if loaded.station_name(s2).startswith(name + " ["):
                    mapping[s] = s2
                    break
        assert len(mapping) == route_graph.n
        a = DijkstraPlanner(route_graph)
        b = DijkstraPlanner(loaded)
        for _ in range(40):
            u, v = rng.randrange(route_graph.n), rng.randrange(route_graph.n)
            if u == v:
                continue
            t = rng.randrange(0, 250)
            x = a.earliest_arrival(u, v, t)
            y = b.earliest_arrival(mapping[u], mapping[v], t)
            assert (x is None) == (y is None)
            if x is not None:
                assert x.arr == y.arr

    def test_service_filter_roundtrip(self, line_graph, tmp_path):
        save_gtfs(line_graph, tmp_path)
        loaded, report = load_gtfs(tmp_path, service_id="everyday")
        assert report.trips_imported > 0
        loaded, report = load_gtfs(tmp_path, service_id="never")
        assert report.trips_imported == 0
