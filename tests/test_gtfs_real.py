"""Tests for the real-GTFS importer (hand-written feed fixtures)."""

import pytest

from repro.errors import SerializationError
from repro.graph.gtfs_real import load_gtfs


def write_feed(tmp_path, stop_times_rows, trips_rows=None, stops=None):
    stops = stops or [
        ("A", "Alpha"),
        ("B", "Beta"),
        ("C", "Gamma"),
    ]
    trips_rows = trips_rows or [
        ("r1", "wk", "t1"),
        ("r1", "wk", "t2"),
        ("r2", "we", "t3"),
    ]
    (tmp_path / "stops.txt").write_text(
        "stop_id,stop_name\n"
        + "\n".join(f"{sid},{name}" for sid, name in stops)
        + "\n"
    )
    (tmp_path / "routes.txt").write_text(
        "route_id,route_short_name\nr1,Line 1\nr2,Line 2\n"
    )
    (tmp_path / "trips.txt").write_text(
        "route_id,service_id,trip_id\n"
        + "\n".join(",".join(row) for row in trips_rows)
        + "\n"
    )
    (tmp_path / "stop_times.txt").write_text(
        "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n"
        + "\n".join(",".join(row) for row in stop_times_rows)
        + "\n"
    )


BASIC_STOP_TIMES = [
    ("t1", "08:00:00", "08:00:00", "A", "1"),
    ("t1", "08:10:00", "08:11:00", "B", "2"),
    ("t1", "08:20:00", "08:20:00", "C", "3"),
    ("t2", "09:00:00", "09:00:00", "A", "1"),
    ("t2", "09:10:00", "09:11:00", "B", "2"),
    ("t2", "09:20:00", "09:20:00", "C", "3"),
    ("t3", "10:00:00", "10:00:00", "C", "1"),
    ("t3", "10:15:00", "10:15:00", "A", "2"),
]


class TestBasicImport:
    def test_counts(self, tmp_path):
        write_feed(tmp_path, BASIC_STOP_TIMES)
        graph, report = load_gtfs(tmp_path)
        assert report.stops == 3
        assert report.trips_imported == 3
        assert report.trips_dropped == 0
        assert graph.n == 3
        assert graph.m == 2 + 2 + 1

    def test_route_grouping(self, tmp_path):
        write_feed(tmp_path, BASIC_STOP_TIMES)
        graph, _ = load_gtfs(tmp_path)
        # t1 and t2 share route r1 with the same stop sequence.
        sizes = sorted(len(r.trips) for r in graph.routes.values())
        assert sizes == [1, 2]

    def test_station_names(self, tmp_path):
        write_feed(tmp_path, BASIC_STOP_TIMES)
        graph, _ = load_gtfs(tmp_path)
        names = {graph.station_name(s) for s in range(graph.n)}
        assert "Alpha [A]" in names

    def test_route_names(self, tmp_path):
        write_feed(tmp_path, BASIC_STOP_TIMES)
        graph, _ = load_gtfs(tmp_path)
        assert {r.name for r in graph.routes.values()} == {
            "Line 1", "Line 2"
        }

    def test_queries_work(self, tmp_path):
        from repro.core import TTLPlanner
        from repro.timeutil import hms

        write_feed(tmp_path, BASIC_STOP_TIMES)
        graph, _ = load_gtfs(tmp_path)
        planner = TTLPlanner(graph)
        a = graph.station_names.index("Alpha [A]")
        c = graph.station_names.index("Gamma [C]")
        journey = planner.earliest_arrival(a, c, hms(8))
        assert journey is not None
        assert journey.arr == hms(8, 20)


class TestServiceFilter:
    def test_filter_by_service(self, tmp_path):
        write_feed(tmp_path, BASIC_STOP_TIMES)
        graph, report = load_gtfs(tmp_path, service_id="wk")
        assert report.trips_imported == 2
        assert graph.m == 4

    def test_unknown_service_empty(self, tmp_path):
        write_feed(tmp_path, BASIC_STOP_TIMES)
        graph, report = load_gtfs(tmp_path, service_id="nope")
        assert report.trips_imported == 0
        assert graph.m == 0


class TestDifferingStopSequences:
    def test_same_gtfs_route_split(self, tmp_path):
        """Trips of one GTFS route with different stop patterns become
        separate internal routes."""
        rows = BASIC_STOP_TIMES + [
            ("t4", "11:00:00", "11:00:00", "A", "1"),
            ("t4", "11:30:00", "11:30:00", "C", "2"),  # skips B
        ]
        write_feed(
            tmp_path,
            rows,
            trips_rows=[
                ("r1", "wk", "t1"),
                ("r1", "wk", "t2"),
                ("r2", "we", "t3"),
                ("r1", "wk", "t4"),
            ],
        )
        graph, report = load_gtfs(tmp_path)
        assert report.trips_imported == 4
        assert len(graph.routes) == 3


class TestRobustness:
    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SerializationError, match="GTFS"):
            load_gtfs(tmp_path)

    def test_after_midnight_times(self, tmp_path):
        rows = [
            ("t1", "23:50:00", "23:50:00", "A", "1"),
            ("t1", "25:10:00", "25:10:00", "B", "2"),
        ]
        write_feed(tmp_path, rows, trips_rows=[("r1", "wk", "t1")])
        graph, report = load_gtfs(tmp_path)
        assert report.trips_imported == 1
        conn = graph.connections[0]
        assert conn.arr > 24 * 3600

    def test_unknown_stop_dropped(self, tmp_path):
        rows = [
            ("t1", "08:00:00", "08:00:00", "A", "1"),
            ("t1", "08:10:00", "08:10:00", "ZZ", "2"),
        ]
        write_feed(tmp_path, rows, trips_rows=[("r1", "wk", "t1")])
        _, report = load_gtfs(tmp_path)
        assert report.trips_dropped == 1
        assert report.drop_reasons.get("unknown stop") == 1

    def test_bad_times_dropped(self, tmp_path):
        rows = [
            ("t1", "08:00:00", "08:00:00", "A", "1"),
            ("t1", "garbage", "08:10:00", "B", "2"),
        ]
        write_feed(tmp_path, rows, trips_rows=[("r1", "wk", "t1")])
        _, report = load_gtfs(tmp_path)
        assert report.drop_reasons.get("bad time") == 1

    def test_non_increasing_dropped(self, tmp_path):
        rows = [
            ("t1", "08:30:00", "08:30:00", "A", "1"),
            ("t1", "08:10:00", "08:10:00", "B", "2"),
        ]
        write_feed(tmp_path, rows, trips_rows=[("r1", "wk", "t1")])
        _, report = load_gtfs(tmp_path)
        assert report.drop_reasons.get("non-increasing times") == 1

    def test_duplicate_consecutive_stop_collapsed(self, tmp_path):
        rows = [
            ("t1", "08:00:00", "08:00:00", "A", "1"),
            ("t1", "08:05:00", "08:06:00", "B", "2"),
            ("t1", "08:06:30", "08:07:00", "B", "3"),
            ("t1", "08:20:00", "08:20:00", "C", "4"),
        ]
        write_feed(tmp_path, rows, trips_rows=[("r1", "wk", "t1")])
        graph, report = load_gtfs(tmp_path)
        assert report.trips_imported == 1
        assert graph.m == 2

    def test_single_stop_trip_dropped(self, tmp_path):
        rows = [("t1", "08:00:00", "08:00:00", "A", "1")]
        write_feed(tmp_path, rows, trips_rows=[("r1", "wk", "t1")])
        _, report = load_gtfs(tmp_path)
        assert report.drop_reasons.get("single stop") == 1
