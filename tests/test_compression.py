"""Tests for label compression (Section 7) and the C-TTL index."""

import random

import pytest

from repro.algorithms.temporal_dijkstra import DijkstraPlanner
from repro.core.build import build_index
from repro.core.cindex import CompressedTTLPlanner
from repro.core.compression import (
    PIVOT,
    PLAIN,
    ROUTE,
    _select_pivot_groups,
    compress_index,
    merge_children,
    pair_group,
)
from repro.core.label import LabelGroup
from repro.errors import IndexBuildError
from repro.graph.builders import GraphBuilder
from tests.conftest import make_random_route_graph


@pytest.fixture
def bus_corridor():
    """Three trips on one route 0-1-2 (the paper's Figure 2a shape)."""
    builder = GraphBuilder()
    builder.add_stations(3)
    route = builder.add_route([0, 1, 2])
    for start in (60, 120, 180):
        builder.add_trip_departures(route, start, [10, 10])
    return builder.build()


class TestRouteCompression:
    def test_corridor_compresses(self, bus_corridor):
        index = build_index(bus_corridor)
        compressed, stats = compress_index(index, mode="route")
        assert stats.route_groups > 0
        assert stats.labels_after < stats.labels_before

    def test_decompressed_groups_match_labels(self, bus_corridor):
        index = build_index(bus_corridor)
        compressed, _ = compress_index(index, mode="route")
        for table, index_table in (
            (compressed.in_cgroups, index.in_groups),
            (compressed.out_cgroups, index.out_groups),
        ):
            for node, cgroups in enumerate(table):
                for cgroup, original in zip(cgroups, index_table[node]):
                    view = compressed.materialize(cgroup)
                    pairs = set(zip(view.deps, view.arrs))
                    original_pairs = set(zip(original.deps, original.arrs))
                    assert original_pairs <= pairs

    def test_reduction_ratio_properties(self, bus_corridor):
        index = build_index(bus_corridor)
        _, stats = compress_index(index, mode="route")
        assert 0.0 <= stats.reduction < 1.0

    def test_bad_mode_rejected(self, bus_corridor):
        index = build_index(bus_corridor)
        with pytest.raises(IndexBuildError):
            compress_index(index, mode="bogus")


class TestPivotCompression:
    def test_select_pivot_groups_respects_conflicts(self):
        # (0,2) via 1 conflicts with its child pairs (0,1) and (1,2).
        candidates = {
            (0, 2): (1, 10),
            (0, 1): (3, 5),
            (1, 2): (4, 5),
        }
        selected = _select_pivot_groups(candidates)
        if (0, 2) in selected:
            assert (0, 1) not in selected
            assert (1, 2) not in selected
        assert selected  # something must be picked

    def test_zero_weight_candidates_skipped(self):
        selected = _select_pivot_groups({(0, 1): (2, 1)})
        assert selected == set()

    def test_merge_children_produces_staircase(self):
        left = LabelGroup(0, 0, [0, 10], [5, 15], [1, 2], [None, None])
        right = LabelGroup(0, 0, [5, 20], [9, 24], [3, 4], [None, None])
        merged = merge_children(left, right, pivot=7)
        merged.check_invariants()
        assert all(p == 7 for p in merged.pivots)
        assert all(t is None for t in merged.trips)

    def test_no_pivot_child_of_pivot_group(self, rng):
        """The compression constraint: a pivot-compressed group's child
        pairs must not be pivot-compressed."""
        for _ in range(6):
            graph = make_random_route_graph(rng, 12, 8)
            index = build_index(graph)
            compressed, _ = compress_index(index, mode="both")
            kinds = {
                (c.src, c.dst): c.kind
                for table in (compressed.in_cgroups, compressed.out_cgroups)
                for groups in table
                for c in groups
            }
            for (src, dst), kind in kinds.items():
                if kind != PIVOT:
                    continue
                cgroup = compressed._pair_map[(src, dst)]
                for child in (
                    (src, cgroup.pivot),
                    (cgroup.pivot, dst),
                ):
                    assert kinds.get(child, PLAIN) != PIVOT


class TestLosslessness:
    @pytest.mark.parametrize("mode", ["route", "pivot", "both"])
    def test_queries_unchanged(self, mode, rng):
        for _ in range(5):
            graph = make_random_route_graph(rng, 10, 7)
            oracle = DijkstraPlanner(graph)
            index = build_index(graph)
            compressed, _ = compress_index(index, mode=mode)
            planner = CompressedTTLPlanner(graph, cindex=compressed)
            for _ in range(35):
                u, v = rng.randrange(graph.n), rng.randrange(graph.n)
                if u == v:
                    continue
                t = rng.randrange(0, 250)
                t2 = t + rng.randrange(1, 260)
                a = oracle.earliest_arrival(u, v, t)
                b = planner.earliest_arrival(u, v, t)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.arr == b.arr
                a = oracle.shortest_duration(u, v, t, t2)
                b = planner.shortest_duration(u, v, t, t2)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.duration == b.duration

    def test_stats_add_up(self, rng):
        graph = make_random_route_graph(rng, 10, 7)
        index = build_index(graph)
        compressed, stats = compress_index(index, mode="both")
        stored = sum(
            cgroup.stored_labels()
            for table in (compressed.in_cgroups, compressed.out_cgroups)
            for groups in table
            for cgroup in groups
        )
        assert stored == stats.labels_after
        assert stats.labels_before == index.num_labels

    def test_combined_at_least_as_good(self, rng):
        """Mode 'both' never stores more labels than either scheme."""
        for _ in range(4):
            graph = make_random_route_graph(rng, 10, 7)
            index = build_index(graph)
            _, route_stats = compress_index(index, mode="route")
            _, pivot_stats = compress_index(index, mode="pivot")
            _, both_stats = compress_index(index, mode="both")
            assert both_stats.labels_after <= route_stats.labels_after
            assert both_stats.labels_after <= pivot_stats.labels_after


class TestCompressedIndexBytes:
    def test_smaller_than_uncompressed_on_corridor(self, bus_corridor):
        from repro.core.serialize import index_bytes

        index = build_index(bus_corridor)
        compressed, _ = compress_index(index, mode="both")
        assert compressed.compressed_bytes() <= index_bytes(index) * 2
        assert compressed.num_labels <= index.num_labels


class TestPairGroup:
    def test_locates_in_and_out_sides(self, rng):
        graph = make_random_route_graph(rng, 9, 6)
        index = build_index(graph)
        found = 0
        for v in range(graph.n):
            for group in index.in_groups[v]:
                assert pair_group(index, group.hub, v) is group
                found += 1
            for group in index.out_groups[v]:
                assert pair_group(index, v, group.hub) is group
                found += 1
        assert found > 0

    def test_missing_pair_is_none(self):
        from repro.graph.builders import graph_from_connections

        graph = graph_from_connections([(0, 1, 5, 9)], num_stations=3)
        index = build_index(graph)
        # Station 2 is isolated: no canonical paths touch it.
        assert pair_group(index, 0, 2) is None
        assert pair_group(index, 2, 0) is None
