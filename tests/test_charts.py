"""Tests for the ASCII figure renderings."""

import pytest

from repro.bench.charts import BAR_WIDTH, chart_from_result, grouped_log_chart
from repro.bench.experiments import ExperimentResult


class TestGroupedLogChart:
    def test_basic_rendering(self):
        chart = grouped_log_chart(
            "Figure X",
            ["Austin", "Berlin"],
            ["TTL", "CSA"],
            [[30.0, 3000.0], [50.0, 5000.0]],
        )
        assert "Figure X" in chart
        assert "Austin" in chart and "Berlin" in chart
        assert "TTL" in chart and "CSA" in chart
        assert "log scale" in chart

    def test_log_scaling_orders_bars(self):
        chart = grouped_log_chart(
            "T", ["g"], ["small", "big"], [[10.0, 10000.0]]
        )
        lines = chart.splitlines()
        small_bar = next(l for l in lines if "small" in l).count("#")
        big_bar = next(l for l in lines if "big" in l).count("#")
        assert small_bar < big_bar
        assert big_bar <= BAR_WIDTH

    def test_min_value_gets_minimal_bar(self):
        chart = grouped_log_chart("T", ["g"], ["a", "b"], [[1.0, 100.0]])
        line = next(l for l in chart.splitlines() if " a " in f" {l} " or l.strip().startswith("a"))
        assert line.count("#") == 1

    def test_none_rendered_as_na(self):
        chart = grouped_log_chart("T", ["g"], ["a", "b"], [[None, 5.0]])
        assert "(n/a)" in chart

    def test_empty_data(self):
        chart = grouped_log_chart("T", ["g"], ["a"], [[None]])
        assert "no data" in chart

    def test_single_value_axis(self):
        chart = grouped_log_chart("T", ["g"], ["a"], [[7.0]])
        assert "#" in chart


class TestChartFromResult:
    def test_strips_units_from_series(self):
        result = ExperimentResult(
            "Figure Y",
            ["dataset", "TTL (us)", "CSA (us)"],
            [["Austin", 20.0, 900.0]],
        )
        chart = chart_from_result(result)
        assert "TTL " in chart or "TTL|" in chart or "TTL" in chart
        assert "(us)" not in chart.splitlines()[2]

    def test_non_numeric_cells_skipped(self):
        result = ExperimentResult(
            "Figure Z",
            ["dataset", "A", "B"],
            [["X", None, 10.0]],
        )
        chart = chart_from_result(result)
        assert "(n/a)" in chart
