"""Tests for delay/cancellation scenarios."""

import pytest

from repro.algorithms.temporal_dijkstra import DijkstraPlanner
from repro.datasets.disruptions import (
    cancel_trips,
    delay_trips,
    random_delays,
)
from repro.errors import DatasetError, UnknownTripError
from repro.graph.builders import GraphBuilder


@pytest.fixture
def two_line_graph():
    builder = GraphBuilder()
    builder.add_stations(3)
    line_a = builder.add_route([0, 1])
    trip_a = builder.add_trip_departures(line_a, 100, [50])
    line_b = builder.add_route([1, 2])
    trip_b = builder.add_trip_departures(line_b, 160, [40])
    graph = builder.build()
    return graph, trip_a, trip_b


class TestDelayTrips:
    def test_whole_trip_shift(self, two_line_graph):
        graph, trip_a, _ = two_line_graph
        disrupted = delay_trips(graph, {trip_a: 30})
        conn = [c for c in disrupted.connections if c.trip == trip_a][0]
        assert (conn.dep, conn.arr) == (130, 180)

    def test_delay_breaks_transfer(self, two_line_graph):
        graph, trip_a, _ = two_line_graph
        planner = DijkstraPlanner(graph)
        assert planner.earliest_arrival(0, 2, 0).arr == 200
        disrupted = delay_trips(graph, {trip_a: 30})
        # Trip A now arrives 180 > trip B's departure 160.
        assert DijkstraPlanner(disrupted).earliest_arrival(0, 2, 0) is None

    def test_partial_delay_from_stop(self):
        builder = GraphBuilder()
        builder.add_stations(3)
        route = builder.add_route([0, 1, 2])
        trip = builder.add_trip_departures(route, 0, [10, 10], dwell=5)
        graph = builder.build()
        disrupted = delay_trips(
            graph, {trip: 60}, from_stop_index={trip: 1}
        )
        conns = sorted(
            (c for c in disrupted.connections), key=lambda c: c.dep
        )
        # First leg unchanged; dwell at stop 1 absorbs the incident.
        assert (conns[0].dep, conns[0].arr) == (0, 10)
        assert conns[1].dep == 15 + 60

    def test_zero_delay_is_noop(self, two_line_graph):
        graph, trip_a, _ = two_line_graph
        same = delay_trips(graph, {trip_a: 0})
        assert {tuple(c) for c in same.connections} == {
            tuple(c) for c in graph.connections
        }

    def test_zero_delay_returns_same_graph(self, two_line_graph):
        graph, trip_a, _ = two_line_graph
        assert delay_trips(graph, {trip_a: 0}) is graph
        assert delay_trips(graph, {}) is graph

    def test_delay_from_final_stop_is_noop(self, two_line_graph):
        """An incident at the last stop has no departure left to slip;
        it must neither raise nor corrupt the final stop time."""
        graph, trip_a, _ = two_line_graph
        last = len(graph.trips[trip_a].stop_times) - 1
        same = delay_trips(
            graph, {trip_a: 120}, from_stop_index={trip_a: last}
        )
        assert same is graph
        # Positions past the end behave the same way.
        assert (
            delay_trips(
                graph, {trip_a: 120}, from_stop_index={trip_a: last + 3}
            )
            is graph
        )

    def test_final_stop_noop_leaves_others_delayed(self, two_line_graph):
        graph, trip_a, trip_b = two_line_graph
        last = len(graph.trips[trip_a].stop_times) - 1
        disrupted = delay_trips(
            graph,
            {trip_a: 120, trip_b: 30},
            from_stop_index={trip_a: last},
        )
        by_trip = {c.trip: c for c in disrupted.connections}
        assert tuple(by_trip[trip_a]) == tuple(
            next(c for c in graph.connections if c.trip == trip_a)
        )
        assert by_trip[trip_b].dep == 160 + 30

    def test_unknown_trip_rejected(self, two_line_graph):
        graph, _, _ = two_line_graph
        with pytest.raises(UnknownTripError):
            delay_trips(graph, {999: 10})

    def test_negative_delay_rejected(self, two_line_graph):
        graph, trip_a, _ = two_line_graph
        with pytest.raises(DatasetError):
            delay_trips(graph, {trip_a: -1})

    def test_negative_from_stop_rejected(self, two_line_graph):
        graph, trip_a, _ = two_line_graph
        with pytest.raises(DatasetError):
            delay_trips(graph, {trip_a: 10}, from_stop_index={trip_a: -1})

    def test_disrupted_graph_validates(self, route_graph):
        delays = random_delays(route_graph, fraction=0.3, seed=2)
        delay_trips(route_graph, delays).validate()


class TestCancelTrips:
    def test_cancellation_removes_connections(self, two_line_graph):
        graph, trip_a, _ = two_line_graph
        cancelled = cancel_trips(graph, [trip_a])
        assert all(c.trip != trip_a for c in cancelled.connections)
        assert cancelled.m == graph.m - 1

    def test_cancellation_breaks_journey(self, two_line_graph):
        graph, trip_a, _ = two_line_graph
        cancelled = cancel_trips(graph, [trip_a])
        assert DijkstraPlanner(cancelled).earliest_arrival(0, 2, 0) is None

    def test_unknown_trip_rejected(self, two_line_graph):
        graph, _, _ = two_line_graph
        with pytest.raises(UnknownTripError):
            cancel_trips(graph, [12345])


class TestRandomDelays:
    def test_fraction_respected(self, route_graph):
        delays = random_delays(route_graph, fraction=0.5, seed=1)
        assert len(delays) == round(0.5 * len(route_graph.trips))
        assert all(1 <= d <= 900 for d in delays.values())

    def test_deterministic(self, route_graph):
        assert random_delays(route_graph, seed=3) == random_delays(
            route_graph, seed=3
        )

    def test_bad_params_rejected(self, route_graph):
        with pytest.raises(DatasetError):
            random_delays(route_graph, fraction=1.5)
        with pytest.raises(DatasetError):
            random_delays(route_graph, max_delay=0)


class TestDisruptedQueries:
    def test_answers_remain_valid_journeys(self, route_graph, rng):
        """Note: delaying a trip is NOT monotone damage — a later
        departure can *enable* a previously-missed transfer.  What must
        hold is that answers on the disrupted timetable are feasible
        journeys of the disrupted timetable, consistent across
        planners."""
        from repro.core import TTLPlanner
        from repro.graph.connection import validate_path

        delays = random_delays(route_graph, fraction=0.4, seed=5)
        disrupted = delay_trips(route_graph, delays)
        oracle = DijkstraPlanner(disrupted)
        ttl = TTLPlanner(disrupted)
        disrupted_conns = set(disrupted.connections)
        for _ in range(60):
            u, v = rng.randrange(route_graph.n), rng.randrange(route_graph.n)
            if u == v:
                continue
            t = rng.randrange(0, 250)
            a = oracle.earliest_arrival(u, v, t)
            b = ttl.earliest_arrival(u, v, t)
            assert (a is None) == (b is None)
            if b is not None:
                assert b.arr == a.arr
                validate_path(b.path)
                assert all(c in disrupted_conns for c in b.path)
