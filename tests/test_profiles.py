"""Unit and property-based tests for Pareto (dep, arr) profiles."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.profiles import ParetoProfile
from repro.timeutil import INF, NEG_INF

pair_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=1, max_value=60),
    ).map(lambda t: (t[0], t[0] + t[1])),
    max_size=40,
)


def brute_force_front(pairs):
    """Reference Pareto frontier (weak dominance, dedup)."""
    front = []
    for dep, arr in set(pairs):
        dominated = any(
            (d >= dep and a < arr) or (d > dep and a <= arr)
            for d, a in set(pairs)
        )
        if not dominated:
            front.append((dep, arr))
    return sorted(front)


class TestAdd:
    def test_simple_insert(self):
        profile = ParetoProfile()
        assert profile.add(10, 20)
        assert profile.pairs() == [(10, 20)]

    def test_duplicate_rejected(self):
        profile = ParetoProfile([(10, 20)])
        assert not profile.add(10, 20)

    def test_dominated_rejected(self):
        profile = ParetoProfile([(10, 20)])
        assert not profile.add(5, 20)  # earlier dep, same arr
        assert not profile.add(10, 25)  # same dep, later arr
        assert not profile.add(5, 25)

    def test_dominating_evicts(self):
        profile = ParetoProfile([(10, 20)])
        assert profile.add(12, 18)
        assert profile.pairs() == [(12, 18)]

    def test_same_dep_better_arr_replaces(self):
        profile = ParetoProfile([(10, 20)])
        assert profile.add(10, 15)
        assert profile.pairs() == [(10, 15)]

    def test_eviction_of_many(self):
        profile = ParetoProfile([(1, 10), (2, 11), (3, 12)])
        assert profile.add(4, 5)
        assert profile.pairs() == [(4, 5)]

    def test_payload_tracked(self):
        profile = ParetoProfile()
        profile.add(1, 2, payload="x")
        assert profile.eat_pair(0) == (1, 2, "x")

    def test_zero_duration_pair_allowed(self):
        profile = ParetoProfile()
        assert profile.add(5, 5)


class TestQueries:
    def test_eat(self):
        profile = ParetoProfile([(10, 20), (30, 35)])
        assert profile.eat(0) == 20
        assert profile.eat(11) == 35
        assert profile.eat(31) == INF

    def test_ldt(self):
        profile = ParetoProfile([(10, 20), (30, 35)])
        assert profile.ldt(100) == 30
        assert profile.ldt(34) == 10
        assert profile.ldt(19) == NEG_INF

    def test_best_duration_window(self):
        profile = ParetoProfile([(10, 30), (20, 32), (40, 70)])
        best = profile.best_duration(0, 100)
        assert best is not None and best[:2] == (20, 32)

    def test_best_duration_empty_window(self):
        profile = ParetoProfile([(10, 30)])
        assert profile.best_duration(50, 60) is None
        assert profile.best_duration(0, 20) is None

    def test_dominates(self):
        profile = ParetoProfile([(10, 20)])
        assert profile.dominates(10, 20)
        assert profile.dominates(5, 25)
        assert not profile.dominates(11, 20)
        assert not profile.dominates(10, 19)

    def test_bool_and_len(self):
        profile = ParetoProfile()
        assert not profile
        profile.add(1, 2)
        assert profile and len(profile) == 1


class TestProperties:
    @given(pair_lists)
    @settings(max_examples=200)
    def test_matches_brute_force_front(self, pairs):
        profile = ParetoProfile()
        for dep, arr in pairs:
            profile.add(dep, arr)
        assert profile.pairs() == brute_force_front(pairs)

    @given(pair_lists)
    @settings(max_examples=100)
    def test_staircase_invariant(self, pairs):
        profile = ParetoProfile()
        for dep, arr in pairs:
            profile.add(dep, arr)
        deps, arrs = profile.deps, profile.arrs
        for i in range(len(deps) - 1):
            assert deps[i] < deps[i + 1]
            assert arrs[i] < arrs[i + 1]

    @given(pair_lists, st.integers(min_value=0, max_value=200))
    @settings(max_examples=100)
    def test_eat_matches_brute_force(self, pairs, t):
        profile = ParetoProfile()
        for dep, arr in pairs:
            profile.add(dep, arr)
        expected = min(
            (arr for dep, arr in pairs if dep >= t), default=INF
        )
        assert profile.eat(t) == expected

    @given(pair_lists, st.integers(min_value=0, max_value=200))
    @settings(max_examples=100)
    def test_ldt_matches_brute_force(self, pairs, t):
        profile = ParetoProfile()
        for dep, arr in pairs:
            profile.add(dep, arr)
        expected = max(
            (dep for dep, arr in pairs if arr <= t), default=NEG_INF
        )
        assert profile.ldt(t) == expected

    @given(
        pair_lists,
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=100)
    def test_best_duration_matches_brute_force(self, pairs, a, b):
        t, t_end = min(a, b), max(a, b)
        profile = ParetoProfile()
        for dep, arr in pairs:
            profile.add(dep, arr)
        feasible = [
            arr - dep for dep, arr in pairs if dep >= t and arr <= t_end
        ]
        best = profile.best_duration(t, t_end)
        if not feasible:
            assert best is None
        else:
            assert best is not None
            assert best[1] - best[0] == min(feasible)
