"""Unit tests for GraphBuilder."""

import pytest

from repro.errors import ValidationError
from repro.graph.builders import GraphBuilder, graph_from_connections


class TestStations:
    def test_dense_ids(self):
        builder = GraphBuilder()
        assert builder.add_station("a") == 0
        assert builder.add_station("b") == 1
        assert builder.num_stations == 2

    def test_reregistering_name_returns_same_id(self):
        builder = GraphBuilder()
        a = builder.add_station("a")
        assert builder.add_station("a") == a
        assert builder.num_stations == 1

    def test_anonymous_stations(self):
        builder = GraphBuilder()
        ids = builder.add_stations(3)
        assert ids == [0, 1, 2]

    def test_station_id_lookup(self):
        builder = GraphBuilder()
        builder.add_station("x")
        assert builder.station_id("x") == 0
        with pytest.raises(ValidationError):
            builder.station_id("missing")


class TestRoutesAndTrips:
    def test_route_requires_registered_stops(self):
        builder = GraphBuilder()
        builder.add_stations(2)
        with pytest.raises(ValidationError, match="not registered"):
            builder.add_route([0, 5])

    def test_trip_requires_known_route(self):
        builder = GraphBuilder()
        with pytest.raises(ValidationError, match="unknown route"):
            builder.add_trip(0, [(0, 0), (1, 1)])

    def test_trip_departures_convenience(self):
        builder = GraphBuilder()
        builder.add_stations(3)
        route = builder.add_route([0, 1, 2])
        builder.add_trip_departures(route, 100, [10, 20], dwell=5)
        graph = builder.build()
        conns = sorted(graph.connections, key=lambda c: c.dep)
        assert (conns[0].dep, conns[0].arr) == (100, 110)
        # Dwell of 5 at the intermediate stop.
        assert (conns[1].dep, conns[1].arr) == (115, 135)

    def test_trip_departures_wrong_leg_count(self):
        builder = GraphBuilder()
        builder.add_stations(3)
        route = builder.add_route([0, 1, 2])
        with pytest.raises(ValidationError, match="legs"):
            builder.add_trip_departures(route, 100, [10])

    def test_trip_departures_rejects_nonpositive_leg(self):
        builder = GraphBuilder()
        builder.add_stations(2)
        route = builder.add_route([0, 1])
        with pytest.raises(ValidationError, match="positive"):
            builder.add_trip_departures(route, 100, [0])

    def test_trips_sorted_on_build(self):
        builder = GraphBuilder()
        builder.add_stations(2)
        route = builder.add_route([0, 1])
        builder.add_trip_departures(route, 300, [10])
        builder.add_trip_departures(route, 100, [10])
        graph = builder.build()
        departures = [t.departure for t in graph.routes[route].trips]
        assert departures == [100, 300]


class TestRawConnections:
    def test_add_connection_creates_route(self):
        builder = GraphBuilder()
        builder.add_stations(2)
        builder.add_connection(0, 1, 5, 9)
        graph = builder.build()
        assert graph.m == 1
        assert len(graph.routes) == 1
        assert graph.trip_to_route[graph.connections[0].trip] in graph.routes

    def test_graph_from_connections_infers_size(self):
        graph = graph_from_connections([(0, 4, 1, 2)])
        assert graph.n == 5

    def test_graph_from_connections_explicit_size(self):
        graph = graph_from_connections([(0, 1, 1, 2)], num_stations=10)
        assert graph.n == 10


class TestBuild:
    def test_empty_build(self):
        graph = GraphBuilder().build()
        assert graph.n == 0
        assert graph.m == 0

    def test_full_flow(self):
        builder = GraphBuilder()
        a = builder.add_station("a")
        b = builder.add_station("b")
        c = builder.add_station("c")
        route = builder.add_route([a, b, c], name="line-1")
        builder.add_trip(route, [(0, 0), (10, 12), (20, 20)])
        graph = builder.build()
        assert graph.m == 2
        assert graph.routes[route].name == "line-1"
        assert graph.station_name(a) == "a"
