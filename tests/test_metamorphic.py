"""Metamorphic properties that must hold for every planner.

These tests don't need a reference answer — they perturb the input and
check the answer moves the right way:

* time translation: shifting every timestamp by Δ shifts answers by Δ;
* monotonicity: relaxing the query window never worsens the answer;
* augmentation: adding a connection never worsens any earliest arrival;
* reversal duality: LDP on G equals EAP on the time-reversal.
"""

import random

import pytest

from repro.baselines import CHTPlanner, CSAPlanner, RaptorPlanner
from repro.core import CompressedTTLPlanner, TTLPlanner
from repro.algorithms.temporal_dijkstra import DijkstraPlanner
from repro.graph.builders import GraphBuilder, graph_from_connections
from repro.graph.transforms import reversed_graph
from tests.conftest import make_random_route_graph

PLANNERS = [
    DijkstraPlanner,
    CSAPlanner,
    CHTPlanner,
    RaptorPlanner,
    TTLPlanner,
    CompressedTTLPlanner,
]


def shifted_graph(graph, delta):
    conns = [
        (c.u, c.v, c.dep + delta, c.arr + delta) for c in graph.connections
    ]
    return graph_from_connections(conns, graph.n)


@pytest.mark.parametrize("planner_cls", PLANNERS)
class TestTimeTranslation:
    def test_eap_shifts_with_time(self, planner_cls, rng):
        graph = make_random_route_graph(rng, 8, 5)
        delta = 1000
        shifted = shifted_graph(graph, delta)
        original = planner_cls(graph)
        moved = planner_cls(shifted)
        for _ in range(25):
            u, v = rng.randrange(8), rng.randrange(8)
            if u == v:
                continue
            t = rng.randrange(0, 250)
            a = original.earliest_arrival(u, v, t)
            b = moved.earliest_arrival(u, v, t + delta)
            assert (a is None) == (b is None)
            if a is not None:
                assert b.arr == a.arr + delta
                assert b.dep == a.dep + delta


@pytest.mark.parametrize("planner_cls", PLANNERS)
class TestMonotonicity:
    def test_earlier_start_never_hurts(self, planner_cls, rng):
        graph = make_random_route_graph(rng, 8, 5)
        planner = planner_cls(graph)
        for _ in range(25):
            u, v = rng.randrange(8), rng.randrange(8)
            if u == v:
                continue
            t = rng.randrange(10, 250)
            late = planner.earliest_arrival(u, v, t)
            early = planner.earliest_arrival(u, v, t - 10)
            if late is not None:
                assert early is not None
                assert early.arr <= late.arr

    def test_wider_window_never_hurts_sdp(self, planner_cls, rng):
        graph = make_random_route_graph(rng, 8, 5)
        planner = planner_cls(graph)
        for _ in range(25):
            u, v = rng.randrange(8), rng.randrange(8)
            if u == v:
                continue
            t = rng.randrange(10, 200)
            t_end = t + rng.randrange(10, 200)
            narrow = planner.shortest_duration(u, v, t, t_end)
            wide = planner.shortest_duration(u, v, t - 10, t_end + 10)
            if narrow is not None:
                assert wide is not None
                assert wide.duration <= narrow.duration


class TestAugmentation:
    def test_extra_connection_never_worsens_eap(self, rng):
        base_conns = []
        n = 7
        for _ in range(20):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            dep = rng.randrange(0, 200)
            base_conns.append((u, v, dep, dep + rng.randrange(1, 30)))
        if not base_conns:
            pytest.skip("degenerate sample")
        graph = graph_from_connections(base_conns, n)
        extra = base_conns + [(0, 1, 5, 6)]
        augmented = graph_from_connections(extra, n)
        before = TTLPlanner(graph)
        after = TTLPlanner(augmented)
        for _ in range(40):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            t = rng.randrange(0, 220)
            a = before.earliest_arrival(u, v, t)
            b = after.earliest_arrival(u, v, t)
            if a is not None:
                assert b is not None
                assert b.arr <= a.arr


class TestReversalDuality:
    @pytest.mark.parametrize(
        "planner_cls", [TTLPlanner, CSAPlanner, CHTPlanner, RaptorPlanner]
    )
    def test_ldp_equals_eap_on_reversal(self, planner_cls, rng):
        graph = make_random_route_graph(rng, 8, 5)
        rev = reversed_graph(graph)
        forward = planner_cls(graph)
        backward = planner_cls(rev)
        for _ in range(25):
            u, v = rng.randrange(8), rng.randrange(8)
            if u == v:
                continue
            t = rng.randrange(0, 250)
            ldp = forward.latest_departure(u, v, t)
            eap = backward.earliest_arrival(v, u, -t)
            assert (ldp is None) == (eap is None)
            if ldp is not None:
                assert eap.arr == -ldp.dep


class TestDensification:
    def test_higher_frequency_never_hurts(self, rng):
        """Doubling a route's trip frequency can only improve EAT."""
        builder = GraphBuilder()
        builder.add_stations(4)
        route = builder.add_route([0, 1, 2, 3])
        for start in range(0, 300, 60):
            builder.add_trip_departures(route, start, [10, 10, 10])
        sparse = builder.build()

        builder = GraphBuilder()
        builder.add_stations(4)
        route = builder.add_route([0, 1, 2, 3])
        for start in range(0, 300, 30):
            builder.add_trip_departures(route, start, [10, 10, 10])
        dense = builder.build()

        a = TTLPlanner(sparse)
        b = TTLPlanner(dense)
        for t in range(0, 280, 7):
            slow = a.earliest_arrival(0, 3, t)
            fast = b.earliest_arrival(0, 3, t)
            if slow is not None:
                assert fast is not None
                assert fast.arr <= slow.arr
