"""Tests for node-ordering strategies (Section 6)."""

import random

import pytest

from repro.core.build import build_index
from repro.core.order import (
    approximation_order,
    betweenness_order,
    degree_order,
    hub_order,
    random_order,
    _build_eap_tree,
)
from repro.errors import IndexBuildError
from repro.graph.builders import GraphBuilder, graph_from_connections
from tests.conftest import make_random_route_graph


ALL_ORDERS = [
    lambda g: random_order(g, seed=3),
    degree_order,
    betweenness_order,
    hub_order,
    approximation_order,
]


class TestPermutationProperty:
    @pytest.mark.parametrize("order_fn", ALL_ORDERS)
    def test_rank_is_permutation(self, order_fn, route_graph):
        ranks = order_fn(route_graph)
        assert sorted(ranks) == list(range(route_graph.n))

    @pytest.mark.parametrize("order_fn", ALL_ORDERS)
    def test_empty_graph(self, order_fn):
        graph = GraphBuilder().build()
        assert order_fn(graph) == []


class TestRandomOrder:
    def test_seed_determinism(self, route_graph):
        assert random_order(route_graph, seed=5) == random_order(
            route_graph, seed=5
        )

    def test_seeds_differ(self, route_graph):
        a = random_order(route_graph, seed=1)
        b = random_order(route_graph, seed=2)
        assert a != b  # overwhelmingly likely for n >= 5


class TestDegreeOrder:
    def test_densest_station_ranked_first(self):
        graph = graph_from_connections(
            [(0, 1, 0, 5), (1, 2, 6, 9), (2, 1, 1, 4), (1, 0, 10, 20)]
        )
        ranks = degree_order(graph)
        assert ranks[1] == 0  # station 1 touches every connection


class TestHubOrder:
    def test_determinism(self, route_graph):
        assert hub_order(route_graph, seed=4) == hub_order(route_graph, seed=4)

    def test_hub_station_wins_on_star(self):
        """On a star network, the centre covers every EAP."""
        builder = GraphBuilder()
        centre = builder.add_station("centre")
        leaves = [builder.add_station(f"leaf{i}") for i in range(4)]
        for leaf in leaves:
            r_out = builder.add_route([centre, leaf])
            r_in = builder.add_route([leaf, centre])
            for k in range(3):
                builder.add_trip_departures(r_out, 10 + 30 * k, [10])
                builder.add_trip_departures(r_in, 20 + 30 * k, [10])
        graph = builder.build()
        ranks = hub_order(graph, num_samples=16, seed=0)
        assert ranks[centre] == 0

    def test_more_samples_not_worse_index(self, rng):
        """A sanity check, not a theorem: with enough samples the index
        should not be dramatically larger than with one sample."""
        graph = make_random_route_graph(rng, 12, 8)
        few = build_index(graph, order=hub_order(graph, num_samples=1))
        many = build_index(graph, order=hub_order(graph, num_samples=48))
        assert many.num_labels <= few.num_labels * 1.5

    def test_eap_tree_coverage_sums(self, line_graph):
        tree = _build_eap_tree(line_graph, 0, 95)
        assert tree is not None
        # Root covers every reached station.
        assert tree.coverage[0] == len(tree.coverage)

    def test_eap_tree_none_when_isolated(self, line_graph):
        # Station 3 has no outgoing connections.
        assert _build_eap_tree(line_graph, 3, 0) is None


class TestBetweennessOrder:
    def test_centre_of_star_ranked_first(self):
        from repro.graph.builders import GraphBuilder

        builder = GraphBuilder()
        centre = builder.add_station("centre")
        leaves = [builder.add_station(f"l{i}") for i in range(4)]
        for leaf in leaves:
            out = builder.add_route([centre, leaf])
            back = builder.add_route([leaf, centre])
            builder.add_trip_departures(out, 10, [10])
            builder.add_trip_departures(back, 30, [10])
        graph = builder.build()
        ranks = betweenness_order(graph)
        assert ranks[centre] == 0

    def test_ttl_correct_under_betweenness_order(self, rng):
        from repro.algorithms.temporal_dijkstra import DijkstraPlanner
        from repro.core.queries import TTLPlanner
        from tests.conftest import make_random_route_graph

        graph = make_random_route_graph(rng, 9, 6)
        oracle = DijkstraPlanner(graph)
        ttl = TTLPlanner(graph, order=betweenness_order)
        for _ in range(40):
            u, v = rng.randrange(graph.n), rng.randrange(graph.n)
            if u == v:
                continue
            t = rng.randrange(0, 250)
            a = oracle.earliest_arrival(u, v, t)
            b = ttl.earliest_arrival(u, v, t)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.arr == b.arr


class TestApproximationOrder:
    def test_gate_on_large_graphs(self, rng):
        graph = make_random_route_graph(rng, 10, 4)
        with pytest.raises(IndexBuildError, match="limited"):
            approximation_order(graph, max_stations=5)

    def test_not_worse_than_random(self, rng):
        """A-Order should produce an index no larger than Rand-Order
        (Appendix D.2's headline)."""
        graph = make_random_route_graph(rng, 10, 7)
        a_index = build_index(graph, order=approximation_order(graph))
        r_index = build_index(graph, order=random_order(graph, seed=9))
        assert a_index.num_labels <= r_index.num_labels


class TestResolveOrder:
    def test_string_specs(self, route_graph):
        from repro.core.build import resolve_order

        for spec in ("hub", "random", "degree", "betweenness", "approx"):
            ranks = resolve_order(route_graph, spec)
            assert sorted(ranks) == list(range(route_graph.n))

    def test_unknown_string_rejected(self, route_graph):
        from repro.core.build import resolve_order

        with pytest.raises(IndexBuildError, match="unknown order"):
            resolve_order(route_graph, "bogus")

    def test_explicit_ranks(self, route_graph):
        from repro.core.build import resolve_order

        ranks = list(range(route_graph.n))
        assert resolve_order(route_graph, ranks) == ranks

    def test_non_permutation_rejected(self, route_graph):
        from repro.core.build import resolve_order

        with pytest.raises(IndexBuildError, match="permutation"):
            resolve_order(route_graph, [0] * route_graph.n)

    def test_callable(self, route_graph):
        from repro.core.build import resolve_order

        ranks = resolve_order(route_graph, lambda g: degree_order(g))
        assert sorted(ranks) == list(range(route_graph.n))


class TestOrderDeterminism:
    """H-Order and A-Order must be pure functions of the graph.

    The build farm's checkpoint manifest pins the rank permutation by
    digest, so two runs over freshly generated copies of the same
    dataset have to produce bit-identical ranks — any hidden
    nondeterminism (set iteration, unseeded sampling) would make
    resumed builds unresumable.
    """

    @staticmethod
    def fresh_graph():
        # Bypass the load_dataset cache: a genuinely new graph object
        # each time, so dict/id-order effects cannot hide.
        from repro.datasets.registry import DATASETS

        return DATASETS["Austin"].generate(0.5)

    def test_hub_order_identical_across_runs(self):
        assert hub_order(self.fresh_graph()) == hub_order(self.fresh_graph())

    def test_approximation_order_identical_across_runs(self):
        assert approximation_order(self.fresh_graph()) == approximation_order(
            self.fresh_graph()
        )

    def test_order_digest_stable_across_runs(self):
        from repro.core.order import order_digest

        assert order_digest(hub_order(self.fresh_graph())) == order_digest(
            hub_order(self.fresh_graph())
        )

    def test_ties_break_by_node_id(self):
        # Two disjoint, structurally identical lines: station v on the
        # first line ties with its twin v+3 on every score, so the
        # lower id must win the rank.  Few enough connections that
        # H-Order samples all of them, keeping the symmetry exact.
        builder = GraphBuilder()
        builder.add_stations(6)
        first = builder.add_route([0, 1, 2])
        builder.add_trip_departures(first, 100, [10, 10])
        second = builder.add_route([3, 4, 5])
        builder.add_trip_departures(second, 100, [10, 10])
        graph = builder.build()
        for order_fn in (hub_order, approximation_order):
            ranks = order_fn(graph)
            for v in range(3):
                assert ranks[v] < ranks[v + 3], order_fn.__name__
