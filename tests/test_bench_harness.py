"""Tests for the benchmark harness and (fast) experiment functions."""

import pytest

from repro.bench.harness import (
    BenchConfig,
    PlannerCache,
    render_table,
    run_queries,
    time_queries,
)
from repro.bench import experiments as E


@pytest.fixture(scope="module")
def cache():
    config = BenchConfig(
        scale=0.4, datasets=["Austin", "Toronto"], num_queries=20
    )
    return PlannerCache(config)


class TestConfig:
    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        monkeypatch.setenv("REPRO_DATASETS", "Austin, Berlin")
        monkeypatch.setenv("REPRO_QUERIES", "77")
        config = BenchConfig.from_env()
        assert config.scale == 0.5
        assert config.datasets == ["Austin", "Berlin"]
        assert config.num_queries == 77

    def test_defaults(self, monkeypatch):
        for var in ("REPRO_SCALE", "REPRO_DATASETS", "REPRO_QUERIES"):
            monkeypatch.delenv(var, raising=False)
        config = BenchConfig.from_env()
        assert config.scale == 1.0
        assert len(config.datasets) == 11


class TestPlannerCache:
    def test_planner_cached(self, cache):
        a = cache.planner("Austin", "TTL")
        b = cache.planner("Austin", "TTL")
        assert a is b

    def test_ttl_variants_share_index(self, cache):
        plain = cache.planner("Austin", "TTL")
        concise = cache.planner("Austin", "TTL-concise")
        assert plain.index is concise.index
        assert concise.concise

    def test_cttl_variants_share_cindex(self, cache):
        plain = cache.planner("Austin", "C-TTL")
        concise = cache.planner("Austin", "C-TTL-concise")
        assert plain.cindex is concise.cindex

    def test_queries_cached_and_deterministic(self, cache):
        assert cache.queries("Austin") is cache.queries("Austin")
        assert len(cache.queries("Austin")) == 20

    def test_unknown_method_rejected(self, cache):
        with pytest.raises(KeyError):
            cache.planner("Austin", "WARP-DRIVE")


class TestQueryRunners:
    def test_run_queries_counts(self, cache):
        planner = cache.planner("Austin", "TTL")
        queries = cache.queries("Austin")
        for kind in ("eap", "ldp", "sdp"):
            answered = run_queries(planner, queries, kind)
            assert 0 <= answered <= len(queries)

    def test_bad_kind_rejected(self, cache):
        with pytest.raises(ValueError):
            run_queries(cache.planner("Austin", "TTL"), [], "nope")

    def test_time_queries_positive(self, cache):
        planner = cache.planner("Austin", "TTL")
        queries = cache.queries("Austin")
        assert time_queries(planner, queries, "eap") > 0


class TestRenderTable:
    def test_alignment_and_content(self):
        table = render_table(
            "T", ["name", "value"], [["a", 1], ["bb", 123456]]
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "123,456" in table

    def test_float_formats(self):
        table = render_table("T", ["x"], [[0.12345], [1234.5], [5.5]])
        assert "0.1234" in table or "0.1235" in table
        assert "1,234" in table or "1,235" in table
        assert "5.50" in table


class TestExperiments:
    def test_table3(self, cache):
        result = E.table3_datasets(cache)
        assert [row[0] for row in result.rows] == ["Austin", "Toronto"]
        assert all(row[2] > 0 for row in result.rows)
        assert "Table 3" in str(result)

    def test_table4(self, cache):
        result = E.table4_compression(cache)
        for row in result.rows:
            name, labels, d1, d2, d3 = row
            assert labels > 0
            assert 0 <= d1 <= 100 and 0 <= d2 <= 100 and 0 <= d3 <= 100
            assert d3 >= max(d1, d2) - 1e-9

    def test_figure4(self, cache):
        result = E.figure4_space(cache)
        for row in result.rows:
            assert all(size > 0 for size in row[1:])

    def test_query_figures_have_all_methods(self, cache):
        result = E.figure6_eap(cache)
        assert len(result.headers) == 1 + len(E.QUERY_METHODS)
        for row in result.rows:
            assert all(value > 0 for value in row[1:])

    def test_result_accessors(self, cache):
        result = E.table3_datasets(cache)
        assert result.column("dataset") == ["Austin", "Toronto"]
        assert set(result.by_dataset("stations")) == {"Austin", "Toronto"}
