"""Tests for the parallel, checkpointable build pipeline (repro.buildfarm).

The central contract is the *equality gate*: for every dataset in the
test registry the parallel build must reproduce the serial
:func:`repro.core.build.build_index` output label for label — same
ranks, same group order, same metadata — and therefore answer every
query identically.  The checkpoint tests then assert that a killed
build resumes from its shards without recomputing finished chunks.
"""

from __future__ import annotations

import random

import pytest

from repro.buildfarm import (
    BuildPlan,
    Chunk,
    ProgressTracker,
    build_index_parallel,
    default_chunk_size,
    make_plan,
)
from repro.buildfarm.checkpoint import (
    build_manifest,
    check_manifest,
    contiguous_shards,
    load_manifest,
    read_shard,
    shard_path,
    write_manifest,
    write_shard,
)
from repro.buildfarm.plan import assign_round_robin
from repro.buildfarm.progress import STALE_WORKER_SECONDS
from repro.buildfarm.worker import HubSearcher, decode_graph, encode_graph
from repro.core import TTLPlanner
from repro.core.build import build_index
from repro.core.label import LabelGroup
from repro.core.order import graph_digest, order_digest
from repro.core.store import (
    blob_num_labels,
    decode_group_entries,
    encode_group_entries,
)
from repro.datasets import QueryWorkload, load_dataset
from repro.errors import BuildAborted, BuildFarmError

#: The equality gate runs over every entry here (name, scale).
TEST_REGISTRY = [
    ("Austin", 1.0),
    ("Toronto", 1.0),
    ("Berlin", 1.0),
]

_SERIAL_CACHE = {}


def serial_index(name, scale=1.0):
    """Module-cached serial reference index for a registry dataset."""
    key = (name, scale)
    if key not in _SERIAL_CACHE:
        _SERIAL_CACHE[key] = build_index(load_dataset(name, scale))
    return _SERIAL_CACHE[key]


def journey_key(journey):
    """Comparable projection of a Journey (which has no ``__eq__``)."""
    if journey is None:
        return None
    return (
        journey.source,
        journey.destination,
        journey.dep,
        journey.arr,
        tuple(journey.path or ()),
        tuple(journey.legs or ()),
    )


def assert_indexes_identical(expected, actual):
    """Label-for-label equality: ranks plus every store column."""
    assert actual.ranks == expected.ranks
    for direction in ("in_store", "out_store"):
        want = getattr(expected, direction)
        got = getattr(actual, direction)
        for column in (
            "node_starts",
            "group_starts",
            "hubs",
            "group_ranks",
            "deps",
            "arrs",
            "trips",
            "pivots",
        ):
            assert list(getattr(got, column)) == list(
                getattr(want, column)
            ), f"{direction}.{column} differs"


class TestEqualityGate:
    @pytest.mark.parametrize("name,scale", TEST_REGISTRY)
    def test_parallel_matches_serial(self, name, scale):
        graph = load_dataset(name, scale)
        parallel = build_index_parallel(graph, jobs=2)
        assert_indexes_identical(serial_index(name, scale), parallel)

    def test_inline_jobs1_matches_serial(self):
        graph = load_dataset("Austin")
        inline = build_index_parallel(graph, jobs=1)
        assert_indexes_identical(serial_index("Austin"), inline)

    def test_three_jobs_small_chunks_match_serial(self):
        graph = load_dataset("Toronto")
        parallel = build_index_parallel(graph, jobs=3, chunk_size=5)
        assert_indexes_identical(serial_index("Toronto"), parallel)

    def test_spawn_context_matches_serial(self):
        graph = load_dataset("Austin", 0.5)
        parallel = build_index_parallel(graph, jobs=2, mp_start="spawn")
        assert_indexes_identical(serial_index("Austin", 0.5), parallel)

    @pytest.mark.parametrize("name,scale", TEST_REGISTRY)
    def test_queries_answered_identically(self, name, scale):
        graph = load_dataset(name, scale)
        serial = TTLPlanner(graph, index=serial_index(name, scale))
        parallel = TTLPlanner(
            graph, index=build_index_parallel(graph, jobs=2)
        )
        for q in QueryWorkload(graph, seed=13).generate(40):
            checks = [
                ("EAP", serial.earliest_arrival, parallel.earliest_arrival,
                 (q.source, q.destination, q.t_start)),
                ("LDP", serial.latest_departure, parallel.latest_departure,
                 (q.source, q.destination, q.t_end)),
                ("SDP", serial.shortest_duration, parallel.shortest_duration,
                 (q.source, q.destination, q.t_start, q.t_end)),
            ]
            for tag, ask_serial, ask_parallel, arguments in checks:
                assert journey_key(ask_serial(*arguments)) == journey_key(
                    ask_parallel(*arguments)
                ), f"{tag} diverged on {q}"

    def test_parallel_stats_extras(self):
        graph = load_dataset("Austin")
        index = build_index_parallel(graph, jobs=2)
        extra = index.build_stats.extra
        assert extra["jobs"] == 2
        assert extra["chunks"] >= 1
        assert extra["chunks_resumed"] == 0
        assert extra["merge_dropped_labels"] >= 0

    def test_no_prune_cover_also_matches(self):
        graph = load_dataset("Austin", 0.5)
        serial = build_index(graph, prune_cover=False)
        parallel = build_index_parallel(graph, jobs=2, prune_cover=False)
        assert_indexes_identical(serial, parallel)


class TestCheckpointResume:
    def test_kill_then_resume_is_identical_and_skips_done_chunks(
        self, tmp_path
    ):
        graph = load_dataset("Austin")
        ckpt = tmp_path / "ck"

        with pytest.raises(BuildAborted) as abort:
            build_index_parallel(
                graph,
                jobs=2,
                chunk_size=8,
                checkpoint_dir=ckpt,
                fail_after_chunks=2,
            )
        assert abort.value.chunks_done == 2
        assert load_manifest(ckpt) is not None

        snapshots = []
        tracker = ProgressTracker(callback=snapshots.append)
        resumed = build_index_parallel(
            graph,
            jobs=2,
            chunk_size=8,
            checkpoint_dir=ckpt,
            resume=True,
            tracker=tracker,
        )
        assert_indexes_identical(serial_index("Austin"), resumed)

        # Chunk-level counters prove the finished shards were replayed,
        # not recomputed: exactly two chunks arrive via resume and the
        # rest are built fresh.
        extra = resumed.build_stats.extra
        assert extra["chunks_resumed"] == 2
        final = tracker.snapshot()
        assert final.chunks_resumed == 2
        assert final.chunks_done == final.chunks_total
        assert final.hubs_done == graph.n
        assert any(s.phase == "resume" for s in snapshots)

    def test_resume_without_checkpoint_dir_rejected(self):
        graph = load_dataset("Austin", 0.5)
        with pytest.raises(BuildFarmError):
            build_index_parallel(graph, jobs=2, resume=True)

    def test_resume_rejects_mismatched_graph(self, tmp_path):
        ckpt = tmp_path / "ck"
        build_index_parallel(
            load_dataset("Austin", 0.5), checkpoint_dir=ckpt, chunk_size=8
        )
        with pytest.raises(BuildFarmError, match="does not match"):
            build_index_parallel(
                load_dataset("Toronto", 0.5),
                checkpoint_dir=ckpt,
                chunk_size=8,
                resume=True,
            )

    def test_resume_rejects_corrupt_shard(self, tmp_path):
        graph = load_dataset("Austin", 0.5)
        ckpt = tmp_path / "ck"
        with pytest.raises(BuildAborted):
            build_index_parallel(
                graph,
                checkpoint_dir=ckpt,
                chunk_size=4,
                fail_after_chunks=1,
            )
        path = shard_path(ckpt, 0)
        path.write_bytes(path.read_bytes()[:-4])
        with pytest.raises(BuildFarmError):
            build_index_parallel(
                graph,
                checkpoint_dir=ckpt,
                chunk_size=4,
                resume=True,
            )

    def test_fresh_build_clears_stale_shards(self, tmp_path):
        graph = load_dataset("Austin", 0.5)
        ckpt = tmp_path / "ck"
        with pytest.raises(BuildAborted):
            build_index_parallel(
                graph,
                checkpoint_dir=ckpt,
                chunk_size=4,
                fail_after_chunks=1,
            )
        # A fresh (non-resume) build must not trust the old shards.
        index = build_index_parallel(
            graph, checkpoint_dir=ckpt, chunk_size=4
        )
        assert_indexes_identical(serial_index("Austin", 0.5), index)
        assert index.build_stats.extra["chunks_resumed"] == 0

    def test_checkpointed_build_leaves_complete_shard_set(self, tmp_path):
        graph = load_dataset("Austin", 0.5)
        ckpt = tmp_path / "ck"
        index = build_index_parallel(
            graph, checkpoint_dir=ckpt, chunk_size=8
        )
        manifest = load_manifest(ckpt)
        chunks = len(manifest["chunks"])
        assert contiguous_shards(ckpt, chunks) == chunks
        total = 0
        for i in range(chunks):
            in_entries, out_entries = read_shard(
                ckpt, i, index.ranks, graph.n
            )
            total += sum(len(g.deps) for _, g in in_entries)
            total += sum(len(g.deps) for _, g in out_entries)
        assert total == index.num_labels


def group_key(group):
    """Comparable projection of a LabelGroup or GroupView."""
    return (
        group.hub,
        list(group.deps),
        list(group.arrs),
        list(group.trips),
        list(group.pivots),
    )


class TestShardFormat:
    def test_shard_round_trip(self, tmp_path):
        graph = load_dataset("Austin", 0.5)
        index = serial_index("Austin", 0.5)
        entries = [
            (v, group)
            for v in range(graph.n)
            for group in index.in_store.views(v)
        ]
        write_shard(tmp_path, 3, entries, [])
        in_back, out_back = read_shard(tmp_path, 3, index.ranks, graph.n)
        assert out_back == []
        assert [(v, group_key(g)) for v, g in in_back] == [
            (v, group_key(g)) for v, g in entries
        ]

    def test_read_shard_rejects_bad_magic(self, tmp_path):
        path = shard_path(tmp_path, 0)
        path.write_bytes(b"NOTSHARD" + b"\0" * 16)
        with pytest.raises(BuildFarmError):
            read_shard(tmp_path, 0, [0, 1], 2)

    def test_read_shard_rejects_wrong_index(self, tmp_path):
        write_shard(tmp_path, 1, [], [])
        # File claims chunk 1; asking for it as chunk 0 must fail.
        shard_path(tmp_path, 1).rename(shard_path(tmp_path, 0))
        with pytest.raises(BuildFarmError):
            read_shard(tmp_path, 0, [0, 1], 2)

    def test_manifest_round_trip_and_check(self, tmp_path):
        manifest = build_manifest("g" * 8, "o" * 8, 10, 4, [(0, 4), (4, 10)])
        write_manifest(tmp_path, manifest)
        loaded = load_manifest(tmp_path)
        assert loaded == manifest
        assert loaded["chunks"] == [[0, 4], [4, 10]]
        check_manifest(loaded, manifest)  # no raise
        other = build_manifest("x" * 8, "o" * 8, 10, 4, [(0, 4), (4, 10)])
        with pytest.raises(BuildFarmError, match="graph_digest"):
            check_manifest(loaded, other)

    def test_load_manifest_absent_and_corrupt(self, tmp_path):
        assert load_manifest(tmp_path) is None
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(BuildFarmError):
            load_manifest(tmp_path)


class TestPlan:
    def test_chunks_partition_ranks(self):
        ranks = [3, 0, 4, 1, 2]
        plan = make_plan(ranks, 2)
        assert isinstance(plan, BuildPlan)
        covered = [h for chunk in plan.chunks for h in chunk.hubs]
        assert [ranks[h] for h in covered] == [0, 1, 2, 3, 4]
        assert plan.rank_ranges() == [[0, 2], [2, 4], [4, 5]]
        assert plan.chunks[0] == Chunk(0, 0, 2, (1, 3))
        assert plan.num_hubs == 5

    def test_plan_is_deterministic(self):
        rng = random.Random(7)
        ranks = list(range(40))
        rng.shuffle(ranks)
        assert make_plan(ranks, 7) == make_plan(list(ranks), 7)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(BuildFarmError):
            make_plan([0, 1, 2], 0)

    def test_default_chunk_size_bounds(self):
        assert default_chunk_size(1000, 1) == 8
        assert default_chunk_size(1000, 4) == 16
        assert default_chunk_size(3, 8) == 3
        assert default_chunk_size(0, 2) == 1

    def test_round_robin_deal(self):
        lanes = assign_round_robin([10, 11, 12, 13, 14], 2)
        assert lanes == [[10, 12, 14], [11, 13]]
        assert assign_round_robin([], 3) == [[], [], []]


class TestWireCodecs:
    def test_group_entries_round_trip(self):
        groups = [
            (
                2,
                LabelGroup(
                    hub=5,
                    rank=1,
                    deps=[5, 10],
                    arrs=[25, 20],
                    trips=[None, 7],
                    pivots=[None, 3],
                ),
            ),
            (
                0,
                LabelGroup(
                    hub=9, rank=9, deps=[1], arrs=[2], trips=[0], pivots=[None]
                ),
            ),
        ]
        ranks = [0, 3, 4, 2, 5, 1, 6, 7, 8, 9]
        blob = encode_group_entries(groups)
        assert blob_num_labels(blob) == 3
        back = decode_group_entries(blob, ranks)
        assert [(v, g.rank, group_key(g)) for v, g in back] == [
            (v, ranks[g.hub], group_key(g)) for v, g in groups
        ]

    def test_empty_entries(self):
        blob = encode_group_entries([])
        assert blob_num_labels(blob) == 0
        assert decode_group_entries(blob, []) == []

    def test_graph_round_trip(self):
        graph = load_dataset("Austin", 0.5)
        rebuilt = decode_graph(graph.n, encode_graph(graph))
        assert rebuilt.n == graph.n
        assert list(rebuilt.connections) == list(graph.connections)


class TestHubSearcher:
    def test_matches_serial_phases_on_first_hub(self):
        graph = load_dataset("Austin", 0.5)
        index = serial_index("Austin", 0.5)
        searcher = HubSearcher(graph, index.ranks, prune_cover=True)
        h = index.node_of_rank[0]
        fwd_blob, bwd_blob, stats = searcher.search_hub(h)
        # Rank-0 searches prune against an empty prefix, exactly like
        # serial, and the rank-0 merge commits everything, so the
        # candidates must equal the sealed index's hub-h groups.
        for blob, store in (
            (fwd_blob, index.in_store),
            (bwd_blob, index.out_store),
        ):
            decoded = decode_group_entries(blob, index.ranks)
            assert decoded, "first hub should reach someone"
            for v, group in decoded:
                (committed,) = [
                    g for g in store.views(v) if g.hub == h
                ]
                assert group_key(group) == group_key(committed)
        # (forward_pops, backward_pops, cover_pruned, dominance_pruned,
        #  dijkstra_runs)
        assert len(stats) == 5
        assert all(isinstance(x, int) for x in stats)
        assert stats[0] > 0 and stats[1] > 0

    def test_delta_application_tightens_pruning(self):
        graph = load_dataset("Austin", 0.5)
        index = serial_index("Austin", 0.5)
        searcher = HubSearcher(graph, index.ranks, prune_cover=True)
        h0 = index.node_of_rank[0]
        h1 = index.node_of_rank[1]
        fwd0, bwd0, _ = searcher.search_hub(h0)
        baseline = blob_num_labels(searcher.search_hub(h1)[0])
        searcher.apply_delta(fwd0, bwd0)
        pruned = blob_num_labels(searcher.search_hub(h1)[0])
        assert pruned <= baseline


class TestProgressTracker:
    def make_tracker(self):
        times = [0.0]
        snapshots = []

        def clock():
            return times[0]

        tracker = ProgressTracker(callback=snapshots.append, clock=clock)
        return tracker, times, snapshots

    def test_phase_timing_and_rates(self):
        tracker, times, snapshots = self.make_tracker()
        tracker.configure(jobs=2, hubs_total=10, chunks_total=2)
        tracker.start_phase("build")
        times[0] = 2.0
        for _ in range(5):
            tracker.hub_done()
        tracker.chunk_done(labels_committed=100)
        snap = tracker.snapshot()
        assert snap.phase == "build"
        assert snap.jobs == 2
        assert snap.hubs_done == 5
        assert snap.chunks_done == 1
        assert snap.labels_committed == 100
        assert snap.elapsed_seconds == pytest.approx(2.0)
        assert snap.labels_per_second == pytest.approx(50.0)
        times[0] = 3.0
        tracker.start_phase("seal")
        assert tracker.snapshot().phase_seconds["build"] == pytest.approx(3.0)
        assert snapshots  # callback fired along the way

    def test_resume_counters(self):
        tracker, _, _ = self.make_tracker()
        tracker.configure(jobs=1, hubs_total=8, chunks_total=2)
        tracker.hubs_resumed(4)
        tracker.chunk_done(labels_committed=40, resumed=True)
        snap = tracker.snapshot()
        assert snap.chunks_resumed == 1
        assert snap.chunks_done == 1
        assert snap.hubs_done == 4

    def test_worker_staleness(self):
        tracker, times, _ = self.make_tracker()
        tracker.configure(jobs=1, hubs_total=4, chunks_total=1)
        tracker.worker_beat(0, pid=1234, hubs_done=2)
        times[0] = STALE_WORKER_SECONDS + 1.0
        snap = tracker.snapshot()
        beat = snap.workers[0]
        assert beat.pid == 1234
        assert beat.hubs_done == 2
        assert beat.stale

    def test_as_dict_shape(self):
        tracker, _, _ = self.make_tracker()
        tracker.configure(jobs=3, hubs_total=6, chunks_total=2)
        tracker.start_phase("plan")
        tracker.worker_beat(1, pid=99, hubs_done=0)
        payload = tracker.snapshot().as_dict()
        assert payload["phase"] == "plan"
        assert payload["jobs"] == 3
        assert payload["hubs_done"] == 0
        assert payload["hubs_total"] == 6
        assert payload["chunks_total"] == 2
        assert payload["workers"]["1"]["pid"] == 99
        assert payload["workers"]["1"]["stale"] is False


class TestValidation:
    def test_jobs_must_be_positive(self):
        with pytest.raises(BuildFarmError):
            build_index_parallel(load_dataset("Austin", 0.5), jobs=0)


class TestDigests:
    def test_order_digest_sensitivity(self):
        assert order_digest([0, 1, 2]) == order_digest([0, 1, 2])
        assert order_digest([0, 1, 2]) != order_digest([0, 2, 1])
        assert order_digest([]) != order_digest([0])

    def test_graph_digest_tracks_content(self):
        a = load_dataset("Austin", 0.5)
        b = load_dataset("Austin", 0.5, seed=99)
        assert graph_digest(a) == graph_digest(load_dataset("Austin", 0.5))
        assert graph_digest(a) != graph_digest(b)
