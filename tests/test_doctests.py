"""Run the doctest examples embedded in docstrings."""

import doctest

import repro.timeutil


def test_timeutil_doctests():
    results = doctest.testmod(repro.timeutil, verbose=False)
    assert results.attempted > 0
    assert results.failed == 0
