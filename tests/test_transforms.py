"""Unit and metamorphic tests for graph transforms."""

import random

import pytest

from repro.algorithms.temporal_dijkstra import DijkstraPlanner
from repro.graph.transforms import (
    extend_with_next_day,
    induced_subgraph,
    reversed_graph,
)
from repro.timeutil import SECONDS_PER_DAY
from tests.conftest import make_random_route_graph


class TestReversedGraph:
    def test_connection_mirroring(self, line_graph):
        rev = reversed_graph(line_graph)
        originals = {(c.u, c.v, c.dep, c.arr) for c in line_graph.connections}
        mirrored = {(c.v, c.u, -c.arr, -c.dep) for c in rev.connections}
        assert originals == mirrored

    def test_preserves_counts(self, line_graph):
        rev = reversed_graph(line_graph)
        assert rev.n == line_graph.n
        assert rev.m == line_graph.m
        assert len(rev.routes) == len(line_graph.routes)

    def test_involution(self, line_graph):
        double = reversed_graph(reversed_graph(line_graph))
        assert {tuple(c) for c in double.connections} == {
            tuple(c) for c in line_graph.connections
        }

    def test_ldp_is_eap_on_reversal(self):
        """Metamorphic: LDP(u->v by t) == -EAP(v->u from -t) reversed."""
        rng = random.Random(7)
        for _ in range(5):
            graph = make_random_route_graph(rng, 8, 5)
            rev = reversed_graph(graph)
            fwd_planner = DijkstraPlanner(graph)
            rev_planner = DijkstraPlanner(rev)
            for _ in range(30):
                u, v = rng.randrange(8), rng.randrange(8)
                if u == v:
                    continue
                t = rng.randrange(0, 250)
                ldp = fwd_planner.latest_departure(u, v, t)
                eap = rev_planner.earliest_arrival(v, u, -t)
                if ldp is None:
                    assert eap is None
                else:
                    assert eap is not None
                    assert eap.arr == -ldp.dep


class TestExtendWithNextDay:
    def test_doubles_connections(self, line_graph):
        extended = extend_with_next_day(line_graph)
        assert extended.m == 2 * line_graph.m

    def test_shifted_copy_present(self, line_graph):
        extended = extend_with_next_day(line_graph)
        times = {(c.u, c.v, c.dep, c.arr) for c in extended.connections}
        for c in line_graph.connections:
            assert (c.u, c.v, c.dep, c.arr) in times
            assert (
                c.u,
                c.v,
                c.dep + SECONDS_PER_DAY,
                c.arr + SECONDS_PER_DAY,
            ) in times

    def test_shifted_trips_share_routes(self, line_graph):
        extended = extend_with_next_day(line_graph)
        assert len(extended.routes) == len(line_graph.routes)
        for route in extended.routes.values():
            assert len(route.trips) == 2 * len(
                line_graph.routes[route.route_id].trips
            )

    def test_fresh_trip_ids(self, line_graph):
        extended = extend_with_next_day(line_graph)
        trip_ids = [t.trip_id for r in extended.routes.values() for t in r.trips]
        assert len(trip_ids) == len(set(trip_ids))

    def test_enables_overnight_journey(self):
        """A journey dep day 1 evening -> arr day 2 morning exists only
        in the extended graph (Section 8's motivation)."""
        from repro.graph.builders import GraphBuilder
        from repro.timeutil import hms

        builder = GraphBuilder()
        builder.add_stations(3)
        late = builder.add_route([0, 1])
        builder.add_trip_departures(late, hms(23, 30), [1800])
        early = builder.add_route([1, 2])
        builder.add_trip_departures(early, hms(6, 0), [1800])
        graph = builder.build()

        planner = DijkstraPlanner(graph)
        assert planner.earliest_arrival(0, 2, hms(23)) is None

        extended = extend_with_next_day(graph)
        planner = DijkstraPlanner(extended)
        journey = planner.earliest_arrival(0, 2, hms(23))
        assert journey is not None
        assert journey.arr == hms(24 + 6, 30)


class TestInducedSubgraph:
    def test_station_remap(self, line_graph):
        sub, mapping = induced_subgraph(line_graph, [1, 2, 3])
        assert sub.n == 3
        assert mapping == {1: 0, 2: 1, 3: 2}

    def test_route_fragments(self, line_graph):
        # Dropping station 0 keeps the 1-2-3 fragment of the local
        # route but kills the 0-3 express entirely.
        sub, _ = induced_subgraph(line_graph, [1, 2, 3])
        lengths = sorted(len(r.stops) for r in sub.routes.values())
        assert lengths == [3]

    def test_middle_removal_splits_route(self):
        from repro.graph.builders import GraphBuilder

        builder = GraphBuilder()
        builder.add_stations(5)
        route = builder.add_route([0, 1, 2, 3, 4])
        builder.add_trip_departures(route, 0, [10, 10, 10, 10])
        graph = builder.build()
        sub, _ = induced_subgraph(graph, [0, 1, 3, 4])
        fragments = sorted(len(r.stops) for r in sub.routes.values())
        assert fragments == [2, 2]

    def test_unknown_station_rejected(self, line_graph):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            induced_subgraph(line_graph, [0, 99])

    def test_subgraph_valid(self, route_graph):
        keep = list(range(0, route_graph.n, 2))
        sub, _ = induced_subgraph(route_graph, keep)
        sub.validate()
