"""Tests for the RAPTOR supplementary baseline."""

import random

import pytest

from repro.algorithms.temporal_dijkstra import DijkstraPlanner
from repro.baselines.raptor import RaptorPlanner, _fifo_chains
from repro.graph.connection import validate_path
from repro.graph.route import StopTime, Trip
from tests.conftest import make_random_connection_graph, make_random_route_graph


def make_trip(trip_id, times):
    return Trip(
        trip_id=trip_id,
        route_id=0,
        stop_times=tuple(StopTime(t, t) for t in times),
    )


class TestFifoChains:
    def test_nonovertaking_trips_share_a_chain(self):
        trips = [make_trip(0, [0, 10]), make_trip(1, [5, 15])]
        chains = _fifo_chains(trips)
        assert len(chains) == 1
        assert [t.trip_id for t in chains[0]] == [0, 1]

    def test_overtaking_trip_gets_own_chain(self):
        # Trip 1 departs later but arrives earlier: overtakes trip 0.
        trips = [make_trip(0, [0, 30]), make_trip(1, [5, 20])]
        chains = _fifo_chains(trips)
        assert len(chains) == 2

    def test_all_trips_preserved(self):
        rng = random.Random(1)
        trips = []
        for k in range(12):
            start = rng.randrange(0, 100)
            trips.append(
                make_trip(k, [start, start + rng.randrange(5, 40)])
            )
        chains = _fifo_chains(trips)
        assert sorted(t.trip_id for c in chains for t in c) == list(range(12))

    def test_chains_are_fifo(self):
        rng = random.Random(2)
        trips = []
        for k in range(15):
            a = rng.randrange(0, 80)
            b = a + rng.randrange(1, 50)
            c = b + rng.randrange(1, 50)
            trips.append(make_trip(k, [a, b, c]))
        for chain in _fifo_chains(trips):
            for prev, nxt in zip(chain, chain[1:]):
                for p, q in zip(prev.stop_times, nxt.stop_times):
                    assert q.dep >= p.dep and q.arr >= p.arr


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", [5, 6])
    def test_all_query_types(self, seed):
        rng = random.Random(seed)
        for trial in range(6):
            if trial % 2:
                graph = make_random_route_graph(rng, 10, 6)
            else:
                graph = make_random_connection_graph(
                    rng, rng.randrange(4, 11), rng.randrange(5, 50)
                )
            oracle = DijkstraPlanner(graph)
            raptor = RaptorPlanner(graph)
            for _ in range(30):
                u, v = rng.randrange(graph.n), rng.randrange(graph.n)
                if u == v:
                    continue
                t = rng.randrange(0, 240)
                t2 = t + rng.randrange(1, 250)

                a = oracle.earliest_arrival(u, v, t)
                b = raptor.earliest_arrival(u, v, t)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.arr == b.arr
                    validate_path(b.path)
                    assert b.path[0].u == u and b.path[-1].v == v

                a = oracle.latest_departure(u, v, t)
                b = raptor.latest_departure(u, v, t)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.dep == b.dep
                    validate_path(b.path)

                a = oracle.shortest_duration(u, v, t, t2)
                b = raptor.shortest_duration(u, v, t, t2)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.duration == b.duration


class TestRounds:
    def test_round_limit_bounds_transfers(self, line_graph):
        """With max_rounds=1, only direct (single-vehicle) journeys."""
        raptor = RaptorPlanner(line_graph)
        raptor.preprocess()
        best = raptor._forward.run(0, 95, max_rounds=1)
        # Station 3 reachable directly by the local trip at 100.
        assert best[3] == 130

    def test_deterministic_answers(self, line_graph):
        raptor = RaptorPlanner(line_graph)
        assert raptor.earliest_arrival(0, 3, 95).arr == 130
        assert raptor.earliest_arrival(0, 3, 205).arr == 235
        assert raptor.latest_departure(0, 3, 330).dep == 300
        assert raptor.shortest_duration(0, 3, 0, 400).duration == 25


class TestEdgeCases:
    def test_same_station(self, line_graph):
        raptor = RaptorPlanner(line_graph)
        journey = raptor.earliest_arrival(1, 1, 7)
        assert journey.duration == 0

    def test_unreachable(self, line_graph):
        raptor = RaptorPlanner(line_graph)
        assert raptor.earliest_arrival(3, 0, 0) is None
        assert raptor.latest_departure(3, 0, 10**6) is None
        assert raptor.shortest_duration(3, 0, 0, 10**6) is None

    def test_index_bytes_positive(self, line_graph):
        raptor = RaptorPlanner(line_graph)
        raptor.preprocess()
        assert raptor.index_bytes() > 0
