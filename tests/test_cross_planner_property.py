"""Hypothesis property: ALL planners agree on arbitrary timetables.

The strongest single guarantee in the suite — six independent
implementations (temporal Dijkstra, CSA, CHT, RAPTOR, time-expanded,
TTL, C-TTL) of three query types must return identical objective
values on hypothesis-generated graphs and queries.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.temporal_dijkstra import DijkstraPlanner
from repro.baselines import (
    CHTPlanner,
    CSAPlanner,
    RaptorPlanner,
    TimeExpandedPlanner,
)
from repro.core import CompressedTTLPlanner, TTLPlanner
from repro.graph.builders import GraphBuilder


@st.composite
def route_structured_graphs(draw):
    """Small graphs with genuine route/trip structure (so route-based
    compression and RAPTOR's route scans are exercised too)."""
    n = draw(st.integers(min_value=3, max_value=7))
    builder = GraphBuilder()
    builder.add_stations(n)
    n_routes = draw(st.integers(min_value=1, max_value=4))
    for _ in range(n_routes):
        length = draw(st.integers(min_value=2, max_value=min(4, n)))
        stops = draw(
            st.permutations(range(n)).map(lambda p: list(p)[:length])
        )
        if len(stops) < 2:
            continue
        route = builder.add_route(stops)
        n_trips = draw(st.integers(min_value=1, max_value=3))
        start = draw(st.integers(min_value=0, max_value=60))
        for k in range(n_trips):
            legs = [
                draw(st.integers(min_value=1, max_value=25))
                for _ in range(len(stops) - 1)
            ]
            headway = draw(st.integers(min_value=5, max_value=40))
            builder.add_trip_departures(route, start + k * headway, legs)
    return builder.build()


query_params = st.tuples(
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=0, max_value=150),
    st.integers(min_value=1, max_value=120),
)


@given(route_structured_graphs(), st.lists(query_params, min_size=1, max_size=4))
@settings(max_examples=60, deadline=None)
def test_all_planners_agree(graph, query_list):
    if graph.m == 0:
        return
    oracle = DijkstraPlanner(graph)
    planners = [
        CSAPlanner(graph),
        CHTPlanner(graph),
        RaptorPlanner(graph),
        TimeExpandedPlanner(graph),
        TTLPlanner(graph),
        CompressedTTLPlanner(graph),
    ]
    for u, v, t, window in query_list:
        u %= graph.n
        v %= graph.n
        if u == v:
            continue
        t_end = t + window
        ref_eap = oracle.earliest_arrival(u, v, t)
        ref_ldp = oracle.latest_departure(u, v, t)
        ref_sdp = oracle.shortest_duration(u, v, t, t_end)
        for planner in planners:
            got = planner.earliest_arrival(u, v, t)
            assert (ref_eap is None) == (got is None), planner.name
            if ref_eap is not None:
                assert got.arr == ref_eap.arr, planner.name

            got = planner.latest_departure(u, v, t)
            assert (ref_ldp is None) == (got is None), planner.name
            if ref_ldp is not None:
                assert got.dep == ref_ldp.dep, planner.name

            got = planner.shortest_duration(u, v, t, t_end)
            assert (ref_sdp is None) == (got is None), planner.name
            if ref_sdp is not None:
                assert got.duration == ref_sdp.duration, planner.name


@given(route_structured_graphs(), query_params)
@settings(max_examples=40, deadline=None)
def test_profiles_agree_between_ttl_variants(graph, params):
    if graph.m == 0:
        return
    u, v, t, window = params
    u %= graph.n
    v %= graph.n
    if u == v:
        return
    plain = TTLPlanner(graph)
    compressed = CompressedTTLPlanner(graph)
    assert plain.profile(u, v, t, t + window) == compressed.profile(
        u, v, t, t + window
    )
