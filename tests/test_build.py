"""Tests for IndexBuild (Algorithm 3) and the brute-force baseline."""

import random

import pytest

from repro.algorithms.temporal_dijkstra import DijkstraPlanner
from repro.core.build import build_index, build_index_brute_force
from repro.core.queries import TTLPlanner
from repro.core.order import hub_order
from tests.conftest import make_random_connection_graph, make_random_route_graph


class TestIndexStructure:
    def test_invariants_on_random_graphs(self, rng):
        for _ in range(8):
            graph = make_random_route_graph(rng, 10, 6)
            index = build_index(graph)
            index.check_invariants()

    def test_labels_reference_higher_hubs_only(self, route_graph):
        index = build_index(route_graph)
        for v in range(route_graph.n):
            for group in index.in_groups[v]:
                assert index.ranks[group.hub] < index.ranks[v]
            for group in index.out_groups[v]:
                assert index.ranks[group.hub] < index.ranks[v]

    def test_highest_ranked_node_has_no_labels(self, route_graph):
        index = build_index(route_graph)
        top = index.node_of_rank[0]
        assert index.in_labels(top) == []
        assert index.out_labels(top) == []

    def test_build_stats_populated(self, route_graph):
        index = build_index(route_graph)
        stats = index.build_stats
        assert stats is not None
        assert stats.seconds > 0
        assert stats.num_labels == index.num_labels
        assert stats.dijkstra_runs > 0

    def test_single_edge_labels_have_trips(self, route_graph):
        index = build_index(route_graph)
        for v in range(route_graph.n):
            for label in index.in_labels(v) + index.out_labels(v):
                if label.pivot is None:
                    assert label.trip is not None


class TestLabelSemantics:
    def test_labels_are_feasible_journeys(self, rng):
        """Every label's (dep, arr) must be achievable in the graph."""
        from repro.algorithms.temporal_dijkstra import earliest_arrival_search

        graph = make_random_route_graph(rng, 9, 6)
        index = build_index(graph)
        for v in range(graph.n):
            for label in index.in_labels(v):
                eat, _ = earliest_arrival_search(graph, label.hub, label.dep)
                assert eat[v] <= label.arr
            for label in index.out_labels(v):
                eat, _ = earliest_arrival_search(graph, v, label.dep)
                assert eat[label.hub] <= label.arr

    def test_labels_are_nondominated(self, rng):
        """No label may be dominated by the true profile."""
        from repro.algorithms.temporal_dijkstra import earliest_arrival_search

        graph = make_random_route_graph(rng, 8, 5)
        index = build_index(graph)
        for v in range(graph.n):
            for label in index.in_labels(v):
                eat, _ = earliest_arrival_search(graph, label.hub, label.dep)
                # The canonical path departing at label.dep must BE the
                # earliest arrival for that departure time.
                assert eat[v] == label.arr


class TestPruningAblation:
    def test_prune_preserves_query_answers(self, rng):
        for _ in range(4):
            graph = make_random_route_graph(rng, 8, 5)
            ranks = hub_order(graph)
            pruned = TTLPlanner(
                graph, index=build_index(graph, order=ranks)
            )
            unpruned = TTLPlanner(
                graph,
                index=build_index(graph, order=ranks, prune_cover=False),
            )
            for _ in range(40):
                u, v = rng.randrange(graph.n), rng.randrange(graph.n)
                if u == v:
                    continue
                t = rng.randrange(0, 250)
                a = pruned.earliest_arrival(u, v, t)
                b = unpruned.earliest_arrival(u, v, t)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.arr == b.arr

    def test_prune_never_increases_labels(self, rng):
        for _ in range(4):
            graph = make_random_route_graph(rng, 9, 6)
            ranks = hub_order(graph)
            with_prune = build_index(graph, order=ranks)
            without = build_index(graph, order=ranks, prune_cover=False)
            assert with_prune.num_labels <= without.num_labels


class TestBruteForce:
    def test_same_query_answers(self, rng):
        for _ in range(4):
            graph = make_random_connection_graph(rng, 8, 30)
            ranks = hub_order(graph)
            fast = TTLPlanner(graph, index=build_index(graph, order=ranks))
            brute = TTLPlanner(
                graph, index=build_index_brute_force(graph, order=ranks)
            )
            oracle = DijkstraPlanner(graph)
            for _ in range(40):
                u, v = rng.randrange(graph.n), rng.randrange(graph.n)
                if u == v:
                    continue
                t = rng.randrange(0, 220)
                t2 = t + rng.randrange(1, 200)
                ref = oracle.shortest_duration(u, v, t, t2)
                for planner in (fast, brute):
                    got = planner.shortest_duration(u, v, t, t2)
                    assert (ref is None) == (got is None)
                    if ref is not None:
                        assert ref.duration == got.duration

    def test_brute_force_invariants(self, rng):
        graph = make_random_route_graph(rng, 8, 5)
        index = build_index_brute_force(graph)
        index.check_invariants()

    def test_label_counts_comparable(self, rng):
        """Pruned construction may only differ from brute force by
        tie-pruning, so label counts are close."""
        graph = make_random_route_graph(rng, 8, 5)
        ranks = hub_order(graph)
        fast = build_index(graph, order=ranks)
        brute = build_index_brute_force(graph, order=ranks)
        assert fast.num_labels <= brute.num_labels


class TestProgressCallback:
    def test_called_once_per_hub(self, route_graph):
        calls = []
        build_index(
            route_graph, progress=lambda done, total: calls.append((done, total))
        )
        assert calls == [
            (k, route_graph.n) for k in range(1, route_graph.n + 1)
        ]


class TestEdgeGraphs:
    def test_empty_graph(self):
        from repro.graph.timetable import TimetableGraph

        index = build_index(TimetableGraph(0, []))
        assert index.num_labels == 0

    def test_single_connection(self):
        from repro.graph.builders import graph_from_connections

        graph = graph_from_connections([(0, 1, 5, 9)])
        index = build_index(graph)
        assert index.num_labels == 1
        labels = index.in_labels(1) + index.out_labels(0)
        assert len(labels) == 1
        label = labels[0]
        assert (label.dep, label.arr) == (5, 9)
        assert label.pivot is None

    def test_parallel_dominated_connection_skipped(self):
        from repro.graph.builders import graph_from_connections

        graph = graph_from_connections(
            [(0, 1, 5, 9), (0, 1, 4, 10)]  # second is dominated
        )
        index = build_index(graph)
        assert index.num_labels == 1

    def test_parallel_nondominated_both_kept(self):
        from repro.graph.builders import graph_from_connections

        graph = graph_from_connections([(0, 1, 5, 9), (0, 1, 6, 10)])
        index = build_index(graph)
        assert index.num_labels == 2
