"""Property-based end-to-end tests: TTL vs the Dijkstra oracle on
hypothesis-generated timetable graphs.

These are the heavyweight guarantees of the suite: for *arbitrary*
timetables (not just the shapes our generators produce), every query
type must agree with the oracle, and the index must satisfy its
structural invariants.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.temporal_dijkstra import DijkstraPlanner
from repro.core.build import build_index
from repro.core.compression import compress_index
from repro.core.cindex import CompressedTTLPlanner
from repro.core.queries import TTLPlanner
from repro.graph.builders import graph_from_connections
from repro.graph.connection import validate_path


@st.composite
def timetable_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    m = draw(st.integers(min_value=1, max_value=25))
    conns = []
    for _ in range(m):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            v = (v + 1) % n
        dep = draw(st.integers(min_value=0, max_value=120))
        dur = draw(st.integers(min_value=1, max_value=40))
        conns.append((u, v, dep, dep + dur))
    return graph_from_connections(conns, n)


queries = st.tuples(
    st.integers(min_value=0, max_value=7),
    st.integers(min_value=0, max_value=7),
    st.integers(min_value=0, max_value=150),
    st.integers(min_value=0, max_value=60),
)


@given(timetable_graphs(), st.lists(queries, min_size=1, max_size=8))
@settings(max_examples=120, deadline=None)
def test_ttl_matches_oracle(graph, query_list):
    oracle = DijkstraPlanner(graph)
    ttl = TTLPlanner(graph)
    ttl.preprocess()
    ttl.index.check_invariants()
    for u, v, t, window in query_list:
        u %= graph.n
        v %= graph.n
        if u == v:
            continue
        t_end = t + max(1, window)

        a = oracle.earliest_arrival(u, v, t)
        b = ttl.earliest_arrival(u, v, t)
        assert (a is None) == (b is None)
        if a is not None:
            assert a.arr == b.arr
            validate_path(b.path)
            assert b.path[0].u == u and b.path[-1].v == v
            assert b.path[0].dep >= t

        a = oracle.latest_departure(u, v, t)
        b = ttl.latest_departure(u, v, t)
        assert (a is None) == (b is None)
        if a is not None:
            assert a.dep == b.dep
            assert b.path[-1].arr <= t

        a = oracle.shortest_duration(u, v, t, t_end)
        b = ttl.shortest_duration(u, v, t, t_end)
        assert (a is None) == (b is None)
        if a is not None:
            assert a.duration == b.duration


@given(timetable_graphs(), st.lists(queries, min_size=1, max_size=5))
@settings(max_examples=60, deadline=None)
def test_compressed_index_matches_oracle(graph, query_list):
    oracle = DijkstraPlanner(graph)
    index = build_index(graph)
    compressed, stats = compress_index(index, mode="both")
    assert stats.labels_after <= stats.labels_before
    planner = CompressedTTLPlanner(graph, cindex=compressed)
    for u, v, t, window in query_list:
        u %= graph.n
        v %= graph.n
        if u == v:
            continue
        a = oracle.earliest_arrival(u, v, t)
        b = planner.earliest_arrival(u, v, t)
        assert (a is None) == (b is None)
        if a is not None:
            assert a.arr == b.arr


@given(timetable_graphs())
@settings(max_examples=80, deadline=None)
def test_index_structural_invariants(graph):
    index = build_index(graph)
    index.check_invariants()
    # Every label's (dep, arr) must be a feasible journey.
    oracle = DijkstraPlanner(graph)
    for v in range(graph.n):
        for label in index.in_labels(v):
            journey = oracle.earliest_arrival(label.hub, v, label.dep)
            assert journey is not None
            assert journey.arr == label.arr
