"""Tests for the synthetic dataset substrate."""

import pytest

from repro.datasets import (
    DATASETS,
    CitySpec,
    CountrySpec,
    QueryWorkload,
    dataset_names,
    generate_city_grid,
    generate_city_radial,
    generate_country,
    load_dataset,
    paper_dataset_names,
)
from repro.errors import DatasetError


class TestGenerators:
    def test_grid_city_valid(self):
        spec = CitySpec("t-grid", stations=25, routes=8, headway=1800, seed=3)
        graph = generate_city_grid(spec)
        graph.validate()
        assert graph.m > 0
        assert len(graph.routes) > 0

    def test_radial_city_valid(self):
        spec = CitySpec("t-rad", stations=30, routes=8, headway=900, seed=3)
        graph = generate_city_radial(spec)
        graph.validate()
        assert graph.m > 0

    def test_country_valid(self):
        spec = CountrySpec(
            "t-country",
            cities=3,
            stations_per_city=8,
            routes_per_city=3,
            city_headway=1800,
            rail_headway=3600,
            seed=3,
        )
        graph = generate_country(spec)
        graph.validate()
        assert graph.m > 0

    def test_determinism(self):
        spec = CitySpec("t-det", stations=25, routes=8, headway=1800, seed=9)
        a = generate_city_grid(spec)
        b = generate_city_grid(spec)
        assert {tuple(c) for c in a.connections} == {
            tuple(c) for c in b.connections
        }

    def test_seeds_differ(self):
        a = generate_city_grid(
            CitySpec("t", stations=25, routes=8, headway=1800, seed=1)
        )
        b = generate_city_grid(
            CitySpec("t", stations=25, routes=8, headway=1800, seed=2)
        )
        assert {tuple(c) for c in a.connections} != {
            tuple(c) for c in b.connections
        }

    def test_grid_covers_all_stations(self):
        """Every station must be served by at least one route (the
        coverage guarantee added for realistic reachability)."""
        spec = CitySpec("t-cov", stations=36, routes=14, headway=1800, seed=5)
        graph = generate_city_grid(spec)
        served = {s for r in graph.routes.values() for s in r.stops}
        assert served == set(range(graph.n))

    def test_country_has_intercity_connections(self):
        spec = CountrySpec(
            "t-c2",
            cities=4,
            stations_per_city=6,
            routes_per_city=3,
            city_headway=1800,
            rail_headway=3600,
            seed=1,
        )
        graph = generate_country(spec)
        # Rail legs are much longer than city legs.
        longest = max(c.duration for c in graph.connections)
        assert longest > 600


class TestRegistry:
    def test_eleven_paper_datasets(self):
        # Table 3's line-up, plus the two region-tagged federation
        # datasets that paper-table sweeps exclude.
        assert len(paper_dataset_names()) == 11
        assert len(dataset_names()) == 13
        for name in ("TwinCities", "RheinRuhr"):
            assert name in dataset_names()
            assert name not in paper_dataset_names()

    def test_all_datasets_generate(self):
        for name in dataset_names():
            graph = load_dataset(name, scale=0.4)
            assert graph.m > 0

    def test_cache_returns_same_object(self):
        a = load_dataset("Austin", scale=0.4)
        b = load_dataset("Austin", scale=0.4)
        assert a is b

    def test_scale_changes_size(self):
        small = load_dataset("Austin", scale=0.4)
        big = load_dataset("Austin", scale=1.0)
        assert big.n > small.n

    def test_unknown_name_rejected(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            load_dataset("Atlantis")

    def test_bad_scale_rejected(self):
        with pytest.raises(DatasetError, match="positive"):
            DATASETS["Austin"].generate(scale=0)

    def test_sweden_is_country(self):
        assert DATASETS["Sweden"].kind == "country"


class TestQueryWorkload:
    def test_determinism(self):
        graph = load_dataset("Austin", scale=0.4)
        a = QueryWorkload(graph, seed=5).generate(50)
        b = QueryWorkload(graph, seed=5).generate(50)
        assert a == b

    def test_queries_well_formed(self):
        graph = load_dataset("Austin", scale=0.4)
        stats = graph.stats()
        for q in QueryWorkload(graph, seed=1).generate(100):
            assert 0 <= q.source < graph.n
            assert 0 <= q.destination < graph.n
            assert q.source != q.destination
            assert stats.min_time <= q.t_start <= q.t_end <= stats.max_time

    def test_single_station_graph_rejected(self):
        from repro.graph.timetable import TimetableGraph

        with pytest.raises(DatasetError):
            QueryWorkload(TimetableGraph(1, []))


class TestSeedOverride:
    """The ``seed`` parameter threads end-to-end through every path."""

    def test_generator_seed_argument_overrides_spec(self):
        spec = CitySpec("t", stations=25, routes=8, headway=1800, seed=1)
        override = generate_city_grid(spec, seed=2)
        direct = generate_city_grid(
            CitySpec("t", stations=25, routes=8, headway=1800, seed=2)
        )
        assert {tuple(c) for c in override.connections} == {
            tuple(c) for c in direct.connections
        }

    def test_all_generators_accept_seed(self):
        city = CitySpec("t", stations=25, routes=8, headway=1800, seed=1)
        country = CountrySpec(
            "c",
            cities=2,
            stations_per_city=8,
            routes_per_city=3,
            city_headway=1800,
            rail_headway=3600,
            seed=1,
        )
        for generate, spec in (
            (generate_city_grid, city),
            (generate_city_radial, city),
            (generate_country, country),
        ):
            a = generate(spec, seed=7)
            b = generate(spec, seed=7)
            c = generate(spec, seed=8)
            assert {tuple(x) for x in a.connections} == {
                tuple(x) for x in b.connections
            }
            assert {tuple(x) for x in a.connections} != {
                tuple(x) for x in c.connections
            }

    def test_load_dataset_seed_caches_separately(self):
        from repro.datasets import load_dataset

        default = load_dataset("Austin", 0.5)
        seeded = load_dataset("Austin", 0.5, seed=99)
        assert seeded is not default
        assert seeded is load_dataset("Austin", 0.5, seed=99)
        assert {tuple(c) for c in seeded.connections} != {
            tuple(c) for c in default.connections
        }

    def test_info_generate_seed_matches_catalogue_default(self):
        from repro.datasets.registry import DATASETS

        info = DATASETS["Austin"]
        implicit = info.generate(0.5)
        explicit = info.generate(0.5, seed=info.seed)
        assert {tuple(c) for c in implicit.connections} == {
            tuple(c) for c in explicit.connections
        }
