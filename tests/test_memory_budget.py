"""Memory-budget regression test for the sealed index.

The sealed :class:`~repro.core.store.LabelStore` keeps the medium
synthetic network (Berlin, ~45k labels) under ~120 bytes of retained
memory per label.  The legacy layout — list-backed groups plus the two
tuple-keyed PathUnfold lookup dicts — needed ~360 bytes per label, so
the ceiling below (double the current footprint) fails loudly if a
per-label dict or equivalent duplication ever creeps back in.
"""

import gc
import tracemalloc

import pytest

from repro.datasets import load_dataset

#: Retained bytes per label allowed for a sealed index (2x headroom
#: over the measured ~119 B/label; the legacy layout was ~360 B/label).
BYTES_PER_LABEL_CEILING = 240

#: Fixed allowance for graph-independent structures (views, offsets).
FIXED_ALLOWANCE = 2 * 1024 * 1024


@pytest.mark.slow
def test_sealed_index_stays_within_memory_budget():
    from repro.core.build import build_index

    graph = load_dataset("Berlin")
    gc.collect()
    tracemalloc.start()
    try:
        before, _ = tracemalloc.get_traced_memory()
        index = build_index(graph)
        gc.collect()
        after, _ = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    retained = after - before
    budget = index.num_labels * BYTES_PER_LABEL_CEILING + FIXED_ALLOWANCE
    assert retained <= budget, (
        f"sealed index retains {retained / 1e6:.2f} MB for "
        f"{index.num_labels} labels "
        f"({retained / index.num_labels:.0f} B/label), over the "
        f"{budget / 1e6:.2f} MB budget — did a per-label lookup "
        f"structure come back?"
    )
