"""Tests for the HTTP planner service."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core import TTLPlanner
from repro.service import PlannerService


@pytest.fixture(scope="module")
def service(request):
    from tests.conftest import make_random_route_graph
    import random

    graph = make_random_route_graph(random.Random(23), 10, 7)
    svc = PlannerService(TTLPlanner(graph))
    port = svc.start(port=0)
    request.addfinalizer(svc.stop)
    return graph, port


def get(port, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=10
    ) as response:
        return response.status, json.loads(response.read())


def post(port, path, body):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


class TestEndpoints:
    def test_stations(self, service):
        graph, port = service
        status, body = get(port, "/stations")
        assert status == 200
        assert len(body["stations"]) == graph.n
        assert body["stations"][0]["id"] == 0

    def test_eap_matches_planner(self, service):
        graph, port = service
        planner = TTLPlanner(graph)
        found = 0
        for u in range(graph.n):
            for v in range(graph.n):
                if u == v:
                    continue
                expected = planner.earliest_arrival(u, v, 0)
                _, body = get(port, f"/eap?from={u}&to={v}&t=0")
                if expected is None:
                    assert body["journey"] is None
                else:
                    found += 1
                    assert body["journey"]["arr"] == expected.arr
                if found >= 10:
                    return
        assert found > 0

    def test_sdp_and_ldp(self, service):
        graph, port = service
        for u in range(graph.n):
            for v in range(graph.n):
                if u == v:
                    continue
                _, body = get(
                    port, f"/sdp?from={u}&to={v}&t=0&t_end=500"
                )
                if body["journey"] is not None:
                    journey = body["journey"]
                    assert 0 <= journey["dep"] <= journey["arr"] <= 500
                    _, ldp = get(
                        port, f"/ldp?from={u}&to={v}&t={journey['arr']}"
                    )
                    assert ldp["journey"] is not None
                    return
        pytest.skip("no feasible pair in sampled graph")

    def test_profile(self, service):
        graph, port = service
        for u in range(graph.n):
            for v in range(graph.n):
                if u == v:
                    continue
                _, body = get(
                    port, f"/profile?from={u}&to={v}&t=0&t_end=500"
                )
                pairs = body["pairs"]
                if pairs:
                    deps = [p[0] for p in pairs]
                    assert deps == sorted(deps)
                    return
        pytest.skip("no feasible pair in sampled graph")

    def test_journey_roundtrips_through_json(self, service):
        from repro.journey import Journey

        graph, port = service
        for u in range(graph.n):
            for v in range(graph.n):
                if u == v:
                    continue
                _, body = get(port, f"/eap?from={u}&to={v}&t=0")
                if body["journey"] is not None:
                    journey = Journey.from_dict(body["journey"])
                    assert journey.path is not None
                    return
        pytest.skip("no feasible pair")


class TestHealthz:
    def test_healthz_static_planner(self, service):
        graph, port = service
        status, body = get(port, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["stations"] == graph.n
        assert body["live"] is False

    def test_healthz_reports_preprocess_seconds(self, service):
        _, port = service
        _, body = get(port, "/healthz")
        assert body["preprocess_seconds"] > 0.0


class TestMetrics:
    def test_metrics_counters_advance_with_queries(self, service):
        graph, port = service
        status, before = get(port, "/metrics")
        assert status == 200
        assert before["planner"] == "TTL"
        counters = before["query_metrics"]
        assert set(counters) == {
            "queries",
            "labels_scanned",
            "sketches_generated",
            "unfold_max_depth",
            "unfold_fallbacks",
        }
        for u in range(graph.n):
            get(port, f"/eap?from={u}&to={(u + 1) % graph.n}&t=0")
        _, after = get(port, "/metrics")
        assert after["query_metrics"]["queries"] >= (
            counters["queries"] + graph.n
        )
        assert (
            after["query_metrics"]["labels_scanned"]
            > counters["labels_scanned"]
        )

    def test_metrics_reports_index_info(self, service):
        _, port = service
        _, body = get(port, "/metrics")
        index = body["index"]
        assert index["num_labels"] > 0
        assert index["store_bytes"] > 0
        assert index["unfold_fallbacks"] >= 0


class TestErrors:
    def test_unknown_path_404(self, service):
        _, port = service
        with pytest.raises(urllib.error.HTTPError) as err:
            get(port, "/teleport")
        assert err.value.code == 404

    def test_404_body_is_json(self, service):
        _, port = service
        with pytest.raises(urllib.error.HTTPError) as err:
            get(port, "/teleport")
        assert err.value.headers["Content-Type"] == "application/json"
        assert "error" in json.loads(err.value.read())

    def test_unsupported_method_is_json(self, service):
        """The base handler's HTML error page must not leak through."""
        _, port = service
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/stations", method="DELETE"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 501
        assert err.value.headers["Content-Type"] == "application/json"
        assert "error" in json.loads(err.value.read())

    def test_live_endpoints_rejected_for_static_planner(self, service):
        _, port = service
        with pytest.raises(urllib.error.HTTPError) as err:
            get(port, "/live/stats")
        assert err.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as err:
            post(port, "/live/events", {"kind": "cancel", "trip_id": 0})
        assert err.value.code == 400

    def test_bad_station_400(self, service):
        _, port = service
        with pytest.raises(urllib.error.HTTPError) as err:
            get(port, "/eap?from=9999&to=0&t=0")
        assert err.value.code == 400

    def test_missing_param_400(self, service):
        _, port = service
        with pytest.raises(urllib.error.HTTPError) as err:
            get(port, "/eap?from=0")
        assert err.value.code == 400

    def test_garbage_param_400(self, service):
        _, port = service
        with pytest.raises(urllib.error.HTTPError) as err:
            get(port, "/eap?from=a&to=b&t=c")
        assert err.value.code == 400

    def test_missing_param_names_field(self, service):
        _, port = service
        with pytest.raises(urllib.error.HTTPError) as err:
            get(port, "/eap?from=0&to=1")
        assert err.value.code == 400
        body = json.loads(err.value.read())
        assert body["field"] == "t"
        assert "t" in body["error"]

    def test_garbage_param_names_field(self, service):
        _, port = service
        with pytest.raises(urllib.error.HTTPError) as err:
            get(port, "/sdp?from=0&to=1&t=0&t_end=never")
        assert err.value.code == 400
        assert json.loads(err.value.read())["field"] == "t_end"


class TestInputHardening:
    def test_malformed_json_body_400(self, service):
        _, port = service
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/live/events",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400
        assert "error" in json.loads(err.value.read())

    def test_non_object_json_body_400(self, service):
        _, port = service
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/live/events",
            data=b"[1, 2, 3]",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400

    def test_oversized_body_413(self, service):
        from repro.resilience import ResilienceConfig

        _, port = service
        huge = b"x" * (ResilienceConfig().max_body_bytes + 1)
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/live/events",
            data=huge,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 413
        assert "error" in json.loads(err.value.read())


class TestResilienceEndpoints:
    def test_healthz_live(self, service):
        _, port = service
        status, body = get(port, "/healthz/live")
        assert status == 200
        assert body == {"status": "alive"}

    def test_healthz_ready_when_warm(self, service):
        _, port = service
        status, body = get(port, "/healthz/ready")
        assert status == 200
        assert body == {"ready": True}

    def test_resilience_snapshot_shape(self, service):
        _, port = service
        status, body = get(port, "/resilience")
        assert status == 200
        assert body["enabled"] is True
        assert body["deadline_exceeded"] == 0
        admission = body["admission"]
        assert admission["shed"] == 0
        assert admission["inflight"] == 0

    def test_metrics_include_resilience(self, service):
        _, port = service
        _, body = get(port, "/metrics")
        assert "resilience" in body
        assert "admission" in body["resilience"]


@pytest.fixture(scope="module")
def live_service(request):
    from tests.conftest import make_random_route_graph
    from repro.live import LiveOverlayEngine
    import random

    graph = make_random_route_graph(random.Random(23), 10, 7)
    engine = LiveOverlayEngine(graph)
    svc = PlannerService(engine)
    port = svc.start(port=0)
    request.addfinalizer(svc.stop)
    return graph, engine, port


class TestLiveEndpoints:
    def test_healthz_reports_live(self, live_service):
        _, _, port = live_service
        _, body = get(port, "/healthz")
        assert body["live"] is True
        assert "generation" in body and "events" in body

    def test_inject_query_clear_cycle(self, live_service):
        graph, engine, port = live_service
        trip_id = sorted(graph.trips)[0]
        status, body = post(
            port, "/live/events", {"kind": "cancel", "trip_id": trip_id}
        )
        assert status == 200
        event_id = body["id"]
        assert body["generation"] >= 1

        _, listing = get(port, "/live/events")
        assert [e["id"] for e in listing["events"]] == [event_id]
        assert listing["events"][0]["event"]["trip_id"] == trip_id

        # Queries still answer, and never use the cancelled trip.
        for u in range(graph.n):
            for v in range(graph.n):
                if u == v:
                    continue
                _, answer = get(port, f"/eap?from={u}&to={v}&t=0")
                journey = answer["journey"]
                if journey and journey.get("path"):
                    # path legs serialize as [u, v, dep, arr, trip]
                    assert all(
                        leg[4] != trip_id for leg in journey["path"]
                    )

        _, stats = get(port, "/live/stats")
        assert stats["queries"] > 0

        _, cleared = post(port, "/live/clear", {"id": event_id})
        assert cleared == {"cleared": 1}
        _, listing = get(port, "/live/events")
        assert listing["events"] == []

    def test_metrics_on_live_engine(self, live_service):
        _, _, port = live_service
        _, body = get(port, "/metrics")
        assert "query_metrics" in body
        assert body["query_metrics"]["queries"] >= 0

    def test_bad_event_rejected(self, live_service):
        _, _, port = live_service
        with pytest.raises(urllib.error.HTTPError) as err:
            post(port, "/live/events", {"kind": "cancel", "trip_id": 10**6})
        assert err.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as err:
            post(port, "/live/events", {"kind": "warp"})
        assert err.value.code == 400

    def test_advance_expires_events(self, live_service):
        graph, engine, port = live_service
        trip_id = sorted(graph.trips)[1]
        post(
            port,
            "/live/events",
            {
                "kind": "delay",
                "trip_id": trip_id,
                "delay": 60,
                "expires_at": engine.now + 100,
            },
        )
        _, body = post(port, "/live/advance", {"now": engine.now + 100})
        assert body["events"] == 0


class TestLiveCoordination:
    """Single-process checks for the prefork journal contracts: the
    advance monotonicity guard and the follower-role 409."""

    def test_advance_backwards_400_names_now(self, live_service):
        _, engine, port = live_service
        target = engine.now + 50
        post(port, "/live/advance", {"now": target})
        with pytest.raises(urllib.error.HTTPError) as err:
            post(port, "/live/advance", {"now": target - 10})
        assert err.value.code == 400
        body = json.loads(err.value.read())
        assert body["field"] == "now"
        assert "backwards" in body["error"]
        assert body["hint"]
        # The clock did not move.
        _, stats = get(port, "/live/stats")
        assert stats["now"] == target

    def test_advance_to_current_clock_is_allowed(self, live_service):
        _, engine, port = live_service
        status, body = post(port, "/live/advance", {"now": engine.now})
        assert status == 200

    def test_mutations_409_when_coordinated(self):
        from tests.conftest import make_random_route_graph
        from repro.live import LiveOverlayEngine
        import random

        graph = make_random_route_graph(random.Random(17), 8, 5)
        svc = PlannerService(
            LiveOverlayEngine(graph),
            coordinator="http://127.0.0.1:9999",
        )
        port = svc.start(port=0)
        try:
            for path, body in (
                ("/live/events", {"kind": "cancel", "trip_id": 0}),
                ("/live/advance", {"now": 10}),
                ("/live/clear", {}),
            ):
                with pytest.raises(urllib.error.HTTPError) as err:
                    post(port, path, body)
                assert err.value.code == 409, path
                payload = json.loads(err.value.read())
                assert "coordinated" in payload["error"]
                assert f"http://127.0.0.1:9999{path}" in payload["hint"]
            # Reads still answer locally.
            status, _ = get(port, "/live/events")
            assert status == 200
        finally:
            svc.stop()

    def test_journal_and_coordinator_are_exclusive(self):
        from tests.conftest import make_random_route_graph
        from repro.live import LiveOverlayEngine
        import random

        graph = make_random_route_graph(random.Random(17), 8, 5)
        with pytest.raises(ValueError, match="never both"):
            PlannerService(
                LiveOverlayEngine(graph),
                journal=object(),
                coordinator="http://127.0.0.1:9999",
            )


class TestBackgroundBuildReadiness:
    """``warm=False`` serves immediately; 503s carry build progress."""

    def test_warming_responses_include_build_progress(self):
        import threading

        from tests.conftest import make_random_route_graph
        import random as random_mod

        release = threading.Event()

        class SlowPlanner(TTLPlanner):
            def preprocess(self):
                self.build_progress.configure(
                    jobs=2, hubs_total=5, chunks_total=3
                )
                self.build_progress.start_phase("build")
                self.build_progress.chunk_done(labels_committed=10)
                release.wait(timeout=30)
                return super().preprocess()

        graph = make_random_route_graph(random_mod.Random(5), 8, 5)
        svc = PlannerService(SlowPlanner(graph))
        port = svc.start(port=0, warm=False)
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/healthz/ready", timeout=10
                )
            assert err.value.code == 503
            assert err.value.headers["Retry-After"]
            body = json.loads(err.value.read())
            build = body["build"]
            assert build["phase"] == "build"
            assert build["jobs"] == 2
            assert build["chunks_done"] == 1
            assert build["labels_committed"] == 10

            _, health = get(port, "/healthz")
            assert health["build"]["chunks_total"] == 3

            release.set()
            assert svc._warm_thread is not None
            svc._warm_thread.join(timeout=30)
            status, body = get(port, "/healthz/ready")
            assert status == 200
            assert body == {"ready": True}
            _, health = get(port, "/healthz")
            assert "build" not in health
        finally:
            release.set()
            svc.stop()


def get_with_headers(port, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=10
    ) as response:
        return (
            response.status,
            json.loads(response.read()),
            dict(response.headers),
        )


class TestV1Envelope:
    def test_eap_wrapped_in_envelope(self, service):
        graph, port = service
        status, body = get(port, "/v1/eap?from=0&to=1&t=0")
        assert status == 200
        assert set(body) == {"data", "meta"}
        assert "journey" in body["data"]
        meta = body["meta"]
        assert meta["elapsed_us"] >= 0
        assert meta["degraded"] is False
        assert meta["worker"] == 0

    def test_v1_matches_legacy_answer(self, service):
        graph, port = service
        for u in range(graph.n):
            _, legacy = get(port, f"/eap?from=0&to={u}&t=0")
            _, versioned = get(port, f"/v1/eap?from=0&to={u}&t=0")
            assert versioned["data"]["journey"] == legacy["journey"]

    def test_all_get_endpoints_enveloped(self, service):
        _, port = service
        for path in (
            "/v1/stations",
            "/v1/healthz",
            "/v1/healthz/ready",
            "/v1/metrics",
            "/v1/resilience",
            "/v1/sdp?from=0&to=1&t=0&t_end=500",
            "/v1/profile?from=0&to=1&t=0&t_end=500",
        ):
            status, body = get(port, path)
            assert status == 200, path
            assert set(body) == {"data", "meta"}, path

    def test_legacy_paths_carry_deprecation_header(self, service):
        _, port = service
        _, _, headers = get_with_headers(port, "/eap?from=0&to=1&t=0")
        assert headers.get("Deprecation") == "true"
        _, _, headers = get_with_headers(port, "/stations")
        assert headers.get("Deprecation") == "true"

    def test_v1_and_health_probes_not_deprecated(self, service):
        _, port = service
        _, _, headers = get_with_headers(port, "/v1/eap?from=0&to=1&t=0")
        assert "Deprecation" not in headers
        # Infrastructure probes (k8s etc.) are config, not client code;
        # nagging them would only pollute logs.
        _, _, headers = get_with_headers(port, "/healthz/live")
        assert "Deprecation" not in headers

    def test_unknown_v1_path_404(self, service):
        _, port = service
        with pytest.raises(urllib.error.HTTPError) as err:
            get(port, "/v1/teleport")
        assert err.value.code == 404


class TestOneErrorShape:
    """Every error payload is {"error", "field", "hint"}."""

    def _assert_shape(self, err):
        body = json.loads(err.read())
        assert set(body) >= {"error", "field", "hint"}, body
        return body

    def test_validation_error_with_field(self, service):
        _, port = service
        with pytest.raises(urllib.error.HTTPError) as err:
            get(port, "/v1/eap?from=0&to=1")
        assert err.value.code == 400
        body = self._assert_shape(err.value)
        assert body["field"] == "t"

    def test_query_error_null_field(self, service):
        _, port = service
        with pytest.raises(urllib.error.HTTPError) as err:
            get(port, "/v1/eap?from=9999&to=0&t=0")
        assert err.value.code == 400
        body = self._assert_shape(err.value)
        assert body["field"] is None
        assert body["hint"] is None

    def test_404_shape(self, service):
        _, port = service
        with pytest.raises(urllib.error.HTTPError) as err:
            get(port, "/nope")
        self._assert_shape(err.value)

    def test_legacy_and_v1_errors_identical(self, service):
        _, port = service
        with pytest.raises(urllib.error.HTTPError) as legacy:
            get(port, "/eap?from=0&to=1")
        with pytest.raises(urllib.error.HTTPError) as versioned:
            get(port, "/v1/eap?from=0&to=1")
        assert json.loads(legacy.value.read()) == json.loads(
            versioned.value.read()
        )

    def test_batch_cap_hint(self, service):
        _, port = service
        from repro.core import TTLPlanner as _P  # noqa: F401
        from repro.resilience import ResilienceConfig
        from repro.service import PlannerService
        from tests.conftest import make_random_route_graph
        import random as _random

        graph = make_random_route_graph(_random.Random(11), 8, 4)
        svc = PlannerService(
            TTLPlanner(graph),
            resilience=ResilienceConfig(max_batch_pairs=3),
        )
        capped_port = svc.start(port=0)
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                post(
                    capped_port,
                    "/v1/batch",
                    {
                        "kind": "one_to_many",
                        "source": 0,
                        "targets": [1, 2, 3, 4],
                        "t": 0,
                    },
                )
            assert err.value.code == 400
            body = self._assert_shape(err.value)
            assert body["field"] == "targets"
            assert "max_batch_pairs" in body["hint"]
        finally:
            svc.stop()


class TestBatchEndpoint:
    def test_one_to_many(self, service):
        graph, port = service
        targets = list(range(graph.n))
        status, body = post(
            port,
            "/v1/batch",
            {"kind": "one_to_many", "source": 0, "targets": targets, "t": 0},
        )
        assert status == 200
        data = body["data"]
        assert data["kind"] == "one_to_many"
        arrivals = data["arrivals"]
        assert len(arrivals) == graph.n
        assert arrivals["0"] == 0  # source reaches itself at t
        planner = TTLPlanner(graph)
        for v in range(graph.n):
            journey = planner.earliest_arrival(0, v, 0)
            expected = journey.arr if journey else None
            if v == 0:
                expected = 0
            assert arrivals[str(v)] == expected, v

    def test_matrix(self, service):
        graph, port = service
        status, body = post(
            port,
            "/v1/batch",
            {"kind": "matrix", "sources": [0, 1], "targets": [2, 3], "t": 0},
        )
        assert status == 200
        matrix = body["data"]["matrix"]
        assert set(matrix) == {"0", "1"}
        assert set(matrix["0"]) == {"2", "3"}

    def test_isochrone(self, service):
        graph, port = service
        status, body = post(
            port,
            "/v1/batch",
            {"kind": "isochrone", "source": 0, "t": 0, "budget": 100},
        )
        assert status == 200
        data = body["data"]
        assert 0 in data["stations"]
        planner = TTLPlanner(graph)
        for v in data["stations"]:
            if v == 0:
                continue
            journey = planner.earliest_arrival(0, v, 0)
            assert journey is not None and journey.arr <= 100

    def test_bad_kind_400(self, service):
        _, port = service
        with pytest.raises(urllib.error.HTTPError) as err:
            post(port, "/v1/batch", {"kind": "teleport", "t": 0})
        assert err.value.code == 400
        assert json.loads(err.value.read())["field"] == "kind"

    def test_non_integer_targets_400(self, service):
        _, port = service
        with pytest.raises(urllib.error.HTTPError) as err:
            post(
                port,
                "/v1/batch",
                {"kind": "one_to_many", "source": 0, "targets": ["x"], "t": 0},
            )
        assert err.value.code == 400
        assert json.loads(err.value.read())["field"] == "targets"

    def test_batch_is_v1_only(self, service):
        _, port = service
        with pytest.raises(urllib.error.HTTPError) as err:
            post(
                port,
                "/batch",
                {"kind": "one_to_many", "source": 0, "targets": [1], "t": 0},
            )
        assert err.value.code == 404
