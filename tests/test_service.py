"""Tests for the HTTP planner service."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core import TTLPlanner
from repro.service import PlannerService


@pytest.fixture(scope="module")
def service(request):
    from tests.conftest import make_random_route_graph
    import random

    graph = make_random_route_graph(random.Random(23), 10, 7)
    svc = PlannerService(TTLPlanner(graph))
    port = svc.start(port=0)
    request.addfinalizer(svc.stop)
    return graph, port


def get(port, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=10
    ) as response:
        return response.status, json.loads(response.read())


class TestEndpoints:
    def test_stations(self, service):
        graph, port = service
        status, body = get(port, "/stations")
        assert status == 200
        assert len(body["stations"]) == graph.n
        assert body["stations"][0]["id"] == 0

    def test_eap_matches_planner(self, service):
        graph, port = service
        planner = TTLPlanner(graph)
        found = 0
        for u in range(graph.n):
            for v in range(graph.n):
                if u == v:
                    continue
                expected = planner.earliest_arrival(u, v, 0)
                _, body = get(port, f"/eap?from={u}&to={v}&t=0")
                if expected is None:
                    assert body["journey"] is None
                else:
                    found += 1
                    assert body["journey"]["arr"] == expected.arr
                if found >= 10:
                    return
        assert found > 0

    def test_sdp_and_ldp(self, service):
        graph, port = service
        for u in range(graph.n):
            for v in range(graph.n):
                if u == v:
                    continue
                _, body = get(
                    port, f"/sdp?from={u}&to={v}&t=0&t_end=500"
                )
                if body["journey"] is not None:
                    journey = body["journey"]
                    assert 0 <= journey["dep"] <= journey["arr"] <= 500
                    _, ldp = get(
                        port, f"/ldp?from={u}&to={v}&t={journey['arr']}"
                    )
                    assert ldp["journey"] is not None
                    return
        pytest.skip("no feasible pair in sampled graph")

    def test_profile(self, service):
        graph, port = service
        for u in range(graph.n):
            for v in range(graph.n):
                if u == v:
                    continue
                _, body = get(
                    port, f"/profile?from={u}&to={v}&t=0&t_end=500"
                )
                pairs = body["pairs"]
                if pairs:
                    deps = [p[0] for p in pairs]
                    assert deps == sorted(deps)
                    return
        pytest.skip("no feasible pair in sampled graph")

    def test_journey_roundtrips_through_json(self, service):
        from repro.journey import Journey

        graph, port = service
        for u in range(graph.n):
            for v in range(graph.n):
                if u == v:
                    continue
                _, body = get(port, f"/eap?from={u}&to={v}&t=0")
                if body["journey"] is not None:
                    journey = Journey.from_dict(body["journey"])
                    assert journey.path is not None
                    return
        pytest.skip("no feasible pair")


class TestErrors:
    def test_unknown_path_404(self, service):
        _, port = service
        with pytest.raises(urllib.error.HTTPError) as err:
            get(port, "/teleport")
        assert err.value.code == 404

    def test_bad_station_400(self, service):
        _, port = service
        with pytest.raises(urllib.error.HTTPError) as err:
            get(port, "/eap?from=9999&to=0&t=0")
        assert err.value.code == 400

    def test_missing_param_400(self, service):
        _, port = service
        with pytest.raises(urllib.error.HTTPError) as err:
            get(port, "/eap?from=0")
        assert err.value.code == 400

    def test_garbage_param_400(self, service):
        _, port = service
        with pytest.raises(urllib.error.HTTPError) as err:
            get(port, "/eap?from=a&to=b&t=c")
        assert err.value.code == 400
