"""Shared fixtures and graph factories for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graph.builders import GraphBuilder, graph_from_connections


def make_random_connection_graph(rng: random.Random, n: int, m: int):
    """A random timetable multigraph of bare connections."""
    conns = []
    for _ in range(m):
        u = rng.randrange(n)
        v = rng.randrange(n)
        while v == u:
            v = rng.randrange(n)
        dep = rng.randrange(0, 200)
        arr = dep + rng.randrange(1, 30)
        conns.append((u, v, dep, arr))
    return graph_from_connections(conns, n)


def make_random_route_graph(
    rng: random.Random,
    n_stations: int,
    n_routes: int,
    max_trips: int = 5,
):
    """A random graph with genuine multi-stop route structure."""
    builder = GraphBuilder()
    builder.add_stations(n_stations)
    for _ in range(n_routes):
        length = rng.randrange(2, min(6, n_stations) + 1)
        stops = rng.sample(range(n_stations), length)
        route = builder.add_route(stops)
        t0 = rng.randrange(0, 100)
        legs = [rng.randrange(2, 15) for _ in range(length - 1)]
        for k in range(rng.randrange(1, max_trips + 1)):
            builder.add_trip_departures(route, t0 + k * rng.randrange(5, 20), legs)
    return builder.build()


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


@pytest.fixture
def line_graph():
    """Stations 0-1-2-3 on one route, three trips, plus an express.

    A small deterministic graph where optimal answers are easy to
    derive by hand.
    """
    builder = GraphBuilder()
    builder.add_stations(4)
    local = builder.add_route([0, 1, 2, 3], name="local")
    for start in (100, 200, 300):
        builder.add_trip_departures(local, start, [10, 10, 10])
    express = builder.add_route([0, 3], name="express")
    builder.add_trip_departures(express, 210, [25])
    return builder.build()


@pytest.fixture
def figure1_graph():
    """A graph in the spirit of the paper's Figure 1: six stations,
    three vehicles, transfers required for some pairs."""
    builder = GraphBuilder()
    builder.add_stations(6)
    b1 = builder.add_route([1, 5, 0], name="b1")
    builder.add_trip(b1, [(5, 5), (7, 8), (10, 10)])
    b2 = builder.add_route([3, 4, 0, 1], name="b2")
    builder.add_trip(b2, [(5, 5), (7, 7), (9, 9), (10, 10)])
    b3 = builder.add_route([1, 2, 5, 3], name="b3")
    builder.add_trip(b3, [(6, 6), (8, 8), (11, 11), (13, 13)])
    return builder.build()


@pytest.fixture
def route_graph(rng):
    return make_random_route_graph(rng, 10, 5)
