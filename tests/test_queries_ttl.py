"""End-to-end TTL query tests against the Dijkstra oracle."""

import random

import pytest

from repro.algorithms.temporal_dijkstra import DijkstraPlanner
from repro.core.queries import TTLPlanner
from repro.errors import QueryError
from repro.graph.connection import validate_path
from tests.conftest import make_random_connection_graph, make_random_route_graph


class TestAgainstOracle:
    @pytest.mark.parametrize("order", ["hub", "random", "degree"])
    def test_connection_graphs(self, order):
        rng = random.Random(hash(order) & 0xFFFF)
        for _ in range(6):
            graph = make_random_connection_graph(
                rng, rng.randrange(4, 12), rng.randrange(5, 50)
            )
            oracle = DijkstraPlanner(graph)
            ttl = TTLPlanner(graph, order=order)
            for _ in range(40):
                u, v = rng.randrange(graph.n), rng.randrange(graph.n)
                if u == v:
                    continue
                t = rng.randrange(0, 230)
                t2 = t + rng.randrange(1, 240)

                a = oracle.earliest_arrival(u, v, t)
                b = ttl.earliest_arrival(u, v, t)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.arr == b.arr
                    assert b.dep >= t
                    validate_path(b.path)
                    assert b.path[0].u == u and b.path[-1].v == v

                a = oracle.latest_departure(u, v, t)
                b = ttl.latest_departure(u, v, t)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.dep == b.dep
                    assert b.arr <= t
                    validate_path(b.path)

                a = oracle.shortest_duration(u, v, t, t2)
                b = ttl.shortest_duration(u, v, t, t2)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.duration == b.duration
                    assert b.dep >= t and b.arr <= t2
                    validate_path(b.path)

    def test_route_graphs(self, rng):
        for _ in range(5):
            graph = make_random_route_graph(rng, 11, 7)
            oracle = DijkstraPlanner(graph)
            ttl = TTLPlanner(graph)
            for _ in range(40):
                u, v = rng.randrange(graph.n), rng.randrange(graph.n)
                if u == v:
                    continue
                t = rng.randrange(0, 260)
                a = oracle.earliest_arrival(u, v, t)
                b = ttl.earliest_arrival(u, v, t)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.arr == b.arr


class TestDeterministicAnswers:
    def test_line_graph(self, line_graph):
        ttl = TTLPlanner(line_graph)
        assert ttl.earliest_arrival(0, 3, 95).arr == 130
        assert ttl.earliest_arrival(0, 3, 205).arr == 235
        assert ttl.latest_departure(0, 3, 330).dep == 300
        assert ttl.shortest_duration(0, 3, 0, 400).duration == 25
        assert ttl.shortest_duration(0, 3, 0, 150).duration == 30

    def test_figure1_style_graph(self, figure1_graph):
        ttl = TTLPlanner(figure1_graph)
        oracle = DijkstraPlanner(figure1_graph)
        for u in range(figure1_graph.n):
            for v in range(figure1_graph.n):
                if u == v:
                    continue
                for t in range(4, 14):
                    a = oracle.earliest_arrival(u, v, t)
                    b = ttl.earliest_arrival(u, v, t)
                    assert (a is None) == (b is None)
                    if a is not None:
                        assert a.arr == b.arr


class TestQueryValidation:
    def test_unknown_station(self, line_graph):
        ttl = TTLPlanner(line_graph)
        with pytest.raises(QueryError):
            ttl.earliest_arrival(0, 42, 0)
        with pytest.raises(QueryError):
            ttl.latest_departure(42, 0, 0)
        with pytest.raises(QueryError):
            ttl.shortest_duration(-1, 0, 0, 10)

    def test_empty_window(self, line_graph):
        ttl = TTLPlanner(line_graph)
        with pytest.raises(QueryError):
            ttl.shortest_duration(0, 3, 100, 99)

    def test_same_station(self, line_graph):
        ttl = TTLPlanner(line_graph)
        journey = ttl.earliest_arrival(2, 2, 77)
        assert journey.dep == journey.arr == 77

    def test_unreachable_returns_none(self, line_graph):
        ttl = TTLPlanner(line_graph)
        assert ttl.earliest_arrival(3, 0, 0) is None
        assert ttl.latest_departure(3, 0, 10**6) is None
        assert ttl.shortest_duration(3, 0, 0, 10**6) is None

    def test_query_beyond_service_end(self, line_graph):
        ttl = TTLPlanner(line_graph)
        assert ttl.earliest_arrival(0, 3, 10**7) is None


class TestPlannerLifecycle:
    def test_prebuilt_index_reused(self, line_graph):
        from repro.core.build import build_index

        index = build_index(line_graph)
        ttl = TTLPlanner(line_graph, index=index)
        assert ttl.index is index
        ttl.preprocess()
        assert ttl.index is index

    def test_lazy_build_on_first_query(self, line_graph):
        ttl = TTLPlanner(line_graph)
        assert ttl.index is None
        ttl.earliest_arrival(0, 3, 95)
        assert ttl.index is not None

    def test_index_bytes_positive(self, line_graph):
        ttl = TTLPlanner(line_graph)
        assert ttl.index_bytes() > 0
