"""Unit tests for time representation helpers."""

import pytest

from repro.timeutil import (
    INF,
    NEG_INF,
    SECONDS_PER_DAY,
    format_duration,
    format_time,
    hms,
    parse_time,
)


class TestHms:
    def test_basic(self):
        assert hms(0) == 0
        assert hms(8, 30) == 30600
        assert hms(23, 59, 59) == 86399

    def test_next_day_hours(self):
        assert hms(25, 30) == SECONDS_PER_DAY + hms(1, 30)

    def test_rejects_bad_minutes(self):
        with pytest.raises(ValueError):
            hms(8, 60)

    def test_rejects_bad_seconds(self):
        with pytest.raises(ValueError):
            hms(8, 0, -1)

    def test_rejects_negative_hour(self):
        with pytest.raises(ValueError):
            hms(-1)


class TestFormatTime:
    def test_basic(self):
        assert format_time(hms(8, 30)) == "08:30:00"
        assert format_time(0) == "00:00:00"

    def test_next_day(self):
        assert format_time(hms(25, 5, 7)) == "25:05:07"

    def test_sentinels(self):
        assert format_time(INF) == "+inf"
        assert format_time(NEG_INF) == "-inf"

    def test_negative(self):
        assert format_time(-hms(1, 2, 3)) == "-01:02:03"


class TestFormatDuration:
    def test_seconds_only(self):
        assert format_duration(45) == "45s"

    def test_minutes(self):
        assert format_duration(120) == "2m"
        assert format_duration(125) == "2m05s"

    def test_hours(self):
        assert format_duration(3900) == "1h05m"

    def test_infinite(self):
        assert format_duration(INF) == "inf"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1)


class TestParseTime:
    def test_hh_mm(self):
        assert parse_time("08:30") == hms(8, 30)

    def test_hh_mm_ss(self):
        assert parse_time("08:30:15") == hms(8, 30, 15)

    def test_whitespace(self):
        assert parse_time(" 08:30 ") == hms(8, 30)

    def test_roundtrip_with_format(self):
        for t in (0, 1, hms(12, 34, 56), hms(25, 0)):
            assert parse_time(format_time(t)) == t

    @pytest.mark.parametrize("bad", ["8", "a:b", "08:30:15:00", ""])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_time(bad)
