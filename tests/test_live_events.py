"""Tests for the live event vocabulary (repro.live.events)."""

import pytest

from repro.errors import LiveEventError
from repro.live import (
    ExtraTrip,
    TripCancellation,
    TripDelay,
    event_from_dict,
)
from repro.timeutil import INF


class TestVisibilityWindow:
    def test_default_window_is_always_active(self):
        event = TripCancellation(trip_id=3)
        assert event.active_at(0)
        assert event.active_at(10**9)

    def test_window_bounds_are_half_open(self):
        event = TripDelay(trip_id=1, delay=60, apply_at=100, expires_at=200)
        assert not event.active_at(99)
        assert event.active_at(100)
        assert event.active_at(199)
        assert not event.active_at(200)

    def test_inverted_window_rejected(self):
        with pytest.raises(LiveEventError):
            TripCancellation(trip_id=1, apply_at=50, expires_at=50)


class TestValidation:
    def test_delay_needs_trip(self):
        with pytest.raises(LiveEventError):
            TripDelay(delay=60)

    def test_negative_delay_rejected(self):
        with pytest.raises(LiveEventError):
            TripDelay(trip_id=0, delay=-5)

    def test_negative_from_stop_rejected(self):
        with pytest.raises(LiveEventError):
            TripDelay(trip_id=0, delay=5, from_stop=-1)

    def test_cancellation_needs_trip(self):
        with pytest.raises(LiveEventError):
            TripCancellation()

    def test_extra_trip_needs_two_stops(self):
        with pytest.raises(LiveEventError):
            ExtraTrip(stops=(1,), times=((0, 0),))

    def test_extra_trip_times_must_match_stops(self):
        with pytest.raises(LiveEventError):
            ExtraTrip(stops=(0, 1), times=((0, 0),))

    def test_extra_trip_no_consecutive_repeats(self):
        with pytest.raises(LiveEventError):
            ExtraTrip(stops=(0, 0), times=((0, 0), (5, 5)))

    def test_extra_trip_times_must_increase(self):
        with pytest.raises(LiveEventError):
            ExtraTrip(stops=(0, 1), times=((10, 10), (10, 10)))

    def test_extra_trip_dep_before_arr_rejected(self):
        with pytest.raises(LiveEventError):
            ExtraTrip(stops=(0, 1), times=((5, 3), (10, 10)))


class TestJsonRoundTrip:
    @pytest.mark.parametrize(
        "event",
        [
            TripDelay(trip_id=7, delay=300, from_stop=2, apply_at=50),
            TripCancellation(trip_id=9, apply_at=10, expires_at=500),
            ExtraTrip(
                stops=(0, 1, 2),
                times=((0, 5), (10, 12), (20, 20)),
                trip_id=99,
            ),
        ],
    )
    def test_round_trip(self, event):
        assert event_from_dict(event.to_dict()) == event

    def test_infinite_expiry_omitted_from_json(self):
        data = TripCancellation(trip_id=1).to_dict()
        assert "expires_at" not in data
        assert event_from_dict(data).expires_at == INF

    def test_unknown_kind_rejected(self):
        with pytest.raises(LiveEventError):
            event_from_dict({"kind": "warp", "trip_id": 0})

    def test_missing_field_rejected(self):
        with pytest.raises(LiveEventError):
            event_from_dict({"kind": "delay", "trip_id": 0})

    def test_non_dict_rejected(self):
        with pytest.raises(LiveEventError):
            event_from_dict([1, 2, 3])
