"""Tests for batched label queries (one-to-many / matrix / isochrone).

Everything routes through :func:`repro.core.batch.batch_plan`; the
three legacy entry points are pinned to delegate with a
``DeprecationWarning``.
"""

import os
from unittest import mock

import pytest

from repro.algorithms.temporal_dijkstra import earliest_arrival_search
from repro.core.batch import batch_plan, eat_matrix, isochrone, one_to_many_eat
from repro.core.build import build_index
from repro.errors import QueryError
from repro.query import BatchQuery
from repro.timeutil import INF
from tests.conftest import make_random_route_graph


@pytest.fixture(scope="module")
def setting():
    import random

    rng = random.Random(17)
    graph = make_random_route_graph(rng, 12, 8)
    return graph, build_index(graph), rng


def one_to_many(index, source, targets, t):
    [result] = batch_plan(
        index,
        [
            BatchQuery(
                kind="one_to_many",
                sources=(source,),
                targets=tuple(targets),
                t=t,
            )
        ],
    )
    return result


def iso(index, source, t, budget):
    [result] = batch_plan(
        index,
        [BatchQuery(kind="isochrone", sources=(source,), t=t, budget=budget)],
    )
    return result


class TestOneToMany:
    def test_matches_dijkstra_one_to_all(self, setting):
        graph, index, rng = setting
        for _ in range(15):
            source = rng.randrange(graph.n)
            t = rng.randrange(0, 250)
            eat, _ = earliest_arrival_search(graph, source, t)
            batch = one_to_many(index, source, range(graph.n), t)
            for v in range(graph.n):
                expected = None
                if v == source:
                    expected = t
                elif eat[v] < INF:
                    expected = eat[v]
                assert batch[v] == expected

    def test_subset_of_targets(self, setting):
        graph, index, rng = setting
        targets = [0, 2, 5]
        result = one_to_many(index, 1, targets, 50)
        assert set(result) == set(targets)

    def test_unknown_stations_rejected(self, setting):
        graph, index, _ = setting
        with pytest.raises(QueryError):
            one_to_many(index, 999, [0], 0)
        with pytest.raises(QueryError):
            one_to_many(index, 0, [999], 0)

    def test_scalar_matches_vectorized(self, setting):
        graph, index, rng = setting
        cases = [
            (rng.randrange(graph.n), rng.randrange(0, 250))
            for _ in range(5)
        ]
        with mock.patch.dict(os.environ, {"REPRO_SCALAR_KERNELS": "1"}):
            scalar = [
                one_to_many(index, source, range(graph.n), t)
                for source, t in cases
            ]
        vectorized = [
            one_to_many(index, source, range(graph.n), t)
            for source, t in cases
        ]
        assert scalar == vectorized


class TestMatrix:
    def test_matrix_consistent_with_rows(self, setting):
        graph, index, _ = setting
        sources = (0, 1, 2)
        targets = (3, 4)
        [matrix] = batch_plan(
            index,
            [BatchQuery(kind="matrix", sources=sources, targets=targets, t=60)],
        )
        assert set(matrix) == {(s, t) for s in sources for t in targets}
        for s in sources:
            row = one_to_many(index, s, targets, 60)
            for t in targets:
                assert matrix[(s, t)] == row[t]


class TestIsochrone:
    def test_contains_source_and_grows_with_budget(self, setting):
        graph, index, rng = setting
        for _ in range(10):
            source = rng.randrange(graph.n)
            t = rng.randrange(0, 200)
            small = set(iso(index, source, t, 30))
            large = set(iso(index, source, t, 300))
            assert source in small
            assert small <= large

    def test_budget_respected(self, setting):
        graph, index, _ = setting
        t, budget = 50, 120
        stations = iso(index, 0, t, budget)
        arrivals = one_to_many(index, 0, stations, t)
        for station in stations:
            assert arrivals[station] is not None
            assert arrivals[station] - t <= budget

    def test_sorted_by_arrival(self, setting):
        graph, index, _ = setting
        stations = iso(index, 0, 50, 500)
        arrivals = one_to_many(index, 0, stations, 50)
        values = [arrivals[s] for s in stations]
        assert values == sorted(values)

    def test_negative_budget_rejected(self, setting):
        graph, index, _ = setting
        with pytest.raises(QueryError):
            iso(index, 0, 0, -1)

    def test_zero_budget_only_source(self, setting):
        graph, index, _ = setting
        assert iso(index, 3, 100, 0) == [3]


class TestBatchPlan:
    def test_many_requests_one_call(self, setting):
        graph, index, _ = setting
        requests = [
            BatchQuery(
                kind="one_to_many",
                sources=(0,),
                targets=tuple(range(graph.n)),
                t=50,
            ),
            BatchQuery(kind="isochrone", sources=(1,), t=50, budget=200),
            BatchQuery(
                kind="matrix", sources=(0, 1), targets=(2, 3), t=50
            ),
        ]
        results = batch_plan(index, requests)
        assert len(results) == len(requests)
        assert results[0] == one_to_many(index, 0, range(graph.n), 50)
        assert results[1] == iso(index, 1, 50, 200)

    def test_validates_before_answering(self, setting):
        graph, index, _ = setting
        requests = [
            BatchQuery(
                kind="one_to_many", sources=(0,), targets=(1,), t=50
            ),
            BatchQuery(kind="isochrone", sources=(0,), t=50, budget=None),
        ]
        with pytest.raises(QueryError):
            batch_plan(index, requests)

    def test_malformed_kind_rejected(self, setting):
        graph, index, _ = setting
        with pytest.raises(QueryError):
            batch_plan(
                index, [BatchQuery(kind="nope", sources=(0,), t=0)]
            )


class TestLegacyEntryPoints:
    def test_delegate_with_deprecation_warning(self, setting):
        graph, index, _ = setting
        with pytest.deprecated_call():
            legacy = one_to_many_eat(index, 0, [1, 2], 50)
        assert legacy == one_to_many(index, 0, [1, 2], 50)
        with pytest.deprecated_call():
            legacy = eat_matrix(index, [0], [1], 50)
        assert legacy[(0, 1)] == one_to_many(index, 0, [1], 50)[1]
        with pytest.deprecated_call():
            legacy = isochrone(index, 0, 50, 300)
        assert legacy == iso(index, 0, 50, 300)
