"""Tests for batched label queries (one-to-many / matrix / isochrone)."""

import pytest

from repro.algorithms.temporal_dijkstra import earliest_arrival_search
from repro.core.batch import eat_matrix, isochrone, one_to_many_eat
from repro.core.build import build_index
from repro.errors import QueryError
from repro.timeutil import INF
from tests.conftest import make_random_route_graph


@pytest.fixture(scope="module")
def setting():
    import random

    rng = random.Random(17)
    graph = make_random_route_graph(rng, 12, 8)
    return graph, build_index(graph), rng


class TestOneToMany:
    def test_matches_dijkstra_one_to_all(self, setting):
        graph, index, rng = setting
        for _ in range(15):
            source = rng.randrange(graph.n)
            t = rng.randrange(0, 250)
            eat, _ = earliest_arrival_search(graph, source, t)
            batch = one_to_many_eat(index, source, range(graph.n), t)
            for v in range(graph.n):
                expected = None
                if v == source:
                    expected = t
                elif eat[v] < INF:
                    expected = eat[v]
                assert batch[v] == expected

    def test_subset_of_targets(self, setting):
        graph, index, rng = setting
        targets = [0, 2, 5]
        result = one_to_many_eat(index, 1, targets, 50)
        assert set(result) == set(targets)

    def test_unknown_stations_rejected(self, setting):
        graph, index, _ = setting
        with pytest.raises(QueryError):
            one_to_many_eat(index, 999, [0], 0)
        with pytest.raises(QueryError):
            one_to_many_eat(index, 0, [999], 0)


class TestMatrix:
    def test_matrix_consistent_with_rows(self, setting):
        graph, index, _ = setting
        sources = [0, 1, 2]
        targets = [3, 4]
        matrix = eat_matrix(index, sources, targets, 60)
        assert set(matrix) == {
            (s, t) for s in sources for t in targets
        }
        for s in sources:
            row = one_to_many_eat(index, s, targets, 60)
            for t in targets:
                assert matrix[(s, t)] == row[t]


class TestIsochrone:
    def test_contains_source_and_grows_with_budget(self, setting):
        graph, index, rng = setting
        for _ in range(10):
            source = rng.randrange(graph.n)
            t = rng.randrange(0, 200)
            small = set(isochrone(index, source, t, 30))
            large = set(isochrone(index, source, t, 300))
            assert source in small
            assert small <= large

    def test_budget_respected(self, setting):
        graph, index, _ = setting
        t, budget = 50, 120
        stations = isochrone(index, 0, t, budget)
        arrivals = one_to_many_eat(index, 0, stations, t)
        for station in stations:
            assert arrivals[station] is not None
            assert arrivals[station] - t <= budget

    def test_sorted_by_arrival(self, setting):
        graph, index, _ = setting
        stations = isochrone(index, 0, 50, 500)
        arrivals = one_to_many_eat(index, 0, stations, 50)
        values = [arrivals[s] for s in stations]
        assert values == sorted(values)

    def test_negative_budget_rejected(self, setting):
        graph, index, _ = setting
        with pytest.raises(QueryError):
            isochrone(index, 0, 0, -1)

    def test_zero_budget_only_source(self, setting):
        graph, index, _ = setting
        assert isochrone(index, 3, 100, 0) == [3]
