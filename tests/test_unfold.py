"""Tests for PathUnfold and concise-path reconstruction."""

import random

import pytest

from repro.core.build import build_index
from repro.core.queries import TTLPlanner
from repro.core.sketch import Segment
from repro.core.unfold import unfold_segment
from repro.errors import ReconstructionError
from repro.graph.connection import validate_path
from tests.conftest import make_random_route_graph


class TestUnfoldSegment:
    def test_every_label_unfolds_to_its_claimed_times(self, rng):
        for _ in range(5):
            graph = make_random_route_graph(rng, 9, 6)
            index = build_index(graph)
            for v in range(graph.n):
                for label in index.in_labels(v):
                    segment = Segment(
                        label.hub, v, label.dep, label.arr, label.trip,
                        label.pivot,
                    )
                    path = unfold_segment(index, segment)
                    validate_path(path)
                    assert path[0].u == label.hub
                    assert path[-1].v == v
                    assert path[0].dep >= label.dep
                    assert path[-1].arr <= label.arr
                    # Canonical paths unfold to their exact times.
                    assert path[0].dep == label.dep
                    assert path[-1].arr == label.arr

    def test_out_labels_unfold(self, rng):
        graph = make_random_route_graph(rng, 8, 5)
        index = build_index(graph)
        for u in range(graph.n):
            for label in index.out_labels(u):
                segment = Segment(
                    u, label.hub, label.dep, label.arr, label.trip,
                    label.pivot,
                )
                path = unfold_segment(index, segment)
                validate_path(path)
                assert path[0].u == u and path[-1].v == label.hub

    def test_single_edge_label_without_trip_rejected(self, line_graph):
        index = build_index(line_graph)
        segment = Segment(0, 1, 100, 110, None, None)
        with pytest.raises(ReconstructionError):
            unfold_segment(index, segment)


class TestFallback:
    def test_missing_child_triggers_search_fallback(self, rng):
        """Hide a child label from the lookup layer and check the
        unfolder reconstructs the segment by search instead."""
        for _ in range(10):
            graph = make_random_route_graph(rng, 9, 6)
            index = build_index(graph)
            victim = None
            for v in range(graph.n):
                for label in index.in_labels(v):
                    # Trip-labelled segments unfold by walking the trip
                    # itself; only multi-vehicle labels consult the
                    # child lookups this test sabotages.
                    if label.pivot is not None and label.trip is None:
                        victim = (v, label)
                        break
                if victim:
                    break
            if victim is None:
                continue
            v, label = victim
            # Make the left child unresolvable through both lookups.
            hidden = (label.hub, label.pivot)
            real_by_dep = index.lookup_by_dep
            real_by_arr = index.lookup_by_arr
            index.lookup_by_dep = lambda s, d, t: (
                None if (s, d) == hidden else real_by_dep(s, d, t)
            )
            index.lookup_by_arr = lambda s, d, t: (
                None if (s, d) == hidden else real_by_arr(s, d, t)
            )
            before = index.unfold_fallbacks
            segment = Segment(
                label.hub, v, label.dep, label.arr, label.trip, label.pivot
            )
            path = unfold_segment(index, segment)
            validate_path(path)
            assert path[-1].arr <= label.arr
            assert index.unfold_fallbacks > before
            return
        pytest.skip("no multi-edge label found in sampled graphs")

    def test_impossible_fallback_raises(self, line_graph):
        index = build_index(line_graph)
        # There is no path 0 -> 3 arriving by time 50.
        segment = Segment(0, 3, 0, 50, None, 1)
        with pytest.raises(ReconstructionError):
            unfold_segment(index, segment)


class TestConcisePaths:
    def test_concise_matches_full(self, rng):
        for _ in range(4):
            graph = make_random_route_graph(rng, 10, 7)
            index = build_index(graph)
            full = TTLPlanner(graph, index=index)
            concise = TTLPlanner(graph, index=index, concise=True)
            for _ in range(50):
                u, v = rng.randrange(graph.n), rng.randrange(graph.n)
                if u == v:
                    continue
                t = rng.randrange(0, 250)
                a = full.earliest_arrival(u, v, t)
                b = concise.earliest_arrival(u, v, t)
                assert (a is None) == (b is None)
                if a is None:
                    continue
                assert b.legs is not None and b.path is None
                assert b.same_times(a.to_concise()) or b.arr == a.arr
                # Leg sequence must match the full path's boardings.
                expected = a.to_concise()
                assert [leg.trip for leg in b.legs] == [
                    leg.trip for leg in expected.legs
                ] or b.arr == a.arr

    def test_concise_leg_times_are_boardable(self, rng):
        graph = make_random_route_graph(rng, 9, 6)
        planner = TTLPlanner(graph, concise=True)
        for _ in range(60):
            u, v = rng.randrange(graph.n), rng.randrange(graph.n)
            if u == v:
                continue
            journey = planner.earliest_arrival(u, v, rng.randrange(0, 250))
            if journey is None:
                continue
            for leg in journey.legs:
                # There must be a real connection of that trip leaving
                # that station at that time.
                assert any(
                    c.trip == leg.trip and c.dep == leg.time
                    for c in graph.out[leg.station]
                )

    def test_consecutive_legs_have_distinct_trips(self, rng):
        graph = make_random_route_graph(rng, 9, 6)
        planner = TTLPlanner(graph, concise=True)
        for _ in range(60):
            u, v = rng.randrange(graph.n), rng.randrange(graph.n)
            if u == v:
                continue
            journey = planner.shortest_duration(
                u, v, 0, rng.randrange(100, 400)
            )
            if journey is None:
                continue
            trips = [leg.trip for leg in journey.legs]
            assert all(a != b for a, b in zip(trips, trips[1:]))
