"""Cross-method equivalence on a real (small) catalogue dataset.

Every planner must give identical objective values on the same query
workload — the paper's experimental premise that all compared methods
are exact.
"""

import pytest

from repro.algorithms.temporal_dijkstra import DijkstraPlanner
from repro.baselines import CHTPlanner, CSAPlanner
from repro.core import CompressedTTLPlanner, TTLPlanner
from repro.datasets import QueryWorkload, load_dataset


@pytest.fixture(scope="module")
def setting():
    graph = load_dataset("Austin", scale=0.5)
    queries = QueryWorkload(graph, seed=7).generate(60)
    oracle = DijkstraPlanner(graph)
    planners = [
        CSAPlanner(graph),
        CHTPlanner(graph),
        TTLPlanner(graph),
        TTLPlanner(graph, concise=True),
        CompressedTTLPlanner(graph),
        CompressedTTLPlanner(graph, concise=True),
    ]
    for planner in planners:
        planner.preprocess()
    return graph, queries, oracle, planners


def test_eap_equivalence(setting):
    graph, queries, oracle, planners = setting
    for q in queries:
        ref = oracle.earliest_arrival(q.source, q.destination, q.t_start)
        for planner in planners:
            got = planner.earliest_arrival(q.source, q.destination, q.t_start)
            assert (ref is None) == (got is None), planner.name
            if ref is not None:
                assert got.arr == ref.arr, planner.name


def test_ldp_equivalence(setting):
    graph, queries, oracle, planners = setting
    for q in queries:
        ref = oracle.latest_departure(q.source, q.destination, q.t_end)
        for planner in planners:
            got = planner.latest_departure(q.source, q.destination, q.t_end)
            assert (ref is None) == (got is None), planner.name
            if ref is not None:
                assert got.dep == ref.dep, planner.name


def test_sdp_equivalence(setting):
    graph, queries, oracle, planners = setting
    for q in queries:
        ref = oracle.shortest_duration(
            q.source, q.destination, q.t_start, q.t_end
        )
        for planner in planners:
            got = planner.shortest_duration(
                q.source, q.destination, q.t_start, q.t_end
            )
            assert (ref is None) == (got is None), planner.name
            if ref is not None:
                assert got.duration == ref.duration, planner.name


def test_journeys_are_well_formed(setting):
    from repro.graph.connection import validate_path

    graph, queries, _, planners = setting
    for q in queries[:30]:
        for planner in planners:
            journey = planner.earliest_arrival(
                q.source, q.destination, q.t_start
            )
            if journey is None:
                continue
            assert journey.source == q.source
            assert journey.destination == q.destination
            assert journey.dep >= q.t_start
            if journey.path is not None:
                validate_path(journey.path)
            else:
                assert journey.legs


def test_index_sizes_ordered(setting):
    """Compression must shrink TTL; every index reports a real size.

    (The full Figure 4 ordering TTL > CHT ~ CSA only emerges at the
    benchmark scale; at this test's half-scale Austin the label count
    is too small, so only scale-free relations are asserted here.)
    """
    graph, _, _, planners = setting
    sizes = {p.name: p.index_bytes() for p in planners}
    assert sizes["C-TTL"] < sizes["TTL"]
    for name, size in sizes.items():
        assert size > 0, name
