"""Federation equivalence: stitched answers must equal monolithic ones.

The metamorphic property at the heart of the subsystem: for any graph,
partition, and query, the federated planner (region shards + border
mini-index, hub-label join) returns *byte-identical* profiles and the
same canonical EAP/LDP/SDP corners as one monolithic TTL index over
the whole network.  Exercised over the committed seed set on the
tagged multi-region dataset and over a heuristic min-cut split of an
untagged city, so both partition paths are covered.
"""

import os

import pytest

from repro.core import TTLPlanner
from repro.core.order import graph_digest
from repro.datasets import QueryWorkload, load_dataset
from repro.errors import FederationError
from repro.federation import (
    FederationManifest,
    build_federation,
    load_federation,
    partition_graph,
    region_map_from_names,
)
from repro.service import PlannerService

#: The committed seed set the CI equivalence gate runs (>= 3 seeds).
FED_SEEDS = (21, 101, 202)


def assert_equivalent(fed, mono, graph, seed, count=25):
    """Compare the two planners over a deterministic workload."""
    queries = QueryWorkload(graph, seed=seed).generate(count)
    for q in queries:
        f_eap = fed.earliest_arrival(q.source, q.destination, q.t_start)
        m_eap = mono.earliest_arrival(q.source, q.destination, q.t_start)
        assert (f_eap is None) == (m_eap is None), q
        if f_eap is not None:
            assert f_eap.arr == m_eap.arr, q

        f_ldp = fed.latest_departure(q.source, q.destination, q.t_end)
        m_ldp = mono.latest_departure(q.source, q.destination, q.t_end)
        assert (f_ldp is None) == (m_ldp is None), q
        if f_ldp is not None:
            assert f_ldp.dep == m_ldp.dep, q

        f_sdp = fed.shortest_duration(
            q.source, q.destination, q.t_start, q.t_end
        )
        m_sdp = mono.shortest_duration(
            q.source, q.destination, q.t_start, q.t_end
        )
        assert (f_sdp is None) == (m_sdp is None), q
        if f_sdp is not None:
            assert f_sdp.arr - f_sdp.dep == m_sdp.arr - m_sdp.dep, q

        # Profiles must be byte-identical, not just corner-equal.
        f_prof = fed.profile(q.source, q.destination, q.t_start, q.t_end)
        m_prof = mono.profile(
            q.source, q.destination, q.t_start, q.t_end
        )
        assert list(f_prof) == list(m_prof), q


@pytest.mark.parametrize("seed", FED_SEEDS)
def test_federated_equals_monolithic_tagged(tmp_path, seed):
    """Tagged multi-region dataset, explicit name-map partition."""
    graph = load_dataset("TwinCities", seed=seed)
    partition = region_map_from_names(graph)
    assert partition is not None
    manifest = build_federation(graph, partition, str(tmp_path))
    fed = load_federation(
        os.path.join(str(tmp_path), "federation.json"), graph
    )
    mono = TTLPlanner(graph)
    assert_equivalent(fed, mono, graph, seed=seed)
    # Both routing classes were exercised; intra stays off the seam.
    assert fed.intra_queries > 0
    assert fed.cross_queries > 0
    assert manifest.epoch == fed.manifest.epoch


def test_federated_equals_monolithic_heuristic(tmp_path):
    """Untagged city, METIS-lite heuristic min-cut split."""
    graph = load_dataset("Austin")
    partition = partition_graph(graph, 2, seed=0)
    build_federation(graph, partition, str(tmp_path))
    fed = load_federation(
        os.path.join(str(tmp_path), "federation.json"), graph
    )
    mono = TTLPlanner(graph)
    assert_equivalent(fed, mono, graph, seed=5, count=30)


def test_one_to_many_matches_monolith(tmp_path):
    from repro.core import build_index
    from repro.core.batch import batch_plan
    from repro.query import BatchQuery

    graph = load_dataset("TwinCities")
    partition = region_map_from_names(graph)
    build_federation(graph, partition, str(tmp_path))
    fed = load_federation(
        os.path.join(str(tmp_path), "federation.json"), graph
    )
    index = build_index(graph)
    targets = list(range(graph.n))
    for source in (0, graph.n // 2, graph.n - 1):
        [expected] = batch_plan(
            index,
            [
                BatchQuery(
                    kind="one_to_many",
                    sources=(source,),
                    targets=tuple(targets),
                    t=30000,
                )
            ],
        )
        assert fed.one_to_many(source, targets, 30000) == expected


class TestManifest:
    @pytest.fixture(scope="class")
    def built(self, tmp_path_factory):
        out = str(tmp_path_factory.mktemp("fed"))
        graph = load_dataset("TwinCities")
        partition = region_map_from_names(graph)
        manifest = build_federation(graph, partition, out)
        return out, graph, manifest

    def test_round_trip(self, built):
        out, graph, manifest = built
        loaded = FederationManifest.load(
            os.path.join(out, "federation.json")
        )
        assert loaded.epoch == manifest.epoch
        assert loaded.region_of == manifest.region_of
        assert loaded.border_stops == manifest.border_stops
        loaded.verify_files()
        loaded.check_graph(graph_digest(graph))

    def test_wrong_graph_rejected(self, built):
        out, _, _ = built
        other = load_dataset("Austin")
        with pytest.raises(FederationError, match="different"):
            load_federation(
                os.path.join(out, "federation.json"), other
            )

    def test_tampered_shard_detected(self, built, tmp_path):
        out, graph, _ = built
        # Copy the directory, then flip a byte in one shard.
        import shutil

        clone = str(tmp_path / "clone")
        shutil.copytree(out, clone)
        shard = os.path.join(clone, "region_0.ttl")
        with open(shard, "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            last = fh.read(1)
            fh.seek(-1, os.SEEK_END)
            fh.write(bytes([last[0] ^ 0xFF]))
        loaded = FederationManifest.load(
            os.path.join(clone, "federation.json")
        )
        with pytest.raises(FederationError, match="digest mismatch"):
            loaded.verify_files()

    def test_edited_epoch_detected(self, built, tmp_path):
        out, _, _ = built
        import json

        with open(os.path.join(out, "federation.json")) as fh:
            data = json.load(fh)
        data["epoch"] = "0" * 16
        path = str(tmp_path / "edited.json")
        with open(path, "w") as fh:
            json.dump(data, fh)
        with pytest.raises(FederationError, match="epoch mismatch"):
            FederationManifest.load(path)

    def test_not_a_manifest_rejected(self, tmp_path):
        import json

        path = str(tmp_path / "nope.json")
        with open(path, "w") as fh:
            json.dump({"magic": "NOPE"}, fh)
        with pytest.raises(FederationError, match="magic"):
            FederationManifest.load(path)

    def test_unknown_region_subset_rejected(self, built):
        out, graph, _ = built
        with pytest.raises(FederationError, match="not in the"):
            load_federation(
                os.path.join(out, "federation.json"),
                graph,
                regions=[7],
            )

    def test_single_region_subset_loads(self, built):
        out, graph, _ = built
        fed = load_federation(
            os.path.join(out, "federation.json"), graph, regions=[0]
        )
        assert sorted(fed.shards) == [0]
        # An intra query on the loaded region still answers exactly.
        mono = TTLPlanner(graph)
        stops = fed.manifest.region_entry(0).stops
        u, v = stops[0], stops[-1]
        f = fed.earliest_arrival(u, v, 0)
        m = mono.earliest_arrival(u, v, 0)
        assert (f is None) == (m is None)
        if f is not None:
            assert f.arr == m.arr


class TestCacheEpoch:
    """Answer-cache keys must incorporate the shard/manifest epoch.

    Regression for the federation cache bug: two region shards can
    share the same ``(n, m, labels)`` shape, which used to be the
    whole cache fingerprint — a worker respawned onto a different
    shard (or a rebuilt manifest) could then serve answers cached
    against the old layout.
    """

    def test_epoch_override_changes_fingerprint(self):
        graph = load_dataset("Austin")
        planner = TTLPlanner(graph)
        planner.preprocess()
        plain = PlannerService(planner)
        shard_a = PlannerService(planner, epoch="aaaa/r0")
        shard_b = PlannerService(planner, epoch="aaaa/r1")
        assert plain.cache_epoch() != shard_a.cache_epoch()
        assert shard_a.cache_epoch() != shard_b.cache_epoch()
        # The structural fingerprint is still present underneath.
        assert plain.cache_epoch() in shard_a.cache_epoch()

    def test_manifest_epoch_tracks_region_digests(self, tmp_path):
        graph = load_dataset("TwinCities")
        partition = region_map_from_names(graph)
        manifest = build_federation(
            graph, partition, str(tmp_path / "a")
        )
        # Same graph, same partition, different shard bytes => the
        # epoch (and so every worker cache key) must move.
        import dataclasses

        tampered = dataclasses.replace(
            manifest.regions[0], digest="f" * 64
        )
        other = FederationManifest(
            graph_digest=manifest.graph_digest,
            partition_digest=manifest.partition_digest,
            region_of=list(manifest.region_of),
            regions=[tampered] + list(manifest.regions[1:]),
            border_stops=list(manifest.border_stops),
            border_path=manifest.border_path,
            border_digest=manifest.border_digest,
        )
        assert other.epoch != manifest.epoch
