"""Tests for SketchGen and the refinement fast paths.

The key property: for any query window, folding over
``generate_sketches`` (the faithful Algorithm 1) and the bisection
fast paths must select candidates with identical objective values.
"""

import random

import pytest

from repro.core.build import build_index
from repro.core.sketch import (
    best_eap_sketch,
    best_ldp_sketch,
    best_sdp_sketch,
    generate_sketches,
)
from repro.timeutil import INF, NEG_INF
from tests.conftest import make_random_route_graph


@pytest.fixture(scope="module")
def indexed_graphs():
    rng = random.Random(42)
    out = []
    for _ in range(5):
        graph = make_random_route_graph(rng, 10, 6)
        out.append((graph, build_index(graph)))
    return out


def fold_eap(index, u, v, t):
    best = None
    for sketch in generate_sketches(index, u, v, t, INF):
        if best is None or sketch.arr < best.arr:
            best = sketch
    return best


def fold_ldp(index, u, v, t_end):
    best = None
    for sketch in generate_sketches(index, u, v, NEG_INF, t_end):
        if best is None or sketch.dep > best.dep:
            best = sketch
    return best


def fold_sdp(index, u, v, t, t_end):
    best = None
    for sketch in generate_sketches(index, u, v, t, t_end):
        if best is None or sketch.duration < best.duration:
            best = sketch
    return best


class TestSelectorsMatchSketchGen:
    def test_eap(self, indexed_graphs):
        rng = random.Random(1)
        for graph, index in indexed_graphs:
            for _ in range(60):
                u, v = rng.randrange(graph.n), rng.randrange(graph.n)
                if u == v:
                    continue
                t = rng.randrange(0, 260)
                ref = fold_eap(index, u, v, t)
                got = best_eap_sketch(index, u, v, t)
                assert (ref is None) == (got is None)
                if ref is not None:
                    assert got.arr == ref.arr
                    assert got.dep >= t

    def test_ldp(self, indexed_graphs):
        rng = random.Random(2)
        for graph, index in indexed_graphs:
            for _ in range(60):
                u, v = rng.randrange(graph.n), rng.randrange(graph.n)
                if u == v:
                    continue
                t_end = rng.randrange(0, 260)
                ref = fold_ldp(index, u, v, t_end)
                got = best_ldp_sketch(index, u, v, t_end)
                assert (ref is None) == (got is None)
                if ref is not None:
                    assert got.dep == ref.dep
                    assert got.arr <= t_end

    def test_sdp(self, indexed_graphs):
        rng = random.Random(3)
        for graph, index in indexed_graphs:
            for _ in range(60):
                u, v = rng.randrange(graph.n), rng.randrange(graph.n)
                if u == v:
                    continue
                t = rng.randrange(0, 230)
                t_end = t + rng.randrange(1, 260)
                ref = fold_sdp(index, u, v, t, t_end)
                got = best_sdp_sketch(index, u, v, t, t_end)
                assert (ref is None) == (got is None)
                if ref is not None:
                    assert got.duration == ref.duration
                    assert got.dep >= t and got.arr <= t_end


class TestSketchShape:
    def test_sketch_segments_consistent(self, indexed_graphs):
        graph, index = indexed_graphs[0]
        rng = random.Random(4)
        for _ in range(80):
            u, v = rng.randrange(graph.n), rng.randrange(graph.n)
            if u == v:
                continue
            for sketch in generate_sketches(index, u, v, 0, INF):
                assert sketch.first is not None or sketch.second is not None
                if sketch.first is not None and sketch.second is not None:
                    # Two segments chain at the shared hub.
                    assert sketch.first.dst == sketch.second.src
                    assert sketch.second.dep >= sketch.first.arr
                    assert sketch.dep == sketch.first.dep
                    assert sketch.arr == sketch.second.arr
                elif sketch.first is not None:
                    assert (sketch.first.src, sketch.first.dst) == (u, v)
                else:
                    assert (sketch.second.src, sketch.second.dst) == (u, v)

    def test_window_respected(self, indexed_graphs):
        graph, index = indexed_graphs[1]
        rng = random.Random(5)
        for _ in range(60):
            u, v = rng.randrange(graph.n), rng.randrange(graph.n)
            if u == v:
                continue
            t = rng.randrange(0, 200)
            t_end = t + rng.randrange(1, 150)
            for sketch in generate_sketches(index, u, v, t, t_end):
                assert sketch.dep >= t
                assert sketch.arr <= t_end

    def test_no_dominated_pair_sketches_within_hub(self, indexed_graphs):
        graph, index = indexed_graphs[2]
        rng = random.Random(6)
        for _ in range(40):
            u, v = rng.randrange(graph.n), rng.randrange(graph.n)
            if u == v:
                continue
            sketches = list(generate_sketches(index, u, v, 0, INF))
            by_hub = {}
            for sketch in sketches:
                if sketch.first is not None and sketch.second is not None:
                    by_hub.setdefault(sketch.first.dst, []).append(sketch)
            for hub_sketches in by_hub.values():
                for a in hub_sketches:
                    for b in hub_sketches:
                        if a is b:
                            continue
                        dominates = (
                            a.dep >= b.dep
                            and a.arr <= b.arr
                            and (a.dep > b.dep or a.arr < b.arr)
                        )
                        assert not dominates or not (
                            b.dep >= a.dep and b.arr <= a.arr
                        )
                        # Strict domination within a hub must not occur.
                        assert not dominates
