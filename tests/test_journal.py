"""Durable live-event journal: framing, recovery, fan-out, drain.

Unit layers mirror ``test_mmap_store.py``'s corruption discipline —
every way the journal bytes can rot must surface as a clean stop at
the last good frame (or a :class:`SerializationError` for a destroyed
header), never as a half-applied record.  The end-to-end class runs
the real thing: a live prefork cluster whose workers tail the
supervisor's journal, survive SIGKILL chaos mid-replay, and drain on
SIGTERM without cutting an accepted request.
"""

import json
import os
import random
import struct
import threading
import time
import urllib.error
import urllib.request
import zlib

import pytest

from repro.core import build_index
from repro.errors import SerializationError
from repro.live import LiveOverlayEngine
from repro.resilience import FaultPlan, FaultRule, ResilienceConfig
from repro.serving import (
    JournalFollower,
    LiveJournal,
    ServingSupervisor,
    compact_records,
    scan_frames,
)
from repro.serving.journal import MAGIC, _FRAME, apply_record
from tests.conftest import make_random_route_graph


def get(port, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=10
    ) as response:
        return response.status, json.loads(response.read())


def post(port, path, body):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


def delay_event(trip_id, delay=60, expires_at=None):
    body = {"kind": "delay", "trip_id": trip_id, "delay": delay}
    if expires_at is not None:
        body["expires_at"] = expires_at
    return body


# ----------------------------------------------------------------------
# LiveJournal: append, recover, compact
# ----------------------------------------------------------------------


class TestLiveJournal:
    def test_append_assigns_sequential_seqs(self, tmp_path):
        journal = LiveJournal(tmp_path / "j.wal")
        assert journal.append({"op": "advance", "now": 10}) == 1
        assert journal.append({"op": "clear_all"}) == 2
        assert journal.seq == 2
        journal.close()

    def test_reopen_recovers_records_and_seq(self, tmp_path):
        path = tmp_path / "j.wal"
        journal = LiveJournal(path)
        journal.append({"op": "advance", "now": 5})
        journal.append({"op": "clear_all"})
        journal.close()

        reopened = LiveJournal(path)
        assert [r["op"] for r in reopened.records] == [
            "advance",
            "clear_all",
        ]
        assert reopened.seq == 2
        # seq keeps counting from the recovered tail.
        assert reopened.append({"op": "advance", "now": 9}) == 3
        reopened.close()

    def test_torn_tail_truncated_on_recovery(self, tmp_path):
        path = tmp_path / "j.wal"
        journal = LiveJournal(path)
        journal.append({"op": "advance", "now": 5})
        journal.close()
        good_size = os.path.getsize(path)
        # A crash mid-append leaves a partial frame.
        with open(path, "ab") as fh:
            fh.write(_FRAME.pack(1000, 12345) + b"partial")

        recovered = LiveJournal(path)
        assert len(recovered.records) == 1
        assert recovered.truncated_bytes == _FRAME.size + len(b"partial")
        assert os.path.getsize(path) == good_size
        # The journal is writable again right where the tear was.
        assert recovered.append({"op": "clear_all"}) == 2
        recovered.close()

    def test_bad_magic_is_a_clean_error(self, tmp_path):
        path = tmp_path / "j.wal"
        path.write_bytes(b"NOTAJRNL" + b"x" * 64)
        with pytest.raises(SerializationError, match="magic"):
            LiveJournal(path)

    def test_rewrite_renumbers_and_survives_reopen(self, tmp_path):
        path = tmp_path / "j.wal"
        journal = LiveJournal(path)
        for now in (5, 10, 15):
            journal.append({"op": "advance", "now": now})
        journal.rewrite([{"op": "advance", "now": 15}])
        assert journal.seq == 1
        journal.close()
        reopened = LiveJournal(path)
        assert reopened.records == [{"op": "advance", "now": 15, "seq": 1}]
        reopened.close()

    def test_corruption_fuzz_never_yields_garbage(self, tmp_path):
        """Rot any single payload byte: the CRC catches it and the scan
        stops at the good prefix — mirroring the mmap store's rule that
        bad bytes produce clean truncation, never a wrong record."""
        path = tmp_path / "j.wal"
        journal = LiveJournal(path)
        for now in (5, 10, 15, 20):
            journal.append({"op": "advance", "now": now})
        journal.close()
        pristine = path.read_bytes()
        clean_records, _ = scan_frames(pristine)

        rng = random.Random(99)
        for _ in range(60):
            position = rng.randrange(len(MAGIC), len(pristine))
            rotted = bytearray(pristine)
            rotted[position] ^= 0xFF
            records, good = scan_frames(bytes(rotted))
            # Whatever survives is a byte-identical prefix of the
            # clean decode — corruption can shorten, never mutate.
            assert records == clean_records[: len(records)]
            assert len(records) < len(clean_records)

    def test_crc_collision_on_garbage_json_stops_scan(self, tmp_path):
        # A frame whose CRC matches but whose payload is not JSON is
        # treated as torn, not a crash.
        payload = b"\x00\xff not json"
        data = MAGIC + _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        records, good = scan_frames(data)
        assert records == []
        assert good == len(MAGIC)


class TestCompactRecords:
    def test_survivors_and_clock(self):
        records = [
            {"op": "apply_event", "seq": 1, "id": 1,
             "event": delay_event(0, expires_at=100)},
            {"op": "apply_event", "seq": 2, "id": 2,
             "event": delay_event(1, expires_at=9000)},
            {"op": "clear", "seq": 3, "id": 1},
            {"op": "advance", "seq": 4, "now": 500},
        ]
        compacted = compact_records(records)
        assert compacted == [
            {"op": "apply_event", "id": 2,
             "event": delay_event(1, expires_at=9000)},
            {"op": "advance", "now": 500},
        ]

    def test_advance_expires_events(self):
        records = [
            {"op": "apply_event", "seq": 1, "id": 7,
             "event": delay_event(0, expires_at=100)},
            {"op": "advance", "seq": 2, "now": 100},
        ]
        assert compact_records(records) == [{"op": "advance", "now": 100}]

    def test_clear_all_then_nothing(self):
        records = [
            {"op": "apply_event", "seq": 1, "id": 1,
             "event": delay_event(0)},
            {"op": "clear_all", "seq": 2},
        ]
        assert compact_records(records) == []

    def test_malformed_records_skipped(self):
        records = [
            {"op": "apply_event", "seq": 1},  # no id/event
            {"op": "apply_event", "seq": 2, "id": 3,
             "event": {"kind": "warp"}},  # unknown kind
            {"op": "advance", "seq": 3, "now": "soon"},  # bad clock
            {"op": "apply_event", "seq": 4, "id": 4,
             "event": delay_event(2)},
        ]
        compacted = compact_records(records)
        assert [r.get("id") for r in compacted] == [4]

    def test_event_ids_preserved_through_compaction(self, tmp_path):
        """Replaying a compacted journal must register the surviving
        events under their *original* ids, so a later clear-by-id keeps
        meaning the same disruption in every process."""
        graph = make_random_route_graph(random.Random(7), 8, 4)
        trip = sorted(graph.trips)[0]
        records = compact_records([
            {"op": "apply_event", "seq": 1, "id": 1,
             "event": delay_event(trip, expires_at=50)},
            {"op": "advance", "seq": 2, "now": 60},  # expires id 1
            {"op": "apply_event", "seq": 3, "id": 5,
             "event": dict(delay_event(trip), apply_at=60)},
        ])
        engine = LiveOverlayEngine(graph)
        engine.preprocess()
        for record in records:
            apply_record(engine, record)
        assert [eid for eid, _ in engine.events()] == [5]
        assert engine.now == 60


# ----------------------------------------------------------------------
# JournalFollower
# ----------------------------------------------------------------------


class TestJournalFollower:
    def _follow(self, path, poll=0.01):
        applied = []
        follower = JournalFollower(path, applied.append, poll_interval_s=poll)
        return follower, applied

    def test_replays_then_tails(self, tmp_path):
        path = tmp_path / "j.wal"
        journal = LiveJournal(path)
        journal.append({"op": "advance", "now": 5})
        journal.append({"op": "clear_all"})

        follower, applied = self._follow(path)
        follower.start()
        assert follower.caught_up.wait(5)
        assert [r["op"] for r in applied] == ["advance", "clear_all"]
        assert follower.applied_seq == 2

        journal.append({"op": "advance", "now": 50})
        deadline = time.monotonic() + 5
        while follower.applied_seq < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert follower.applied_seq == 3
        assert applied[-1] == {"op": "advance", "now": 50, "seq": 3}
        follower.stop()
        journal.close()

    def test_parks_at_torn_tail_and_resumes(self, tmp_path):
        path = tmp_path / "j.wal"
        journal = LiveJournal(path)
        journal.append({"op": "advance", "now": 5})
        journal.close()
        # Simulate an in-flight append: header promises more bytes
        # than are on disk yet.
        payload = json.dumps(
            {"op": "advance", "now": 9, "seq": 2}, sort_keys=True
        ).encode()
        with open(path, "ab") as fh:
            fh.write(_FRAME.pack(len(payload), zlib.crc32(payload)))
            fh.write(payload[: len(payload) // 2])

        follower, applied = self._follow(path)
        follower.start()
        assert follower.caught_up.wait(5)
        assert follower.applied_seq == 1  # parked before the tear

        # The write completes -> the parked frame applies on next poll.
        with open(path, "ab") as fh:
            fh.write(payload[len(payload) // 2:])
        deadline = time.monotonic() + 5
        while follower.applied_seq < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert follower.applied_seq == 2
        assert len(applied) == 2
        follower.stop()

    def test_wait_for_gates_replay(self, tmp_path):
        path = tmp_path / "j.wal"
        journal = LiveJournal(path)
        journal.append({"op": "advance", "now": 5})
        journal.close()
        gate = threading.Event()
        applied = []
        follower = JournalFollower(
            path, applied.append, poll_interval_s=0.01, wait_for=gate
        )
        follower.start()
        time.sleep(0.1)
        assert applied == []  # index not warm yet: nothing applied
        assert not follower.caught_up.is_set()
        gate.set()
        assert follower.caught_up.wait(5)
        assert len(applied) == 1
        follower.stop()


class TestReplayGatesReadiness:
    def test_ready_503_until_follower_catches_up(self, tmp_path):
        """A worker replaying the journal must answer 503 on
        ``/healthz/ready`` (and shed queries) until the follower has
        reached the tail — the replay-to-ready contract."""
        from repro.service import PlannerService

        graph = make_random_route_graph(random.Random(11), 8, 4)
        service = PlannerService(LiveOverlayEngine(graph))
        port = service.start(port=0)
        gate = threading.Event()
        follower = JournalFollower(
            os.fspath(tmp_path / "absent.wal"),
            service.apply_journal_record,
            poll_interval_s=0.01,
            wait_for=gate,
        )
        service.journal_follower = follower
        follower.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                get(port, "/healthz/ready")
            assert err.value.code == 503
            body = json.loads(err.value.read())
            assert "journal" in body["error"]

            gate.set()
            assert follower.caught_up.wait(5)
            status, body = get(port, "/healthz/ready")
            assert status == 200 and body["ready"] is True
        finally:
            follower.stop()
            service.stop()


# ----------------------------------------------------------------------
# End-to-end: journalled live prefork cluster
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def live_cluster(request, tmp_path_factory):
    graph = make_random_route_graph(random.Random(23), 12, 7)
    index = build_index(graph)
    journal_path = os.fspath(
        tmp_path_factory.mktemp("journal") / "live.wal"
    )
    supervisor = ServingSupervisor(
        lambda: LiveOverlayEngine(graph, index=index),
        workers=2,
        resilience=ResilienceConfig(cache_size=64),
        journal_path=journal_path,
        heartbeat_interval_s=0.1,
        respawn_backoff_s=0.05,
    )
    port = supervisor.start()
    supervisor.wait_ready(timeout_s=30)
    request.addfinalizer(supervisor.stop)
    return graph, supervisor, port


def wait_converged(supervisor, timeout_s=20.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if supervisor.converged():
            return
        time.sleep(0.02)
    rows = supervisor.scoreboard.workers()
    pytest.fail(
        f"fleet never converged on journal seq {supervisor.journal.seq}: "
        f"{[(r['worker'], r['journal_seq']) for r in rows]}"
    )


class TestLiveCluster:
    def test_worker_mutation_409_points_at_coordinator(self, live_cluster):
        graph, supervisor, port = live_cluster
        trip = sorted(graph.trips)[0]
        with pytest.raises(urllib.error.HTTPError) as err:
            post(port, "/live/events", delay_event(trip))
        assert err.value.code == 409
        body = json.loads(err.value.read())
        assert "coordinated" in body["error"]
        assert supervisor.coordinator_url in body["hint"]
        # /v1 surface answers identically.
        with pytest.raises(urllib.error.HTTPError) as err:
            post(port, "/v1/live/clear", {})
        assert err.value.code == 409

    def test_event_fans_out_to_all_workers(self, live_cluster):
        graph, supervisor, port = live_cluster
        trip = sorted(graph.trips)[1]
        status, body = post(
            supervisor.control_port, "/live/events", delay_event(trip)
        )
        assert status == 200
        assert body["seq"] == supervisor.journal.seq
        wait_converged(supervisor)

        reference_generation = supervisor.control_service.live_generation()
        rows = supervisor.scoreboard.workers()
        assert all(
            row["live_generation"] == reference_generation for row in rows
        )
        # Every worker's own healthz agrees (whichever accepts).
        for _ in range(6):
            _, health = get(port, "/healthz")
            assert health["live_generation"] == reference_generation
            assert health["journal"]["role"] == "follower"
            assert health["journal"]["caught_up"] is True

    def test_advance_backwards_400_names_field(self, live_cluster):
        _, supervisor, _ = live_cluster
        control = supervisor.control_port
        post(control, "/live/advance", {"now": 1000})
        wait_converged(supervisor)
        with pytest.raises(urllib.error.HTTPError) as err:
            post(control, "/live/advance", {"now": 10})
        assert err.value.code == 400
        body = json.loads(err.value.read())
        assert body["field"] == "now"
        assert "backwards" in body["error"]
        assert body["hint"]
        # The rejected advance must not have been journalled.
        assert supervisor.journal.records[-1]["op"] != "advance" or (
            supervisor.journal.records[-1]["now"] == 1000
        )

    def test_sigkill_respawn_replays_to_ready(self, live_cluster):
        graph, supervisor, port = live_cluster
        control = supervisor.control_port
        trips = sorted(graph.trips)
        for trip in trips[2:6]:
            post(control, "/live/events", delay_event(trip))
        wait_converged(supervisor)
        target_seq = supervisor.journal.seq
        reference_generation = supervisor.control_service.live_generation()

        old_pid = supervisor.kill_worker(0)
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            pids = supervisor.worker_pids()
            if len(pids) == 2 and pids.get(0) not in (None, old_pid):
                break
            time.sleep(0.05)
        else:
            pytest.fail("worker 0 was not respawned")

        # wait_ready now also demands journal convergence: the respawn
        # replays every record before it counts.
        supervisor.wait_ready(timeout_s=30)
        row = supervisor.scoreboard.row(0)
        assert row["journal_seq"] >= target_seq
        assert row["live_generation"] == reference_generation

    def test_crash_during_replay_recovers(self, live_cluster):
        """Kill a worker, then kill its replacement almost immediately
        (very likely mid-replay).  The third incarnation must still
        replay from the last good frame to the tail and converge —
        replay is idempotent-by-construction because every worker
        starts from a fresh fork with an empty overlay."""
        graph, supervisor, port = live_cluster
        control = supervisor.control_port
        trips = sorted(graph.trips)
        for trip in trips[6:14]:
            post(control, "/live/events", delay_event(trip))
        wait_converged(supervisor)

        old_pid = supervisor.kill_worker(1)
        # Respawn, then kill again as soon as the new pid exists.
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            pids = supervisor.worker_pids()
            if pids.get(1) not in (None, old_pid):
                break
            time.sleep(0.01)
        else:
            pytest.fail("worker 1 was not respawned")
        try:
            supervisor.kill_worker(1)
        except ValueError:
            pass  # it died between the poll and the kill: same outcome

        supervisor.wait_ready(timeout_s=30)
        wait_converged(supervisor)
        assert supervisor.respawns >= 2
        status, _ = get(port, "/v1/eap?from=0&to=3&t=0")
        assert status == 200

    def test_clear_all_fans_out(self, live_cluster):
        _, supervisor, port = live_cluster
        status, body = post(supervisor.control_port, "/live/clear", {})
        assert status == 200
        assert body["seq"] == supervisor.journal.seq
        wait_converged(supervisor)
        _, listing = get(supervisor.control_port, "/live/events")
        assert listing["events"] == []


class TestRestartCompaction:
    def test_restart_compacts_expired_events(self, tmp_path):
        graph = make_random_route_graph(random.Random(29), 10, 5)
        index = build_index(graph)
        journal_path = os.fspath(tmp_path / "live.wal")
        trips = sorted(graph.trips)

        first = ServingSupervisor(
            lambda: LiveOverlayEngine(graph, index=index),
            workers=2,
            journal_path=journal_path,
            heartbeat_interval_s=0.1,
        )
        first.start()
        first.wait_ready(timeout_s=30)
        control = first.control_port
        post(control, "/live/events",
             delay_event(trips[0], expires_at=100))
        post(control, "/live/events",
             delay_event(trips[1], expires_at=10**6))
        post(control, "/live/advance", {"now": 200})  # expires the first
        lifetime_seq = first.journal.seq
        assert lifetime_seq == 3
        first.stop()

        second = ServingSupervisor(
            lambda: LiveOverlayEngine(graph, index=index),
            workers=2,
            journal_path=journal_path,
            heartbeat_interval_s=0.1,
        )
        second.start()
        try:
            second.wait_ready(timeout_s=30)
            # Compacted: one surviving event + the clock, not three
            # lifetime mutations — and the survivor keeps its id.
            ops = [r["op"] for r in second.journal.records]
            assert ops == ["apply_event", "advance"]
            assert second.journal.records[0]["id"] == 2
            assert second.journal.records[1]["now"] == 200
            reference = second.control_service
            assert reference.live_generation() > 0
            _, listing = get(second.control_port, "/live/events")
            assert [e["id"] for e in listing["events"]] == [2]
        finally:
            second.stop()


class TestGracefulDrain:
    def test_drain_completes_inflight_and_exits_zero(self, tmp_path):
        """SIGTERM-drain under load: every request that a worker
        accepted completes (no resets), workers exit 0, the journal is
        durable afterwards.  An injected per-query latency keeps
        requests in flight across the SIGTERM instant."""
        graph = make_random_route_graph(random.Random(31), 10, 5)
        index = build_index(graph)
        plan = FaultPlan(
            rules=[
                FaultRule(
                    site="planner.query", kind="latency", seconds=0.15
                )
            ],
            seed=7,
        )
        journal_path = os.fspath(tmp_path / "drain.wal")
        supervisor = ServingSupervisor(
            lambda: LiveOverlayEngine(graph, index=index),
            workers=2,
            resilience=ResilienceConfig(),
            fault_plan=plan,
            journal_path=journal_path,
            heartbeat_interval_s=0.1,
        )
        port = supervisor.start()
        supervisor.wait_ready(timeout_s=30)
        post(supervisor.control_port, "/live/events",
             delay_event(sorted(graph.trips)[0]))

        results = []
        lock = threading.Lock()

        def fire(i):
            try:
                status, _ = get(
                    port, f"/v1/eap?from={i % graph.n}"
                    f"&to={(i + 3) % graph.n}&t=0"
                )
                outcome = status
            except urllib.error.HTTPError as exc:
                outcome = exc.code
            except (ConnectionError, urllib.error.URLError, OSError) as exc:
                reason = getattr(exc, "reason", exc)
                outcome = (
                    "refused"
                    if isinstance(reason, ConnectionRefusedError)
                    else "reset"
                )
            with lock:
                results.append(outcome)

        threads = [
            threading.Thread(target=fire, args=(i,)) for i in range(16)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.05)  # let the batch get accepted / queued
        clean = supervisor.drain(grace_s=10.0)
        for thread in threads:
            thread.join(timeout=30)

        assert clean, "a worker exited nonzero or needed SIGKILL"
        assert len(results) == 16
        # Accepted requests completed; stragglers were cleanly refused.
        assert "reset" not in results
        assert results.count(200) >= 1
        # The journal survived the drain intact and durable.
        journal = LiveJournal(journal_path)
        assert journal.truncated_bytes == 0
        assert journal.seq >= 1
        journal.close()
