"""Tests for patch-set compilation and the overlay timetable."""

import pytest

from repro.algorithms.temporal_dijkstra import DijkstraPlanner
from repro.datasets.disruptions import (
    cancel_trips,
    delay_trips,
    random_delays,
)
from repro.errors import (
    LiveEventError,
    UnknownStationError,
    UnknownTripError,
)
from repro.live import (
    ExtraTrip,
    OverlayTimetable,
    PatchSet,
    TripCancellation,
    TripDelay,
)


class TestPatchCompile:
    def test_empty_patch(self, line_graph):
        patch = PatchSet.compile(line_graph, [])
        assert patch.is_empty()
        assert patch.added_runs == ()
        assert patch.affected_stations() == frozenset()

    def test_cancellation_removes_whole_trip(self, line_graph):
        trip_id = sorted(line_graph.trips)[0]
        patch = PatchSet.compile(
            line_graph, [TripCancellation(trip_id=trip_id)]
        )
        base = [c for c in line_graph.connections if c.trip == trip_id]
        assert patch.removed == frozenset(base)
        assert patch.added == ()

    def test_cancel_wins_over_delay(self, line_graph):
        trip_id = sorted(line_graph.trips)[0]
        patch = PatchSet.compile(
            line_graph,
            [
                TripDelay(trip_id=trip_id, delay=60),
                TripCancellation(trip_id=trip_id),
            ],
        )
        assert patch.added == ()
        assert len(patch.removed) == len(
            [c for c in line_graph.connections if c.trip == trip_id]
        )

    def test_delays_stack(self, line_graph):
        trip_id = sorted(line_graph.trips)[0]
        stacked = PatchSet.compile(
            line_graph,
            [
                TripDelay(trip_id=trip_id, delay=10),
                TripDelay(trip_id=trip_id, delay=20),
            ],
        )
        once = PatchSet.compile(
            line_graph, [TripDelay(trip_id=trip_id, delay=30)]
        )
        assert stacked.added == once.added

    def test_final_stop_delay_compiles_to_noop(self, line_graph):
        trip_id = sorted(line_graph.trips)[0]
        last = len(line_graph.trips[trip_id].stop_times) - 1
        patch = PatchSet.compile(
            line_graph,
            [TripDelay(trip_id=trip_id, delay=600, from_stop=last)],
        )
        assert patch.is_empty()

    def test_extra_trip_gets_fresh_id(self, line_graph):
        patch = PatchSet.compile(
            line_graph,
            [ExtraTrip(stops=(0, 1), times=((0, 100), (200, 200)))],
        )
        (trip_id,) = patch.extra_trip_ids
        assert trip_id == max(line_graph.trips) + 1
        assert len(patch.added) == 1
        assert len(patch.added_runs) == 1

    def test_extra_trip_with_clashing_id_rejected(self, line_graph):
        existing = sorted(line_graph.trips)[0]
        with pytest.raises(LiveEventError):
            PatchSet.compile(
                line_graph,
                [
                    ExtraTrip(
                        stops=(0, 1),
                        times=((0, 100), (200, 200)),
                        trip_id=existing,
                    )
                ],
            )

    def test_unknown_trip_rejected(self, line_graph):
        with pytest.raises(UnknownTripError):
            PatchSet.compile(line_graph, [TripCancellation(trip_id=999)])

    def test_unknown_station_rejected(self, line_graph):
        with pytest.raises(UnknownStationError):
            PatchSet.compile(
                line_graph,
                [ExtraTrip(stops=(0, 99), times=((0, 0), (5, 5)))],
            )

    def test_runs_follow_trip_legs(self, line_graph):
        trip_id = sorted(line_graph.trips)[0]
        patch = PatchSet.compile(
            line_graph, [TripDelay(trip_id=trip_id, delay=60)]
        )
        assert len(patch.added_runs) == 1
        run = patch.added_runs[0]
        assert [c.trip for c in run] == [trip_id] * len(run)
        assert all(a.v == b.u for a, b in zip(run, run[1:]))

    def test_window_lookups(self, line_graph):
        trip_id = sorted(line_graph.trips)[0]
        patch = PatchSet.compile(
            line_graph, [TripDelay(trip_id=trip_id, delay=60)]
        )
        deps = sorted(c.dep for c in patch.added)
        assert patch.added_departing_in(deps[0], deps[-1]) == patch.added
        assert patch.added_departing_in(deps[-1] + 1, deps[-1] + 2) == ()
        arrs = sorted(c.arr for c in patch.added)
        assert set(patch.added_arriving_by(arrs[-1])) == set(patch.added)
        assert patch.added_arriving_by(arrs[0] - 1) == ()


class TestOverlay:
    def test_unpatched_stations_share_base_lists(self, route_graph):
        trip_id = sorted(route_graph.trips)[0]
        patch = PatchSet.compile(
            route_graph, [TripCancellation(trip_id=trip_id)]
        )
        overlay = OverlayTimetable(route_graph, patch)
        touched = patch.affected_stations()
        assert touched, "test premise: cancellation touches stations"
        for s in range(route_graph.n):
            if s not in touched:
                # Zero-copy: the very same list objects.
                assert overlay.out[s] is route_graph.out[s]
                assert overlay.inc[s] is route_graph.inc[s]

    def test_overlay_equals_rebuilt_graph(self, route_graph, rng):
        delays = random_delays(route_graph, fraction=0.3, seed=7)
        trip_ids = sorted(route_graph.trips)
        cancelled = [t for t in trip_ids if t not in delays][:2]
        events = [TripDelay(trip_id=t, delay=d) for t, d in delays.items()]
        events += [TripCancellation(trip_id=t) for t in cancelled]
        patch = PatchSet.compile(route_graph, events)
        overlay = OverlayTimetable(route_graph, patch)
        rebuilt = cancel_trips(
            delay_trips(route_graph, delays), cancelled
        )
        assert set(overlay.connections) == set(rebuilt.connections)
        assert overlay.m == rebuilt.m

    def test_search_on_overlay_matches_rebuilt(self, route_graph):
        delays = random_delays(route_graph, fraction=0.4, seed=3)
        events = [TripDelay(trip_id=t, delay=d) for t, d in delays.items()]
        patch = PatchSet.compile(route_graph, events)
        overlay = OverlayTimetable(route_graph, patch)
        rebuilt = delay_trips(route_graph, delays)
        on_overlay = DijkstraPlanner(overlay)
        on_rebuilt = DijkstraPlanner(rebuilt)
        for u in range(route_graph.n):
            for v in range(route_graph.n):
                if u == v:
                    continue
                a = on_overlay.earliest_arrival(u, v, 0)
                b = on_rebuilt.earliest_arrival(u, v, 0)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.arr == b.arr

    def test_materialize_validates(self, route_graph):
        delays = random_delays(route_graph, fraction=0.3, seed=11)
        events = [TripDelay(trip_id=t, delay=d) for t, d in delays.items()]
        overlay = OverlayTimetable(
            route_graph, PatchSet.compile(route_graph, events)
        )
        overlay.materialize().validate()

    def test_departure_times_reflect_patch(self, line_graph):
        trip_id = sorted(line_graph.trips)[0]
        conn = next(
            c for c in line_graph.connections if c.trip == trip_id
        )
        patch = PatchSet.compile(
            line_graph, [TripDelay(trip_id=trip_id, delay=7)]
        )
        overlay = OverlayTimetable(line_graph, patch)
        assert conn.dep + 7 in overlay.departure_times(conn.u)
