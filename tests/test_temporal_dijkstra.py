"""Tests for the temporal Dijkstra substrate (the correctness oracle
itself is checked here against exhaustive path enumeration)."""

import itertools
import random

import pytest

from repro.algorithms.temporal_dijkstra import (
    DijkstraPlanner,
    earliest_arrival_path,
    earliest_arrival_search,
    latest_departure_path,
    latest_departure_search,
)
from repro.errors import QueryError
from repro.graph.connection import validate_path
from repro.timeutil import INF, NEG_INF
from tests.conftest import make_random_connection_graph


def enumerate_paths(graph, source, max_len=6):
    """All simple-ish paths (bounded length) from ``source``."""
    paths = [[c] for c in graph.out[source]]
    complete = list(paths)
    for _ in range(max_len - 1):
        extended = []
        for path in paths:
            last = path[-1]
            for c in graph.out[last.v]:
                if c.dep >= last.arr:
                    extended.append(path + [c])
        complete.extend(extended)
        paths = extended
        if not paths:
            break
    return complete


class TestEarliestArrival:
    def test_line_graph_direct(self, line_graph):
        eat, _ = earliest_arrival_search(line_graph, 0, 95)
        assert eat[3] == 130  # local departing 100

    def test_express_wins_when_late(self, line_graph):
        eat, _ = earliest_arrival_search(line_graph, 0, 205)
        # express at 210 arrives 235; local at 300 arrives 330
        assert eat[3] == 235

    def test_unreachable_is_inf(self, line_graph):
        eat, _ = earliest_arrival_search(line_graph, 3, 0)
        assert eat[0] == INF

    def test_source_time(self, line_graph):
        eat, _ = earliest_arrival_search(line_graph, 0, 42)
        assert eat[0] == 42

    def test_path_extraction_valid(self, line_graph):
        path = earliest_arrival_path(line_graph, 0, 3, 95)
        assert path is not None
        validate_path(path)
        assert path[0].u == 0 and path[-1].v == 3
        assert path[-1].arr == 130

    def test_path_none_when_unreachable(self, line_graph):
        assert earliest_arrival_path(line_graph, 3, 0, 0) is None

    def test_allowed_filter_restricts(self, line_graph):
        # Forbid station 1: the local route is cut, only the express
        # remains.
        eat, _ = earliest_arrival_search(
            line_graph, 0, 95, allowed=lambda v: v != 1
        )
        assert eat[3] == 235

    def test_against_exhaustive_enumeration(self, rng):
        for _ in range(10):
            graph = make_random_connection_graph(
                rng, rng.randrange(3, 7), rng.randrange(3, 14)
            )
            for source in range(graph.n):
                t = rng.randrange(0, 150)
                eat, _ = earliest_arrival_search(graph, source, t)
                paths = [
                    p
                    for p in enumerate_paths(graph, source)
                    if p[0].dep >= t
                ]
                for v in range(graph.n):
                    if v == source:
                        continue
                    expected = min(
                        (p[-1].arr for p in paths if p[-1].v == v),
                        default=INF,
                    )
                    assert eat[v] == expected


class TestLatestDeparture:
    def test_line_graph(self, line_graph):
        ldt, _ = latest_departure_search(line_graph, 3, 330)
        assert ldt[0] == 300

    def test_tight_deadline(self, line_graph):
        ldt, _ = latest_departure_search(line_graph, 3, 235)
        assert ldt[0] == 210  # only the express makes it

    def test_unreachable(self, line_graph):
        ldt, _ = latest_departure_search(line_graph, 0, 1000)
        assert ldt[3] == NEG_INF

    def test_path_extraction(self, line_graph):
        path = latest_departure_path(line_graph, 0, 3, 330)
        assert path is not None
        validate_path(path)
        assert path[0].dep == 300

    def test_against_exhaustive_enumeration(self, rng):
        for _ in range(10):
            graph = make_random_connection_graph(
                rng, rng.randrange(3, 7), rng.randrange(3, 14)
            )
            all_paths = {
                source: enumerate_paths(graph, source)
                for source in range(graph.n)
            }
            target = rng.randrange(graph.n)
            t = rng.randrange(50, 250)
            ldt, _ = latest_departure_search(graph, target, t)
            for u in range(graph.n):
                if u == target:
                    continue
                expected = max(
                    (
                        p[0].dep
                        for p in all_paths[u]
                        if p[-1].v == target and p[-1].arr <= t
                    ),
                    default=NEG_INF,
                )
                assert ldt[u] == expected


class TestDijkstraPlanner:
    def test_same_station_queries(self, line_graph):
        planner = DijkstraPlanner(line_graph)
        for method, args in [
            ("earliest_arrival", (1, 1, 50)),
            ("latest_departure", (1, 1, 50)),
            ("shortest_duration", (1, 1, 0, 100)),
        ]:
            journey = getattr(planner, method)(*args)
            assert journey is not None
            assert journey.duration == 0
            assert journey.path == []

    def test_unknown_station_rejected(self, line_graph):
        planner = DijkstraPlanner(line_graph)
        with pytest.raises(QueryError):
            planner.earliest_arrival(0, 99, 0)
        with pytest.raises(QueryError):
            planner.latest_departure(-1, 0, 0)

    def test_empty_window_rejected(self, line_graph):
        planner = DijkstraPlanner(line_graph)
        with pytest.raises(QueryError):
            planner.shortest_duration(0, 3, 100, 50)

    def test_sdp_picks_minimum_duration(self, line_graph):
        planner = DijkstraPlanner(line_graph)
        journey = planner.shortest_duration(0, 3, 0, 400)
        # Express: 25s beats any local run (30s).
        assert journey is not None
        assert journey.duration == 25

    def test_sdp_respects_window(self, line_graph):
        planner = DijkstraPlanner(line_graph)
        journey = planner.shortest_duration(0, 3, 0, 150)
        assert journey is not None
        assert journey.duration == 30
        assert journey.dep >= 0 and journey.arr <= 150

    def test_sdp_infeasible(self, line_graph):
        planner = DijkstraPlanner(line_graph)
        assert planner.shortest_duration(0, 3, 0, 50) is None

    def test_index_bytes_zero(self, line_graph):
        planner = DijkstraPlanner(line_graph)
        planner.preprocess()
        assert planner.index_bytes() == 0


class TestTransferSlack:
    def test_slack_blocks_tight_transfer(self):
        from repro.graph.builders import graph_from_connections

        graph = graph_from_connections(
            [(0, 1, 0, 10), (1, 2, 10, 20), (1, 2, 30, 40)]
        )
        eat, _ = earliest_arrival_search(graph, 0, 0)
        assert eat[2] == 20
        # A 15s slack blocks the tight 10 -> 10 transfer but still
        # allows boarding the 30 -> 40 trip.
        eat, _ = earliest_arrival_search(graph, 0, 0, min_transfer=15)
        assert eat[2] == 40
        # A huge slack makes station 2 unreachable altogether.
        eat, _ = earliest_arrival_search(graph, 0, 0, min_transfer=60)
        assert eat[2] == INF

    def test_same_trip_ignores_slack(self):
        from repro.graph.builders import GraphBuilder

        builder = GraphBuilder()
        builder.add_stations(3)
        route = builder.add_route([0, 1, 2])
        builder.add_trip(route, [(0, 0), (10, 10), (20, 20)])
        graph = builder.build()
        eat, _ = earliest_arrival_search(graph, 0, 0, min_transfer=300)
        assert eat[2] == 20
