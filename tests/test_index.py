"""Tests for the sealed TTL index structure."""

import pytest

from repro.core.build import build_index
from repro.core.index import TTLIndex
from repro.core.label import LabelGroup
from repro.errors import IndexBuildError


class TestLookups:
    def test_every_label_resolvable_by_dep_and_arr(self, route_graph):
        index = build_index(route_graph)
        for v in range(route_graph.n):
            for label in index.in_labels(v):
                entry = index.lookup_by_dep(label.hub, v, label.dep)
                assert entry == (label.dep, label.arr, label.trip, label.pivot)
                entry = index.lookup_by_arr(label.hub, v, label.arr)
                assert entry == (label.dep, label.arr, label.trip, label.pivot)
            for label in index.out_labels(v):
                entry = index.lookup_by_dep(v, label.hub, label.dep)
                assert entry == (label.dep, label.arr, label.trip, label.pivot)

    def test_missing_lookup_returns_none(self, route_graph):
        index = build_index(route_graph)
        assert index.lookup_by_dep(0, 1, -12345) is None
        assert index.lookup_by_arr(0, 1, -12345) is None


class TestStats:
    def test_stats_consistency(self, route_graph):
        index = build_index(route_graph)
        stats = index.stats()
        assert stats.num_labels == index.num_labels
        assert stats.num_in_labels + stats.num_out_labels == stats.num_labels
        assert stats.max_labels_per_node >= 0
        assert stats.avg_labels_per_node == pytest.approx(
            stats.num_labels / route_graph.n
        )

    def test_flat_label_lists_in_rank_order(self, route_graph):
        index = build_index(route_graph)
        for v in range(route_graph.n):
            labels = index.in_labels(v)
            ranks = [index.ranks[label.hub] for label in labels]
            assert ranks == sorted(ranks)


class TestValidation:
    def test_rank_size_mismatch_rejected(self, route_graph):
        with pytest.raises(IndexBuildError):
            TTLIndex(route_graph, [0], [dict()], [dict()])

    def test_duplicate_ranks_rejected(self, route_graph):
        n = route_graph.n
        ranks = list(range(n))
        ranks[1] = ranks[0]  # two nodes share rank 0
        empty = [dict() for _ in range(n)]
        with pytest.raises(IndexBuildError, match="duplicate rank"):
            TTLIndex(route_graph, ranks, empty, [dict() for _ in range(n)])

    def test_out_of_range_rank_rejected(self, route_graph):
        n = route_graph.n
        ranks = list(range(n))
        ranks[0] = n  # outside 0..n-1
        empty = [dict() for _ in range(n)]
        with pytest.raises(IndexBuildError, match="outside"):
            TTLIndex(route_graph, ranks, empty, [dict() for _ in range(n)])

    def test_check_invariants_detects_bad_group_order(self, route_graph):
        index = build_index(route_graph)
        # Corrupt: append an out-of-order group to some node with
        # at least one group.
        for v in range(route_graph.n):
            if index.in_groups[v]:
                bogus = LabelGroup(hub=index.in_groups[v][0].hub, rank=-1)
                index.in_groups[v].append(bogus)
                break
        else:
            pytest.skip("no labels in this index")
        with pytest.raises(AssertionError):
            index.check_invariants()

    def test_check_invariants_detects_broken_pareto(self, route_graph):
        index = build_index(route_graph)
        for v in range(route_graph.n):
            for group in index.in_groups[v]:
                if len(group) >= 2:
                    # Duplicate dep in place: breaks strict dep order.
                    group.deps[1] = group.deps[0]
                    with pytest.raises(AssertionError):
                        index.check_invariants()
                    return
        pytest.skip("no group with two labels in this index")


class TestNodeOfRank:
    def test_inverse_of_ranks(self, route_graph):
        index = build_index(route_graph)
        for node, rank in enumerate(index.ranks):
            assert index.node_of_rank[rank] == node
