"""Unit tests for routes and trips."""

import pytest

from repro.errors import ValidationError
from repro.graph.route import Route, StopTime, Trip, trip_connections


def make_trip(trip_id, route_id, times):
    return Trip(
        trip_id=trip_id,
        route_id=route_id,
        stop_times=tuple(StopTime(a, d) for a, d in times),
    )


@pytest.fixture
def simple_route():
    route = Route(route_id=0, stops=(3, 1, 4))
    route.trips.append(make_trip(0, 0, [(10, 10), (20, 22), (30, 30)]))
    route.trips.append(make_trip(1, 0, [(40, 40), (50, 52), (60, 60)]))
    return route


class TestTripValidation:
    def test_valid(self, simple_route):
        simple_route.validate()

    def test_wrong_stop_count(self):
        trip = make_trip(0, 0, [(10, 10), (20, 20)])
        with pytest.raises(ValidationError, match="stop times"):
            trip.validate(3)

    def test_departure_before_arrival_rejected(self):
        trip = make_trip(0, 0, [(10, 9), (20, 20)])
        with pytest.raises(ValidationError, match="before arriving"):
            trip.validate(2)

    def test_non_increasing_between_stops_rejected(self):
        trip = make_trip(0, 0, [(10, 10), (10, 12)])
        with pytest.raises(ValidationError, match="non-increasing"):
            trip.validate(2)

    def test_departure_and_arrival_properties(self):
        trip = make_trip(0, 0, [(10, 12), (20, 20)])
        assert trip.departure == 12
        assert trip.arrival == 20


class TestRouteValidation:
    def test_short_route_rejected(self):
        with pytest.raises(ValidationError, match=">= 2"):
            Route(route_id=0, stops=(1,)).validate()

    def test_repeated_consecutive_stop_rejected(self):
        with pytest.raises(ValidationError, match="repeated"):
            Route(route_id=0, stops=(1, 1, 2)).validate()

    def test_trip_route_mismatch_rejected(self, simple_route):
        simple_route.trips.append(make_trip(9, 5, [(0, 0), (1, 1), (2, 2)]))
        with pytest.raises(ValidationError, match="claims route"):
            simple_route.validate()


class TestRouteQueries:
    def test_stop_index(self, simple_route):
        assert simple_route.stop_index(3) == 0
        assert simple_route.stop_index(4) == 2

    def test_stop_index_missing(self, simple_route):
        with pytest.raises(ValueError):
            simple_route.stop_index(99)

    def test_visits_in_order(self, simple_route):
        assert simple_route.visits_in_order(3, 4)
        assert simple_route.visits_in_order(3, 1)
        assert not simple_route.visits_in_order(4, 3)
        assert not simple_route.visits_in_order(3, 99)

    def test_timetable_between(self, simple_route):
        table = simple_route.timetable_between(3, 4)
        assert table == [(10, 30, 0), (40, 60, 1)]

    def test_timetable_between_wrong_order(self, simple_route):
        with pytest.raises(ValidationError, match="precede"):
            simple_route.timetable_between(4, 3)

    def test_sort_trips(self, simple_route):
        simple_route.trips.reverse()
        simple_route.sort_trips()
        assert [t.trip_id for t in simple_route.trips] == [0, 1]

    def test_columns_match_timetable(self, simple_route):
        deps, arrs, trips = simple_route.pair_columns(3, 4)
        assert deps == [10, 40]
        assert arrs == [30, 60]
        assert trips == [0, 1]

    def test_columns_cached(self, simple_route):
        first = simple_route.columns()
        assert simple_route.columns() is first

    def test_pair_columns_intermediate(self, simple_route):
        deps, arrs, trips = simple_route.pair_columns(1, 4)
        assert deps == [22, 52]
        assert arrs == [30, 60]


class TestTripConnections:
    def test_expansion(self, simple_route):
        conns = trip_connections(simple_route, simple_route.trips[0])
        assert len(conns) == 2
        assert conns[0].u == 3 and conns[0].v == 1
        assert conns[0].dep == 10 and conns[0].arr == 20
        assert conns[1].dep == 22 and conns[1].arr == 30
        assert all(c.trip == 0 for c in conns)
