"""Tests for the time-expanded-graph baseline (Section 9 category 1)."""

import random

import pytest

from repro.algorithms.temporal_dijkstra import DijkstraPlanner
from repro.baselines.time_expanded import TimeExpandedPlanner
from repro.graph.connection import validate_path
from tests.conftest import make_random_connection_graph, make_random_route_graph


class TestConstruction:
    def test_event_counts(self, line_graph):
        planner = TimeExpandedPlanner(line_graph)
        planner.preprocess()
        # Each station's events = distinct departure + arrival times.
        expected = sum(
            len(
                {c.dep for c in line_graph.out[s]}
                | {c.arr for c in line_graph.inc[s]}
            )
            for s in range(line_graph.n)
        )
        assert planner.num_events == expected

    def test_ride_edges_match_connections(self, line_graph):
        planner = TimeExpandedPlanner(line_graph)
        planner.preprocess()
        assert planner.num_ride_edges == line_graph.m

    def test_index_bytes_positive(self, line_graph):
        planner = TimeExpandedPlanner(line_graph)
        planner.preprocess()
        assert planner.index_bytes() > 0


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", [11, 13])
    def test_all_query_types(self, seed):
        rng = random.Random(seed)
        for trial in range(6):
            if trial % 2:
                graph = make_random_route_graph(rng, 9, 5)
            else:
                graph = make_random_connection_graph(
                    rng, rng.randrange(4, 10), rng.randrange(5, 45)
                )
            oracle = DijkstraPlanner(graph)
            expanded = TimeExpandedPlanner(graph)
            for _ in range(25):
                u, v = rng.randrange(graph.n), rng.randrange(graph.n)
                if u == v:
                    continue
                t = rng.randrange(0, 240)
                t2 = t + rng.randrange(1, 250)

                a = oracle.earliest_arrival(u, v, t)
                b = expanded.earliest_arrival(u, v, t)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.arr == b.arr
                    validate_path(b.path)

                a = oracle.latest_departure(u, v, t)
                b = expanded.latest_departure(u, v, t)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.dep == b.dep

                a = oracle.shortest_duration(u, v, t, t2)
                b = expanded.shortest_duration(u, v, t, t2)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.duration == b.duration


class TestDeterministic:
    def test_line_graph(self, line_graph):
        planner = TimeExpandedPlanner(line_graph)
        assert planner.earliest_arrival(0, 3, 95).arr == 130
        assert planner.latest_departure(0, 3, 330).dep == 300
        assert planner.shortest_duration(0, 3, 0, 400).duration == 25

    def test_same_station_and_unreachable(self, line_graph):
        planner = TimeExpandedPlanner(line_graph)
        assert planner.earliest_arrival(2, 2, 7).duration == 0
        assert planner.earliest_arrival(3, 0, 0) is None
        assert planner.latest_departure(3, 0, 10**6) is None
