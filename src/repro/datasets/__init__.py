"""Synthetic timetable datasets.

The paper evaluates on 11 GTFS feeds (Austin ... Sweden) that are not
redistributable/reachable offline, so this subpackage generates
parameterized transit networks with the same structural ingredients —
bus grids, radial metro systems, and country-scale hub-and-spoke rail —
and registers them under the paper's dataset names at laptop scale
(see DESIGN.md, "Substitutions").

* :mod:`repro.datasets.synthetic` — the three generators.
* :mod:`repro.datasets.registry` — the named dataset catalogue.
* :mod:`repro.datasets.queries` — query workload generation
  (uniform-random endpoints and windows, as in Section 10).
"""

from repro.datasets.synthetic import (
    CitySpec,
    CountrySpec,
    MultiRegionSpec,
    generate_city_grid,
    generate_city_radial,
    generate_country,
    generate_multi_region,
)
from repro.datasets.registry import (
    DATASETS,
    DatasetInfo,
    clear_dataset_cache,
    dataset_names,
    load_dataset,
    paper_dataset_names,
)
from repro.datasets.queries import Query, QueryWorkload
from repro.datasets.disruptions import (
    cancel_trips,
    delay_trips,
    random_delays,
)

__all__ = [
    "CitySpec",
    "CountrySpec",
    "MultiRegionSpec",
    "generate_city_grid",
    "generate_city_radial",
    "generate_country",
    "generate_multi_region",
    "DATASETS",
    "DatasetInfo",
    "clear_dataset_cache",
    "dataset_names",
    "load_dataset",
    "paper_dataset_names",
    "Query",
    "QueryWorkload",
    "delay_trips",
    "cancel_trips",
    "random_delays",
]
