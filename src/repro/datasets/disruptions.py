"""Service disruptions: delays and cancellations.

TTL is a *static* index — the paper assumes fixed schedules.  Real
operations see delays, and the honest engineering question for a
deployment is what a disruption costs: these helpers derive a
disrupted graph (whole-trip delays, partial delays from a stop onward,
cancellations) so callers can re-index and compare (see
``examples/disruption_replanning.py``).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Set

from repro.errors import DatasetError, UnknownTripError
from repro.graph.route import Route, StopTime, Trip, trip_connections
from repro.graph.timetable import TimetableGraph


def _rebuild(
    graph: TimetableGraph, routes: Dict[int, Route]
) -> TimetableGraph:
    connections: List = []
    for route in routes.values():
        route.sort_trips()
        for trip in route.trips:
            connections.extend(trip_connections(route, trip))
    return TimetableGraph(
        num_stations=graph.n,
        connections=connections,
        routes=routes,
        station_names=graph.station_names,
    )


def delay_trips(
    graph: TimetableGraph,
    delays: Dict[int, int],
    from_stop_index: Optional[Dict[int, int]] = None,
) -> TimetableGraph:
    """Return a copy of ``graph`` with the given trips delayed.

    Args:
        graph: the original timetable.
        delays: trip id -> delay seconds (non-negative).
        from_stop_index: optional trip id -> stop position; the delay
            applies from that stop onward (an en-route incident).  By
            default the whole trip shifts (a late departure).  A delay
            from the final stop is a no-op: the vehicle has nowhere
            left to go, so no connection changes.

    Zero delays and final-stop delays leave their trips untouched; if
    no trip changes at all, the original graph object is returned.
    """
    for trip_id, delay in delays.items():
        if trip_id not in graph.trips:
            raise UnknownTripError(trip_id)
        if delay < 0:
            raise DatasetError(f"negative delay for trip {trip_id}: {delay}")
    if from_stop_index is not None:
        for trip_id, start in from_stop_index.items():
            if start < 0:
                raise DatasetError(
                    f"negative from_stop for trip {trip_id}: {start}"
                )

    changed = False
    routes: Dict[int, Route] = {}
    for route in graph.routes.values():
        new_trips = []
        for trip in route.trips:
            delay = delays.get(trip.trip_id, 0)
            start = 0
            if from_stop_index is not None:
                start = from_stop_index.get(trip.trip_id, 0)
            if delay == 0 or start >= len(trip.stop_times) - 1:
                # Zero delay, or an incident at (or past) the final
                # stop: no departure is left to slip.
                new_trips.append(trip)
                continue
            changed = True
            stop_times = []
            for i, st in enumerate(trip.stop_times):
                if i < start:
                    stop_times.append(st)
                elif i == start:
                    # The incident happens at this stop: arrival stays,
                    # departure slips.
                    stop_times.append(StopTime(st.arr, st.dep + delay))
                else:
                    stop_times.append(
                        StopTime(st.arr + delay, st.dep + delay)
                    )
            new_trips.append(
                Trip(
                    trip_id=trip.trip_id,
                    route_id=route.route_id,
                    stop_times=tuple(stop_times),
                )
            )
        routes[route.route_id] = Route(
            route_id=route.route_id,
            stops=route.stops,
            trips=new_trips,
            name=route.name,
        )
    if not changed:
        return graph
    return _rebuild(graph, routes)


def cancel_trips(
    graph: TimetableGraph, trip_ids: Iterable[int]
) -> TimetableGraph:
    """Return a copy of ``graph`` without the given trips."""
    cancelled: Set[int] = set(trip_ids)
    for trip_id in cancelled:
        if trip_id not in graph.trips:
            raise UnknownTripError(trip_id)
    routes: Dict[int, Route] = {}
    for route in graph.routes.values():
        kept = [t for t in route.trips if t.trip_id not in cancelled]
        routes[route.route_id] = Route(
            route_id=route.route_id,
            stops=route.stops,
            trips=kept,
            name=route.name,
        )
    return _rebuild(graph, routes)


def random_delays(
    graph: TimetableGraph,
    fraction: float = 0.1,
    max_delay: int = 900,
    seed: int = 0,
) -> Dict[int, int]:
    """Sample a delay scenario: ``fraction`` of trips delayed by a
    uniform 1..max_delay seconds."""
    if not 0.0 <= fraction <= 1.0:
        raise DatasetError(f"fraction out of range: {fraction}")
    if max_delay <= 0:
        raise DatasetError(f"max_delay must be positive: {max_delay}")
    rng = random.Random(seed)
    trip_ids = sorted(graph.trips)
    count = int(round(fraction * len(trip_ids)))
    return {
        trip_id: rng.randint(1, max_delay)
        for trip_id in rng.sample(trip_ids, count)
    }
