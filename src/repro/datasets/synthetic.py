"""Synthetic transit-network generators.

Three generators cover the topologies of the paper's datasets:

* :func:`generate_city_grid` — an American-style bus city (Austin,
  Dallas, Houston...): stations on a jittered grid, straight and
  L-shaped bus routes, moderate headways.
* :func:`generate_city_radial` — a European-style metro city (Berlin,
  Budapest, Madrid...): spoke lines through the centre, a ring line,
  short headways, feeder buses.
* :func:`generate_country` — a country network (Sweden): several
  radial cities plus fast, infrequent intercity rail between their
  centres.
* :func:`generate_multi_region` — a federation workload (TwinCities,
  RheinRuhr): two or more metro cities whose station names carry
  explicit ``/r<i>/`` region tags, joined only by sparse gateway
  expresses so the inter-region cut stays small.

Stations carry planar coordinates; leg travel times derive from
Euclidean distance over a per-mode speed, so timetables are spatially
coherent (transfers and overtaking behave like a real feed, which is
what exercises the dominance logic).  Everything is deterministic
given the spec's seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import DatasetError
from repro.graph.builders import GraphBuilder
from repro.graph.timetable import TimetableGraph
from repro.timeutil import hms

#: metres/second used to convert distances into leg durations.
BUS_SPEED = 7.0
METRO_SPEED = 12.0
RAIL_SPEED = 28.0

#: Default service window (first and last trip departures).
SERVICE_START = hms(6)
SERVICE_END = hms(22)


@dataclass(frozen=True)
class CitySpec:
    """Parameters of a single-city network."""

    name: str
    #: Approximate number of stations (the generator may round).
    stations: int
    #: Number of transit routes (each direction counts separately).
    routes: int
    #: Seconds between consecutive trips of a route.
    headway: int
    #: Grid spacing / ring radius unit in metres.
    spacing: float = 600.0
    seed: int = 0
    service_start: int = SERVICE_START
    service_end: int = SERVICE_END


@dataclass(frozen=True)
class MultiRegionSpec:
    """Parameters of a multi-region network (federation workloads).

    Two or more metro cities whose stations carry explicit ``/r<i>/``
    region tags, joined by *sparse* intercity expresses — the cut
    between regions is a handful of gateway links, so min-cut
    partitioning (or :func:`~repro.federation.partition.region_map_from_names`)
    recovers the intended regions and the border set stays small.
    """

    name: str
    regions: int
    stations_per_region: int
    routes_per_region: int
    #: Seconds between trips of an intra-region route.
    headway: int
    #: Seconds between intercity trips (sparse: much larger).
    intercity_headway: int
    #: Distance between neighbouring region centres, metres.
    region_distance: float = 30000.0
    #: Gateway express lines between each adjacent region pair.
    links_per_pair: int = 2
    seed: int = 0
    service_start: int = SERVICE_START
    service_end: int = SERVICE_END


@dataclass(frozen=True)
class CountrySpec:
    """Parameters of a country-scale network."""

    name: str
    cities: int
    stations_per_city: int
    routes_per_city: int
    city_headway: int
    rail_headway: int
    #: Distance between neighbouring city centres, metres.
    city_distance: float = 40000.0
    seed: int = 0
    service_start: int = SERVICE_START
    service_end: int = SERVICE_END


def _leg_seconds(
    positions: Sequence[Tuple[float, float]],
    a: int,
    b: int,
    speed: float,
) -> int:
    (x1, y1), (x2, y2) = positions[a], positions[b]
    dist = math.hypot(x1 - x2, y1 - y2)
    return max(60, int(round(dist / speed)))


#: Fraction of trips that run slower/faster than the route's nominal
#: schedule (traffic, rolling-stock differences).  Keeps synthetic
#: feeds from being unrealistically regular: some trips overtake, and
#: route timetables stop being perfect Pareto staircases — exactly the
#: irregularity that limits route-based compression on real data.
TRIP_SPEED_JITTER = 0.18

#: Morning and evening rush windows where service runs at half the
#: nominal headway (real feeds are denser at peak; the density swing
#: exercises the dominance logic with clustered departures).
PEAK_WINDOWS = ((hms(7), hms(9)), (hms(16), hms(18)))
PEAK_HEADWAY_FACTOR = 0.5


def _next_headway(t: int, headway: int) -> int:
    """Headway applicable at time ``t`` (denser during rush hours)."""
    for lo, hi in PEAK_WINDOWS:
        if lo <= t < hi:
            return max(60, int(headway * PEAK_HEADWAY_FACTOR))
    return headway


def _add_service(
    builder: GraphBuilder,
    stops: Sequence[int],
    positions: Sequence[Tuple[float, float]],
    speed: float,
    headway: int,
    start: int,
    end: int,
    rng: random.Random,
    dwell: int = 0,
) -> None:
    """Register one route (in the given direction) with regular trips,
    densified inside the peak windows."""
    if len(stops) < 2:
        return
    route_id = builder.add_route(list(stops))
    legs = [
        _leg_seconds(positions, stops[i], stops[i + 1], speed)
        for i in range(len(stops) - 1)
    ]
    offset = rng.randrange(headway)
    t = start + offset
    while t <= end:
        factor = 1.0 + rng.uniform(-TRIP_SPEED_JITTER, TRIP_SPEED_JITTER)
        trip_legs = [max(30, int(round(leg * factor))) for leg in legs]
        builder.add_trip_departures(route_id, t, trip_legs, dwell=dwell)
        t += _next_headway(t, headway)


def generate_city_grid(
    spec: CitySpec, seed: Optional[int] = None
) -> TimetableGraph:
    """A grid bus city.

    Stations sit on a ``w x h`` jittered grid; each route follows a
    straight row/column or an L-shaped corridor, in both directions.
    ``seed`` overrides ``spec.seed``; the same effective seed always
    yields the identical timetable.
    """
    rng = random.Random(spec.seed if seed is None else seed)
    side = max(2, int(round(math.sqrt(spec.stations))))
    w = side
    h = max(2, (spec.stations + side - 1) // side)

    builder = GraphBuilder()
    positions: List[Tuple[float, float]] = []
    index: List[List[int]] = [[0] * w for _ in range(h)]
    for row in range(h):
        for col in range(w):
            station = builder.add_station(f"{spec.name}/g{row}-{col}")
            jitter_x = rng.uniform(-0.15, 0.15) * spec.spacing
            jitter_y = rng.uniform(-0.15, 0.15) * spec.spacing
            positions.append(
                (col * spec.spacing + jitter_x, row * spec.spacing + jitter_y)
            )
            index[row][col] = station

    def corridor(fixed_row: Optional[int] = None, fixed_col: Optional[int] = None) -> List[int]:
        if fixed_row is not None:
            stops = [index[fixed_row][c] for c in range(w)]
            return stops
        if fixed_col is not None:
            stops = [index[r][fixed_col] for r in range(h)]
            return stops
        if rng.random() < 0.5:
            row = rng.randrange(h)
            lo = rng.randrange(0, max(1, w - 1))
            hi = rng.randrange(lo + 1, w)
            stops = [index[row][c] for c in range(lo, hi + 1)]
        else:
            col = rng.randrange(w)
            lo = rng.randrange(0, max(1, h - 1))
            hi = rng.randrange(lo + 1, h)
            stops = [index[r][col] for r in range(lo, hi + 1)]
        if rng.random() < 0.4 and len(stops) >= 2:
            # L-shape: extend perpendicular from the last stop.
            last = stops[-1]
            row, col = _locate(index, last)
            if rng.random() < 0.5 and row + 1 < h:
                extra = [
                    index[r][col]
                    for r in range(row + 1, min(h, row + 1 + rng.randrange(1, h)))
                ]
            elif row - 1 >= 0:
                extra = [
                    index[r][col]
                    for r in range(row - 1, max(-1, row - 1 - rng.randrange(1, h)), -1)
                ]
            else:
                extra = []
            stops.extend(extra)
        return stops

    # Guarantee coverage: full row lines first, then full column lines,
    # then random (possibly L-shaped) corridors for the remainder.
    plans: List[dict] = []
    rows = list(range(h))
    cols = list(range(w))
    rng.shuffle(rows)
    rng.shuffle(cols)
    for k in range(spec.routes):
        if k < len(rows):
            plans.append({"fixed_row": rows[k]})
        elif k - len(rows) < len(cols):
            plans.append({"fixed_col": cols[k - len(rows)]})
        else:
            plans.append({})

    for plan in plans:
        stops = corridor(**plan)
        if len(stops) < 2:
            continue
        _add_service(
            builder,
            stops,
            positions,
            BUS_SPEED,
            spec.headway,
            spec.service_start,
            spec.service_end,
            rng,
        )
        _add_service(
            builder,
            list(reversed(stops)),
            positions,
            BUS_SPEED,
            spec.headway,
            spec.service_start,
            spec.service_end,
            rng,
        )
    graph = builder.build()
    _check_generated(graph, spec.name)
    return graph


def _locate(index: List[List[int]], station: int) -> Tuple[int, int]:
    for r, row in enumerate(index):
        for c, s in enumerate(row):
            if s == station:
                return r, c
    raise DatasetError(f"station {station} not on grid")  # pragma: no cover


def generate_city_radial(
    spec: CitySpec, seed: Optional[int] = None
) -> TimetableGraph:
    """A radial metro city: spokes through the centre plus a ring.

    ``seed`` overrides ``spec.seed``.
    """
    rng = random.Random(spec.seed if seed is None else seed)
    n_spokes = max(3, spec.routes // 2)
    per_spoke = max(2, (spec.stations - 1) // n_spokes)

    builder = GraphBuilder()
    positions: List[Tuple[float, float]] = []
    centre = builder.add_station(f"{spec.name}/centre")
    positions.append((0.0, 0.0))

    spokes: List[List[int]] = []
    for s in range(n_spokes):
        angle = 2 * math.pi * s / n_spokes + rng.uniform(-0.1, 0.1)
        spoke = [centre]
        for k in range(1, per_spoke + 1):
            station = builder.add_station(f"{spec.name}/s{s}-{k}")
            radius = k * spec.spacing * rng.uniform(0.9, 1.1)
            positions.append(
                (radius * math.cos(angle), radius * math.sin(angle))
            )
            spoke.append(station)
        spokes.append(spoke)

    # Diameter lines: pair each spoke with the opposite one, using each
    # spoke in exactly one corridor (served in both directions).
    used = [False] * n_spokes
    for s in range(n_spokes):
        if used[s]:
            continue
        opposite = (s + n_spokes // 2) % n_spokes
        if opposite == s or used[opposite]:
            stops = spokes[s]
            used[s] = True
        else:
            stops = list(reversed(spokes[opposite])) + spokes[s][1:]
            used[s] = used[opposite] = True
        _add_service(
            builder,
            stops,
            positions,
            METRO_SPEED,
            spec.headway,
            spec.service_start,
            spec.service_end,
            rng,
        )
        _add_service(
            builder,
            list(reversed(stops)),
            positions,
            METRO_SPEED,
            spec.headway,
            spec.service_start,
            spec.service_end,
            rng,
        )

    # Ring line over the stations at ring_index on each spoke.
    ring_index = min(per_spoke, 2)
    ring = [spoke[ring_index] for spoke in spokes if len(spoke) > ring_index]
    if len(ring) >= 3:
        ring_stops = ring + [ring[0]]
        # Routes may not repeat stations; split the loop in two arcs.
        half = len(ring) // 2
        for arc in (ring[: half + 1], ring[half:] + [ring[0]]):
            if len(set(arc)) == len(arc) and len(arc) >= 2:
                _add_service(
                    builder,
                    arc,
                    positions,
                    BUS_SPEED,
                    spec.headway * 2,
                    spec.service_start,
                    spec.service_end,
                    rng,
                )
                _add_service(
                    builder,
                    list(reversed(arc)),
                    positions,
                    BUS_SPEED,
                    spec.headway * 2,
                    spec.service_start,
                    spec.service_end,
                    rng,
                )
    graph = builder.build()
    _check_generated(graph, spec.name)
    return graph


def generate_country(
    spec: CountrySpec, seed: Optional[int] = None
) -> TimetableGraph:
    """A country: radial cities chained by fast intercity rail.

    ``seed`` overrides ``spec.seed``.
    """
    rng = random.Random(spec.seed if seed is None else seed)
    builder = GraphBuilder()
    positions: List[Tuple[float, float]] = []
    centres: List[int] = []

    for c in range(spec.cities):
        cx = c * spec.city_distance
        cy = rng.uniform(-0.2, 0.2) * spec.city_distance
        centre = builder.add_station(f"{spec.name}/c{c}/centre")
        positions.append((cx, cy))
        centres.append(centre)
        n_spokes = max(3, spec.routes_per_city)
        per_spoke = max(1, (spec.stations_per_city - 1) // n_spokes)
        spokes: List[List[int]] = []
        for s in range(n_spokes):
            angle = 2 * math.pi * s / n_spokes
            spoke = [centre]
            for k in range(1, per_spoke + 1):
                station = builder.add_station(f"{spec.name}/c{c}/s{s}-{k}")
                radius = k * 700.0
                positions.append(
                    (
                        cx + radius * math.cos(angle),
                        cy + radius * math.sin(angle),
                    )
                )
                spoke.append(station)
            spokes.append(spoke)
        for spoke in spokes:
            if len(spoke) < 2:
                continue
            _add_service(
                builder,
                spoke,
                positions,
                BUS_SPEED,
                spec.city_headway,
                spec.service_start,
                spec.service_end,
                rng,
            )
            _add_service(
                builder,
                list(reversed(spoke)),
                positions,
                BUS_SPEED,
                spec.city_headway,
                spec.service_start,
                spec.service_end,
                rng,
            )

    # Intercity rail along the chain of centres, plus one express
    # skipping every other city when the country is large enough.
    if len(centres) >= 2:
        _add_service(
            builder,
            centres,
            positions,
            RAIL_SPEED,
            spec.rail_headway,
            spec.service_start,
            spec.service_end,
            rng,
            dwell=120,
        )
        _add_service(
            builder,
            list(reversed(centres)),
            positions,
            RAIL_SPEED,
            spec.rail_headway,
            spec.service_start,
            spec.service_end,
            rng,
            dwell=120,
        )
    if len(centres) >= 4:
        express = centres[::2]
        _add_service(
            builder,
            express,
            positions,
            RAIL_SPEED,
            spec.rail_headway * 2,
            spec.service_start,
            spec.service_end,
            rng,
            dwell=120,
        )
        _add_service(
            builder,
            list(reversed(express)),
            positions,
            RAIL_SPEED,
            spec.rail_headway * 2,
            spec.service_start,
            spec.service_end,
            rng,
            dwell=120,
        )
    graph = builder.build()
    _check_generated(graph, spec.name)
    return graph


def generate_multi_region(
    spec: MultiRegionSpec, seed: Optional[int] = None
) -> TimetableGraph:
    """Two or more tagged metro cities with sparse intercity links.

    Each region is a radial city (spokes through its centre plus a
    ring) whose station names carry the region tag
    ``"{name}/r{r}/..."``.  Adjacent regions are joined only by
    ``links_per_pair`` two-stop gateway expresses running at the
    (large) ``intercity_headway`` — so the inter-region cut is a few
    connections, exactly the shape the federation partitioner expects.
    ``seed`` overrides ``spec.seed``; the same effective seed always
    yields the identical timetable.
    """
    if spec.regions < 2:
        raise DatasetError(
            f"multi-region dataset needs >= 2 regions: {spec.regions}"
        )
    rng = random.Random(spec.seed if seed is None else seed)
    builder = GraphBuilder()
    positions: List[Tuple[float, float]] = []
    region_stations: List[List[int]] = []

    for r in range(spec.regions):
        ox = r * spec.region_distance
        oy = rng.uniform(-0.15, 0.15) * spec.region_distance
        centre = builder.add_station(f"{spec.name}/r{r}/centre")
        positions.append((ox, oy))
        stations_r = [centre]

        n_spokes = max(3, spec.routes_per_region)
        per_spoke = max(2, (spec.stations_per_region - 1) // n_spokes)
        spokes: List[List[int]] = []
        for s in range(n_spokes):
            angle = 2 * math.pi * s / n_spokes + rng.uniform(-0.08, 0.08)
            spoke = [centre]
            for k in range(1, per_spoke + 1):
                station = builder.add_station(
                    f"{spec.name}/r{r}/s{s}-{k}"
                )
                radius = k * 650.0 * rng.uniform(0.9, 1.1)
                positions.append(
                    (
                        ox + radius * math.cos(angle),
                        oy + radius * math.sin(angle),
                    )
                )
                spoke.append(station)
                stations_r.append(station)
            spokes.append(spoke)

        # Diameter lines, pairing opposite spokes (as in the radial
        # city generator).
        used = [False] * n_spokes
        for s in range(n_spokes):
            if used[s]:
                continue
            opposite = (s + n_spokes // 2) % n_spokes
            if opposite == s or used[opposite]:
                stops = spokes[s]
                used[s] = True
            else:
                stops = list(reversed(spokes[opposite])) + spokes[s][1:]
                used[s] = used[opposite] = True
            for direction in (stops, list(reversed(stops))):
                _add_service(
                    builder,
                    direction,
                    positions,
                    METRO_SPEED,
                    spec.headway,
                    spec.service_start,
                    spec.service_end,
                    rng,
                )

        # Feeder ring over the second station of each spoke.
        ring_index = min(per_spoke, 2)
        ring = [
            spoke[ring_index]
            for spoke in spokes
            if len(spoke) > ring_index
        ]
        if len(ring) >= 3:
            half = len(ring) // 2
            for arc in (ring[: half + 1], ring[half:] + [ring[0]]):
                if len(set(arc)) == len(arc) and len(arc) >= 2:
                    for direction in (arc, list(reversed(arc))):
                        _add_service(
                            builder,
                            direction,
                            positions,
                            BUS_SPEED,
                            spec.headway * 2,
                            spec.service_start,
                            spec.service_end,
                            rng,
                        )
        region_stations.append(stations_r)

    # Sparse intercity gateways: between adjacent regions, pair the
    # stations nearest the shared boundary and run two-stop expresses
    # at the (large) intercity headway.  These are the only
    # cross-region connections.
    for r in range(spec.regions - 1):
        k = max(1, spec.links_per_pair)
        east = sorted(
            region_stations[r],
            key=lambda s: (-positions[s][0], s),
        )[:k]
        west = sorted(
            region_stations[r + 1],
            key=lambda s: (positions[s][0], s),
        )[:k]
        for i in range(k):
            a = east[i % len(east)]
            b = west[i % len(west)]
            for direction in ([a, b], [b, a]):
                _add_service(
                    builder,
                    direction,
                    positions,
                    RAIL_SPEED,
                    spec.intercity_headway,
                    spec.service_start,
                    spec.service_end,
                    rng,
                    dwell=60,
                )

    graph = builder.build()
    _check_generated(graph, spec.name)
    return graph


def _check_generated(graph: TimetableGraph, name: str) -> None:
    if graph.m == 0:
        raise DatasetError(f"dataset {name!r} generated no connections")
