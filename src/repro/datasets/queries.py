"""Query workloads (Section 10's query sets).

The paper generates, per dataset, uniform-random source/destination
pairs with uniformly distributed starting (EAP), ending (LDP), or
start+end (SDP) timestamps inside the service window.
:class:`QueryWorkload` reproduces that, deterministically per seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.errors import DatasetError
from repro.graph.timetable import TimetableGraph


@dataclass(frozen=True)
class Query:
    """One path query: endpoints and a time window.

    EAP uses ``(source, destination, t_start)``, LDP uses
    ``(source, destination, t_end)``, SDP uses the whole window.
    """

    source: int
    destination: int
    t_start: int
    t_end: int


class QueryWorkload:
    """Deterministic random query sets over a timetable graph.

    Args:
        graph: the timetable graph.
        seed: RNG seed.
        time_window: optional ``(lo, hi)`` clamp for the generated
            timestamps (e.g. the morning peak); defaults to the full
            service window.
    """

    def __init__(
        self,
        graph: TimetableGraph,
        seed: int = 0,
        time_window: "tuple[int, int] | None" = None,
    ) -> None:
        if graph.n < 2:
            raise DatasetError("need at least two stations for queries")
        self.graph = graph
        self.seed = seed
        stats = graph.stats()
        if time_window is None:
            self._lo, self._hi = stats.min_time, stats.max_time
        else:
            lo, hi = time_window
            if lo > hi:
                raise DatasetError(f"empty time window: {time_window}")
            self._lo = max(stats.min_time, lo)
            self._hi = min(stats.max_time, hi)
            if self._lo > self._hi:
                raise DatasetError(
                    "time window does not intersect the service day"
                )

    def generate(self, count: int) -> List[Query]:
        """``count`` queries with uniform endpoints and windows."""
        rng = random.Random(self.seed)
        n = self.graph.n
        queries: List[Query] = []
        for _ in range(count):
            source = rng.randrange(n)
            destination = rng.randrange(n)
            while destination == source:
                destination = rng.randrange(n)
            a = rng.randint(self._lo, self._hi)
            b = rng.randint(self._lo, self._hi)
            if a > b:
                a, b = b, a
            queries.append(Query(source, destination, a, b))
        return queries
