"""The dataset catalogue.

Eleven named datasets mirror the paper's Table 3 line-up: nine cities
plus one metropolis and one country, graded in size.  Two extra
multi-region datasets (TwinCities, RheinRuhr) carry explicit region
tags for federation workloads.  Absolute scale is reduced for
pure-Python index construction (see DESIGN.md); the ``scale`` knob
multiplies station/route counts for larger runs.

Use :func:`load_dataset`; graphs are cached per ``(name, scale)``
within the process because several benchmarks reuse them.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.datasets.synthetic import (
    CitySpec,
    CountrySpec,
    MultiRegionSpec,
    generate_city_grid,
    generate_city_radial,
    generate_country,
    generate_multi_region,
)
from repro.errors import DatasetError
from repro.graph.timetable import TimetableGraph


@dataclass(frozen=True)
class DatasetInfo:
    """One catalogue entry."""

    name: str
    kind: str  # "grid" | "radial" | "country" | "multi"
    stations: int
    routes: int
    headway: int
    seed: int
    #: Country-only extras.
    cities: int = 0
    rail_headway: int = 0

    def generate(
        self, scale: float = 1.0, seed: Optional[int] = None
    ) -> TimetableGraph:
        """Materialize the dataset at the given scale.

        ``seed`` overrides the catalogue seed and is threaded through
        every generator path, so ``generate(scale, seed)`` is fully
        reproducible — the property the build-farm equality tests rely
        on.
        """
        if scale <= 0:
            raise DatasetError(f"scale must be positive: {scale}")
        effective_seed = self.seed if seed is None else seed
        stations = max(4, int(round(self.stations * scale)))
        routes = max(2, int(round(self.routes * scale)))
        if self.kind == "grid":
            return generate_city_grid(
                CitySpec(
                    name=self.name,
                    stations=stations,
                    routes=routes,
                    headway=self.headway,
                    seed=effective_seed,
                )
            )
        if self.kind == "radial":
            return generate_city_radial(
                CitySpec(
                    name=self.name,
                    stations=stations,
                    routes=routes,
                    headway=self.headway,
                    seed=effective_seed,
                )
            )
        if self.kind == "multi":
            regions = max(2, self.cities)
            return generate_multi_region(
                MultiRegionSpec(
                    name=self.name,
                    regions=regions,
                    stations_per_region=max(6, stations // regions),
                    routes_per_region=max(3, routes // regions),
                    headway=self.headway,
                    intercity_headway=self.rail_headway,
                    seed=effective_seed,
                )
            )
        if self.kind == "country":
            cities = max(2, int(round(self.cities * max(1.0, scale))))
            return generate_country(
                CountrySpec(
                    name=self.name,
                    cities=cities,
                    stations_per_city=max(4, stations // cities),
                    routes_per_city=max(3, routes // cities),
                    city_headway=self.headway,
                    rail_headway=self.rail_headway,
                    seed=effective_seed,
                )
            )
        raise DatasetError(f"unknown dataset kind: {self.kind}")


#: The 11 datasets, smallest to largest (paper Table 3 names).
DATASETS: Dict[str, DatasetInfo] = {
    info.name: info
    for info in [
        DatasetInfo("Austin", "grid", 36, 10, 1500, seed=1),
        DatasetInfo("Denver", "grid", 49, 12, 1500, seed=2),
        DatasetInfo("Dallas", "grid", 64, 14, 1800, seed=3),
        DatasetInfo("Houston", "grid", 81, 16, 1800, seed=4),
        DatasetInfo("Toronto", "radial", 49, 10, 1200, seed=5),
        DatasetInfo("Budapest", "radial", 61, 12, 900, seed=6),
        DatasetInfo("Berlin", "radial", 73, 14, 900, seed=7),
        DatasetInfo("Madrid", "radial", 85, 16, 750, seed=8),
        DatasetInfo("Paris", "radial", 97, 18, 600, seed=9),
        DatasetInfo("LosAngeles", "grid", 144, 28, 1350, seed=10),
        DatasetInfo(
            "Sweden",
            "country",
            260,
            56,
            1350,
            seed=11,
            cities=8,
            rail_headway=2700,
        ),
        DatasetInfo(
            "TwinCities",
            "multi",
            72,
            16,
            1200,
            seed=21,
            cities=2,
            rail_headway=2700,
        ),
        DatasetInfo(
            "RheinRuhr",
            "multi",
            108,
            24,
            1050,
            seed=22,
            cities=3,
            rail_headway=2400,
        ),
    ]
}


def dataset_names() -> List[str]:
    """Catalogue names, smallest dataset first."""
    return list(DATASETS)


def paper_dataset_names() -> List[str]:
    """The paper's Table 3 line-up only — excludes the region-tagged
    federation datasets, so paper-table benchmark sweeps are not
    widened by catalogue growth."""
    return [
        name for name, info in DATASETS.items() if info.kind != "multi"
    ]


#: Most-recently-used graphs; bounded so a benchmark sweeping many
#: (name, scale, seed) combinations cannot pin every generated graph
#: in memory for the life of the process.
_CACHE: "OrderedDict[Tuple[str, float, Optional[int]], TimetableGraph]" = (
    OrderedDict()
)
_CACHE_CAPACITY = 8


def clear_dataset_cache() -> None:
    """Drop every cached graph (benchmark teardown hook)."""
    _CACHE.clear()


def load_dataset(
    name: str, scale: float = 1.0, seed: Optional[int] = None
) -> TimetableGraph:
    """Materialize a catalogue dataset (process-cached, LRU-bounded).

    ``seed`` overrides the catalogue seed (``None`` keeps it); distinct
    seeds cache separately.  At most ``_CACHE_CAPACITY`` graphs stay
    resident; the least recently used is dropped beyond that.
    """
    info = DATASETS.get(name)
    if info is None:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
        )
    key = (name, scale, seed)
    graph = _CACHE.get(key)
    if graph is None:
        graph = info.generate(scale, seed=seed)
        _CACHE[key] = graph
        while len(_CACHE) > _CACHE_CAPACITY:
            _CACHE.popitem(last=False)
    else:
        _CACHE.move_to_end(key)
    return graph
