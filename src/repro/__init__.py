"""repro — Timetable Labelling (TTL) for public-transportation route
planning.

A from-scratch Python reproduction of *"Efficient Route Planning on
Public Transportation Networks: A Labelling Approach"* (SIGMOD 2015):
the TTL / C-TTL indices, the CSA and CHT baselines, temporal Dijkstra,
synthetic city/country timetable generators, and the full benchmark
harness for the paper's tables and figures.

Quickstart::

    from repro import GraphBuilder, TTLPlanner, hms

    builder = GraphBuilder()
    a, b, c = (builder.add_station(x) for x in "abc")
    line = builder.add_route([a, b, c])
    for minute in range(0, 60, 10):
        builder.add_trip_departures(line, hms(8, minute), [300, 300])
    graph = builder.build()

    planner = TTLPlanner(graph)
    journey = planner.earliest_arrival(a, c, hms(8, 5))
    print(journey.describe(graph))
"""

from repro.errors import (
    DatasetError,
    GraphError,
    IndexBuildError,
    QueryError,
    ReconstructionError,
    ReproError,
    SerializationError,
    ValidationError,
)
from repro.timeutil import (
    INF,
    NEG_INF,
    SECONDS_PER_DAY,
    format_duration,
    format_time,
    hms,
    parse_time,
)
from repro.graph import (
    Connection,
    GraphBuilder,
    Route,
    TimetableGraph,
    Trip,
    extend_with_next_day,
    load_graph_csv,
    reversed_graph,
    save_graph_csv,
)
from repro.journey import ConciseLeg, Journey
from repro.planner import RoutePlanner
from repro.query import BatchQuery, QueryRequest, QueryResult
from repro.service import PlannerService
from repro.algorithms import DijkstraPlanner, ParetoProfile
from repro.baselines import CHTPlanner, CSAPlanner, RaptorPlanner
from repro.core import (
    CompressedTTLPlanner,
    GroupView,
    LabelStore,
    TTLIndex,
    TTLPlanner,
    batch_plan,
    build_index,
    build_index_brute_force,
    compress_index,
    degree_order,
    eat_matrix,
    hub_order,
    isochrone,
    load_index,
    one_to_many_eat,
    random_order,
    save_index,
)
from repro.serving import Scoreboard, ServingSupervisor, mapped_planner_factory

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "GraphError",
    "ValidationError",
    "IndexBuildError",
    "ReconstructionError",
    "QueryError",
    "SerializationError",
    "DatasetError",
    # time
    "INF",
    "NEG_INF",
    "SECONDS_PER_DAY",
    "hms",
    "parse_time",
    "format_time",
    "format_duration",
    # graph
    "Connection",
    "Trip",
    "Route",
    "TimetableGraph",
    "GraphBuilder",
    "reversed_graph",
    "extend_with_next_day",
    "load_graph_csv",
    "save_graph_csv",
    # results / planners
    "Journey",
    "ConciseLeg",
    "RoutePlanner",
    "QueryRequest",
    "QueryResult",
    "BatchQuery",
    "PlannerService",
    "DijkstraPlanner",
    "ParetoProfile",
    "CSAPlanner",
    "CHTPlanner",
    "RaptorPlanner",
    # TTL
    "TTLIndex",
    "TTLPlanner",
    "CompressedTTLPlanner",
    "build_index",
    "build_index_brute_force",
    "compress_index",
    "hub_order",
    "degree_order",
    "random_order",
    "save_index",
    "load_index",
    "LabelStore",
    "GroupView",
    # batched queries
    "batch_plan",
    "one_to_many_eat",
    "eat_matrix",
    "isochrone",
    # prefork serving
    "ServingSupervisor",
    "Scoreboard",
    "mapped_planner_factory",
]
