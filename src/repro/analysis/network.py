"""Network reachability and temporal-connectivity reports.

Synthetic or imported feeds can silently contain unreachable stations
or one-way traps; these utilities quantify that before index quality
is blamed:

* :func:`temporal_components` — station partition by *untimed* mutual
  reachability (strongly connected components of the station graph).
* :func:`reachability_report` — sampled temporal reachability: from
  random (station, time) probes, what fraction of stations can still
  be reached that day.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.algorithms.temporal_dijkstra import earliest_arrival_search
from repro.graph.timetable import TimetableGraph
from repro.timeutil import INF


def temporal_components(graph: TimetableGraph) -> List[List[int]]:
    """Strongly connected components of the untimed station digraph,
    largest first (iterative Tarjan)."""
    n = graph.n
    adjacency: List[List[int]] = [[] for _ in range(n)]
    for u in range(n):
        adjacency[u] = sorted({c.v for c in graph.out[u]})

    index_of = [-1] * n
    low = [0] * n
    on_stack = [False] * n
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 0

    for root in range(n):
        if index_of[root] != -1:
            continue
        work = [(root, 0)]
        while work:
            node, edge_pos = work[-1]
            if edge_pos == 0:
                index_of[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            for pos in range(edge_pos, len(adjacency[node])):
                neighbour = adjacency[node][pos]
                if index_of[neighbour] == -1:
                    work[-1] = (node, pos + 1)
                    work.append((neighbour, 0))
                    advanced = True
                    break
                if on_stack[neighbour]:
                    low[node] = min(low[node], index_of[neighbour])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
    components.sort(key=len, reverse=True)
    return components


@dataclass(frozen=True)
class ReachabilityReport:
    """Sampled temporal reachability of a timetable graph."""

    probes: int
    mean_reachable_fraction: float
    min_reachable_fraction: float
    largest_component_fraction: float

    def render(self) -> str:
        return (
            f"temporal reachability over {self.probes} probes: "
            f"mean {self.mean_reachable_fraction:.1%}, "
            f"min {self.min_reachable_fraction:.1%}; "
            f"largest SCC holds "
            f"{self.largest_component_fraction:.1%} of stations"
        )


def reachability_report(
    graph: TimetableGraph, probes: int = 50, seed: int = 0
) -> ReachabilityReport:
    """Sampled fraction of stations reachable from random probes.

    Each probe picks a station and a time in the first 60% of the
    service window (late probes trivially reach nothing).
    """
    if graph.n == 0 or not graph.connections:
        return ReachabilityReport(0, 0.0, 0.0, 0.0)
    rng = random.Random(seed)
    stats = graph.stats()
    horizon = stats.min_time + int(
        0.6 * (stats.max_time - stats.min_time)
    )
    fractions = []
    for _ in range(probes):
        source = rng.randrange(graph.n)
        t = rng.randint(stats.min_time, max(stats.min_time, horizon))
        eat, _ = earliest_arrival_search(graph, source, t)
        reached = sum(1 for value in eat if value < INF)
        fractions.append(reached / graph.n)
    components = temporal_components(graph)
    largest = len(components[0]) / graph.n if components else 0.0
    return ReachabilityReport(
        probes=probes,
        mean_reachable_fraction=sum(fractions) / len(fractions),
        min_reachable_fraction=min(fractions),
        largest_component_fraction=largest,
    )
