"""Analysis utilities for timetable graphs and TTL indices.

Inspection tooling a deployment actually needs when index sizes or
query times surprise: label-distribution statistics and hub coverage
(:mod:`repro.analysis.index_stats`), and network reachability /
temporal connectivity reports (:mod:`repro.analysis.network`).
"""

from repro.analysis.index_stats import (
    HubReport,
    LabelDistribution,
    hub_report,
    label_distribution,
    transfer_histogram,
)
from repro.analysis.compare import (
    ComparisonReport,
    Disagreement,
    compare_planners,
)
from repro.analysis.network import (
    ReachabilityReport,
    reachability_report,
    temporal_components,
)

__all__ = [
    "LabelDistribution",
    "label_distribution",
    "HubReport",
    "hub_report",
    "transfer_histogram",
    "ComparisonReport",
    "Disagreement",
    "compare_planners",
    "ReachabilityReport",
    "reachability_report",
    "temporal_components",
]
