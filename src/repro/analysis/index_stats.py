"""Label-set analysis.

The paper observes (Section 10.1) that TTL query cost tracks the
average label-set size ``l_avg`` and that ``l_avg`` depends on network
topology rather than raw size.  These reports make that inspectable:

* :func:`label_distribution` — per-node label-count statistics plus a
  log-bucket histogram.
* :func:`hub_report` — how concentrated the index is on its top hubs
  (a good node order routes most canonical paths through few hubs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.index import TTLIndex


@dataclass(frozen=True)
class LabelDistribution:
    """Per-node label-count statistics of one index."""

    total_labels: int
    mean: float
    median: float
    p90: float
    maximum: int
    #: (bucket upper bound, node count) pairs; buckets are powers of 2.
    histogram: Tuple[Tuple[int, int], ...]

    def render(self) -> str:
        lines = [
            f"labels total {self.total_labels}, per node: "
            f"mean {self.mean:.1f}, median {self.median:.0f}, "
            f"p90 {self.p90:.0f}, max {self.maximum}",
        ]
        top = max((count for _, count in self.histogram), default=1)
        for bound, count in self.histogram:
            bar = "#" * max(1, round(30 * count / top)) if count else ""
            lines.append(f"  <= {bound:6d}: {count:5d} {bar}")
        return "\n".join(lines)


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return float(ordered[idx])


def label_distribution(index: TTLIndex) -> LabelDistribution:
    """Distribution of per-node label counts (in + out).

    Counts come straight from the sealed
    :class:`~repro.core.store.LabelStore` offset columns (O(1) per
    node, no group materialization), so the report works identically
    on freshly built and ``TTLIDX02``-loaded indexes.
    """
    in_store, out_store = index.in_store, index.out_store
    per_node = [
        in_store.node_label_count(v) + out_store.node_label_count(v)
        for v in range(index.graph.n)
    ]
    total = sum(per_node)
    if not per_node:
        return LabelDistribution(0, 0.0, 0.0, 0.0, 0, ())

    maximum = max(per_node)
    buckets: Dict[int, int] = {}
    for count in per_node:
        bound = 1 if count <= 1 else 2 ** math.ceil(math.log2(count))
        buckets[bound] = buckets.get(bound, 0) + 1
    histogram = tuple(sorted(buckets.items()))
    return LabelDistribution(
        total_labels=total,
        mean=total / len(per_node),
        median=_percentile([float(x) for x in per_node], 0.5),
        p90=_percentile([float(x) for x in per_node], 0.9),
        maximum=maximum,
        histogram=histogram,
    )


@dataclass(frozen=True)
class HubReport:
    """Concentration of labels on the highest-ranked hubs."""

    #: (station, rank, labels referencing it as hub), most-used first.
    top_hubs: Tuple[Tuple[int, int, int], ...]
    #: Fraction of all labels whose hub is in the top 10% of ranks.
    top_decile_share: float

    def render(self, graph=None) -> str:
        name = graph.station_name if graph is not None else (lambda s: f"s{s}")
        lines = [
            f"top-decile hubs carry {self.top_decile_share:.1%} of labels"
        ]
        for station, rank, count in self.top_hubs:
            lines.append(
                f"  rank {rank:4d}  {name(station):24s} {count:7d} labels"
            )
        return "\n".join(lines)


def transfer_histogram(planner, queries) -> Dict[int, int]:
    """Distribution of vehicle changes over a workload's SDP answers.

    ``planner`` is any :class:`~repro.planner.RoutePlanner`;
    unanswerable queries are skipped.  Complements Section 10.1's
    ``n_avg`` discussion with the transfer dimension.
    """
    histogram: Dict[int, int] = {}
    for q in queries:
        journey = planner.shortest_duration(
            q.source, q.destination, q.t_start, q.t_end
        )
        if journey is None or journey.transfers is None:
            continue
        histogram[journey.transfers] = (
            histogram.get(journey.transfers, 0) + 1
        )
    return histogram


def hub_report(index: TTLIndex, top: int = 10) -> HubReport:
    """Label counts per hub, and how concentrated they are.

    Reads the flat ``hubs``/``group_starts`` store columns directly —
    one pass over the group table, no per-node view objects.
    """
    counts: Dict[int, int] = {}
    for store in (index.in_store, index.out_store):
        hubs = store.hubs
        starts = store.group_starts
        for g in range(store.num_groups):
            hub = hubs[g]
            counts[hub] = counts.get(hub, 0) + (starts[g + 1] - starts[g])
    total = sum(counts.values())
    ranked = sorted(
        counts.items(), key=lambda item: (-item[1], index.ranks[item[0]])
    )
    top_hubs = tuple(
        (station, index.ranks[station], count)
        for station, count in ranked[:top]
    )
    n = max(1, index.graph.n)
    decile_cutoff = max(1, n // 10)
    decile = sum(
        count
        for station, count in counts.items()
        if index.ranks[station] < decile_cutoff
    )
    share = decile / total if total else 0.0
    return HubReport(top_hubs=top_hubs, top_decile_share=share)
