"""Cross-planner agreement checking as a user-facing tool.

The methodology this repository uses to trust its own planners —
running every method against a reference on a shared workload and
comparing objective values — is useful to anyone extending the
library (a new planner, a patched pruning rule, an imported feed).
:func:`compare_planners` packages it: it runs EAP/LDP/SDP for each
planner and reports any disagreement with the first (reference)
planner, with enough context to reproduce each one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.datasets.queries import Query
from repro.planner import RoutePlanner


@dataclass(frozen=True)
class Disagreement:
    """One query where a planner diverged from the reference."""

    planner: str
    kind: str
    query: Query
    reference: Optional[int]
    got: Optional[int]

    def __str__(self) -> str:
        return (
            f"{self.planner} {self.kind} "
            f"{self.query.source}->{self.query.destination} "
            f"[{self.query.t_start},{self.query.t_end}]: "
            f"reference={self.reference} got={self.got}"
        )


@dataclass
class ComparisonReport:
    """Outcome of :func:`compare_planners`."""

    reference: str
    queries_checked: int = 0
    disagreements: List[Disagreement] = field(default_factory=list)

    @property
    def agree(self) -> bool:
        return not self.disagreements

    def summary(self) -> str:
        status = "AGREE" if self.agree else "DISAGREE"
        lines = [
            f"planner comparison vs {self.reference}: {status} "
            f"({self.queries_checked} query evaluations, "
            f"{len(self.disagreements)} disagreements)"
        ]
        for item in self.disagreements[:10]:
            lines.append(f"  ! {item}")
        if len(self.disagreements) > 10:
            lines.append(f"  ... and {len(self.disagreements) - 10} more")
        return "\n".join(lines)


def _objective(journey, kind: str) -> Optional[int]:
    if journey is None:
        return None
    if kind == "eap":
        return journey.arr
    if kind == "ldp":
        return journey.dep
    return journey.duration


def compare_planners(
    planners: Sequence[RoutePlanner],
    queries: Sequence[Query],
    kinds: Sequence[str] = ("eap", "ldp", "sdp"),
) -> ComparisonReport:
    """Check that every planner matches the first one on a workload.

    Objective values are compared (arrival for EAP, departure for LDP,
    duration for SDP) — paths may legitimately differ between exact
    methods.
    """
    if not planners:
        raise ValueError("need at least one planner")
    reference = planners[0]
    report = ComparisonReport(reference=reference.name)
    for planner in planners:
        planner.preprocess()
    for q in queries:
        for kind in kinds:
            expected = _run(reference, q, kind)
            for planner in planners[1:]:
                report.queries_checked += 1
                got = _run(planner, q, kind)
                if got != expected:
                    report.disagreements.append(
                        Disagreement(
                            planner=planner.name,
                            kind=kind,
                            query=q,
                            reference=expected,
                            got=got,
                        )
                    )
    return report


def _run(planner: RoutePlanner, q: Query, kind: str) -> Optional[int]:
    if kind == "eap":
        journey = planner.earliest_arrival(q.source, q.destination, q.t_start)
    elif kind == "ldp":
        journey = planner.latest_departure(q.source, q.destination, q.t_end)
    elif kind == "sdp":
        journey = planner.shortest_duration(
            q.source, q.destination, q.t_start, q.t_end
        )
    else:
        raise ValueError(f"unknown query kind: {kind}")
    return _objective(journey, kind)
