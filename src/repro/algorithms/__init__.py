"""Algorithmic substrates shared by the planners.

* :mod:`repro.algorithms.profiles` — Pareto frontiers of
  ``(departure, arrival)`` pairs, the basic object of non-dominated
  path reasoning (Definition 5's dominance constraint).
* :mod:`repro.algorithms.temporal_dijkstra` — the modified Dijkstra of
  Cooke et al. used as (i) the query-time baseline everything is
  measured against and (ii) the correctness oracle in tests.
"""

from repro.algorithms.profiles import ParetoProfile
from repro.algorithms.temporal_dijkstra import (
    DijkstraPlanner,
    earliest_arrival_search,
    earliest_arrival_path,
    latest_departure_search,
    latest_departure_path,
)

__all__ = [
    "ParetoProfile",
    "DijkstraPlanner",
    "earliest_arrival_search",
    "earliest_arrival_path",
    "latest_departure_search",
    "latest_departure_path",
]
