"""Temporal Dijkstra (Cooke et al.'s modified Dijkstra).

The paper's Section 1 baseline: Dijkstra's algorithm adapted to
timetable graphs.  The forward search settles nodes in order of
earliest arrival time (EAT); once a node is settled its EAT is final,
so each node's outgoing connections are scanned exactly once from the
first boardable one — total cost ``O(m log n)``.

The backward search is the time-reversed mirror (latest departure
times), and SDP is answered by sweeping the source's departure times,
which is exact because an optimal shortest-duration path leaves on some
outgoing connection of the source.

:class:`DijkstraPlanner` wraps the searches in the common
:class:`~repro.planner.RoutePlanner` interface; the free functions are
reused by index construction and by tests as the correctness oracle.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.graph.connection import Connection, Path
from repro.graph.timetable import TimetableGraph
from repro.journey import Journey
from repro.planner import RoutePlanner
from repro.resilience.deadline import check_deadline
from repro.timeutil import INF, NEG_INF

#: Heap pops between cooperative deadline checks.  The searches below
#: are the service's slowest code paths (the live engine's fallback in
#: particular), so they must notice an expired request budget and
#: raise DeadlineExceeded instead of finishing under the planner lock.
_DEADLINE_STRIDE = 256


def earliest_arrival_search(
    graph: TimetableGraph,
    source: int,
    t: int,
    target: Optional[int] = None,
    allowed: Optional[Callable[[int], bool]] = None,
    min_transfer: int = 0,
) -> Tuple[List[int], List[Optional[Connection]]]:
    """One-to-all earliest arrival times from ``source`` departing
    no sooner than ``t``.

    Args:
        graph: the timetable graph.
        source: starting station.
        t: earliest allowed departure time.
        target: optional early-termination station.
        allowed: optional node filter; stations for which it returns
            False are never entered (used by rank-restricted searches).
        min_transfer: extra seconds required when changing vehicles
            (0 reproduces the paper's model exactly).

    Returns:
        ``(eat, parent)`` where ``eat[v]`` is the earliest arrival time
        at ``v`` (``INF`` if unreachable) and ``parent[v]`` the
        connection that first achieved it (``None`` for the source).
    """
    n = graph.n
    eat: List[int] = [INF] * n
    parent: List[Optional[Connection]] = [None] * n
    eat[source] = t
    if min_transfer:
        return _earliest_arrival_with_transfer(
            graph, source, t, target, allowed, min_transfer, eat, parent
        )

    settled = [False] * n
    heap: List[Tuple[int, int]] = [(t, source)]
    out = graph.out
    out_deps = graph.out_deps
    from bisect import bisect_left

    pops = 0
    while heap:
        pops += 1
        if not pops % _DEADLINE_STRIDE:
            check_deadline()
        arr_u, u = heapq.heappop(heap)
        if settled[u]:
            continue
        settled[u] = True
        if u == target:
            break
        conns = out[u]
        for i in range(bisect_left(out_deps[u], arr_u), len(conns)):
            c = conns[i]
            v = c.v
            if c.arr < eat[v]:
                if allowed is not None and not allowed(v):
                    continue
                eat[v] = c.arr
                parent[v] = c
                heapq.heappush(heap, (c.arr, v))
    return eat, parent


def _earliest_arrival_with_transfer(
    graph: TimetableGraph,
    source: int,
    t: int,
    target: Optional[int],
    allowed: Optional[Callable[[int], bool]],
    min_transfer: int,
    eat: List[int],
    parent: List[Optional[Connection]],
) -> Tuple[List[int], List[Optional[Connection]]]:
    """Transfer-slack-aware variant (label-correcting).

    With a positive transfer slack the plain node-settled Dijkstra is
    no longer exact (arriving later on the *same* trip can beat
    arriving earlier on a different trip), so we track, per station,
    the best arrival per incoming trip and relax until fixpoint.
    """
    from bisect import bisect_left

    # (arrival, station, trip arrived on) — trip None at the source.
    heap: List[Tuple[int, int, int]] = [(t, source, -1)]
    # Best known arrival at station per arriving trip.
    best_by_trip: List[dict] = [dict() for _ in range(graph.n)]
    best_by_trip[source][-1] = t
    out = graph.out
    out_deps = graph.out_deps

    pops = 0
    while heap:
        pops += 1
        if not pops % _DEADLINE_STRIDE:
            check_deadline()
        arr_u, u, trip = heapq.heappop(heap)
        if arr_u > best_by_trip[u].get(trip, INF):
            continue
        if arr_u < eat[u]:
            eat[u] = arr_u
        conns = out[u]
        start = bisect_left(out_deps[u], arr_u)
        for i in range(start, len(conns)):
            c = conns[i]
            if c.trip != trip and trip != -1 and c.dep < arr_u + min_transfer:
                continue
            v = c.v
            if allowed is not None and not allowed(v):
                continue
            prev = best_by_trip[v].get(c.trip, INF)
            if c.arr < prev:
                best_by_trip[v][c.trip] = c.arr
                if c.arr < eat[v]:
                    parent[v] = c
                heapq.heappush(heap, (c.arr, v, c.trip))
    return eat, parent


def latest_departure_search(
    graph: TimetableGraph,
    destination: int,
    t: int,
    source: Optional[int] = None,
    allowed: Optional[Callable[[int], bool]] = None,
) -> Tuple[List[int], List[Optional[Connection]]]:
    """One-to-all latest departure times reaching ``destination`` no
    later than ``t`` (the "backward version" of Section 5.1).

    Returns:
        ``(ldt, child)`` where ``ldt[v]`` is the latest feasible
        departure from ``v`` (``NEG_INF`` if ``destination`` cannot be
        reached) and ``child[v]`` the first connection of the path that
        achieves it.
    """
    n = graph.n
    ldt: List[int] = [NEG_INF] * n
    child: List[Optional[Connection]] = [None] * n
    ldt[destination] = t
    settled = [False] * n
    heap: List[Tuple[int, int]] = [(-t, destination)]
    inc = graph.inc
    inc_arrs = graph.inc_arrs
    from bisect import bisect_right

    pops = 0
    while heap:
        pops += 1
        if not pops % _DEADLINE_STRIDE:
            check_deadline()
        neg_dep, v = heapq.heappop(heap)
        if settled[v]:
            continue
        settled[v] = True
        if v == source:
            break
        dep_v = -neg_dep
        conns = inc[v]
        for i in range(bisect_right(inc_arrs[v], dep_v)):
            c = conns[i]
            u = c.u
            if c.dep > ldt[u]:
                if allowed is not None and not allowed(u):
                    continue
                ldt[u] = c.dep
                child[u] = c
                heapq.heappush(heap, (-c.dep, u))
    return ldt, child


def extract_forward_path(
    parent: List[Optional[Connection]], source: int, destination: int
) -> Optional[Path]:
    """Rebuild the connection sequence from forward parent pointers."""
    if source == destination:
        return []
    conn = parent[destination]
    if conn is None:
        return None
    path: Path = []
    while conn is not None:
        path.append(conn)
        if conn.u == source:
            break
        conn = parent[conn.u]
    else:  # pragma: no cover - defensive
        return None
    path.reverse()
    return path


def extract_backward_path(
    child: List[Optional[Connection]], source: int, destination: int
) -> Optional[Path]:
    """Rebuild the connection sequence from backward child pointers."""
    if source == destination:
        return []
    conn = child[source]
    if conn is None:
        return None
    path: Path = []
    while conn is not None:
        path.append(conn)
        if conn.v == destination:
            break
        conn = child[conn.v]
    else:  # pragma: no cover - defensive
        return None
    return path


def earliest_arrival_path(
    graph: TimetableGraph, source: int, destination: int, t: int
) -> Optional[Path]:
    """EAP as a connection sequence, or ``None`` when unreachable."""
    eat, parent = earliest_arrival_search(graph, source, t, target=destination)
    if eat[destination] >= INF:
        return None
    return extract_forward_path(parent, source, destination)


def latest_departure_path(
    graph: TimetableGraph, source: int, destination: int, t: int
) -> Optional[Path]:
    """LDP as a connection sequence, or ``None`` when infeasible."""
    ldt, child = latest_departure_search(graph, destination, t, source=source)
    if ldt[source] <= NEG_INF:
        return None
    return extract_backward_path(child, source, destination)


class DijkstraPlanner(RoutePlanner):
    """The no-index baseline: answer every query with a fresh search."""

    name = "Dijkstra"

    def _build(self) -> None:
        # Nothing to precompute; adjacency comes with the graph.
        return

    def index_bytes(self) -> int:
        return 0

    def earliest_arrival(
        self, source: int, destination: int, t: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        path = earliest_arrival_path(self.graph, source, destination, t)
        if path is None:
            return None
        return Journey.from_path(path)

    def latest_departure(
        self, source: int, destination: int, t: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        path = latest_departure_path(self.graph, source, destination, t)
        if path is None:
            return None
        return Journey.from_path(path)

    def shortest_duration(
        self, source: int, destination: int, t: int, t_end: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        self._check_window(t, t_end)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        best_path: Optional[Path] = None
        best_duration = INF
        # One full search per candidate departure: by far the heaviest
        # query in the repo, so check the budget between sweeps too.
        for dep in self.graph.departure_times(source):
            check_deadline()
            if dep < t or dep > t_end:
                continue
            eat, parent = earliest_arrival_search(
                self.graph, source, dep, target=destination
            )
            arr = eat[destination]
            if arr > t_end:
                continue
            path = extract_forward_path(parent, source, destination)
            if path is None:
                continue
            duration = path[-1].arr - path[0].dep
            if duration < best_duration:
                best_duration = duration
                best_path = path
        if best_path is None:
            return None
        return Journey.from_path(best_path)

    def profile(self, source: int, destination: int, t: int, t_end: int):
        """All non-dominated ``(dep, arr)`` journeys in the window, by
        sweeping the source's departure times (Lemma 6's enumeration).

        Expensive but index-free — this is what lets the live engine's
        Dijkstra fallback answer profile queries exactly on a disrupted
        overlay timetable.
        """
        from repro.core.profile_queries import oracle_profile

        self._check_query(source, destination)
        self._check_window(t, t_end)
        if source == destination:
            return [(t, t)]
        return oracle_profile(self.graph, source, destination, t, t_end)
