"""Pareto frontiers of (departure, arrival) pairs.

The dominance constraint of Definition 5 says a path is dominated when
another path departs no earlier *and* arrives no later (strictly better
in at least one coordinate).  The set of non-dominated ``(dep, arr)``
pairs between two stations therefore forms a staircase where both
coordinates increase strictly; :class:`ParetoProfile` maintains exactly
that staircase and answers the three primitive questions every planner
needs:

* ``eat(t)``  — earliest arrival departing no sooner than ``t``;
* ``ldt(t)``  — latest departure arriving no later than ``t``;
* ``best_duration(t, t_end)`` — minimum duration inside a window.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterable, Iterator, List, Optional, Tuple

from repro.timeutil import INF, NEG_INF


class ParetoProfile:
    """A mutable Pareto frontier of ``(dep, arr)`` pairs.

    Invariant: internal ``deps`` and ``arrs`` are parallel arrays, both
    strictly increasing.  Each pair may carry an arbitrary payload
    (used by planners to remember how the pair was achieved).
    """

    __slots__ = ("deps", "arrs", "payloads")

    def __init__(
        self, pairs: Optional[Iterable[Tuple[int, int]]] = None
    ) -> None:
        self.deps: List[int] = []
        self.arrs: List[int] = []
        self.payloads: List[Any] = []
        if pairs is not None:
            for dep, arr in pairs:
                self.add(dep, arr)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, dep: int, arr: int, payload: Any = None) -> bool:
        """Insert ``(dep, arr)`` if it is not (weakly) dominated.

        A pair already on the frontier with the same coordinates counts
        as dominating (ties are not duplicated).  Any existing pairs
        the new one dominates are evicted.

        Returns:
            True when the pair was inserted.
        """
        if arr <= dep and not (dep == arr):
            # Zero-duration pairs are allowed (virtual "already there"),
            # negative ones are programming errors.
            raise ValueError(f"arrival {arr} before departure {dep}")
        deps, arrs = self.deps, self.arrs
        i = bisect_left(deps, dep)
        # Pairs at index >= i depart no earlier; arrs is increasing, so
        # the best arrival in the suffix is arrs[i].
        if i < len(deps) and arrs[i] <= arr:
            return False
        hi = i
        if hi < len(deps) and deps[hi] == dep:
            # Same departure, strictly later arrival: evict it.
            hi += 1
        lo = i
        while lo > 0 and arrs[lo - 1] >= arr:
            lo -= 1
        deps[lo:hi] = [dep]
        arrs[lo:hi] = [arr]
        self.payloads[lo:hi] = [payload]
        return True

    def dominates(self, dep: int, arr: int) -> bool:
        """True when the frontier weakly dominates ``(dep, arr)``."""
        i = bisect_left(self.deps, dep)
        return i < len(self.deps) and self.arrs[i] <= arr

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def eat(self, t: int) -> int:
        """Earliest arrival over pairs departing no sooner than ``t``
        (``INF`` when none exists)."""
        i = bisect_left(self.deps, t)
        if i == len(self.deps):
            return INF
        return self.arrs[i]

    def eat_pair(self, t: int) -> Optional[Tuple[int, int, Any]]:
        """The ``(dep, arr, payload)`` achieving :meth:`eat`, if any."""
        i = bisect_left(self.deps, t)
        if i == len(self.deps):
            return None
        return self.deps[i], self.arrs[i], self.payloads[i]

    def ldt(self, t: int) -> int:
        """Latest departure over pairs arriving no later than ``t``
        (``NEG_INF`` when none exists)."""
        i = bisect_right(self.arrs, t)
        if i == 0:
            return NEG_INF
        return self.deps[i - 1]

    def ldt_pair(self, t: int) -> Optional[Tuple[int, int, Any]]:
        """The ``(dep, arr, payload)`` achieving :meth:`ldt`, if any."""
        i = bisect_right(self.arrs, t)
        if i == 0:
            return None
        return self.deps[i - 1], self.arrs[i - 1], self.payloads[i - 1]

    def best_duration(
        self, t: int, t_end: int
    ) -> Optional[Tuple[int, int, Any]]:
        """Minimum-duration pair with ``dep >= t`` and ``arr <= t_end``.

        Returns ``(dep, arr, payload)`` or ``None``.  Ties prefer the
        earlier departure (matching how SketchGen refinement scans).
        """
        lo = bisect_left(self.deps, t)
        hi = bisect_right(self.arrs, t_end)
        if lo >= hi:
            return None
        best = None
        best_duration = None
        for i in range(lo, hi):
            duration = self.arrs[i] - self.deps[i]
            if best_duration is None or duration < best_duration:
                best_duration = duration
                best = (self.deps[i], self.arrs[i], self.payloads[i])
        return best

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def pairs(self) -> List[Tuple[int, int]]:
        """All frontier pairs, ascending by departure."""
        return list(zip(self.deps, self.arrs))

    def __len__(self) -> int:
        return len(self.deps)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(zip(self.deps, self.arrs))

    def __bool__(self) -> bool:
        return bool(self.deps)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParetoProfile({self.pairs()!r})"
