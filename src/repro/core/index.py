"""The sealed TTL index.

:class:`TTLIndex` is the immutable, queryable product of
:func:`~repro.core.build.build_index`: per-node in/out label sets
grouped by hub and ordered by ``(hub rank, departure)`` — the label
order ``f(l)`` of Section 4.1.  Sealing flattens every label into the
typed columns of :class:`~repro.core.store.LabelStore`; queries touch
the columns through :class:`~repro.core.store.GroupView` slices.

PathUnfold resolves a label's left/right child with two bisections
instead of hash lookups:

* canonical paths between a fixed pair have pairwise distinct
  departure *and* arrival times (ties would violate the Dominance
  Constraint), so an exact-match bisect over the pair's group is
  unambiguous;
* the pair's group lives in ``L_out(src)`` when ``dst`` ranks higher
  and in ``L_in(dst)`` otherwise (Definition 7), and group lists are
  sorted by hub rank, so the group itself is found by bisection too.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.build import BuildStats
from repro.core.label import Label, LabelGroup
from repro.core.store import GroupView, LabelStore
from repro.errors import IndexBuildError
from repro.graph.timetable import TimetableGraph

#: (dep, arr, trip, pivot) — label payload with its pair context implied.
LabelEntry = Tuple[int, int, Optional[int], Optional[int]]


@dataclass(frozen=True)
class IndexStats:
    """Summary statistics of a sealed index (cf. Section 10.1)."""

    num_labels: int
    avg_labels_per_node: float
    max_labels_per_node: int
    num_in_labels: int
    num_out_labels: int


class TTLIndex:
    """Queryable TTL label sets over a timetable graph."""

    def __init__(
        self,
        graph: TimetableGraph,
        ranks: List[int],
        in_groups: List[Dict[int, LabelGroup]],
        out_groups: List[Dict[int, LabelGroup]],
        build_stats: Optional[BuildStats] = None,
    ) -> None:
        self._init_identity(graph, ranks, build_stats)

        #: Flat sealed columns, one store per direction.
        self.in_store: LabelStore = LabelStore.from_groups(
            [
                sorted(groups.values(), key=lambda g: g.rank)
                for groups in in_groups
            ]
        )
        self.out_store: LabelStore = LabelStore.from_groups(
            [
                sorted(groups.values(), key=lambda g: g.rank)
                for groups in out_groups
            ]
        )
        self._materialize_views()

    @classmethod
    def from_stores(
        cls,
        graph: TimetableGraph,
        ranks: List[int],
        in_store: LabelStore,
        out_store: LabelStore,
        build_stats: Optional[BuildStats] = None,
    ) -> "TTLIndex":
        """Adopt already-sealed stores without re-flattening.

        This is the zero-copy load path: a TTLIDX03 file's columns are
        memory-mapped into two :meth:`LabelStore.frombuffer` stores and
        handed straight to the index — no per-label Python objects are
        ever materialized.
        """
        if in_store.n != graph.n or out_store.n != graph.n:
            raise IndexBuildError(
                f"store sized for {in_store.n}/{out_store.n} nodes does "
                f"not match graph with {graph.n} stations"
            )
        index = cls.__new__(cls)
        index._init_identity(graph, ranks, build_stats)
        index.in_store = in_store
        index.out_store = out_store
        index._materialize_views()
        return index

    def _init_identity(
        self,
        graph: TimetableGraph,
        ranks: List[int],
        build_stats: Optional[BuildStats],
    ) -> None:
        if len(ranks) != graph.n:
            raise IndexBuildError("rank array does not match graph size")
        self.graph = graph
        self.ranks = list(ranks)
        n = graph.n
        self.node_of_rank = [-1] * n
        for node, rank in enumerate(self.ranks):
            if not 0 <= rank < n:
                raise IndexBuildError(
                    f"rank {rank} of node {node} outside 0..{n - 1}"
                )
            if self.node_of_rank[rank] != -1:
                raise IndexBuildError(
                    f"duplicate rank {rank}: nodes "
                    f"{self.node_of_rank[rank]} and {node}"
                )
            self.node_of_rank[rank] = node
        self.build_stats = build_stats

    def _materialize_views(self) -> None:
        n = self.graph.n
        #: in_groups[v] / out_groups[u]: label-group views sorted by
        #: hub rank, materialized once at seal time.
        self.in_groups: List[List[GroupView]] = [
            self.in_store.views(v) for v in range(n)
        ]
        self.out_groups: List[List[GroupView]] = [
            self.out_store.views(u) for u in range(n)
        ]

        #: Number of times PathUnfold had to fall back to a search
        #: because a tie-pruned child label was absent (observability).
        self.unfold_fallbacks = 0

    @property
    def mapped(self) -> bool:
        """True when the label columns are memory-mapped (TTLIDX03)."""
        return bool(self.in_store.mapped or self.out_store.mapped)

    # ------------------------------------------------------------------
    # Narrow accessor layer (SketchGen / PathUnfold / batch queries)
    # ------------------------------------------------------------------

    def out_label_groups(self, u: int) -> List[GroupView]:
        """Out-label groups of ``u`` in hub-rank order."""
        return self.out_groups[u]

    def in_label_groups(self, v: int) -> List[GroupView]:
        """In-label groups of ``v`` in hub-rank order."""
        return self.in_groups[v]

    def out_label_count(self, u: int) -> int:
        """``|L_out(u)|`` — O(1) from the store offsets."""
        return self.out_store.node_label_count(u)

    def in_label_count(self, v: int) -> int:
        """``|L_in(v)|`` — O(1) from the store offsets."""
        return self.in_store.node_label_count(v)

    # ------------------------------------------------------------------
    # Child lookups for PathUnfold (bisect, no dicts)
    # ------------------------------------------------------------------

    def _pair_group(self, src: int, dst: int) -> Optional[GroupView]:
        """The group holding canonical paths ``src -> dst``, or ``None``.

        Bisects the pair's node group list by the hub's rank.
        """
        ranks = self.ranks
        if ranks[src] < ranks[dst]:
            groups = self.in_groups[dst]
            hub = src
        else:
            groups = self.out_groups[src]
            hub = dst
        target = ranks[hub]
        lo, hi = 0, len(groups)
        while lo < hi:
            mid = (lo + hi) // 2
            if groups[mid].rank < target:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(groups):
            group = groups[lo]
            if group.hub == hub:
                return group
        return None

    def lookup_by_dep(
        self, src: int, dst: int, dep: int
    ) -> Optional[LabelEntry]:
        """The canonical path ``src -> dst`` departing exactly ``dep``."""
        group = self._pair_group(src, dst)
        if group is None:
            return None
        deps = group.deps
        i = bisect_left(deps, dep)
        if i == len(deps) or deps[i] != dep:
            return None
        return (deps[i], group.arrs[i], group.trips[i], group.pivots[i])

    def lookup_by_arr(
        self, src: int, dst: int, arr: int
    ) -> Optional[LabelEntry]:
        """The canonical path ``src -> dst`` arriving exactly ``arr``."""
        group = self._pair_group(src, dst)
        if group is None:
            return None
        arrs = group.arrs
        i = bisect_left(arrs, arr)
        if i == len(arrs) or arrs[i] != arr:
            return None
        return (group.deps[i], arrs[i], group.trips[i], group.pivots[i])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_labels(self) -> int:
        """Total label count |L| (the paper's index-size measure)."""
        count = 0
        for groups in self.in_groups:
            for group in groups:
                count += len(group)
        for groups in self.out_groups:
            for group in groups:
                count += len(group)
        return count

    def store_bytes(self) -> int:
        """Bytes held by the sealed stores' typed columns."""
        return self.in_store.nbytes() + self.out_store.nbytes()

    def in_labels(self, v: int) -> List[Label]:
        """Flat in-label set of ``v`` in ``f(l)`` order (for tests)."""
        return [
            label for group in self.in_groups[v] for label in group.labels()
        ]

    def out_labels(self, u: int) -> List[Label]:
        """Flat out-label set of ``u`` in ``f(l)`` order (for tests)."""
        return [
            label for group in self.out_groups[u] for label in group.labels()
        ]

    def stats(self) -> IndexStats:
        """Aggregate label statistics."""
        num_in = sum(
            len(g) for groups in self.in_groups for g in groups
        )
        num_out = sum(
            len(g) for groups in self.out_groups for g in groups
        )
        per_node = [
            sum(len(g) for g in self.in_groups[v])
            + sum(len(g) for g in self.out_groups[v])
            for v in range(self.graph.n)
        ]
        n = max(1, self.graph.n)
        return IndexStats(
            num_labels=num_in + num_out,
            avg_labels_per_node=(num_in + num_out) / n,
            max_labels_per_node=max(per_node, default=0),
            num_in_labels=num_in,
            num_out_labels=num_out,
        )

    def check_invariants(self) -> None:
        """Verify structural invariants (tests call this)."""
        for node, groups in enumerate(self.in_groups):
            last_rank = -1
            for group in groups:
                if group.rank <= last_rank:
                    raise AssertionError(
                        f"in-groups of {node} not sorted by hub rank"
                    )
                last_rank = group.rank
                if group.rank >= self.ranks[node]:
                    raise AssertionError(
                        f"in-label of {node} from hub {group.hub} that does "
                        f"not rank higher"
                    )
                group.check_invariants()
        for node, groups in enumerate(self.out_groups):
            last_rank = -1
            for group in groups:
                if group.rank <= last_rank:
                    raise AssertionError(
                        f"out-groups of {node} not sorted by hub rank"
                    )
                last_rank = group.rank
                if group.rank >= self.ranks[node]:
                    raise AssertionError(
                        f"out-label of {node} to hub {group.hub} that does "
                        f"not rank higher"
                    )
                group.check_invariants()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TTLIndex(n={self.graph.n}, labels={self.num_labels})"
        )
