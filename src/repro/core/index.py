"""The sealed TTL index.

:class:`TTLIndex` is the immutable, queryable product of
:func:`~repro.core.build.build_index`: per-node in/out label sets
grouped by hub and ordered by ``(hub rank, departure)`` — the label
order ``f(l)`` of Section 4.1 — plus two global lookup tables that
resolve a label's left/right child in O(1) for PathUnfold:

* ``(src, dst, dep) -> label``: canonical paths between a fixed pair
  have pairwise distinct departure times (ties would violate the
  Dominance Constraint), so the key is unique;
* ``(src, dst, arr) -> label``: likewise unique by arrival.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.build import BuildStats
from repro.core.label import Label, LabelGroup
from repro.errors import IndexBuildError
from repro.graph.timetable import TimetableGraph

#: (dep, arr, trip, pivot) — label payload with its pair context implied.
LabelEntry = Tuple[int, int, Optional[int], Optional[int]]


@dataclass(frozen=True)
class IndexStats:
    """Summary statistics of a sealed index (cf. Section 10.1)."""

    num_labels: int
    avg_labels_per_node: float
    max_labels_per_node: int
    num_in_labels: int
    num_out_labels: int


class TTLIndex:
    """Queryable TTL label sets over a timetable graph."""

    def __init__(
        self,
        graph: TimetableGraph,
        ranks: List[int],
        in_groups: List[Dict[int, LabelGroup]],
        out_groups: List[Dict[int, LabelGroup]],
        build_stats: Optional[BuildStats] = None,
    ) -> None:
        if len(ranks) != graph.n:
            raise IndexBuildError("rank array does not match graph size")
        self.graph = graph
        self.ranks = list(ranks)
        self.node_of_rank = [0] * graph.n
        for node, rank in enumerate(self.ranks):
            self.node_of_rank[rank] = node
        self.build_stats = build_stats

        #: in_groups[v] / out_groups[u]: label groups sorted by hub rank.
        self.in_groups: List[List[LabelGroup]] = [
            sorted(groups.values(), key=lambda g: g.rank)
            for groups in in_groups
        ]
        self.out_groups: List[List[LabelGroup]] = [
            sorted(groups.values(), key=lambda g: g.rank)
            for groups in out_groups
        ]

        self._by_dep: Dict[Tuple[int, int, int], LabelEntry] = {}
        self._by_arr: Dict[Tuple[int, int, int], LabelEntry] = {}
        self._build_lookup()

        #: Number of times PathUnfold had to fall back to a search
        #: because a tie-pruned child label was absent (observability).
        self.unfold_fallbacks = 0

    # ------------------------------------------------------------------
    # Lookup tables for PathUnfold
    # ------------------------------------------------------------------

    def _build_lookup(self) -> None:
        by_dep = self._by_dep
        by_arr = self._by_arr
        for v, groups in enumerate(self.in_groups):
            for group in groups:
                hub = group.hub
                for i in range(len(group)):
                    entry = (
                        group.deps[i],
                        group.arrs[i],
                        group.trips[i],
                        group.pivots[i],
                    )
                    by_dep[(hub, v, group.deps[i])] = entry
                    by_arr[(hub, v, group.arrs[i])] = entry
        for u, groups in enumerate(self.out_groups):
            for group in groups:
                hub = group.hub
                for i in range(len(group)):
                    entry = (
                        group.deps[i],
                        group.arrs[i],
                        group.trips[i],
                        group.pivots[i],
                    )
                    by_dep[(u, hub, group.deps[i])] = entry
                    by_arr[(u, hub, group.arrs[i])] = entry

    def lookup_by_dep(
        self, src: int, dst: int, dep: int
    ) -> Optional[LabelEntry]:
        """The canonical path ``src -> dst`` departing exactly ``dep``."""
        return self._by_dep.get((src, dst, dep))

    def lookup_by_arr(
        self, src: int, dst: int, arr: int
    ) -> Optional[LabelEntry]:
        """The canonical path ``src -> dst`` arriving exactly ``arr``."""
        return self._by_arr.get((src, dst, arr))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_labels(self) -> int:
        """Total label count |L| (the paper's index-size measure)."""
        count = 0
        for groups in self.in_groups:
            for group in groups:
                count += len(group)
        for groups in self.out_groups:
            for group in groups:
                count += len(group)
        return count

    def in_labels(self, v: int) -> List[Label]:
        """Flat in-label set of ``v`` in ``f(l)`` order (for tests)."""
        return [
            label for group in self.in_groups[v] for label in group.labels()
        ]

    def out_labels(self, u: int) -> List[Label]:
        """Flat out-label set of ``u`` in ``f(l)`` order (for tests)."""
        return [
            label for group in self.out_groups[u] for label in group.labels()
        ]

    def stats(self) -> IndexStats:
        """Aggregate label statistics."""
        num_in = sum(
            len(g) for groups in self.in_groups for g in groups
        )
        num_out = sum(
            len(g) for groups in self.out_groups for g in groups
        )
        per_node = [
            sum(len(g) for g in self.in_groups[v])
            + sum(len(g) for g in self.out_groups[v])
            for v in range(self.graph.n)
        ]
        n = max(1, self.graph.n)
        return IndexStats(
            num_labels=num_in + num_out,
            avg_labels_per_node=(num_in + num_out) / n,
            max_labels_per_node=max(per_node, default=0),
            num_in_labels=num_in,
            num_out_labels=num_out,
        )

    def check_invariants(self) -> None:
        """Verify structural invariants (tests call this)."""
        for node, groups in enumerate(self.in_groups):
            last_rank = -1
            for group in groups:
                if group.rank <= last_rank:
                    raise AssertionError(
                        f"in-groups of {node} not sorted by hub rank"
                    )
                last_rank = group.rank
                if group.rank >= self.ranks[node]:
                    raise AssertionError(
                        f"in-label of {node} from hub {group.hub} that does "
                        f"not rank higher"
                    )
                group.check_invariants()
        for node, groups in enumerate(self.out_groups):
            last_rank = -1
            for group in groups:
                if group.rank <= last_rank:
                    raise AssertionError(
                        f"out-groups of {node} not sorted by hub rank"
                    )
                last_rank = group.rank
                if group.rank >= self.ranks[node]:
                    raise AssertionError(
                        f"out-label of {node} to hub {group.hub} that does "
                        f"not rank higher"
                    )
                group.check_invariants()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TTLIndex(n={self.graph.n}, labels={self.num_labels})"
        )
