"""Node ordering (Section 6).

The quality of a TTL index is governed by the strict total order on
nodes: high-ranked nodes become the hubs most canonical paths route
through.  This module provides the paper's orders plus two baselines:

* :func:`hub_order` — **H-Order** (Section 6.2): sample connections,
  build their EAP trees, and greedily pick the node with the largest
  residual coverage (sum of its subtree sizes across the trees).
* :func:`approximation_order` — **A-Order** (Section 6.1): exact greedy
  residual-coverage maximization over *all* non-dominated paths.  Comes
  with an approximation guarantee but ``O(n^2 m)``-ish cost, so it is
  only practical on small networks (the paper likewise omits it on
  large datasets).
* :func:`random_order` — **Rand-Order** baseline (Appendix D.2).
* :func:`degree_order` — order by total temporal degree; a cheap,
  deterministic baseline used in ablations.

All functions return ``ranks`` with ``ranks[station] = rank``; rank 0
is the most important node.
"""

from __future__ import annotations

import hashlib
import heapq
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms.profiles import ParetoProfile
from repro.algorithms.temporal_dijkstra import earliest_arrival_search
from repro.errors import IndexBuildError
from repro.graph.timetable import TimetableGraph
from repro.timeutil import INF


def _ranks_from_sequence(sequence: List[int], n: int) -> List[int]:
    """Turn a node sequence (most important first) into a rank array."""
    if sorted(sequence) != list(range(n)):
        raise IndexBuildError("node order is not a permutation")
    ranks = [0] * n
    for rank, node in enumerate(sequence):
        ranks[node] = rank
    return ranks


def order_digest(ranks: Sequence[int]) -> str:
    """Hex digest of a rank permutation.

    Recorded in build-farm checkpoint manifests: a resumed build must
    run under the exact order the shards were produced with, since the
    chunk partition and every cover-pruning decision depend on it.
    """
    h = hashlib.sha256()
    h.update(len(ranks).to_bytes(8, "little"))
    for rank in ranks:
        h.update(int(rank).to_bytes(8, "little", signed=True))
    return h.hexdigest()


def graph_digest(graph: TimetableGraph) -> str:
    """Hex digest of a timetable graph's connection data.

    Covers the station count and every connection tuple in canonical
    (sorted) order — the inputs the label sweep actually reads — so a
    manifest can reject resuming against a different graph.
    """
    h = hashlib.sha256()
    h.update(graph.n.to_bytes(8, "little"))
    for c in sorted(graph.connections):
        for field in (c.u, c.v, c.dep, c.arr, c.trip):
            h.update(int(field).to_bytes(8, "little", signed=True))
    return h.hexdigest()


def random_order(graph: TimetableGraph, seed: int = 0) -> List[int]:
    """Uniformly random node order (Rand-Order)."""
    rng = random.Random(seed)
    sequence = list(range(graph.n))
    rng.shuffle(sequence)
    return _ranks_from_sequence(sequence, graph.n)


def degree_order(graph: TimetableGraph) -> List[int]:
    """Order by total temporal degree, densest station first."""
    sequence = sorted(
        range(graph.n),
        key=lambda v: (-(graph.out_degree(v) + graph.in_degree(v)), v),
    )
    return _ranks_from_sequence(sequence, graph.n)


def betweenness_order(graph: TimetableGraph) -> List[int]:
    """Order by betweenness centrality of the untimed station digraph.

    An ablation baseline between Rand-Order and H-Order: centrality is
    the intuition behind good hubs, but it ignores the timetable (a
    central station with sparse service makes a poor hub), which is
    exactly what H-Order's EAP-tree sampling captures and this order
    misses.  Requires networkx.
    """
    import networkx as nx

    digraph = nx.DiGraph()
    digraph.add_nodes_from(range(graph.n))
    for u in range(graph.n):
        for v in {c.v for c in graph.out[u]}:
            digraph.add_edge(u, v)
    centrality = nx.betweenness_centrality(digraph)
    degree = [graph.out_degree(v) + graph.in_degree(v) for v in range(graph.n)]
    sequence = sorted(
        range(graph.n),
        key=lambda v: (-centrality[v], -degree[v], v),
    )
    return _ranks_from_sequence(sequence, graph.n)


# ----------------------------------------------------------------------
# H-Order (Section 6.2)
# ----------------------------------------------------------------------


class _EAPTree:
    """One sampled EAP tree with live subtree-coverage bookkeeping."""

    __slots__ = ("parent", "children", "coverage", "alive")

    def __init__(
        self,
        parent: Dict[int, Optional[int]],
        children: Dict[int, List[int]],
        coverage: Dict[int, int],
    ) -> None:
        self.parent = parent
        self.children = children
        self.coverage = coverage
        self.alive = {v for v, c in coverage.items() if c > 0}

    def remove(self, node: int, score: List[int]) -> None:
        """Select ``node``: zero its subtree, shrink its ancestors.

        ``score`` is the global per-station coverage-sum array, kept in
        sync as coverage changes.
        """
        cov = self.coverage.get(node, 0)
        if cov <= 0 or node not in self.alive:
            return
        # Ancestors lose the EAPs that pass through ``node``.
        ancestor = self.parent.get(node)
        while ancestor is not None:
            if self.coverage.get(ancestor, 0) > 0:
                self.coverage[ancestor] -= cov
                score[ancestor] -= cov
            ancestor = self.parent.get(ancestor)
        # The subtree of ``node`` is now fully covered.
        stack = [node]
        while stack:
            x = stack.pop()
            c = self.coverage.get(x, 0)
            if c > 0:
                score[x] -= c
                self.coverage[x] = 0
            self.alive.discard(x)
            stack.extend(self.children.get(x, ()))


def _build_eap_tree(
    graph: TimetableGraph, source: int, t: int
) -> Optional[_EAPTree]:
    """EAP tree from ``source`` departing no sooner than ``t``."""
    eat, parent_conn = earliest_arrival_search(graph, source, t)
    parent: Dict[int, Optional[int]] = {source: None}
    children: Dict[int, List[int]] = {}
    for v in range(graph.n):
        if v == source or eat[v] >= INF:
            continue
        conn = parent_conn[v]
        if conn is None:  # pragma: no cover - defensive
            continue
        parent[v] = conn.u
        children.setdefault(conn.u, []).append(v)
    if len(parent) <= 1:
        return None
    # Subtree sizes bottom-up (iterative DFS post-order).
    coverage: Dict[int, int] = {}
    order: List[int] = []
    stack = [source]
    while stack:
        x = stack.pop()
        order.append(x)
        stack.extend(children.get(x, ()))
    for x in reversed(order):
        coverage[x] = 1 + sum(coverage[c] for c in children.get(x, ()))
    return _EAPTree(parent, children, coverage)


def hub_order(
    graph: TimetableGraph, num_samples: int = 32, seed: int = 0
) -> List[int]:
    """H-Order: the coverage-sampling heuristic of Section 6.2.

    Args:
        graph: the timetable graph.
        num_samples: how many connections to sample; each yields one
            EAP tree.  More samples give a better order at higher
            ordering cost (see the ablation benchmark).
        seed: RNG seed for reproducibility.
    """
    n = graph.n
    if n == 0:
        return []
    rng = random.Random(seed)
    trees: List[_EAPTree] = []
    if graph.connections:
        count = min(num_samples, len(graph.connections))
        for conn in rng.sample(list(graph.connections), count):
            tree = _build_eap_tree(graph, conn.u, conn.dep)
            if tree is not None:
                trees.append(tree)

    score = [0] * n
    for tree in trees:
        for v, c in tree.coverage.items():
            score[v] += c

    # Tie-break / tail order: temporal degree, then id, deterministic.
    degree = [graph.out_degree(v) + graph.in_degree(v) for v in range(n)]

    sequence: List[int] = []
    chosen = [False] * n
    heap: List[Tuple[int, int, int]] = [
        (-score[v], -degree[v], v) for v in range(n)
    ]
    heapq.heapify(heap)
    while heap and len(sequence) < n:
        neg_score, neg_degree, v = heapq.heappop(heap)
        if chosen[v]:
            continue
        if -neg_score != score[v]:
            heapq.heappush(heap, (-score[v], -degree[v], v))
            continue
        chosen[v] = True
        sequence.append(v)
        if score[v] > 0:
            for tree in trees:
                tree.remove(v, score)
    for v in range(n):  # pragma: no cover - heap always drains
        if not chosen[v]:
            sequence.append(v)
    return _ranks_from_sequence(sequence, n)


# ----------------------------------------------------------------------
# A-Order (Section 6.1)
# ----------------------------------------------------------------------


def _all_pairs_profiles(
    graph: TimetableGraph,
) -> Dict[Tuple[int, int], ParetoProfile]:
    """Non-dominated (dep, arr) profiles for every ordered station pair.

    Runs one temporal Dijkstra per (source, distinct departure time),
    which is exactly the enumeration Lemma 6 licenses.
    """
    profiles: Dict[Tuple[int, int], ParetoProfile] = {}
    for u in range(graph.n):
        for t in reversed(graph.departure_times(u)):
            eat, _ = earliest_arrival_search(graph, u, t)
            for v in range(graph.n):
                if v == u or eat[v] >= INF:
                    continue
                profile = profiles.get((u, v))
                if profile is None:
                    profile = profiles[(u, v)] = ParetoProfile()
                profile.add(t, eat[v])
    return profiles


def approximation_order(
    graph: TimetableGraph, max_stations: int = 120
) -> List[int]:
    """A-Order: greedy residual-coverage maximization (Section 6.1).

    Enumerates every non-dominated path tuple ``(u, w, dep, arr)``,
    computes for each the bitmask of covering nodes (``v`` covers the
    tuple when ``v`` is an endpoint or ``eat(u,v,dep) <= ldt(v,w,arr)``),
    then repeatedly selects the node covering the most still-uncovered
    tuples.  Faithful to the paper's algorithm, including its appetite:
    cost grows like ``O(n^2 m)``, so it refuses graphs larger than
    ``max_stations`` (mirroring the paper, which omits A-Order on
    datasets where it exceeds 64 GB).
    """
    n = graph.n
    if n > max_stations:
        raise IndexBuildError(
            f"A-Order is limited to {max_stations} stations "
            f"(graph has {n}); use hub_order instead"
        )
    if n == 0:
        return []

    profiles = _all_pairs_profiles(graph)

    tuples: List[Tuple[int, int, int, int]] = []
    for (u, w), profile in profiles.items():
        for dep, arr in profile:
            tuples.append((u, w, dep, arr))

    # Coverage bitmask per tuple.
    masks: List[int] = []
    count = [0] * n
    for u, w, dep, arr in tuples:
        mask = (1 << u) | (1 << w)
        for v in range(n):
            if v == u or v == w:
                continue
            first = profiles.get((u, v))
            second = profiles.get((v, w))
            if first is None or second is None:
                continue
            mid = first.eat(dep)
            if mid >= INF:
                continue
            if second.ldt(arr) >= mid:
                mask |= 1 << v
        masks.append(mask)
        m = mask
        while m:
            low = m & -m
            count[low.bit_length() - 1] += 1
            m ^= low

    alive = set(range(len(tuples)))
    # Tuple ids indexed by covering node, for cheap removal.
    by_node: List[List[int]] = [[] for _ in range(n)]
    for j, mask in enumerate(masks):
        m = mask
        while m:
            low = m & -m
            by_node[low.bit_length() - 1].append(j)
            m ^= low

    degree = [graph.out_degree(v) + graph.in_degree(v) for v in range(n)]
    sequence: List[int] = []
    chosen = [False] * n
    for _ in range(n):
        best = -1
        best_key: Tuple[int, int, int] = (-1, -1, -1)
        for v in range(n):
            if chosen[v]:
                continue
            key = (count[v], degree[v], -v)
            if key > best_key:
                best_key = key
                best = v
        chosen[best] = True
        sequence.append(best)
        for j in by_node[best]:
            if j in alive:
                alive.discard(j)
                m = masks[j]
                while m:
                    low = m & -m
                    count[low.bit_length() - 1] -= 1
                    m ^= low
    return _ranks_from_sequence(sequence, n)
