"""C-TTL — querying the compressed index (Appendix B).

:class:`CompressedTTLIndex` stores every label group as a
:class:`~repro.core.compression.CGroup` and *materializes* groups on
demand during query processing:

* plain groups are returned as stored;
* route-compressed groups are re-read from the route's timetable;
* pivot-compressed groups are re-merged from their child groups (which
  the compression constraint guarantees are not pivot-compressed, so
  materialization never recurses more than once).

The extra materialization work is exactly the query-time price of
compression the paper measures in Figure 3 (C-TTL slightly slower than
TTL), so no caching is applied.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

from repro.core.compression import (
    CGroup,
    CompressionStats,
    PIVOT,
    PLAIN,
    ROUTE,
    merge_children,
)
from repro.core.index import LabelEntry, TTLIndex
from repro.core.metrics import QueryMetrics
from repro.core.sketch import (
    Sketch,
    best_eap_sketch_from_lists,
    best_ldp_sketch_from_lists,
    best_sdp_sketch_from_lists,
)
from repro.core.unfold import sketch_to_journey
from repro.errors import ReconstructionError
from repro.graph.timetable import TimetableGraph
from repro.journey import Journey
from repro.planner import RoutePlanner


class _UniformList:
    """A read-only infinite list of one repeated value.

    Route-group views use it for the shared pivot so decompression
    allocates O(1) instead of O(labels).
    """

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __getitem__(self, _index):
        return self.value


class _ViewGroup:
    """A label-group view over shared (route-timetable) columns."""

    __slots__ = ("hub", "rank", "deps", "arrs", "trips", "pivots")

    def __init__(self, hub, rank, deps, arrs, trips, pivots) -> None:
        self.hub = hub
        self.rank = rank
        self.deps = deps
        self.arrs = arrs
        self.trips = trips
        self.pivots = pivots

    def __len__(self) -> int:
        return len(self.deps)


class CompressedTTLIndex:
    """The C-TTL index: compressed label groups plus decompression."""

    def __init__(
        self,
        base: TTLIndex,
        in_cgroups: List[List[CGroup]],
        out_cgroups: List[List[CGroup]],
        stats: CompressionStats,
    ) -> None:
        self.graph: TimetableGraph = base.graph
        self.ranks = base.ranks
        self.in_cgroups = in_cgroups
        self.out_cgroups = out_cgroups
        self.compression_stats = stats
        self.unfold_fallbacks = 0
        #: (src, dst) -> CGroup, for child resolution.
        self._pair_map: Dict[Tuple[int, int], CGroup] = {}
        for dst, groups in enumerate(in_cgroups):
            for cgroup in groups:
                self._pair_map[(cgroup.src, cgroup.dst)] = cgroup
        for src, groups in enumerate(out_cgroups):
            for cgroup in groups:
                self._pair_map[(cgroup.src, cgroup.dst)] = cgroup

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------

    def materialize(self, cgroup: CGroup):
        """Decompress one group (plain group or zero-copy view)."""
        if cgroup.kind == PLAIN:
            assert cgroup.plain is not None
            return cgroup.plain
        if cgroup.kind == ROUTE:
            assert cgroup.route_id is not None
            route = self.graph.routes[cgroup.route_id]
            deps, arrs, trips = route.pair_columns(cgroup.src, cgroup.dst)
            return _ViewGroup(
                cgroup.hub,
                cgroup.rank,
                deps,
                arrs,
                trips,
                _UniformList(cgroup.pivot),
            )
        if cgroup.kind == PIVOT:
            assert cgroup.pivot is not None
            left = self._materialize_pair(cgroup.src, cgroup.pivot)
            right = self._materialize_pair(cgroup.pivot, cgroup.dst)
            if left is None or right is None:
                raise ReconstructionError(
                    f"missing child groups for compressed pair "
                    f"{cgroup.src}->{cgroup.dst} via {cgroup.pivot}"
                )
            merged = merge_children(left, right, cgroup.pivot)
            merged.hub = cgroup.hub
            merged.rank = cgroup.rank
            return merged
        raise ReconstructionError(f"unknown group kind: {cgroup.kind}")

    def _materialize_pair(self, src: int, dst: int):
        cgroup = self._pair_map.get((src, dst))
        if cgroup is None:
            return None
        return self.materialize(cgroup)

    def materialized_out(self, u: int) -> List:
        """Decompressed out-label groups of ``u`` in rank order."""
        return [self.materialize(g) for g in self.out_cgroups[u]]

    def materialized_in(self, v: int) -> List:
        """Decompressed in-label groups of ``v`` in rank order."""
        return [self.materialize(g) for g in self.in_cgroups[v]]

    # ------------------------------------------------------------------
    # Unfold support (duck-typed like TTLIndex)
    # ------------------------------------------------------------------

    def lookup_by_dep(
        self, src: int, dst: int, dep: int
    ) -> Optional[LabelEntry]:
        """Child label by departure time, decompressing as needed."""
        group = self._materialize_pair(src, dst)
        if group is None:
            return None
        i = bisect_left(group.deps, dep)
        if i == len(group.deps) or group.deps[i] != dep:
            return None
        return (group.deps[i], group.arrs[i], group.trips[i], group.pivots[i])

    def lookup_by_arr(
        self, src: int, dst: int, arr: int
    ) -> Optional[LabelEntry]:
        """Child label by arrival time, decompressing as needed."""
        group = self._materialize_pair(src, dst)
        if group is None:
            return None
        i = bisect_left(group.arrs, arr)
        if i == len(group.arrs) or group.arrs[i] != arr:
            return None
        return (group.deps[i], group.arrs[i], group.trips[i], group.pivots[i])

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    @property
    def num_labels(self) -> int:
        """Stored label count after compression."""
        return self.compression_stats.labels_after

    def compressed_bytes(self) -> int:
        """Model size in bytes: stored labels, group records, and the
        route timetables decompression reads (counted once per route)."""
        from repro.core.serialize import BYTES_PER_LABEL, BYTES_PER_NODE

        stored = 0
        groups = 0
        routes_used = set()
        for table in (self.in_cgroups, self.out_cgroups):
            for cgroups in table:
                for cgroup in cgroups:
                    groups += 1
                    stored += cgroup.stored_labels()
                    if cgroup.kind == ROUTE:
                        routes_used.add(cgroup.route_id)
        route_bytes = 0
        for route_id in routes_used:
            route = self.graph.routes[route_id]
            route_bytes += len(route.trips) * len(route.stops) * 8
        return (
            stored * BYTES_PER_LABEL
            + groups * 12
            + self.graph.n * BYTES_PER_NODE
            + route_bytes
        )


class CompressedTTLPlanner(RoutePlanner):
    """C-TTL: Timetable Labelling with label compression."""

    name = "C-TTL"

    def __init__(
        self,
        graph: TimetableGraph,
        order="hub",
        concise: bool = False,
        mode: str = "both",
        cindex: Optional[CompressedTTLIndex] = None,
    ) -> None:
        super().__init__(graph)
        self._order = order
        self.concise = concise
        self.mode = mode
        self.cindex: Optional[CompressedTTLIndex] = cindex
        #: Cumulative per-query observability counters.
        self.metrics = QueryMetrics()
        if cindex is not None:
            self._preprocess_seconds = 0.0

    def _build(self) -> None:
        from repro.core.build import build_index
        from repro.core.compression import compress_index

        base = build_index(self.graph, order=self._order)
        self.cindex, _ = compress_index(base, mode=self.mode)

    def index_bytes(self) -> int:
        self.preprocess()
        assert self.cindex is not None
        return self.cindex.compressed_bytes()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _lists(self, u: int, v: int):
        assert self.cindex is not None
        return self.cindex.materialized_out(u), self.cindex.materialized_in(v)

    def _answer(
        self, u: int, v: int, sketch: Optional[Sketch]
    ) -> Optional[Journey]:
        if sketch is None:
            return None
        assert self.cindex is not None
        return sketch_to_journey(
            self.cindex, sketch, u, v, self.concise, metrics=self.metrics
        )

    def earliest_arrival(
        self, source: int, destination: int, t: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        self.preprocess()
        self.metrics.queries += 1
        out_list, in_list = self._lists(source, destination)
        best = best_eap_sketch_from_lists(
            out_list, in_list, source, destination, t, metrics=self.metrics
        )
        return self._answer(source, destination, best)

    def latest_departure(
        self, source: int, destination: int, t: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        self.preprocess()
        self.metrics.queries += 1
        out_list, in_list = self._lists(source, destination)
        best = best_ldp_sketch_from_lists(
            out_list, in_list, source, destination, t, metrics=self.metrics
        )
        return self._answer(source, destination, best)

    def shortest_duration(
        self, source: int, destination: int, t: int, t_end: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        self._check_window(t, t_end)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        self.preprocess()
        self.metrics.queries += 1
        out_list, in_list = self._lists(source, destination)
        best = best_sdp_sketch_from_lists(
            out_list, in_list, source, destination, t, t_end,
            metrics=self.metrics,
        )
        return self._answer(source, destination, best)

    def profile(self, source: int, destination: int, t: int, t_end: int):
        """All non-dominated ``(dep, arr)`` journeys in the window,
        computed over the decompressed label groups.

        C-TTL materializes its groups on demand as list-backed views,
        so the columnar kernels of :mod:`repro.core.kernels` cannot
        run here; the shared scalar fold is the implementation.
        """
        from repro.core.profile_queries import profile_from_lists

        self._check_query(source, destination)
        self._check_window(t, t_end)
        if source == destination:
            return [(t, t)]
        self.preprocess()
        self.metrics.queries += 1
        out_list, in_list = self._lists(source, destination)
        return profile_from_lists(
            out_list, in_list, source, destination, t, t_end,
            metrics=self.metrics,
        )
