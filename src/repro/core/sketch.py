"""SketchGen and refinement (Section 4.1, Algorithm 1).

Candidate generation merges ``L_out(u)`` and ``L_in(v)`` by hub rank in
a single linear pass.  Three kinds of path sketch arise:

* a *direct* out-label whose hub **is** ``v``;
* a *direct* in-label whose hub **is** ``u``;
* a *pair* of labels sharing a hub ``w`` with the in-label departing
  ``w`` no sooner than the out-label arrives there.

Within a shared hub the two Pareto-sorted pair lists are combined with
a two-pointer scan that emits only non-dominated combinations, so the
whole generation runs in ``O(|L_out(u)| + |L_in(v)|)`` and yields at
most that many sketches (Lemma 3).

Refinement is a fold over the generated sketches with the criterion of
the query type (earliest arrival / latest departure / shortest
duration); Lemma 5 justifies answering EAP and LDP with the window
opened to ``+inf`` / ``-inf``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, List, NamedTuple, Optional, Tuple

from repro.core import kernels
from repro.core.index import TTLIndex
from repro.core.metrics import QueryMetrics
from repro.timeutil import INF, NEG_INF


class Segment(NamedTuple):
    """One canonical-path half of a sketch, with full label context."""

    src: int
    dst: int
    dep: int
    arr: int
    trip: Optional[int]
    pivot: Optional[int]


class Sketch(NamedTuple):
    """A candidate answer: departure/arrival plus 1-2 label segments."""

    dep: int
    arr: int
    first: Optional[Segment]
    second: Optional[Segment]

    @property
    def duration(self) -> int:
        return self.arr - self.dep


def generate_sketches(
    index: TTLIndex, u: int, v: int, t: int, t_end: int
) -> Iterator[Sketch]:
    """Yield the non-dominated path sketches for a query window.

    Implements Algorithm 1 as a merge of the hub-grouped label sets.
    """
    return generate_sketches_from_lists(
        index.out_label_groups(u), index.in_label_groups(v), u, v, t, t_end
    )


def generate_sketches_from_lists(
    out_list: List, in_list: List, u: int, v: int, t: int, t_end: int
) -> Iterator[Sketch]:
    """Sketch generation over explicit group lists.

    The compressed index (Appendix B) materializes its label groups on
    the fly and feeds them through this same merge, and the selector
    fast paths below reuse the identical :func:`_merge_groups` walk —
    one implementation of the Algorithm 1 hub merge serves all of them.
    """
    for kind, ga, gb in _merge_groups(out_list, in_list, u, v):
        if kind == "out":
            yield from _direct_sketches(ga, u, v, t, t_end, first=True)
        elif kind == "in":
            yield from _direct_sketches(ga, u, v, t, t_end, first=False)
        else:
            # Shared hub: combine the two Pareto frontiers.
            yield from _pair_sketches(ga, gb, u, v, t, t_end)


def _direct_sketches(
    group, u: int, v: int, t: int, t_end: int, first: bool
) -> Iterator[Sketch]:
    """Sketches from labels that directly span ``u -> v``."""
    deps = group.deps
    arrs = group.arrs
    for k in range(bisect_left(deps, t), len(deps)):
        arr = arrs[k]
        if arr > t_end:
            break  # Pareto order: later labels arrive even later.
        seg = Segment(u, v, deps[k], arr, group.trips[k], group.pivots[k])
        if first:
            yield Sketch(deps[k], arr, seg, None)
        else:
            yield Sketch(deps[k], arr, None, seg)


def _pair_sketches(
    ga, gb, u: int, v: int, t: int, t_end: int
) -> Iterator[Sketch]:
    """Non-dominated combinations of out-labels ``u -> w`` with
    in-labels ``w -> v`` (two-pointer scan over Pareto frontiers)."""
    out_deps, out_arrs = ga.deps, ga.arrs
    in_deps, in_arrs = gb.deps, gb.arrs
    len_in = len(in_deps)
    j = 0
    pending: Optional[Tuple[int, int, int, int]] = None  # (dep, arr, k, j)
    for k in range(bisect_left(out_deps, t), len(out_deps)):
        mid = out_arrs[k]
        if mid > t_end:
            break
        while j < len_in and in_deps[j] < mid:
            j += 1
        if j == len_in:
            break
        arr = in_arrs[j]
        if arr > t_end:
            break  # in_arrs only grows as j advances.
        dep = out_deps[k]
        if pending is not None:
            if pending[1] == arr:
                # Same final arrival, later departure dominates.
                pending = (dep, arr, k, j)
                continue
            yield _make_pair_sketch(ga, gb, u, v, pending)
        pending = (dep, arr, k, j)
    if pending is not None:
        yield _make_pair_sketch(ga, gb, u, v, pending)


def _make_pair_sketch(ga, gb, u: int, v: int, pending) -> Sketch:
    dep, arr, k, j = pending
    first = Segment(
        u, ga.hub, ga.deps[k], ga.arrs[k], ga.trips[k], ga.pivots[k]
    )
    second = Segment(
        gb.hub, v, gb.deps[j], gb.arrs[j], gb.trips[j], gb.pivots[j]
    )
    return Sketch(dep, arr, first, second)


# ----------------------------------------------------------------------
# Refinement (Section 4.1 + Lemma 5)
#
# The selectors below are allocation-free fast paths over the same
# label order SketchGen exploits.  For EAP and LDP only one candidate
# per hub can win (the in-group arrival is monotone in the hub arrival
# time), so a pair of bisections per hub suffices; SDP genuinely needs
# the windowed two-pointer merge, performed here on bare int lists.
# Tests cross-check every selector against a fold over
# :func:`generate_sketches`.
# ----------------------------------------------------------------------


def _merge_groups(out_list: List, in_list: List, u: int, v: int):
    """Yield ``("out", ga)``, ``("in", gb)`` direct groups and
    ``("pair", ga, gb)`` shared-hub pairs in rank order."""
    i = j = 0
    len_out, len_in = len(out_list), len(in_list)
    while i < len_out or j < len_in:
        ga = out_list[i] if i < len_out else None
        gb = in_list[j] if j < len_in else None
        if ga is not None and ga.hub == v:
            yield ("out", ga, None)
            i += 1
            continue
        if gb is not None and gb.hub == u:
            yield ("in", gb, None)
            j += 1
            continue
        if gb is None or (ga is not None and ga.rank < gb.rank):
            i += 1
            continue
        if ga is None or gb.rank < ga.rank:
            j += 1
            continue
        yield ("pair", ga, gb)
        i += 1
        j += 1


def _segment(group, k: int, src: int, dst: int) -> Segment:
    return Segment(
        src, dst, group.deps[k], group.arrs[k], group.trips[k], group.pivots[k]
    )


def _count_scan(
    metrics: Optional[QueryMetrics],
    out_list: List,
    in_list: List,
    candidates: int,
) -> None:
    """Fold one selection pass into the planner's counters."""
    if metrics is None:
        return
    metrics.labels_scanned += sum(len(g) for g in out_list) + sum(
        len(g) for g in in_list
    )
    metrics.sketches_generated += candidates


def best_eap_sketch_from_lists(
    out_list: List,
    in_list: List,
    u: int,
    v: int,
    t: int,
    metrics: Optional[QueryMetrics] = None,
) -> Optional[Sketch]:
    """Earliest-arrival candidate (two bisections per hub)."""
    best_arr = INF
    best = None  # (kind, ga, gb, k, j)
    candidates = 0
    for kind, ga, gb in _merge_groups(out_list, in_list, u, v):
        if kind == "pair":
            deps1 = ga.deps
            k = bisect_left(deps1, t)
            if k == len(deps1):
                continue
            mid = ga.arrs[k]
            deps2 = gb.deps
            j = bisect_left(deps2, mid)
            if j == len(deps2):
                continue
            arr = gb.arrs[j]
            candidates += 1
            if arr < best_arr:
                best_arr = arr
                best = (kind, ga, gb, k, j)
        else:
            group = ga
            deps = group.deps
            k = bisect_left(deps, t)
            if k == len(deps):
                continue
            arr = group.arrs[k]
            candidates += 1
            if arr < best_arr:
                best_arr = arr
                best = (kind, ga, gb, k, 0)
    _count_scan(metrics, out_list, in_list, candidates)
    return _selected_sketch(best, u, v)


def best_ldp_sketch_from_lists(
    out_list: List,
    in_list: List,
    u: int,
    v: int,
    t_end: int,
    metrics: Optional[QueryMetrics] = None,
) -> Optional[Sketch]:
    """Latest-departure candidate (two bisections per hub)."""
    best_dep = NEG_INF
    best = None
    candidates = 0
    for kind, ga, gb in _merge_groups(out_list, in_list, u, v):
        if kind == "pair":
            arrs2 = gb.arrs
            j = bisect_right(arrs2, t_end) - 1
            if j < 0:
                continue
            mid = gb.deps[j]
            arrs1 = ga.arrs
            k = bisect_right(arrs1, mid) - 1
            if k < 0:
                continue
            dep = ga.deps[k]
            candidates += 1
            if dep > best_dep:
                best_dep = dep
                best = (kind, ga, gb, k, j)
        else:
            group = ga
            arrs = group.arrs
            k = bisect_right(arrs, t_end) - 1
            if k < 0:
                continue
            dep = group.deps[k]
            candidates += 1
            if dep > best_dep:
                best_dep = dep
                best = (kind, ga, gb, k, 0)
    _count_scan(metrics, out_list, in_list, candidates)
    return _selected_sketch(best, u, v)


def best_sdp_sketch_from_lists(
    out_list: List,
    in_list: List,
    u: int,
    v: int,
    t: int,
    t_end: int,
    metrics: Optional[QueryMetrics] = None,
) -> Optional[Sketch]:
    """Minimum-duration candidate (windowed two-pointer merge)."""
    best_duration = INF
    best = None
    candidates = 0
    for kind, ga, gb in _merge_groups(out_list, in_list, u, v):
        if kind == "pair":
            deps1, arrs1 = ga.deps, ga.arrs
            deps2, arrs2 = gb.deps, gb.arrs
            len_in = len(deps2)
            j = 0
            for k in range(bisect_left(deps1, t), len(deps1)):
                mid = arrs1[k]
                if mid > t_end:
                    break
                while j < len_in and deps2[j] < mid:
                    j += 1
                if j == len_in:
                    break
                arr = arrs2[j]
                if arr > t_end:
                    break
                candidates += 1
                duration = arr - deps1[k]
                if duration < best_duration:
                    best_duration = duration
                    best = (kind, ga, gb, k, j)
        else:
            group = ga
            deps, arrs = group.deps, group.arrs
            for k in range(bisect_left(deps, t), len(deps)):
                arr = arrs[k]
                if arr > t_end:
                    break
                candidates += 1
                duration = arr - deps[k]
                if duration < best_duration:
                    best_duration = duration
                    best = (kind, ga, gb, k, 0)
    _count_scan(metrics, out_list, in_list, candidates)
    return _selected_sketch(best, u, v)


def _selected_sketch(best, u: int, v: int) -> Optional[Sketch]:
    if best is None:
        return None
    kind, ga, gb, k, j = best
    if kind == "out":
        seg = _segment(ga, k, u, v)
        return Sketch(seg.dep, seg.arr, seg, None)
    if kind == "in":
        seg = _segment(ga, k, u, v)
        return Sketch(seg.dep, seg.arr, None, seg)
    first = _segment(ga, k, u, ga.hub)
    second = _segment(gb, j, gb.hub, v)
    return Sketch(first.dep, second.arr, first, second)


def best_eap_sketch(
    index: TTLIndex,
    u: int,
    v: int,
    t: int,
    metrics: Optional[QueryMetrics] = None,
) -> Optional[Sketch]:
    """The sketch with the earliest arrival departing no sooner than
    ``t``.

    Dispatches to the vectorized kernel over the sealed columns when
    numpy is available and the label sets are large enough to beat the
    scalar bisections (``REPRO_SCALAR_KERNELS=1`` forces scalar; the
    two produce byte-identical sketches).
    """
    if kernels.use_for_point(index, u, v):
        return kernels.eap_sketch(index, u, v, t, metrics=metrics)
    return best_eap_sketch_from_lists(
        index.out_label_groups(u),
        index.in_label_groups(v),
        u,
        v,
        t,
        metrics=metrics,
    )


def best_ldp_sketch(
    index: TTLIndex,
    u: int,
    v: int,
    t_end: int,
    metrics: Optional[QueryMetrics] = None,
) -> Optional[Sketch]:
    """The sketch with the latest departure arriving no later than
    ``t_end`` (vectorized when worthwhile, like :func:`best_eap_sketch`)."""
    if kernels.use_for_point(index, u, v):
        return kernels.ldp_sketch(index, u, v, t_end, metrics=metrics)
    return best_ldp_sketch_from_lists(
        index.out_label_groups(u),
        index.in_label_groups(v),
        u,
        v,
        t_end,
        metrics=metrics,
    )


def best_sdp_sketch(
    index: TTLIndex,
    u: int,
    v: int,
    t: int,
    t_end: int,
    metrics: Optional[QueryMetrics] = None,
) -> Optional[Sketch]:
    """The minimum-duration sketch inside ``[t, t_end]`` (vectorized
    when worthwhile, like :func:`best_eap_sketch`)."""
    if kernels.use_for_point(index, u, v):
        return kernels.sdp_sketch(index, u, v, t, t_end, metrics=metrics)
    return best_sdp_sketch_from_lists(
        index.out_label_groups(u),
        index.in_label_groups(v),
        u,
        v,
        t,
        t_end,
        metrics=metrics,
    )
