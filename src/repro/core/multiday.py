"""Calendar-aware planning over partitioned indices (Section 8).

A TTL index built on one service day cannot answer journeys that cross
midnight.  Section 8's remedy: index *two consecutive days* at a time,
and — when weekday and weekend timetables differ — keep one such
two-day index per transition (the "index partitioning widely adopted
in spatio-temporal indexing").

:class:`MultiDayPlanner` implements exactly that.  Given a weekly
service calendar (a timetable graph per day-kind), it lazily builds
one extended two-day TTL index per consecutive day-kind pair and
routes each query to the index for its day:

* query times are *absolute* seconds since Monday 00:00;
* a query departing on day ``d`` is answered on the (``d``, ``d+1``)
  index with times shifted into that index's local frame, so any
  journey of up to 24 h duration — including overnight ones — is
  found.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.queries import TTLPlanner
from repro.errors import QueryError, ValidationError
from repro.graph.route import Route, StopTime, Trip, trip_connections
from repro.graph.timetable import TimetableGraph
from repro.journey import Journey
from repro.timeutil import SECONDS_PER_DAY

DAY_NAMES = [
    "monday",
    "tuesday",
    "wednesday",
    "thursday",
    "friday",
    "saturday",
    "sunday",
]


class WeeklyCalendar:
    """Assigns one timetable graph to each weekday.

    All graphs must share the station universe (same station count and
    names); typically there are just two variants, ``weekday`` and
    ``weekend``.
    """

    def __init__(self, day_graphs: Sequence[TimetableGraph]) -> None:
        if len(day_graphs) != 7:
            raise ValidationError("a weekly calendar needs 7 day graphs")
        n = day_graphs[0].n
        for graph in day_graphs:
            if graph.n != n:
                raise ValidationError(
                    "all day graphs must share the station universe"
                )
        self.day_graphs = list(day_graphs)
        self.n = n

    @classmethod
    def weekday_weekend(
        cls, weekday: TimetableGraph, weekend: TimetableGraph
    ) -> "WeeklyCalendar":
        """The common two-variant calendar (Mon-Fri / Sat-Sun)."""
        return cls([weekday] * 5 + [weekend] * 2)


def _shift_graph_pair(
    first: TimetableGraph, second: TimetableGraph
) -> TimetableGraph:
    """Concatenate two day graphs into one two-day timetable.

    ``first`` keeps its times; ``second`` is shifted by +24 h.  Route
    identity is preserved per source day (route ids of the second day
    are offset), which keeps route-based compression applicable within
    each day.
    """
    routes: Dict[int, Route] = {}
    next_trip = 0
    route_offset = max(first.routes, default=-1) + 1

    for source, offset, shift in (
        (first, 0, 0),
        (second, route_offset, SECONDS_PER_DAY),
    ):
        for route in source.routes.values():
            new_id = route.route_id + offset
            trips = []
            for trip in route.trips:
                trips.append(
                    Trip(
                        trip_id=next_trip,
                        route_id=new_id,
                        stop_times=tuple(
                            StopTime(st.arr + shift, st.dep + shift)
                            for st in trip.stop_times
                        ),
                    )
                )
                next_trip += 1
            routes[new_id] = Route(
                route_id=new_id,
                stops=route.stops,
                trips=trips,
                name=route.name,
            )

    connections: List = []
    for route in routes.values():
        route.sort_trips()
        for trip in route.trips:
            connections.extend(trip_connections(route, trip))
    return TimetableGraph(
        num_stations=first.n,
        connections=connections,
        routes=routes,
        station_names=first.station_names,
    )


class MultiDayPlanner:
    """Route planning across a weekly calendar (absolute week times).

    Timestamps are seconds since Monday 00:00 (0 .. 7*86400).  Each
    query is answered on the lazily-built two-day index of its
    departure (EAP/SDP) or arrival (LDP) day.
    """

    def __init__(self, calendar: WeeklyCalendar, order="hub") -> None:
        self.calendar = calendar
        self._order = order
        self._planners: Dict[int, TTLPlanner] = {}
        self._graphs: Dict[int, TimetableGraph] = {}

    # ------------------------------------------------------------------
    # Index partitioning
    # ------------------------------------------------------------------

    def planner_for_day(self, day: int) -> TTLPlanner:
        """The planner over the (day, day+1) extended timetable."""
        day %= 7
        planner = self._planners.get(day)
        if planner is None:
            graph = _shift_graph_pair(
                self.calendar.day_graphs[day],
                self.calendar.day_graphs[(day + 1) % 7],
            )
            self._graphs[day] = graph
            planner = self._planners[day] = TTLPlanner(
                graph, order=self._order
            )
        return planner

    def num_built_indices(self) -> int:
        """How many two-day indices have been materialized so far."""
        return len(self._planners)

    @staticmethod
    def _split(t: int) -> Tuple[int, int]:
        """Absolute week time -> (day index, seconds into that day)."""
        if t < 0:
            raise QueryError(f"negative week time: {t}")
        day, local = divmod(t, SECONDS_PER_DAY)
        if day >= 7:
            raise QueryError(f"week time beyond Sunday: {t}")
        return day, local

    def _lift(self, journey: Optional[Journey], day: int) -> Optional[Journey]:
        """Shift a local two-day journey back to absolute week times."""
        if journey is None:
            return None
        shift = day * SECONDS_PER_DAY

        def shift_conn(c):
            return type(c)(c.u, c.v, c.dep + shift, c.arr + shift, c.trip)

        path = None
        legs = None
        if journey.path is not None:
            path = [shift_conn(c) for c in journey.path]
        if journey.legs is not None:
            legs = [
                type(leg)(leg.station, leg.trip, leg.time + shift)
                for leg in journey.legs
            ]
        return Journey(
            source=journey.source,
            destination=journey.destination,
            dep=journey.dep + shift,
            arr=journey.arr + shift,
            path=path,
            legs=legs,
        )

    # ------------------------------------------------------------------
    # Queries (absolute week timestamps)
    # ------------------------------------------------------------------

    def earliest_arrival(
        self, source: int, destination: int, t: int
    ) -> Optional[Journey]:
        """EAP with up to 24 h of travel, possibly crossing midnight."""
        day, local = self._split(t)
        planner = self.planner_for_day(day)
        return self._lift(
            planner.earliest_arrival(source, destination, local), day
        )

    def latest_departure(
        self, source: int, destination: int, t: int
    ) -> Optional[Journey]:
        """LDP arriving by ``t``; considers departures from the
        previous day (overnight journeys) and the same day."""
        day, local = self._split(t)
        best: Optional[Journey] = None
        # The journey may start the day before (it appears on that
        # day's two-day index with arrival in the +24 h half)...
        if day > 0:
            planner = self.planner_for_day(day - 1)
            candidate = self._lift(
                planner.latest_departure(
                    source, destination, local + SECONDS_PER_DAY
                ),
                day - 1,
            )
            best = candidate
        # ... or on the arrival day itself.
        planner = self.planner_for_day(day)
        candidate = self._lift(
            planner.latest_departure(source, destination, local), day
        )
        if candidate is not None and (
            best is None or candidate.dep > best.dep
        ):
            best = candidate
        return best

    def shortest_duration(
        self, source: int, destination: int, t: int, t_end: int
    ) -> Optional[Journey]:
        """SDP inside an absolute window of at most 24 hours."""
        if t_end < t:
            raise QueryError(f"empty query window: [{t}, {t_end}]")
        if t_end - t > SECONDS_PER_DAY:
            raise QueryError(
                "multi-day SDP windows beyond 24h are not supported; "
                "split the window per day"
            )
        day, local = self._split(t)
        planner = self.planner_for_day(day)
        return self._lift(
            planner.shortest_duration(
                source, destination, local, t_end - day * SECONDS_PER_DAY
            ),
            day,
        )
