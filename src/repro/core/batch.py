"""Batched label queries: one-to-many, matrix, and isochrone passes.

Accessibility studies ("which stations can I reach within 45 minutes
of 8am?", travel-time matrices for facility placement) ask the same
EAP question for one source against many targets.  With a TTL index
each target costs one merge of the source's out-labels with the
target's in-labels — no graph search at all.

The single entry point is :func:`batch_plan`: it takes
:class:`~repro.query.BatchQuery` items and answers each with one
vectorized pass over the entire in-store when numpy is available
(:func:`repro.core.kernels.one_to_all_arrivals` — O(total labels)
columnar work per source, independent of target count), falling back
to the scalar per-target merge otherwise.  ``/v1/batch`` routes here.

The three historical entry points (``one_to_many_eat``,
``eat_matrix``, ``isochrone``) delegate to :func:`batch_plan` and emit
``DeprecationWarning``.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core import kernels
from repro.core.index import TTLIndex
from repro.core.sketch import best_eap_sketch_from_lists
from repro.errors import QueryError
from repro.query import BatchQuery

#: The per-kind result shapes, in request order.
BatchResult = Union[
    Dict[int, Optional[int]],           # one_to_many
    Dict[Tuple[int, int], Optional[int]],  # matrix
    List[int],                          # isochrone
]


def batch_plan(
    index: TTLIndex, requests: Sequence[BatchQuery]
) -> List[BatchResult]:
    """Answer a sequence of batched queries, one result per request.

    Every request is validated up front (so a malformed item fails the
    whole batch before any work), then each is answered by the
    vectorized one-to-all kernel when available or the scalar
    per-target merge otherwise — both produce identical values.
    """
    n = index.graph.n
    for request in requests:
        request.validated()
        for station in (*request.sources, *request.targets):
            if not 0 <= station < n:
                raise QueryError(f"unknown station: {station}")
    vectorized = kernels.vectorized_available()
    return [_answer(index, request, vectorized) for request in requests]


def _answer(
    index: TTLIndex, request: BatchQuery, vectorized: bool
) -> BatchResult:
    if request.kind == "one_to_many":
        return _one_to_many(
            index, request.sources[0], request.targets, request.t, vectorized
        )
    if request.kind == "matrix":
        matrix: Dict[Tuple[int, int], Optional[int]] = {}
        for source in request.sources:
            row = _one_to_many(
                index, source, request.targets, request.t, vectorized
            )
            for target, arr in row.items():
                matrix[(source, target)] = arr
        return matrix
    # isochrone
    source, t, budget = request.sources[0], request.t, request.budget
    arrivals = _one_to_many(
        index, source, range(index.graph.n), t, vectorized
    )
    reachable = [
        (arr, station)
        for station, arr in arrivals.items()
        if arr is not None and arr - t <= budget
    ]
    reachable.sort()
    return [station for _, station in reachable]


def _one_to_many(
    index: TTLIndex,
    source: int,
    targets: Iterable[int],
    t: int,
    vectorized: bool,
) -> Dict[int, Optional[int]]:
    targets = list(targets)
    if vectorized and kernels.use_for_one_to_all(index, len(targets)):
        return kernels.one_to_many_values(index, source, targets, t)
    out_list = index.out_label_groups(source)
    result: Dict[int, Optional[int]] = {}
    for target in targets:
        if target == source:
            result[target] = t
            continue
        sketch = best_eap_sketch_from_lists(
            out_list, index.in_label_groups(target), source, target, t
        )
        result[target] = sketch.arr if sketch is not None else None
    return result


# ----------------------------------------------------------------------
# Legacy entry points (delegating, deprecated)
# ----------------------------------------------------------------------


def _deprecated(name: str) -> None:
    warnings.warn(
        f"repro.core.batch.{name} is deprecated; use batch_plan with "
        f"repro.query.BatchQuery instead",
        DeprecationWarning,
        stacklevel=3,
    )


def one_to_many_eat(
    index: TTLIndex, source: int, targets: Iterable[int], t: int
) -> Dict[int, Optional[int]]:
    """Deprecated: earliest arrivals from ``source`` to each target;
    ``None`` where unreachable.  Use :func:`batch_plan`."""
    _deprecated("one_to_many_eat")
    [result] = batch_plan(
        index,
        [
            BatchQuery(
                kind="one_to_many",
                sources=(source,),
                targets=tuple(targets),
                t=t,
            )
        ],
    )
    return result


def eat_matrix(
    index: TTLIndex,
    sources: Iterable[int],
    targets: Iterable[int],
    t: int,
) -> Dict[Tuple[int, int], Optional[int]]:
    """Deprecated: earliest-arrival matrix between station sets.  Use
    :func:`batch_plan`."""
    _deprecated("eat_matrix")
    [result] = batch_plan(
        index,
        [
            BatchQuery(
                kind="matrix",
                sources=tuple(sources),
                targets=tuple(targets),
                t=t,
            )
        ],
    )
    return result


def isochrone(
    index: TTLIndex, source: int, t: int, budget: int
) -> List[int]:
    """Deprecated: stations reachable within ``budget`` seconds of
    departing no sooner than ``t``, sorted by arrival time.  Use
    :func:`batch_plan`."""
    _deprecated("isochrone")
    [result] = batch_plan(
        index,
        [
            BatchQuery(
                kind="isochrone", sources=(source,), t=t, budget=budget
            )
        ],
    )
    return result
