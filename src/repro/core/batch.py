"""Batched label queries: one-to-many and matrix earliest arrivals.

Accessibility studies ("which stations can I reach within 45 minutes
of 8am?", travel-time matrices for facility placement) ask the same
EAP question for one source against many targets.  With a TTL index
each target costs one merge of the source's out-labels with the
target's in-labels — no graph search at all — so a full one-to-all
sweep costs ``O(|L_out(u)| * groups + sum_v |L_in(v)|)``, independent
of how congested the timetable is.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.index import TTLIndex
from repro.core.sketch import best_eap_sketch_from_lists
from repro.errors import QueryError


def one_to_many_eat(
    index: TTLIndex, source: int, targets: Iterable[int], t: int
) -> Dict[int, Optional[int]]:
    """Earliest arrival times from ``source`` (departing >= ``t``) to
    each target; ``None`` where unreachable."""
    n = index.graph.n
    if not 0 <= source < n:
        raise QueryError(f"unknown source station: {source}")
    out_list = index.out_label_groups(source)
    result: Dict[int, Optional[int]] = {}
    for target in targets:
        if not 0 <= target < n:
            raise QueryError(f"unknown target station: {target}")
        if target == source:
            result[target] = t
            continue
        sketch = best_eap_sketch_from_lists(
            out_list, index.in_label_groups(target), source, target, t
        )
        result[target] = sketch.arr if sketch is not None else None
    return result


def eat_matrix(
    index: TTLIndex,
    sources: Iterable[int],
    targets: Iterable[int],
    t: int,
) -> Dict[Tuple[int, int], Optional[int]]:
    """Earliest-arrival matrix between station sets (departing >= t)."""
    target_list = list(targets)
    matrix: Dict[Tuple[int, int], Optional[int]] = {}
    for source in sources:
        row = one_to_many_eat(index, source, target_list, t)
        for target, arr in row.items():
            matrix[(source, target)] = arr
    return matrix


def isochrone(
    index: TTLIndex, source: int, t: int, budget: int
) -> List[int]:
    """Stations reachable from ``source`` within ``budget`` seconds of
    departing no sooner than ``t`` (the classic accessibility
    isochrone), sorted by arrival time."""
    if budget < 0:
        raise QueryError(f"negative time budget: {budget}")
    arrivals = one_to_many_eat(
        index, source, range(index.graph.n), t
    )
    reachable = [
        (arr, station)
        for station, arr in arrivals.items()
        if arr is not None and arr - t <= budget
    ]
    reachable.sort()
    return [station for _, station in reachable]
