"""Label compression (Section 7).

Two lossless schemes shrink a TTL index by collapsing whole label
groups (all labels one node holds for one hub) into a single record:

* **Route-based** (Section 7.1): when every label in a group rides a
  trip of the same route and the group's ``(dep, arr, trip)`` list
  coincides with that route's timetable between the pair's endpoints,
  the group is replaced by one reference to the route.  Decompression
  reads the route timetable (already stored with the graph).
* **Pivot-based** (Section 7.2): when every label in a group transfers
  (``trip is None``) and shares the same pivot ``p``, the group is
  replaced by one ``(·, null, null, null, p)`` record.  Decompression
  re-merges the left children (``src -> p``) with the right children
  (``p -> dst``).  To keep decompression non-recursive, a compressed
  group's child groups must not themselves be pivot-compressed — the
  paper's compression constraint — which turns scheme selection into a
  maximum-weight independent set problem on a *dependency graph*.  We
  solve it with the classic GWMIN greedy (pick the alive vertex
  maximizing ``weight / (degree + 1)``), standing in for the cited
  approximation algorithm.

Both schemes verify losslessness at compression time: a group is only
compressed when decompressing it reproduces the original labels
exactly, so tie-pruned corner cases degrade to "not compressed" rather
than to wrong answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.index import TTLIndex
from repro.core.label import LabelGroup
from repro.errors import IndexBuildError
from repro.graph.timetable import TimetableGraph

#: Group kinds in the compressed index.
PLAIN = "plain"
ROUTE = "route"
PIVOT = "pivot"

#: Directed pair key: (src, dst) endpoints of a group's canonical paths.
PairKey = Tuple[int, int]


@dataclass
class CGroup:
    """One (possibly compressed) label group of the C-TTL index."""

    hub: int
    rank: int
    kind: str
    src: int
    dst: int
    #: Original labels (PLAIN only).
    plain: Optional[LabelGroup] = None
    #: Route id (ROUTE only).
    route_id: Optional[int] = None
    #: Shared pivot (ROUTE with intermediate stops, and PIVOT).
    pivot: Optional[int] = None
    #: Label count represented (for size accounting).
    size: int = 0

    def stored_labels(self) -> int:
        """How many label records this group stores physically."""
        return self.size if self.kind == PLAIN else 1


@dataclass(frozen=True)
class CompressionStats:
    """Label-count accounting for Table 4."""

    labels_before: int
    labels_after: int
    route_groups: int
    pivot_groups: int

    @property
    def reduction(self) -> float:
        """The paper's ``Δ/|L|`` ratio."""
        if self.labels_before == 0:
            return 0.0
        return (self.labels_before - self.labels_after) / self.labels_before


# ----------------------------------------------------------------------
# Eligibility checks (with losslessness verification)
# ----------------------------------------------------------------------


def _route_candidate(
    graph: TimetableGraph, group: LabelGroup, src: int, dst: int
) -> Optional[int]:
    """Route id if ``group`` is route-compressible between src/dst."""
    if len(group) < 2:
        return None
    route_id: Optional[int] = None
    for trip in group.trips:
        if trip is None:
            return None
        rid = graph.trip_to_route.get(trip)
        if rid is None:
            return None
        if route_id is None:
            route_id = rid
        elif rid != route_id:
            return None
    assert route_id is not None
    pivots = set(group.pivots)
    if len(pivots) != 1:
        return None
    route = graph.routes[route_id]
    if not route.visits_in_order(src, dst):
        return None
    # Decompression serves the route's timetable columns between the
    # endpoints directly (zero copies), so they must form a strict
    # Pareto staircase — i.e. no trip may overtake or duplicate another
    # between src and dst.  Compression is lossless as long as every
    # stored label appears among the column entries: extra entries are
    # real single-trip journeys that were hub-cover-pruned because a
    # dominating alternative exists, so they can never win refinement.
    deps, arrs, _ = route.pair_columns(src, dst)
    for k in range(len(deps) - 1):
        if deps[k] >= deps[k + 1] or arrs[k] >= arrs[k + 1]:
            return None
    stored = set(zip(group.deps, group.arrs))
    if not stored <= set(zip(deps, arrs)):
        return None
    return route_id


def _pivot_candidate(group: LabelGroup) -> Optional[int]:
    """Shared pivot if ``group`` is pivot-compressible."""
    if len(group) < 2:
        return None
    if any(trip is not None for trip in group.trips):
        return None
    pivots = set(group.pivots)
    if len(pivots) != 1:
        return None
    pivot = pivots.pop()
    if pivot is None:  # pragma: no cover - transfer paths have pivots
        return None
    return pivot


def pair_group(index: TTLIndex, src: int, dst: int) -> Optional[LabelGroup]:
    """The label group holding canonical paths ``src -> dst``.

    Lives in ``L_in(dst)`` when ``src`` ranks higher, else in
    ``L_out(src)`` (Definition 7).
    """
    if index.ranks[src] < index.ranks[dst]:
        for group in index.in_groups[dst]:
            if group.hub == src:
                return group
    else:
        for group in index.out_groups[src]:
            if group.hub == dst:
                return group
    return None


def merge_children(
    left: LabelGroup, right: LabelGroup, pivot: int
) -> LabelGroup:
    """Recompose a pivot-compressed group from its child groups.

    Non-dominated minimal-wait merge of the ``src -> p`` frontier with
    the ``p -> dst`` frontier; mirrors the pair scan of SketchGen.
    """
    merged = LabelGroup(hub=-1, rank=-1)
    j = 0
    len_r = len(right.deps)
    pending: Optional[Tuple[int, int]] = None
    for k in range(len(left.deps)):
        mid = left.arrs[k]
        while j < len_r and right.deps[j] < mid:
            j += 1
        if j == len_r:
            break
        dep, arr = left.deps[k], right.arrs[j]
        if pending is not None:
            if pending[1] == arr:
                pending = (dep, arr)
                continue
            merged.append(pending[0], pending[1], None, pivot)
        pending = (dep, arr)
    if pending is not None:
        merged.append(pending[0], pending[1], None, pivot)
    return merged


def _pivot_reconstruction_matches(
    index: TTLIndex, group: LabelGroup, src: int, dst: int, pivot: int
) -> bool:
    """Verify decompression would cover ``group``.

    The merge of the child frontiers must contain every stored label;
    extra merged entries are real two-leg journeys through the pivot
    that are globally dominated, so — as with route decompression —
    they cannot win refinement and unfold through existing child
    labels.
    """
    left = pair_group(index, src, pivot)
    right = pair_group(index, pivot, dst)
    if left is None or right is None:
        return False
    merged = merge_children(left, right, pivot)
    stored = set(zip(group.deps, group.arrs))
    return stored <= set(zip(merged.deps, merged.arrs))


# ----------------------------------------------------------------------
# Dependency graph + GWMIN independent set (Section 7.2)
# ----------------------------------------------------------------------


def _select_pivot_groups(
    candidates: Dict[PairKey, Tuple[int, int]]
) -> Set[PairKey]:
    """Choose a conflict-free subset of pivot candidates.

    ``candidates`` maps a pair key ``(src, dst)`` to ``(pivot, c)``
    where ``c`` is the group's label count.  Compressing ``(src, dst)``
    forbids compressing its child pairs ``(src, p)`` and ``(p, dst)``.
    Returns the selected pair keys (greedy max-weight independent set).
    """
    weight: Dict[PairKey, int] = {
        key: c - 1 for key, (_, c) in candidates.items()
    }
    adj: Dict[PairKey, Set[PairKey]] = {key: set() for key in candidates}
    for key, (pivot, _) in candidates.items():
        src, dst = key
        for child in ((src, pivot), (pivot, dst)):
            if child in candidates and child != key:
                adj[key].add(child)
                adj[child].add(key)

    alive = {key for key, w in weight.items() if w > 0}
    selected: Set[PairKey] = set()
    while alive:
        best = max(
            alive,
            key=lambda k: (weight[k] / (len(adj[k] & alive) + 1), k),
        )
        selected.add(best)
        removed = (adj[best] & alive) | {best}
        alive -= removed
    return selected


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def compress_index(index: TTLIndex, mode: str = "both"):
    """Compress ``index`` into a C-TTL index.

    Args:
        index: a sealed TTL index.
        mode: ``"route"``, ``"pivot"``, or ``"both"`` (route first,
            then pivot on the remaining groups — Section 7.2's combined
            scheme).

    Returns:
        ``(compressed_index, stats)``.
    """
    from repro.core.cindex import CompressedTTLIndex

    if mode not in ("route", "pivot", "both"):
        raise IndexBuildError(f"unknown compression mode: {mode!r}")
    graph = index.graph
    use_route = mode in ("route", "both")
    use_pivot = mode in ("pivot", "both")

    # Enumerate all groups with their direction context.
    located: List[Tuple[LabelGroup, int, int, bool]] = []
    for v, groups in enumerate(index.in_groups):
        for group in groups:
            located.append((group, group.hub, v, True))
    for u, groups in enumerate(index.out_groups):
        for group in groups:
            located.append((group, u, group.hub, False))

    route_choice: Dict[PairKey, int] = {}
    pivot_candidates: Dict[PairKey, Tuple[int, int]] = {}
    for group, src, dst, _ in located:
        key = (src, dst)
        if use_route:
            route_id = _route_candidate(graph, group, src, dst)
            if route_id is not None:
                route_choice[key] = route_id
                continue
        if use_pivot:
            pivot = _pivot_candidate(group)
            if pivot is not None and _pivot_reconstruction_matches(
                index, group, src, dst, pivot
            ):
                pivot_candidates[key] = (pivot, len(group))

    pivot_choice = (
        _select_pivot_groups(pivot_candidates) if use_pivot else set()
    )

    in_cgroups: List[List[CGroup]] = [[] for _ in range(graph.n)]
    out_cgroups: List[List[CGroup]] = [[] for _ in range(graph.n)]
    route_groups = pivot_groups = 0
    labels_after = 0
    for group, src, dst, is_in in located:
        key = (src, dst)
        if key in route_choice:
            cgroup = CGroup(
                hub=group.hub,
                rank=group.rank,
                kind=ROUTE,
                src=src,
                dst=dst,
                route_id=route_choice[key],
                pivot=group.pivots[0],
                size=len(group),
            )
            route_groups += 1
            labels_after += 1
        elif key in pivot_choice:
            cgroup = CGroup(
                hub=group.hub,
                rank=group.rank,
                kind=PIVOT,
                src=src,
                dst=dst,
                pivot=pivot_candidates[key][0],
                size=len(group),
            )
            pivot_groups += 1
            labels_after += 1
        else:
            cgroup = CGroup(
                hub=group.hub,
                rank=group.rank,
                kind=PLAIN,
                src=src,
                dst=dst,
                plain=group,
                size=len(group),
            )
            labels_after += len(group)
        if is_in:
            in_cgroups[dst].append(cgroup)
        else:
            out_cgroups[src].append(cgroup)

    stats = CompressionStats(
        labels_before=index.num_labels,
        labels_after=labels_after,
        route_groups=route_groups,
        pivot_groups=pivot_groups,
    )
    compressed = CompressedTTLIndex(index, in_cgroups, out_cgroups, stats)
    return compressed, stats
