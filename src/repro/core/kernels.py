"""Vectorized label-scan kernels over the sealed int64 columns.

The flat :class:`~repro.core.store.LabelStore` (PR 2) and the TTLIDX03
raw-int64 mmap blobs (PR 5) keep every label column contiguous exactly
so label scans can stop being per-label Python loops.  This module is
where that pays off: every kernel operates on **zero-copy**
``numpy.int64`` views of the sealed columns (``np.frombuffer`` over
heap ``array('q')`` columns, ``np.asarray`` over the ``'q'``-cast
memoryviews of a mapped store — see
:meth:`~repro.core.store.LabelStore.ndarray_columns`), replacing the
selector loops with ``searchsorted`` window selection and per-group
``minimum.reduceat``/``maximum.reduceat`` reductions.

Correctness is anchored to the scalar selectors in
:mod:`repro.core.sketch`, which remain the oracle:

* the per-hub reductions compute exactly the candidate each scalar
  bisection pair finds (within a group ``deps``/``arrs`` both ascend,
  so "first label with ``dep >= t``" *is* "min ``arr`` among
  ``dep >= t``");
* the winning candidate is then chosen by walking the same
  rank-ordered group merge (:func:`_iter_merge` mirrors
  ``sketch._merge_groups``) with the same strict comparisons, so
  tie-breaks — and therefore journeys — are byte-identical;
* profile enumeration generates **all** window combinations and
  Pareto-filters them columnar; the scalar generator's incremental
  suppression only ever drops weakly-dominated pairs, so the final
  frontier is provably the same set.

Set ``REPRO_SCALAR_KERNELS=1`` to force the scalar paths (the
equality gate in tests and CI diffes the two).  When numpy is absent
the kernels degrade to the scalar paths with a one-time log warning.

Assumption shared with the rest of the store layer: label groups are
never empty (the builder only seals groups with at least one label).
Nodes with no groups are handled explicitly.
"""

from __future__ import annotations

import logging
import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.metrics import QueryMetrics
from repro.timeutil import INF, NEG_INF

try:  # pragma: no cover - exercised by the numpy-absent degrade test
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

logger = logging.getLogger(__name__)

#: Environment switch forcing the scalar (oracle) paths.
SCALAR_ENV = "REPRO_SCALAR_KERNELS"

#: Point and profile queries over fewer labels than this stay scalar:
#: a handful of bisections beats the fixed cost of ~20 numpy
#: dispatches.  Batch one-to-all passes use their own break-even
#: (``use_for_one_to_all``), but honor 0 as the same force switch.
#: Override with REPRO_KERNEL_MIN_LABELS (0 forces vectorized).
POINT_MIN_LABELS_ENV = "REPRO_KERNEL_MIN_LABELS"
_DEFAULT_POINT_MIN_LABELS = 4096

_warned_absent = False


def _scalar_forced() -> bool:
    return os.environ.get(SCALAR_ENV, "").strip().lower() in (
        "1", "true", "yes", "on",
    )


def vectorized_available() -> bool:
    """True when the numpy kernels may be used at all."""
    global _warned_absent
    if _scalar_forced():
        return False
    if np is None:
        if not _warned_absent:
            _warned_absent = True
            logger.warning(
                "numpy is not installed; repro.core.kernels degrades to "
                "the scalar label-scan paths (install numpy>=1.22 for "
                "vectorized queries)"
            )
        return False
    return True


def point_min_labels() -> int:
    """Label-count threshold below which point queries stay scalar."""
    raw = os.environ.get(POINT_MIN_LABELS_ENV)
    if raw is None:
        return _DEFAULT_POINT_MIN_LABELS
    try:
        return max(0, int(raw))
    except ValueError:
        return _DEFAULT_POINT_MIN_LABELS


def use_for_point(index, u: int, v: int) -> bool:
    """Dispatch decision for one point query on ``index``."""
    if not vectorized_available():
        return False
    return (
        index.out_label_count(u) + index.in_label_count(v)
        >= point_min_labels()
    )


def use_for_one_to_all(index, num_targets: int) -> bool:
    """Dispatch decision for one one-to-many/matrix-row pass.

    The one-to-all kernel costs one columnar sweep over the *entire*
    in-store regardless of how many targets the caller wants; the
    scalar path costs one pair merge per target.  Per-node label
    counts are roughly uniform, so the break-even is a fixed fraction
    of the station count.  ``REPRO_KERNEL_MIN_LABELS=0`` (the test
    force switch) also forces this path.
    """
    if not vectorized_available():
        return False
    if point_min_labels() == 0:
        return True
    return 4 * num_targets >= index.graph.n


# ----------------------------------------------------------------------
# Column-extent plumbing
# ----------------------------------------------------------------------


class _Side:
    """The ndarray views and one node's extents on one store side."""

    __slots__ = (
        "nd", "g0", "g1", "lo", "hi", "deps", "arrs",
        "hubs", "ranks", "starts_rel", "sizes",
    )

    def __init__(self, store, node: int) -> None:
        nd = store.ndarray_columns()
        self.nd = nd
        g0, g1 = store.node_group_extent(node)
        self.g0 = g0
        self.g1 = g1
        gs = nd["group_starts"][g0:g1 + 1]
        lo = int(gs[0]) if g1 > g0 else 0
        hi = int(gs[-1]) if g1 > g0 else 0
        self.lo = lo
        self.hi = hi
        self.deps = nd["deps"][lo:hi]
        self.arrs = nd["arrs"][lo:hi]
        self.hubs = nd["hubs"][g0:g1]
        self.ranks = nd["group_ranks"][g0:g1]
        self.starts_rel = gs[:-1] - lo if g1 > g0 else gs[:0]
        self.sizes = np.diff(gs) if g1 > g0 else gs[:0]

    def __len__(self) -> int:
        return self.g1 - self.g0

    @property
    def num_labels(self) -> int:
        return self.hi - self.lo

    def group_slice(self, local: int) -> Tuple[int, int]:
        """Absolute label range of local group ``local``."""
        gs = self.nd["group_starts"]
        g = self.g0 + local
        return int(gs[g]), int(gs[g + 1])

    def segment(self, local: int, k: int, src: int, dst: int):
        """Materialize label ``k`` of local group ``local``."""
        from repro.core.sketch import Segment

        lo, _ = self.group_slice(local)
        i = lo + k
        nd = self.nd
        trip = int(nd["trips"][i])
        pivot = int(nd["pivots"][i])
        return Segment(
            src,
            dst,
            int(nd["deps"][i]),
            int(nd["arrs"][i]),
            None if trip < 0 else trip,
            None if pivot < 0 else pivot,
        )


def _iter_merge(hubs_o, ranks_o, hubs_i, ranks_i, u: int, v: int):
    """Mirror of ``sketch._merge_groups`` over bare metadata lists.

    Yields ``(kind, i, j)`` with local group positions; the emission
    order (directs checked before the rank comparison) is what makes
    kernel tie-breaks identical to the scalar selectors.
    """
    i = j = 0
    len_out, len_in = len(hubs_o), len(hubs_i)
    while i < len_out or j < len_in:
        if i < len_out and hubs_o[i] == v:
            yield ("out", i, -1)
            i += 1
            continue
        if j < len_in and hubs_i[j] == u:
            yield ("in", -1, j)
            j += 1
            continue
        if j == len_in or (i < len_out and ranks_o[i] < ranks_i[j]):
            i += 1
            continue
        if i == len_out or ranks_i[j] < ranks_o[i]:
            j += 1
            continue
        yield ("pair", i, j)
        i += 1
        j += 1


def _count_scan(
    metrics: Optional[QueryMetrics],
    out_side: _Side,
    in_side: _Side,
    candidates: int,
) -> None:
    if metrics is None:
        return
    metrics.labels_scanned += out_side.num_labels + in_side.num_labels
    metrics.sketches_generated += candidates


def _group_reduce_min(values, mask, starts_rel):
    """Per-group min of ``values`` where ``mask``, else ``INF``."""
    if not len(starts_rel):
        return values[:0]
    return np.minimum.reduceat(np.where(mask, values, INF), starts_rel)


def _group_reduce_max(values, mask, starts_rel):
    """Per-group max of ``values`` where ``mask``, else ``NEG_INF``."""
    if not len(starts_rel):
        return values[:0]
    return np.maximum.reduceat(np.where(mask, values, NEG_INF), starts_rel)


def _shared_ranks(ranks_o, ranks_i):
    """Positions of rank-matched (pairable) groups on both sides."""
    _, idx_o, idx_i = np.intersect1d(
        ranks_o, ranks_i, assume_unique=True, return_indices=True
    )
    return idx_o, idx_i


# ----------------------------------------------------------------------
# Point-query kernels (EAP / LDP / SDP)
# ----------------------------------------------------------------------


def eap_sketch(index, u: int, v: int, t: int,
               metrics: Optional[QueryMetrics] = None):
    """Vectorized twin of ``sketch.best_eap_sketch``."""
    from repro.core.sketch import Sketch

    side_o = _Side(index.out_store, u)
    side_i = _Side(index.in_store, v)
    # Per out-group: arrival at the hub of the first label departing
    # >= t (INF when the whole group departs earlier).
    mid = _group_reduce_min(side_o.arrs, side_o.deps >= t, side_o.starts_rel)
    # Per in-group departure threshold: the matched out-group's hub
    # arrival for pairable groups, t itself for the direct in-group
    # (hub == u), INF (no candidate) otherwise.
    thr = np.full(len(side_i), INF, dtype=np.int64)
    if len(side_o) and len(side_i):
        idx_o, idx_i = _shared_ranks(side_o.ranks, side_i.ranks)
        thr[idx_i] = mid[idx_o]
    thr[side_i.hubs == u] = t
    cand_i = _group_reduce_min(
        side_i.arrs,
        side_i.deps >= np.repeat(thr, side_i.sizes),
        side_i.starts_rel,
    )

    hubs_o, ranks_o = side_o.hubs.tolist(), side_o.ranks.tolist()
    hubs_i, ranks_i = side_i.hubs.tolist(), side_i.ranks.tolist()
    mid_l, cand_l = mid.tolist(), cand_i.tolist()
    best_arr = INF
    best = None
    candidates = 0
    for kind, i, j in _iter_merge(hubs_o, ranks_o, hubs_i, ranks_i, u, v):
        arr = mid_l[i] if kind == "out" else cand_l[j]
        if arr >= INF:
            continue
        candidates += 1
        if arr < best_arr:
            best_arr = arr
            best = (kind, i, j)
    _count_scan(metrics, side_o, side_i, candidates)
    if best is None:
        return None
    kind, i, j = best
    if kind == "out":
        lo, hi = side_o.group_slice(i)
        k = int(np.searchsorted(side_o.nd["deps"][lo:hi], t))
        seg = side_o.segment(i, k, u, v)
        return Sketch(seg.dep, seg.arr, seg, None)
    if kind == "in":
        lo, hi = side_i.group_slice(j)
        k = int(np.searchsorted(side_i.nd["deps"][lo:hi], t))
        seg = side_i.segment(j, k, u, v)
        return Sketch(seg.dep, seg.arr, None, seg)
    lo, hi = side_o.group_slice(i)
    k = int(np.searchsorted(side_o.nd["deps"][lo:hi], t))
    mid_val = int(side_o.nd["arrs"][lo + k])
    lo2, hi2 = side_i.group_slice(j)
    jj = int(np.searchsorted(side_i.nd["deps"][lo2:hi2], mid_val))
    hub = int(side_o.nd["hubs"][side_o.g0 + i])
    first = side_o.segment(i, k, u, hub)
    second = side_i.segment(j, jj, hub, v)
    return Sketch(first.dep, second.arr, first, second)


def ldp_sketch(index, u: int, v: int, t_end: int,
               metrics: Optional[QueryMetrics] = None):
    """Vectorized twin of ``sketch.best_ldp_sketch``."""
    from repro.core.sketch import Sketch

    side_o = _Side(index.out_store, u)
    side_i = _Side(index.in_store, v)
    # Per in-group: departure from the hub of the last label arriving
    # <= t_end (NEG_INF when the whole group arrives later).
    mid = _group_reduce_max(
        side_i.deps, side_i.arrs <= t_end, side_i.starts_rel
    )
    # Per out-group arrival threshold at the hub.
    thr = np.full(len(side_o), NEG_INF, dtype=np.int64)
    if len(side_o) and len(side_i):
        idx_o, idx_i = _shared_ranks(side_o.ranks, side_i.ranks)
        thr[idx_o] = mid[idx_i]
    thr[side_o.hubs == v] = t_end
    cand_o = _group_reduce_max(
        side_o.deps,
        side_o.arrs <= np.repeat(thr, side_o.sizes),
        side_o.starts_rel,
    )

    hubs_o, ranks_o = side_o.hubs.tolist(), side_o.ranks.tolist()
    hubs_i, ranks_i = side_i.hubs.tolist(), side_i.ranks.tolist()
    mid_l, cand_l = mid.tolist(), cand_o.tolist()
    best_dep = NEG_INF
    best = None
    candidates = 0
    for kind, i, j in _iter_merge(hubs_o, ranks_o, hubs_i, ranks_i, u, v):
        dep = mid_l[j] if kind == "in" else cand_l[i]
        if dep <= NEG_INF:
            continue
        candidates += 1
        if dep > best_dep:
            best_dep = dep
            best = (kind, i, j)
    _count_scan(metrics, side_o, side_i, candidates)
    if best is None:
        return None
    kind, i, j = best
    if kind == "out":
        lo, hi = side_o.group_slice(i)
        k = int(np.searchsorted(side_o.nd["arrs"][lo:hi], t_end, "right")) - 1
        seg = side_o.segment(i, k, u, v)
        return Sketch(seg.dep, seg.arr, seg, None)
    if kind == "in":
        lo, hi = side_i.group_slice(j)
        k = int(np.searchsorted(side_i.nd["arrs"][lo:hi], t_end, "right")) - 1
        seg = side_i.segment(j, k, u, v)
        return Sketch(seg.dep, seg.arr, None, seg)
    lo2, hi2 = side_i.group_slice(j)
    jj = int(np.searchsorted(side_i.nd["arrs"][lo2:hi2], t_end, "right")) - 1
    mid_val = int(side_i.nd["deps"][lo2 + jj])
    lo, hi = side_o.group_slice(i)
    k = int(np.searchsorted(side_o.nd["arrs"][lo:hi], mid_val, "right")) - 1
    hub = int(side_o.nd["hubs"][side_o.g0 + i])
    first = side_o.segment(i, k, u, hub)
    second = side_i.segment(j, jj, hub, v)
    return Sketch(first.dep, second.arr, first, second)


def _window(deps, arrs, t: int, t_end: int) -> Tuple[int, int]:
    """Label range with ``dep >= t`` and ``arr <= t_end`` — contiguous
    because both columns ascend within a group."""
    k0 = int(np.searchsorted(deps, t))
    k1 = k0 + int(np.searchsorted(arrs[k0:], t_end, "right"))
    return k0, k1


def _pair_combos(side_o: _Side, i: int, side_i: _Side, j: int,
                 t: int, t_end: int):
    """The scalar two-pointer's candidate sequence for one shared hub.

    Returns ``(k0, out_deps, in_pos, in_arrs)`` for the counted
    (prefix-valid) candidates, all ascending in ``k`` — empty arrays
    when the group pair yields none.  The scalar loop's three break
    conditions are each monotone in ``k``, so the candidates it counts
    form exactly this prefix.
    """
    lo, hi = side_o.group_slice(i)
    deps_o = side_o.nd["deps"][lo:hi]
    arrs_o = side_o.nd["arrs"][lo:hi]
    k0, k1 = _window(deps_o, arrs_o, t, t_end)
    empty = deps_o[:0]
    if k0 >= k1:
        return k0, empty, empty, empty
    lo2, hi2 = side_i.group_slice(j)
    deps_i = side_i.nd["deps"][lo2:hi2]
    arrs_i = side_i.nd["arrs"][lo2:hi2]
    len_in = hi2 - lo2
    mids = arrs_o[k0:k1]
    pos = np.searchsorted(deps_i, mids)
    exhausted = pos >= len_in
    arrs = arrs_i[np.minimum(pos, len_in - 1)]
    invalid = exhausted | (arrs > t_end)
    m = int(np.argmax(invalid)) if invalid.any() else k1 - k0
    if m == 0:
        return k0, empty, empty, empty
    return k0, deps_o[k0:k0 + m], pos[:m], arrs[:m]


def sdp_sketch(index, u: int, v: int, t: int, t_end: int,
               metrics: Optional[QueryMetrics] = None):
    """Vectorized twin of ``sketch.best_sdp_sketch``."""
    from repro.core.sketch import Sketch

    side_o = _Side(index.out_store, u)
    side_i = _Side(index.in_store, v)
    hubs_o, ranks_o = side_o.hubs.tolist(), side_o.ranks.tolist()
    hubs_i, ranks_i = side_i.hubs.tolist(), side_i.ranks.tolist()
    best_duration = INF
    best = None  # (kind, i, j, k, jj)
    candidates = 0
    for kind, i, j in _iter_merge(hubs_o, ranks_o, hubs_i, ranks_i, u, v):
        if kind == "pair":
            k0, deps_c, pos_c, arrs_c = _pair_combos(
                side_o, i, side_i, j, t, t_end
            )
            m = len(deps_c)
            if not m:
                continue
            candidates += m
            durations = arrs_c - deps_c
            am = int(np.argmin(durations))
            duration = int(durations[am])
            if duration < best_duration:
                best_duration = duration
                best = (kind, i, j, k0 + am, int(pos_c[am]))
        else:
            side = side_o if kind == "out" else side_i
            local = i if kind == "out" else j
            lo, hi = side.group_slice(local)
            deps = side.nd["deps"][lo:hi]
            arrs = side.nd["arrs"][lo:hi]
            k0, k1 = _window(deps, arrs, t, t_end)
            if k0 >= k1:
                continue
            candidates += k1 - k0
            durations = arrs[k0:k1] - deps[k0:k1]
            am = int(np.argmin(durations))
            duration = int(durations[am])
            if duration < best_duration:
                best_duration = duration
                best = (kind, i, j, k0 + am, 0)
    _count_scan(metrics, side_o, side_i, candidates)
    if best is None:
        return None
    kind, i, j, k, jj = best
    if kind == "out":
        seg = side_o.segment(i, k, u, v)
        return Sketch(seg.dep, seg.arr, seg, None)
    if kind == "in":
        seg = side_i.segment(j, k, u, v)
        return Sketch(seg.dep, seg.arr, None, seg)
    hub = int(side_o.nd["hubs"][side_o.g0 + i])
    first = side_o.segment(i, k, u, hub)
    second = side_i.segment(j, jj, hub, v)
    return Sketch(first.dep, second.arr, first, second)


# ----------------------------------------------------------------------
# Profile enumeration: columnar candidate generation + dominance filter
# ----------------------------------------------------------------------


def pareto_filter(deps, arrs) -> List[Tuple[int, int]]:
    """Non-dominated ``(dep, arr)`` pairs, ascending by departure.

    Columnar equivalent of folding every candidate through
    :meth:`repro.algorithms.profiles.ParetoProfile.add`: weak
    dominance, ties collapsed.
    """
    if not len(deps):
        return []
    order = np.lexsort((arrs, deps))
    d = deps[order]
    a = arrs[order]
    # Per departure keep the earliest arrival (later same-dep arrivals
    # are weakly dominated); d is then strictly increasing.
    first = np.empty(len(d), dtype=bool)
    first[0] = True
    first[1:] = d[1:] != d[:-1]
    d = d[first]
    a = a[first]
    # A pair survives iff every strictly later departure arrives
    # strictly later: compare against the suffix minimum of arrivals.
    keep = np.empty(len(d), dtype=bool)
    keep[-1] = True
    if len(d) > 1:
        suffix = np.minimum.accumulate(a[::-1])[::-1]
        keep[:-1] = a[:-1] < suffix[1:]
    return list(zip(d[keep].tolist(), a[keep].tolist()))


def _emitted_count(arrs_c) -> int:
    """How many sketches the scalar pair generator would yield for this
    candidate sequence: consecutive equal-arrival candidates collapse
    into one (the pending-suppression in ``sketch._pair_sketches``)."""
    if not len(arrs_c):
        return 0
    return 1 + int(np.count_nonzero(arrs_c[1:] != arrs_c[:-1]))


def profile_pairs(index, u: int, v: int, t: int, t_end: int,
                  metrics: Optional[QueryMetrics] = None,
                  ) -> List[Tuple[int, int]]:
    """Vectorized twin of ``profile_queries.ttl_profile``."""
    side_o = _Side(index.out_store, u)
    side_i = _Side(index.in_store, v)
    dep_parts = []
    arr_parts = []
    generated = 0

    # Direct labels spanning u -> v on either side.  Group order does
    # not matter here: the Pareto frontier of a candidate set is
    # insertion-order independent.
    for side, hub_match in ((side_o, v), (side_i, u)):
        for local in np.nonzero(side.hubs == hub_match)[0].tolist():
            lo, hi = side.group_slice(local)
            deps = side.nd["deps"][lo:hi]
            arrs = side.nd["arrs"][lo:hi]
            k0, k1 = _window(deps, arrs, t, t_end)
            if k0 < k1:
                dep_parts.append(deps[k0:k1])
                arr_parts.append(arrs[k0:k1])
                generated += k1 - k0

    if len(side_o) and len(side_i):
        idx_o, idx_i = _shared_ranks(side_o.ranks, side_i.ranks)
        for i, j in zip(idx_o.tolist(), idx_i.tolist()):
            _, deps_c, _, arrs_c = _pair_combos(
                side_o, i, side_i, j, t, t_end
            )
            if len(deps_c):
                dep_parts.append(deps_c)
                arr_parts.append(arrs_c)
                generated += _emitted_count(arrs_c)

    if metrics is not None:
        metrics.labels_scanned += side_o.num_labels + side_i.num_labels
        metrics.sketches_generated += generated
    if not dep_parts:
        return []
    return pareto_filter(
        np.concatenate(dep_parts), np.concatenate(arr_parts)
    )


# ----------------------------------------------------------------------
# Batched one-to-many / matrix / isochrone: one pass over the in-store
# ----------------------------------------------------------------------


def _derived(store, key: str, build):
    """Memoize a derived array in the store's ndarray cache dict (the
    cache lives exactly as long as the zero-copy views themselves)."""
    nd = store.ndarray_columns()
    value = nd.get(key)
    if value is None:
        value = build(nd)
        nd[key] = value
    return value


def _rank_per_label(store):
    """Each label's group hub rank, expanded to label granularity."""
    return _derived(
        store,
        "_rank_per_label",
        lambda nd: np.repeat(
            nd["group_ranks"], np.diff(nd["group_starts"])
        ),
    )


def one_to_all_arrivals(index, source: int, t: int):
    """Earliest arrival from ``source`` (departing >= ``t``) to every
    station, as an int64 ndarray with ``INF`` where unreachable.

    One columnar pass over the *entire* in-store: each out-label hub
    arrival is scattered to a per-rank threshold, every in-label in
    the index is masked against its group's threshold in one shot, and
    two ``reduceat`` levels (labels -> groups -> nodes) produce the
    answers.  Cost is O(total labels) vectorized, independent of how
    many targets the caller wants — this is the kernel behind
    ``/v1/batch``.
    """
    n = index.graph.n
    side_o = _Side(index.out_store, source)
    mid = _group_reduce_min(side_o.arrs, side_o.deps >= t, side_o.starts_rel)

    thr_by_rank = np.full(n, INF, dtype=np.int64)
    if len(side_o):
        thr_by_rank[side_o.ranks] = mid
    # Direct in-labels (hub == source): any departure >= t works.
    thr_by_rank[index.ranks[source]] = t

    in_store = index.in_store
    ndi = in_store.ndarray_columns()
    group_starts = ndi["group_starts"]
    num_groups = len(ndi["hubs"])
    if num_groups:
        thr_label = thr_by_rank[_rank_per_label(in_store)]
        masked = np.where(ndi["deps"] >= thr_label, ndi["arrs"], INF)
        per_group = np.minimum.reduceat(masked, group_starts[:-1])
    else:
        per_group = ndi["deps"][:0]

    if len(per_group):
        empty_nodes = _derived(
            in_store,
            "_empty_nodes",
            lambda nd: np.diff(nd["node_starts"]) == 0,
        )
        # reduceat over the raw node starts, with one INF sentinel
        # appended so a trailing empty node's start (== num_groups) is
        # a valid index.  Clipping the starts instead would be wrong:
        # it silently truncates the *previous* node's segment by one
        # group.  Mid-array empty nodes produce a one-element garbage
        # reduction (reduceat semantics for starts[i] >= starts[i+1]),
        # which the empty_nodes mask overwrites.
        padded = np.concatenate(
            (per_group, np.array([INF], dtype=np.int64))
        )
        per_node = np.minimum.reduceat(padded, ndi["node_starts"][:-1])
        per_node[empty_nodes] = INF
    else:
        per_node = np.full(n, INF, dtype=np.int64)

    # Direct out-labels (hub == target).
    if len(side_o):
        direct = np.full(n, INF, dtype=np.int64)
        direct[side_o.hubs] = mid
        per_node = np.minimum(per_node, direct)
    per_node[source] = t
    return per_node


def one_to_many_values(
    index, source: int, targets: Iterable[int], t: int
) -> Dict[int, Optional[int]]:
    """Vectorized twin of ``batch.one_to_many_eat`` (values only —
    identical because the minimum candidate arrival is unique
    regardless of merge order)."""
    arrivals = one_to_all_arrivals(index, source, t)
    result: Dict[int, Optional[int]] = {}
    for target in targets:
        arr = int(arrivals[target])
        result[target] = arr if arr < INF else None
    return result
