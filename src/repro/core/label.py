"""Label records for TTL (Definition 7).

A label ``(hub, dep, arr, trip, pivot)`` stands for one canonical path
between a node and a *hub* that ranks higher than the node:

* in an **in-label** of ``v`` the path runs ``hub -> v``;
* in an **out-label** of ``u`` the path runs ``u -> hub``;
* ``trip`` is the path's vehicle (``None`` when the path transfers);
* ``pivot`` is the highest-ranked intermediate node (``None`` when the
  path is a single connection), used by PathUnfold.

Labels of one node are kept grouped per hub, groups ordered by hub
rank and pairs within a group ordered by departure time — exactly the
total order ``f(l)`` of Section 4.1 that SketchGen's linear merge
relies on.  A :class:`LabelGroup` stores its pairs column-wise
(parallel arrays) so the hot query loops touch compact int lists.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence


class Label(NamedTuple):
    """One TTL label (Definition 7)."""

    hub: int
    dep: int
    arr: int
    trip: Optional[int]
    pivot: Optional[int]


class LabelGroup:
    """All labels of one node that share a hub.

    Pairs are sorted ascending by departure and, because each group is
    a Pareto frontier (dominated canonical paths cannot exist), also
    ascending by arrival.
    """

    __slots__ = ("hub", "rank", "deps", "arrs", "trips", "pivots")

    def __init__(
        self,
        hub: int,
        rank: int,
        deps: Optional[List[int]] = None,
        arrs: Optional[List[int]] = None,
        trips: Optional[List[Optional[int]]] = None,
        pivots: Optional[List[Optional[int]]] = None,
    ) -> None:
        self.hub = hub
        self.rank = rank
        self.deps: List[int] = deps if deps is not None else []
        self.arrs: List[int] = arrs if arrs is not None else []
        self.trips: List[Optional[int]] = trips if trips is not None else []
        self.pivots: List[Optional[int]] = pivots if pivots is not None else []

    def append(
        self, dep: int, arr: int, trip: Optional[int], pivot: Optional[int]
    ) -> None:
        """Append one label (caller maintains ordering)."""
        self.deps.append(dep)
        self.arrs.append(arr)
        self.trips.append(trip)
        self.pivots.append(pivot)

    def reverse(self) -> None:
        """Reverse in place (descending-phase output -> ascending)."""
        self.deps.reverse()
        self.arrs.reverse()
        self.trips.reverse()
        self.pivots.reverse()

    def label(self, i: int) -> Label:
        """The ``i``-th label as a :class:`Label` record."""
        return Label(
            self.hub, self.deps[i], self.arrs[i], self.trips[i], self.pivots[i]
        )

    def labels(self) -> List[Label]:
        """All labels of the group in order."""
        return [self.label(i) for i in range(len(self.deps))]

    def check_invariants(self) -> None:
        """Assert the Pareto / ordering invariants (used by tests)."""
        for i in range(len(self.deps) - 1):
            if not (
                self.deps[i] < self.deps[i + 1]
                and self.arrs[i] < self.arrs[i + 1]
            ):
                raise AssertionError(
                    f"group for hub {self.hub} is not a strict Pareto "
                    f"frontier at position {i}: "
                    f"({self.deps[i]},{self.arrs[i]}) then "
                    f"({self.deps[i + 1]},{self.arrs[i + 1]})"
                )

    def __len__(self) -> int:
        return len(self.deps)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LabelGroup(hub={self.hub}, size={len(self.deps)})"


def total_label_count(groups_per_node: Sequence[List[LabelGroup]]) -> int:
    """Total number of labels across a per-node group table."""
    return sum(
        len(group) for groups in groups_per_node for group in groups
    )
