"""The TTL planner — query front end (Section 4).

:class:`TTLPlanner` wires together index construction, SketchGen,
refinement, and PathUnfold behind the common
:class:`~repro.planner.RoutePlanner` interface.  ``concise=True``
switches path reconstruction to the concise representation of
Section 8 (cheaper; benchmarked separately in Figure 3).
"""

from __future__ import annotations

from typing import Optional

from repro.core.build import OrderSpec, build_index
from repro.core.index import TTLIndex
from repro.core.metrics import QueryMetrics
from repro.core.sketch import (
    best_eap_sketch,
    best_ldp_sketch,
    best_sdp_sketch,
)
from repro.core.unfold import sketch_to_journey
from repro.graph.timetable import TimetableGraph
from repro.journey import Journey
from repro.planner import RoutePlanner


class TTLPlanner(RoutePlanner):
    """Timetable Labelling: the paper's method."""

    name = "TTL"

    def __init__(
        self,
        graph: TimetableGraph,
        order: OrderSpec = "hub",
        concise: bool = False,
        index: Optional[TTLIndex] = None,
        build_jobs: int = 1,
        build_chunk_size: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
        build_resume: bool = False,
    ) -> None:
        """Create the planner.

        Args:
            graph: the timetable graph.
            order: node-order specification (default H-Order).
            concise: return concise paths instead of full paths.
            index: adopt a pre-built index instead of building one in
                :meth:`preprocess` (it must index the same graph).
            build_jobs: worker processes for index construction;
                ``> 1`` routes preprocessing through the build farm
                (``repro.buildfarm``), whose output is identical to
                the serial builder's.
            build_chunk_size: hubs per farm chunk (default: auto).
            checkpoint_dir: persist build progress as resumable
                checkpoint shards in this directory.
            build_resume: resume from a matching checkpoint instead of
                rebuilding completed chunks.
        """
        super().__init__(graph)
        self._order = order
        self.concise = concise
        self.index: Optional[TTLIndex] = index
        self._build_jobs = build_jobs
        self._build_chunk_size = build_chunk_size
        self._checkpoint_dir = checkpoint_dir
        self._build_resume = build_resume
        #: Cumulative per-query observability counters.
        self.metrics = QueryMetrics()
        #: Live build observability (polled by ``/healthz`` while a
        #: background warm-up runs).
        from repro.buildfarm.progress import ProgressTracker

        self.build_progress = ProgressTracker()
        if index is not None:
            self._preprocess_seconds = (
                index.build_stats.seconds if index.build_stats else 0.0
            )

    def _build(self) -> None:
        tracker = self.build_progress
        if (
            self._build_jobs > 1
            or self._checkpoint_dir is not None
        ):
            from repro.buildfarm import build_index_parallel

            self.index = build_index_parallel(
                self.graph,
                order=self._order,
                jobs=self._build_jobs,
                chunk_size=self._build_chunk_size,
                checkpoint_dir=self._checkpoint_dir,
                resume=self._build_resume,
                tracker=tracker,
            )
            return
        # Serial path: cheapest for one process, but still feeds the
        # progress tracker so readiness probes see hub counts.
        tracker.configure(jobs=1, hubs_total=self.graph.n, chunks_total=0)
        tracker.start_phase("build")
        self.index = build_index(
            self.graph,
            order=self._order,
            progress=lambda done, total: tracker.hub_done(),
        )
        tracker.start_phase("done")

    def index_bytes(self) -> int:
        from repro.core.serialize import index_bytes

        self.preprocess()
        assert self.index is not None
        return index_bytes(self.index)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _ready_index(self) -> TTLIndex:
        self.preprocess()
        assert self.index is not None
        return self.index

    def earliest_arrival(
        self, source: int, destination: int, t: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        index = self._ready_index()
        self.metrics.queries += 1
        sketch = best_eap_sketch(
            index, source, destination, t, metrics=self.metrics
        )
        if sketch is None:
            return None
        return sketch_to_journey(
            index, sketch, source, destination, self.concise,
            metrics=self.metrics,
        )

    def latest_departure(
        self, source: int, destination: int, t: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        index = self._ready_index()
        self.metrics.queries += 1
        sketch = best_ldp_sketch(
            index, source, destination, t, metrics=self.metrics
        )
        if sketch is None:
            return None
        return sketch_to_journey(
            index, sketch, source, destination, self.concise,
            metrics=self.metrics,
        )

    def shortest_duration(
        self, source: int, destination: int, t: int, t_end: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        self._check_window(t, t_end)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        index = self._ready_index()
        self.metrics.queries += 1
        sketch = best_sdp_sketch(
            index, source, destination, t, t_end, metrics=self.metrics
        )
        if sketch is None:
            return None
        return sketch_to_journey(
            index, sketch, source, destination, self.concise,
            metrics=self.metrics,
        )

    def profile(self, source: int, destination: int, t: int, t_end: int):
        """All non-dominated ``(dep, arr)`` journeys in the window.

        See :mod:`repro.core.profile_queries`.
        """
        from repro.core.profile_queries import ttl_profile
        from repro.resilience.deadline import check_deadline

        # Profile enumeration is the one TTL query that can run long
        # (wide windows generate thousands of sketches); honor the
        # request budget here and inside the enumeration itself.  The
        # EAP/LDP/SDP label merges stay check-free: they are bounded
        # and the per-query overhead would cost more than it protects.
        check_deadline()
        self._check_query(source, destination)
        self._check_window(t, t_end)
        if source == destination:
            return [(t, t)]
        index = self._ready_index()
        self.metrics.queries += 1
        return ttl_profile(
            index, source, destination, t, t_end, metrics=self.metrics
        )
