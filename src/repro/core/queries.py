"""The TTL planner — query front end (Section 4).

:class:`TTLPlanner` wires together index construction, SketchGen,
refinement, and PathUnfold behind the common
:class:`~repro.planner.RoutePlanner` interface.  ``concise=True``
switches path reconstruction to the concise representation of
Section 8 (cheaper; benchmarked separately in Figure 3).
"""

from __future__ import annotations

from typing import Optional

from repro.core.build import OrderSpec, build_index
from repro.core.index import TTLIndex
from repro.core.metrics import QueryMetrics
from repro.core.sketch import (
    best_eap_sketch,
    best_ldp_sketch,
    best_sdp_sketch,
)
from repro.core.unfold import sketch_to_journey
from repro.graph.timetable import TimetableGraph
from repro.journey import Journey
from repro.planner import RoutePlanner


class TTLPlanner(RoutePlanner):
    """Timetable Labelling: the paper's method."""

    name = "TTL"

    def __init__(
        self,
        graph: TimetableGraph,
        order: OrderSpec = "hub",
        concise: bool = False,
        index: Optional[TTLIndex] = None,
    ) -> None:
        """Create the planner.

        Args:
            graph: the timetable graph.
            order: node-order specification (default H-Order).
            concise: return concise paths instead of full paths.
            index: adopt a pre-built index instead of building one in
                :meth:`preprocess` (it must index the same graph).
        """
        super().__init__(graph)
        self._order = order
        self.concise = concise
        self.index: Optional[TTLIndex] = index
        #: Cumulative per-query observability counters.
        self.metrics = QueryMetrics()
        if index is not None:
            self._preprocess_seconds = (
                index.build_stats.seconds if index.build_stats else 0.0
            )

    def _build(self) -> None:
        self.index = build_index(self.graph, order=self._order)

    def index_bytes(self) -> int:
        from repro.core.serialize import index_bytes

        self.preprocess()
        assert self.index is not None
        return index_bytes(self.index)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _ready_index(self) -> TTLIndex:
        self.preprocess()
        assert self.index is not None
        return self.index

    def earliest_arrival(
        self, source: int, destination: int, t: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        index = self._ready_index()
        self.metrics.queries += 1
        sketch = best_eap_sketch(
            index, source, destination, t, metrics=self.metrics
        )
        if sketch is None:
            return None
        return sketch_to_journey(
            index, sketch, source, destination, self.concise,
            metrics=self.metrics,
        )

    def latest_departure(
        self, source: int, destination: int, t: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        index = self._ready_index()
        self.metrics.queries += 1
        sketch = best_ldp_sketch(
            index, source, destination, t, metrics=self.metrics
        )
        if sketch is None:
            return None
        return sketch_to_journey(
            index, sketch, source, destination, self.concise,
            metrics=self.metrics,
        )

    def shortest_duration(
        self, source: int, destination: int, t: int, t_end: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        self._check_window(t, t_end)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        index = self._ready_index()
        self.metrics.queries += 1
        sketch = best_sdp_sketch(
            index, source, destination, t, t_end, metrics=self.metrics
        )
        if sketch is None:
            return None
        return sketch_to_journey(
            index, sketch, source, destination, self.concise,
            metrics=self.metrics,
        )

    def profile(self, source: int, destination: int, t: int, t_end: int):
        """All non-dominated ``(dep, arr)`` journeys in the window.

        See :mod:`repro.core.profile_queries`.
        """
        from repro.core.profile_queries import ttl_profile
        from repro.resilience.deadline import check_deadline

        # Profile enumeration is the one TTL query that can run long
        # (wide windows generate thousands of sketches); honor the
        # request budget here and inside the enumeration itself.  The
        # EAP/LDP/SDP label merges stay check-free: they are bounded
        # and the per-query overhead would cost more than it protects.
        check_deadline()
        self._check_query(source, destination)
        self._check_window(t, t_end)
        if source == destination:
            return [(t, t)]
        index = self._ready_index()
        self.metrics.queries += 1
        return ttl_profile(
            index, source, destination, t, t_end, metrics=self.metrics
        )
