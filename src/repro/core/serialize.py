"""Index persistence and size accounting.

Two size notions:

* :func:`index_bytes` — the *model* size used by the Figure 4
  experiment: 20 bytes per label (five 32-bit fields: hub, dep, arr,
  trip, pivot) plus small per-group and per-node overheads.  This is
  how the paper counts index size, and is what the space benchmarks
  report for every method so the comparison is apples-to-apples.
* :func:`save_index` / :func:`load_index` — an actual binary file
  format (64-bit fields, magic header) for persisting built indices.
"""

from __future__ import annotations

import struct
from pathlib import Path as FsPath
from typing import BinaryIO, Dict, List, Union

from repro.core.index import TTLIndex
from repro.core.label import LabelGroup
from repro.errors import SerializationError
from repro.graph.timetable import TimetableGraph

PathLike = Union[str, FsPath]

_MAGIC = b"TTLIDX01"

#: Model cost per label: hub, dep, arr, trip, pivot as 32-bit ints.
BYTES_PER_LABEL = 20
#: Model cost per label group: hub id + length.
BYTES_PER_GROUP = 8
#: Model cost per node: two set pointers/lengths.
BYTES_PER_NODE = 16


def index_bytes(index: TTLIndex) -> int:
    """Model size of a TTL index in bytes (Figure 4 accounting)."""
    labels = index.num_labels
    groups = sum(len(g) for g in index.in_groups) + sum(
        len(g) for g in index.out_groups
    )
    return (
        labels * BYTES_PER_LABEL
        + groups * BYTES_PER_GROUP
        + index.graph.n * BYTES_PER_NODE
    )


def connections_bytes(num_connections: int) -> int:
    """Model size of one sorted connection array (CSA accounting):
    u, v, dep, arr, trip as 32-bit ints."""
    return num_connections * 20


# ----------------------------------------------------------------------
# Binary persistence
# ----------------------------------------------------------------------


def _write_group(fh: BinaryIO, group: LabelGroup) -> None:
    fh.write(struct.pack("<qq", group.hub, len(group)))
    for i in range(len(group)):
        trip = group.trips[i] if group.trips[i] is not None else -1
        pivot = group.pivots[i] if group.pivots[i] is not None else -1
        fh.write(
            struct.pack("<qqqq", group.deps[i], group.arrs[i], trip, pivot)
        )


def _read_group(fh: BinaryIO, ranks: List[int]) -> LabelGroup:
    hub, size = struct.unpack("<qq", _read_exact(fh, 16))
    group = LabelGroup(hub, ranks[hub])
    for _ in range(size):
        dep, arr, trip, pivot = struct.unpack("<qqqq", _read_exact(fh, 32))
        group.append(
            dep,
            arr,
            trip if trip >= 0 else None,
            pivot if pivot >= 0 else None,
        )
    return group


def _read_exact(fh: BinaryIO, count: int) -> bytes:
    data = fh.read(count)
    if len(data) != count:
        raise SerializationError("truncated index file")
    return data


def save_index(index: TTLIndex, path: PathLike) -> None:
    """Write ``index`` to ``path`` in the TTLIDX01 binary format."""
    with open(path, "wb") as fh:
        fh.write(_MAGIC)
        fh.write(struct.pack("<q", index.graph.n))
        for rank in index.ranks:
            fh.write(struct.pack("<q", rank))
        for groups_per_node in (index.in_groups, index.out_groups):
            for groups in groups_per_node:
                fh.write(struct.pack("<q", len(groups)))
                for group in groups:
                    _write_group(fh, group)


def load_index(path: PathLike, graph: TimetableGraph) -> TTLIndex:
    """Load an index written by :func:`save_index`.

    The caller supplies the graph the index was built for; a station
    count mismatch is rejected.
    """
    with open(path, "rb") as fh:
        magic = fh.read(len(_MAGIC))
        if magic != _MAGIC:
            raise SerializationError(f"not a TTL index file: {path}")
        (n,) = struct.unpack("<q", _read_exact(fh, 8))
        if n != graph.n:
            raise SerializationError(
                f"index built for {n} stations, graph has {graph.n}"
            )
        ranks = [
            struct.unpack("<q", _read_exact(fh, 8))[0] for _ in range(n)
        ]
        tables: List[List[Dict[int, LabelGroup]]] = []
        for _ in range(2):
            per_node: List[Dict[int, LabelGroup]] = []
            for _ in range(n):
                (count,) = struct.unpack("<q", _read_exact(fh, 8))
                groups: Dict[int, LabelGroup] = {}
                for _ in range(count):
                    group = _read_group(fh, ranks)
                    groups[group.hub] = group
                per_node.append(groups)
            tables.append(per_node)
    return TTLIndex(graph, ranks, tables[0], tables[1])
