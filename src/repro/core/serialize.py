"""Index persistence and size accounting.

Two size notions:

* :func:`index_bytes` — the *model* size used by the Figure 4
  experiment: 20 bytes per label (five 32-bit fields: hub, dep, arr,
  trip, pivot) plus small per-group and per-node overheads.  This is
  how the paper counts index size, and is what the space benchmarks
  report for every method so the comparison is apples-to-apples.
* :func:`save_index` / :func:`load_index` — an actual binary file
  format (64-bit fields, magic header) for persisting built indices.

File format ``TTLIDX03`` (current): a columnar layout whose label
columns are raw little-endian int64 blobs.  After the header (station
count, rank array, build-stats footer hoisted forward) comes a column
directory — ``(offset, item count, crc32)`` per column, sixteen
columns: the eight :data:`~repro.core.store.COLUMN_NAMES` for each
direction — and then the 8-byte-aligned blobs themselves.  Because the
blobs *are* the sealed :class:`~repro.core.store.LabelStore` columns,
loading can either copy them into heap arrays (``mmap=False``) or
``mmap`` the file read-only and wrap zero-copy ``memoryview`` slices
(``mmap=True``): no per-label Python object is ever built, and N
serving processes mapping the same file share one physical copy of the
index through the page cache.

Legacy formats still load: ``TTLIDX02`` (per-group records plus a
:class:`~repro.core.build.BuildStats` footer) and ``TTLIDX01`` (same
body, no stats).  ``save_index(..., version=2)`` keeps writing the old
format for compatibility tooling; only TTLIDX03 files can be
memory-mapped.

Loading validates what it reads — hub and pivot ids must be station
ids, the rank array must be a permutation of ``0..n-1``, counts must
be non-negative — and every defect raises
:class:`~repro.errors.SerializationError` with a clear message, never
a raw ``IndexError``/``struct.error``: a service must not crash (or,
worse, mis-answer) because an index file was corrupted in transit.
Saving is atomic (temp file + fsync + ``os.replace``), so a crash
mid-save can never leave a truncated index behind.
"""

from __future__ import annotations

import io
import mmap as mmap_module
import os
import struct
import sys
import zlib
from array import array
from contextlib import contextmanager
from pathlib import Path as FsPath
from typing import BinaryIO, Dict, Iterator, List, Optional, Union

from repro.core.build import BuildStats
from repro.core.index import TTLIndex
from repro.core.label import LabelGroup
from repro.core.store import COLUMN_NAMES, LabelStore
from repro.errors import SerializationError
from repro.graph.timetable import TimetableGraph

PathLike = Union[str, FsPath]

_MAGIC_V3 = b"TTLIDX03"
_MAGIC = b"TTLIDX02"
_LEGACY_MAGIC = b"TTLIDX01"

#: TTLIDX03 column-directory entry: byte offset, item count, crc32.
_DIR_ENTRY = "<3q"
#: Two directions x the eight store columns.
_NUM_COLUMNS = 2 * len(COLUMN_NAMES)

#: Stats footer: seconds, order_seconds as doubles; num_labels,
#: forward_pops, backward_pops, cover_pruned, dominance_pruned,
#: dijkstra_runs as signed 64-bit ints.
_STATS_FORMAT = "<2d6q"

#: Model cost per label: hub, dep, arr, trip, pivot as 32-bit ints.
BYTES_PER_LABEL = 20
#: Model cost per label group: hub id + length.
BYTES_PER_GROUP = 8
#: Model cost per node: two set pointers/lengths.
BYTES_PER_NODE = 16


def index_bytes(index: TTLIndex) -> int:
    """Model size of a TTL index in bytes (Figure 4 accounting)."""
    labels = index.num_labels
    groups = sum(len(g) for g in index.in_groups) + sum(
        len(g) for g in index.out_groups
    )
    return (
        labels * BYTES_PER_LABEL
        + groups * BYTES_PER_GROUP
        + index.graph.n * BYTES_PER_NODE
    )


def connections_bytes(num_connections: int) -> int:
    """Model size of one sorted connection array (CSA accounting):
    u, v, dep, arr, trip as 32-bit ints."""
    return num_connections * 20


# ----------------------------------------------------------------------
# Binary persistence
# ----------------------------------------------------------------------


@contextmanager
def atomic_write(path: PathLike) -> Iterator[BinaryIO]:
    """Write a file atomically: yield a handle onto a temp file in the
    target directory; on clean exit flush + fsync it, rename it over
    ``path`` with :func:`os.replace`, and fsync the directory entry.
    On failure the temp file is removed and ``path`` is untouched, so a
    crash mid-write leaves either the previous file or no file — never
    a truncated one.  Shared by :func:`save_index` and the build-farm
    checkpoint shards.
    """
    path = FsPath(path)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_directory(path.parent)


def write_group_record(fh: BinaryIO, group) -> None:
    """Write one label group in the TTLIDX02 group-record encoding
    (``<qq`` hub/size header, then ``<qqqq`` per label), the unit
    shared by full index files and checkpoint shards."""
    _write_group(fh, group)


def read_group_record(fh: BinaryIO, ranks: List[int], n: int) -> LabelGroup:
    """Read one TTLIDX02 group record, validating hub/pivot ids."""
    return _read_group(fh, ranks, n)


def read_exact(fh: BinaryIO, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise ``SerializationError``."""
    return _read_exact(fh, count)


def _write_group(fh: BinaryIO, group) -> None:
    fh.write(struct.pack("<qq", group.hub, len(group)))
    trips = group.trips
    pivots = group.pivots
    for i in range(len(group)):
        trip = trips[i] if trips[i] is not None else -1
        pivot = pivots[i] if pivots[i] is not None else -1
        fh.write(
            struct.pack("<qqqq", group.deps[i], group.arrs[i], trip, pivot)
        )


def _read_group(fh: BinaryIO, ranks: List[int], n: int) -> LabelGroup:
    hub, size = struct.unpack("<qq", _read_exact(fh, 16))
    if not 0 <= hub < n:
        raise SerializationError(
            f"corrupt index file: group hub {hub} outside 0..{n - 1}"
        )
    if size < 0:
        raise SerializationError(
            f"corrupt index file: negative group size {size}"
        )
    group = LabelGroup(hub, ranks[hub])
    for _ in range(size):
        dep, arr, trip, pivot = struct.unpack("<qqqq", _read_exact(fh, 32))
        if pivot >= n:
            raise SerializationError(
                f"corrupt index file: label pivot {pivot} outside "
                f"0..{n - 1}"
            )
        group.append(
            dep,
            arr,
            trip if trip >= 0 else None,
            pivot if pivot >= 0 else None,
        )
    return group


def _read_exact(fh: BinaryIO, count: int) -> bytes:
    data = fh.read(count)
    if len(data) != count:
        raise SerializationError("truncated index file")
    return data


def _write_stats(fh: BinaryIO, stats: Optional[BuildStats]) -> None:
    if stats is None:
        fh.write(struct.pack("<q", 0))
        return
    fh.write(struct.pack("<q", 1))
    fh.write(
        struct.pack(
            _STATS_FORMAT,
            stats.seconds,
            stats.order_seconds,
            stats.num_labels,
            stats.forward_pops,
            stats.backward_pops,
            stats.cover_pruned,
            stats.dominance_pruned,
            stats.dijkstra_runs,
        )
    )


def _read_stats(fh: BinaryIO) -> Optional[BuildStats]:
    (present,) = struct.unpack("<q", _read_exact(fh, 8))
    if present == 0:
        return None
    if present != 1:
        raise SerializationError(
            f"corrupt index file: bad stats flag {present}"
        )
    fields = struct.unpack(
        _STATS_FORMAT, _read_exact(fh, struct.calcsize(_STATS_FORMAT))
    )
    return BuildStats(
        seconds=fields[0],
        order_seconds=fields[1],
        num_labels=fields[2],
        forward_pops=fields[3],
        backward_pops=fields[4],
        cover_pruned=fields[5],
        dominance_pruned=fields[6],
        dijkstra_runs=fields[7],
    )


def save_index(index: TTLIndex, path: PathLike, version: int = 3) -> None:
    """Write ``index`` to ``path``; TTLIDX03 by default.

    ``version=3`` (default) writes the columnar mmap-capable format;
    ``version=2`` keeps writing the legacy TTLIDX02 group records for
    tooling that expects them.  Either way the write is *atomic*: the
    bytes go to a temporary file in the target directory, are flushed
    and fsynced, and only then renamed over ``path`` with
    :func:`os.replace`.  A crash mid-save therefore leaves either the
    previous index or no file — never a truncated file that a later
    service start would reject (or worse, half-load).  The temporary
    file is removed on failure.
    """
    if version == 3:
        _save_index_v3(index, path)
        return
    if version != 2:
        raise ValueError(f"unsupported index format version: {version}")
    with atomic_write(path) as fh:
        fh.write(_MAGIC)
        fh.write(struct.pack("<q", index.graph.n))
        for rank in index.ranks:
            fh.write(struct.pack("<q", rank))
        for groups_per_node in (index.in_groups, index.out_groups):
            for groups in groups_per_node:
                fh.write(struct.pack("<q", len(groups)))
                for group in groups:
                    _write_group(fh, group)
        _write_stats(fh, index.build_stats)


# ----------------------------------------------------------------------
# TTLIDX03: columnar, digested, mmap-capable
# ----------------------------------------------------------------------


def _require_little_endian() -> None:
    if sys.byteorder != "little":  # pragma: no cover - exotic hosts
        raise SerializationError(
            "TTLIDX03 blobs are little-endian; this host is "
            f"{sys.byteorder}-endian",
            hint="use save_index(..., version=2) on big-endian hosts",
        )


def _save_index_v3(index: TTLIndex, path: PathLike) -> None:
    _require_little_endian()
    n = index.graph.n
    stats_buffer = io.BytesIO()
    _write_stats(stats_buffer, index.build_stats)
    stats_blob = stats_buffer.getvalue()

    blobs: List[bytes] = []
    for store in (index.in_store, index.out_store):
        for name in COLUMN_NAMES:
            blobs.append(getattr(store, name).tobytes())

    header_size = (
        8  # magic
        + 8  # station count
        + 8 * n  # rank array
        + len(stats_blob)
        + 8  # column count
        + struct.calcsize(_DIR_ENTRY) * _NUM_COLUMNS
    )
    directory: List[bytes] = []
    offset = header_size
    for blob in blobs:
        directory.append(
            struct.pack(
                _DIR_ENTRY, offset, len(blob) // 8, zlib.crc32(blob)
            )
        )
        offset += len(blob)

    with atomic_write(path) as fh:
        fh.write(_MAGIC_V3)
        fh.write(struct.pack("<q", n))
        fh.write(array("q", index.ranks).tobytes())
        fh.write(stats_blob)
        fh.write(struct.pack("<q", _NUM_COLUMNS))
        for entry in directory:
            fh.write(entry)
        for blob in blobs:
            fh.write(blob)


def _check_ranks(ranks: List[int], n: int) -> None:
    seen = [False] * n
    for node, rank in enumerate(ranks):
        if not 0 <= rank < n or seen[rank]:
            raise SerializationError(
                f"corrupt index file: rank array is not a permutation "
                f"of 0..{n - 1} (rank {rank} of node {node})"
            )
        seen[rank] = True


def _read_stats_from(buf, offset: int):
    """Parse the stats record at ``offset``; returns (stats, end)."""
    try:
        (present,) = struct.unpack_from("<q", buf, offset)
    except struct.error:
        raise SerializationError("truncated index file") from None
    offset += 8
    if present == 0:
        return None, offset
    if present != 1:
        raise SerializationError(
            f"corrupt index file: bad stats flag {present}"
        )
    try:
        fields = struct.unpack_from(_STATS_FORMAT, buf, offset)
    except struct.error:
        raise SerializationError("truncated index file") from None
    stats = BuildStats(
        seconds=fields[0],
        order_seconds=fields[1],
        num_labels=fields[2],
        forward_pops=fields[3],
        backward_pops=fields[4],
        cover_pruned=fields[5],
        dominance_pruned=fields[6],
        dijkstra_runs=fields[7],
    )
    return stats, offset + struct.calcsize(_STATS_FORMAT)


def _load_index_v3(
    path: PathLike,
    graph: TimetableGraph,
    use_mmap: bool,
    verify: bool,
) -> TTLIndex:
    _require_little_endian()
    if use_mmap:
        with open(path, "rb") as fh:
            try:
                mapping = mmap_module.mmap(
                    fh.fileno(), 0, access=mmap_module.ACCESS_READ
                )
            except (ValueError, OSError):
                raise SerializationError(
                    "truncated index file"
                ) from None
        buf = memoryview(mapping)
    else:
        with open(path, "rb") as fh:
            buf = memoryview(fh.read())

    if bytes(buf[:8]) != _MAGIC_V3:
        raise SerializationError(f"not a TTLIDX03 index file: {path}")
    try:
        (n,) = struct.unpack_from("<q", buf, 8)
    except struct.error:
        raise SerializationError("truncated index file") from None
    if n < 0:
        raise SerializationError(
            f"corrupt index file: negative station count {n}"
        )
    if n != graph.n:
        raise SerializationError(
            f"index built for {n} stations, graph has {graph.n}"
        )
    if len(buf) < 16 + 8 * n:
        raise SerializationError("truncated index file")
    ranks = buf[16:16 + 8 * n].cast("q").tolist()
    _check_ranks(ranks, n)
    stats, offset = _read_stats_from(buf, 16 + 8 * n)
    try:
        (num_columns,) = struct.unpack_from("<q", buf, offset)
    except struct.error:
        raise SerializationError("truncated index file") from None
    if num_columns != _NUM_COLUMNS:
        raise SerializationError(
            f"corrupt index file: expected {_NUM_COLUMNS} columns, "
            f"directory lists {num_columns}"
        )
    offset += 8
    entry_size = struct.calcsize(_DIR_ENTRY)
    blobs_start = offset + entry_size * _NUM_COLUMNS
    columns = []
    for i in range(_NUM_COLUMNS):
        name = COLUMN_NAMES[i % len(COLUMN_NAMES)]
        try:
            blob_offset, count, crc = struct.unpack_from(
                _DIR_ENTRY, buf, offset + i * entry_size
            )
        except struct.error:
            raise SerializationError("truncated index file") from None
        if (
            count < 0
            or blob_offset < blobs_start
            or blob_offset % 8 != 0
            or blob_offset + 8 * count > len(buf)
        ):
            raise SerializationError(
                f"truncated index file: column {name!r} offset "
                f"{blob_offset} (+{count} items) outside the file",
                hint="the index file is corrupt; rebuild it with "
                "'repro-ttl build'",
            )
        blob = buf[blob_offset:blob_offset + 8 * count]
        if verify and zlib.crc32(blob) != crc:
            raise SerializationError(
                f"corrupt index file: column {name!r} digest mismatch",
                hint="the index file is corrupt; rebuild it with "
                "'repro-ttl build'",
            )
        if use_mmap:
            columns.append(blob.cast("q"))
        else:
            copied = array("q")
            copied.frombytes(blob)
            columns.append(copied)

    stores = []
    for direction in range(2):
        base = direction * len(COLUMN_NAMES)
        named = {
            name: columns[base + i]
            for i, name in enumerate(COLUMN_NAMES)
        }
        if use_mmap:
            store = LabelStore.frombuffer(n, named)
        else:
            store = LabelStore.__new__(LabelStore)
            store.n = n
            store.mapped = False
            for name in COLUMN_NAMES:
                setattr(store, name, named[name])
            store._freeze_views()
        try:
            store.check_columns()
        except ValueError as exc:
            raise SerializationError(
                f"corrupt index file: {exc}",
                hint="the index file is corrupt; rebuild it with "
                "'repro-ttl build'",
            ) from None
        stores.append(store)
    if not use_mmap:
        buf.release()
    return TTLIndex.from_stores(graph, ranks, stores[0], stores[1], stats)


def index_file_magic(path: PathLike) -> bytes:
    """The 8-byte magic of an index file (for format dispatch)."""
    with open(path, "rb") as fh:
        return fh.read(8)


def is_mmap_capable(path: PathLike) -> bool:
    """True when ``path`` is a TTLIDX03 file (loadable with
    ``mmap=True``)."""
    try:
        return index_file_magic(path) == _MAGIC_V3
    except OSError:
        return False


def _fsync_directory(directory: FsPath) -> None:
    """Best-effort fsync of the directory entry after a rename, so the
    new name survives a power loss (not supported everywhere)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def load_index(
    path: PathLike,
    graph: TimetableGraph,
    *,
    mmap: bool = False,
    verify: bool = True,
) -> TTLIndex:
    """Load an index written by :func:`save_index`.

    The caller supplies the graph the index was built for; a station
    count mismatch is rejected.  The format is auto-detected from the
    magic: current ``TTLIDX03`` files, ``TTLIDX02`` files, and legacy
    ``TTLIDX01`` files (which carry no build stats) all load.

    ``mmap=True`` maps a TTLIDX03 file read-only and wraps its label
    columns as zero-copy ``memoryview`` slices — the load is O(header)
    instead of O(index), and concurrent processes share one physical
    copy via the page cache.  ``verify=False`` skips the per-column
    crc32 check (the structural validation still runs); useful when a
    supervisor already verified the file once and forks workers that
    re-map it.
    """
    magic = index_file_magic(path)
    if magic == _MAGIC_V3:
        return _load_index_v3(path, graph, mmap, verify)
    if mmap:
        raise SerializationError(
            f"index file {path} is not memory-mappable "
            f"(magic {magic!r})",
            hint="only TTLIDX03 files can be memory-mapped; re-save "
            "with save_index(index, path) to upgrade",
        )
    with open(path, "rb") as fh:
        magic = fh.read(len(_MAGIC))
        if magic not in (_MAGIC, _LEGACY_MAGIC):
            raise SerializationError(f"not a TTL index file: {path}")
        legacy = magic == _LEGACY_MAGIC
        (n,) = struct.unpack("<q", _read_exact(fh, 8))
        if n != graph.n:
            raise SerializationError(
                f"index built for {n} stations, graph has {graph.n}"
            )
        ranks = [
            struct.unpack("<q", _read_exact(fh, 8))[0] for _ in range(n)
        ]
        seen = [False] * n
        for node, rank in enumerate(ranks):
            if not 0 <= rank < n or seen[rank]:
                raise SerializationError(
                    f"corrupt index file: rank array is not a permutation "
                    f"of 0..{n - 1} (rank {rank} of node {node})"
                )
            seen[rank] = True
        tables: List[List[Dict[int, LabelGroup]]] = []
        for _ in range(2):
            per_node: List[Dict[int, LabelGroup]] = []
            for _ in range(n):
                (count,) = struct.unpack("<q", _read_exact(fh, 8))
                if count < 0:
                    raise SerializationError(
                        f"corrupt index file: negative group count {count}"
                    )
                groups: Dict[int, LabelGroup] = {}
                for _ in range(count):
                    group = _read_group(fh, ranks, n)
                    groups[group.hub] = group
                per_node.append(groups)
            tables.append(per_node)
        stats = None if legacy else _read_stats(fh)
    return TTLIndex(graph, ranks, tables[0], tables[1], stats)
