"""Index persistence and size accounting.

Two size notions:

* :func:`index_bytes` — the *model* size used by the Figure 4
  experiment: 20 bytes per label (five 32-bit fields: hub, dep, arr,
  trip, pivot) plus small per-group and per-node overheads.  This is
  how the paper counts index size, and is what the space benchmarks
  report for every method so the comparison is apples-to-apples.
* :func:`save_index` / :func:`load_index` — an actual binary file
  format (64-bit fields, magic header) for persisting built indices.

File format ``TTLIDX02`` (current): the ``TTLIDX01`` body — station
count, rank array, then per direction/node the group records — plus a
footer carrying :class:`~repro.core.build.BuildStats`, so a planner
adopting a loaded index still reports honest preprocessing time.
Legacy ``TTLIDX01`` files load fine (with ``build_stats=None``).

Loading validates what it reads — hub and pivot ids must be station
ids, the rank array must be a permutation of ``0..n-1``, counts must
be non-negative — and every defect raises
:class:`~repro.errors.SerializationError` with a clear message, never
a raw ``IndexError``/``struct.error``: a service must not crash (or,
worse, mis-answer) because an index file was corrupted in transit.
Saving is atomic (temp file + fsync + ``os.replace``), so a crash
mid-save can never leave a truncated index behind.
"""

from __future__ import annotations

import os
import struct
from contextlib import contextmanager
from pathlib import Path as FsPath
from typing import BinaryIO, Dict, Iterator, List, Optional, Union

from repro.core.build import BuildStats
from repro.core.index import TTLIndex
from repro.core.label import LabelGroup
from repro.errors import SerializationError
from repro.graph.timetable import TimetableGraph

PathLike = Union[str, FsPath]

_MAGIC = b"TTLIDX02"
_LEGACY_MAGIC = b"TTLIDX01"

#: Stats footer: seconds, order_seconds as doubles; num_labels,
#: forward_pops, backward_pops, cover_pruned, dominance_pruned,
#: dijkstra_runs as signed 64-bit ints.
_STATS_FORMAT = "<2d6q"

#: Model cost per label: hub, dep, arr, trip, pivot as 32-bit ints.
BYTES_PER_LABEL = 20
#: Model cost per label group: hub id + length.
BYTES_PER_GROUP = 8
#: Model cost per node: two set pointers/lengths.
BYTES_PER_NODE = 16


def index_bytes(index: TTLIndex) -> int:
    """Model size of a TTL index in bytes (Figure 4 accounting)."""
    labels = index.num_labels
    groups = sum(len(g) for g in index.in_groups) + sum(
        len(g) for g in index.out_groups
    )
    return (
        labels * BYTES_PER_LABEL
        + groups * BYTES_PER_GROUP
        + index.graph.n * BYTES_PER_NODE
    )


def connections_bytes(num_connections: int) -> int:
    """Model size of one sorted connection array (CSA accounting):
    u, v, dep, arr, trip as 32-bit ints."""
    return num_connections * 20


# ----------------------------------------------------------------------
# Binary persistence
# ----------------------------------------------------------------------


@contextmanager
def atomic_write(path: PathLike) -> Iterator[BinaryIO]:
    """Write a file atomically: yield a handle onto a temp file in the
    target directory; on clean exit flush + fsync it, rename it over
    ``path`` with :func:`os.replace`, and fsync the directory entry.
    On failure the temp file is removed and ``path`` is untouched, so a
    crash mid-write leaves either the previous file or no file — never
    a truncated one.  Shared by :func:`save_index` and the build-farm
    checkpoint shards.
    """
    path = FsPath(path)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_directory(path.parent)


def write_group_record(fh: BinaryIO, group) -> None:
    """Write one label group in the TTLIDX02 group-record encoding
    (``<qq`` hub/size header, then ``<qqqq`` per label), the unit
    shared by full index files and checkpoint shards."""
    _write_group(fh, group)


def read_group_record(fh: BinaryIO, ranks: List[int], n: int) -> LabelGroup:
    """Read one TTLIDX02 group record, validating hub/pivot ids."""
    return _read_group(fh, ranks, n)


def read_exact(fh: BinaryIO, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise ``SerializationError``."""
    return _read_exact(fh, count)


def _write_group(fh: BinaryIO, group) -> None:
    fh.write(struct.pack("<qq", group.hub, len(group)))
    trips = group.trips
    pivots = group.pivots
    for i in range(len(group)):
        trip = trips[i] if trips[i] is not None else -1
        pivot = pivots[i] if pivots[i] is not None else -1
        fh.write(
            struct.pack("<qqqq", group.deps[i], group.arrs[i], trip, pivot)
        )


def _read_group(fh: BinaryIO, ranks: List[int], n: int) -> LabelGroup:
    hub, size = struct.unpack("<qq", _read_exact(fh, 16))
    if not 0 <= hub < n:
        raise SerializationError(
            f"corrupt index file: group hub {hub} outside 0..{n - 1}"
        )
    if size < 0:
        raise SerializationError(
            f"corrupt index file: negative group size {size}"
        )
    group = LabelGroup(hub, ranks[hub])
    for _ in range(size):
        dep, arr, trip, pivot = struct.unpack("<qqqq", _read_exact(fh, 32))
        if pivot >= n:
            raise SerializationError(
                f"corrupt index file: label pivot {pivot} outside "
                f"0..{n - 1}"
            )
        group.append(
            dep,
            arr,
            trip if trip >= 0 else None,
            pivot if pivot >= 0 else None,
        )
    return group


def _read_exact(fh: BinaryIO, count: int) -> bytes:
    data = fh.read(count)
    if len(data) != count:
        raise SerializationError("truncated index file")
    return data


def _write_stats(fh: BinaryIO, stats: Optional[BuildStats]) -> None:
    if stats is None:
        fh.write(struct.pack("<q", 0))
        return
    fh.write(struct.pack("<q", 1))
    fh.write(
        struct.pack(
            _STATS_FORMAT,
            stats.seconds,
            stats.order_seconds,
            stats.num_labels,
            stats.forward_pops,
            stats.backward_pops,
            stats.cover_pruned,
            stats.dominance_pruned,
            stats.dijkstra_runs,
        )
    )


def _read_stats(fh: BinaryIO) -> Optional[BuildStats]:
    (present,) = struct.unpack("<q", _read_exact(fh, 8))
    if present == 0:
        return None
    if present != 1:
        raise SerializationError(
            f"corrupt index file: bad stats flag {present}"
        )
    fields = struct.unpack(
        _STATS_FORMAT, _read_exact(fh, struct.calcsize(_STATS_FORMAT))
    )
    return BuildStats(
        seconds=fields[0],
        order_seconds=fields[1],
        num_labels=fields[2],
        forward_pops=fields[3],
        backward_pops=fields[4],
        cover_pruned=fields[5],
        dominance_pruned=fields[6],
        dijkstra_runs=fields[7],
    )


def save_index(index: TTLIndex, path: PathLike) -> None:
    """Write ``index`` to ``path`` in the TTLIDX02 binary format.

    The write is *atomic*: the bytes go to a temporary file in the
    target directory, are flushed and fsynced, and only then renamed
    over ``path`` with :func:`os.replace`.  A crash mid-save therefore
    leaves either the previous index or no file — never a truncated
    ``TTLIDX02`` that a later service start would reject (or worse,
    half-load).  The temporary file is removed on failure.
    """
    with atomic_write(path) as fh:
        fh.write(_MAGIC)
        fh.write(struct.pack("<q", index.graph.n))
        for rank in index.ranks:
            fh.write(struct.pack("<q", rank))
        for groups_per_node in (index.in_groups, index.out_groups):
            for groups in groups_per_node:
                fh.write(struct.pack("<q", len(groups)))
                for group in groups:
                    _write_group(fh, group)
        _write_stats(fh, index.build_stats)


def _fsync_directory(directory: FsPath) -> None:
    """Best-effort fsync of the directory entry after a rename, so the
    new name survives a power loss (not supported everywhere)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def load_index(path: PathLike, graph: TimetableGraph) -> TTLIndex:
    """Load an index written by :func:`save_index`.

    The caller supplies the graph the index was built for; a station
    count mismatch is rejected.  Accepts current ``TTLIDX02`` files
    and legacy ``TTLIDX01`` files (which carry no build stats).
    """
    with open(path, "rb") as fh:
        magic = fh.read(len(_MAGIC))
        if magic not in (_MAGIC, _LEGACY_MAGIC):
            raise SerializationError(f"not a TTL index file: {path}")
        legacy = magic == _LEGACY_MAGIC
        (n,) = struct.unpack("<q", _read_exact(fh, 8))
        if n != graph.n:
            raise SerializationError(
                f"index built for {n} stations, graph has {graph.n}"
            )
        ranks = [
            struct.unpack("<q", _read_exact(fh, 8))[0] for _ in range(n)
        ]
        seen = [False] * n
        for node, rank in enumerate(ranks):
            if not 0 <= rank < n or seen[rank]:
                raise SerializationError(
                    f"corrupt index file: rank array is not a permutation "
                    f"of 0..{n - 1} (rank {rank} of node {node})"
                )
            seen[rank] = True
        tables: List[List[Dict[int, LabelGroup]]] = []
        for _ in range(2):
            per_node: List[Dict[int, LabelGroup]] = []
            for _ in range(n):
                (count,) = struct.unpack("<q", _read_exact(fh, 8))
                if count < 0:
                    raise SerializationError(
                        f"corrupt index file: negative group count {count}"
                    )
                groups: Dict[int, LabelGroup] = {}
                for _ in range(count):
                    group = _read_group(fh, ranks, n)
                    groups[group.hub] = group
                per_node.append(groups)
            tables.append(per_node)
        stats = None if legacy else _read_stats(fh)
    return TTLIndex(graph, ranks, tables[0], tables[1], stats)
