"""The flat sealed label store.

A sealed :class:`~repro.core.index.TTLIndex` keeps every label column
(``dep``, ``arr``, ``trip``, ``pivot``) in one contiguous
``array('q')`` per direction — the layout Delling et al.'s *Public
Transit Labeling* uses to make label queries a few bisections over
cache-friendly memory.  Group and node boundaries are offset arrays,
so per-node label counts and group slices are O(1).

Query code never touches the columns directly: it goes through
:class:`GroupView`, a façade over one group's slice that exposes
exactly the :class:`~repro.core.label.LabelGroup` surface
(``hub``/``rank``/``deps``/``arrs``/``trips``/``pivots``/``label``/
``labels``/``check_invariants``).  SketchGen, refinement, PathUnfold,
profile queries, and the compressed index all consume groups through
this one accessor layer, so the storage layout can evolve without
touching the algorithms.

The hot ``deps``/``arrs`` columns are decoded to plain lists when the
view is materialized (once, at seal time): ``bisect`` and the selector
loops run at C list-indexing speed, which keeps query latency at
parity with the legacy list-backed groups.  The cold ``trips``/
``pivots`` columns stay in the flat arrays and decode lazily — they
are only read when a winning sketch is materialized or unfolded — with
the decoded list cached on the view.  ``trip`` and ``pivot`` are
optional in a label; the store encodes ``None`` as ``-1`` and the
decode maps it back, so consumers still see ``None`` for transfer
paths.
"""

from __future__ import annotations

from array import array
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.label import Label, LabelGroup

#: Sentinel for a ``None`` trip/pivot in the typed columns.
NONE_SENTINEL = -1

#: The eight flat columns of one direction, in canonical order — the
#: order the TTLIDX03 on-disk column directory uses.
COLUMN_NAMES = (
    "deps",
    "arrs",
    "trips",
    "pivots",
    "hubs",
    "group_ranks",
    "group_starts",
    "node_starts",
)


def _encode(value: Optional[int]) -> int:
    return NONE_SENTINEL if value is None else value


# ----------------------------------------------------------------------
# Flat wire format for label-group tables
#
# The build farm ships label state between processes.  Pickling the
# per-node ``Dict[int, LabelGroup]`` tables would serialize millions of
# small Python objects; instead a table is flattened into seven typed
# ``array('q')`` columns (which pickle as raw bytes) and rebuilt on the
# other side.  The layout mirrors :class:`LabelStore`: one row per
# group in the ``nodes``/``hubs`` columns, label payloads contiguous in
# ``deps``/``arrs``/``trips``/``pivots`` with ``group_starts`` offsets.
# ----------------------------------------------------------------------

#: (nodes, hubs, group_starts, deps, arrs, trips, pivots)
GroupTableBlob = Tuple[array, array, array, array, array, array, array]


def encode_group_entries(
    entries: Iterable[Tuple[int, LabelGroup]]
) -> GroupTableBlob:
    """Flatten ``(node, group)`` pairs into typed columns.

    Accepts any group-like objects (``LabelGroup`` or ``GroupView``).
    Order is preserved exactly — decoding yields the same sequence.
    """
    nodes = array("q")
    hubs = array("q")
    group_starts = array("q", [0])
    deps = array("q")
    arrs = array("q")
    trips = array("q")
    pivots = array("q")
    for node, group in entries:
        nodes.append(node)
        hubs.append(group.hub)
        deps.extend(group.deps)
        arrs.extend(group.arrs)
        trips.extend(_encode(t) for t in group.trips)
        pivots.extend(_encode(p) for p in group.pivots)
        group_starts.append(len(deps))
    return (nodes, hubs, group_starts, deps, arrs, trips, pivots)


def decode_group_entries(
    blob: GroupTableBlob, ranks: Sequence[int]
) -> List[Tuple[int, LabelGroup]]:
    """Rebuild the ``(node, LabelGroup)`` sequence from flat columns.

    ``ranks`` supplies each hub's rank (not carried on the wire).
    """
    nodes, hubs, group_starts, deps, arrs, trips, pivots = blob
    entries: List[Tuple[int, LabelGroup]] = []
    for g in range(len(nodes)):
        lo = group_starts[g]
        hi = group_starts[g + 1]
        group = LabelGroup(
            hubs[g],
            ranks[hubs[g]],
            deps=list(deps[lo:hi]),
            arrs=list(arrs[lo:hi]),
            trips=[None if t < 0 else t for t in trips[lo:hi]],
            pivots=[None if p < 0 else p for p in pivots[lo:hi]],
        )
        entries.append((nodes[g], group))
    return entries


def blob_num_labels(blob: GroupTableBlob) -> int:
    """Number of labels carried by one wire blob — O(1)."""
    return len(blob[3])


class GroupView:
    """One label group over a slice of a :class:`LabelStore`.

    Duck-typed like :class:`~repro.core.label.LabelGroup`: ``deps`` /
    ``arrs`` are plain lists decoded at construction; ``trips`` /
    ``pivots`` decode from the flat columns on first access (with the
    ``-1`` sentinel mapped back to ``None``) and are cached.
    """

    __slots__ = (
        "hub", "rank", "deps", "arrs", "_store", "_lo", "_hi",
        "_trips", "_pivots",
    )

    def __init__(self, store: "LabelStore", g: int) -> None:
        self.hub = store.hubs[g]
        self.rank = store.group_ranks[g]
        lo = store.group_starts[g]
        hi = store.group_starts[g + 1]
        self._store = store
        self._lo = lo
        self._hi = hi
        self.deps = store.deps_mv[lo:hi].tolist()
        self.arrs = store.arrs_mv[lo:hi].tolist()
        self._trips: Optional[List[Optional[int]]] = None
        self._pivots: Optional[List[Optional[int]]] = None

    @property
    def trips(self) -> List[Optional[int]]:
        column = self._trips
        if column is None:
            column = [
                None if raw < 0 else raw
                for raw in self._store.trips_mv[self._lo:self._hi]
            ]
            self._trips = column
        return column

    @property
    def pivots(self) -> List[Optional[int]]:
        column = self._pivots
        if column is None:
            column = [
                None if raw < 0 else raw
                for raw in self._store.pivots_mv[self._lo:self._hi]
            ]
            self._pivots = column
        return column

    def label(self, i: int) -> Label:
        """The ``i``-th label as a :class:`Label` record."""
        return Label(
            self.hub, self.deps[i], self.arrs[i], self.trips[i], self.pivots[i]
        )

    def labels(self) -> List[Label]:
        """All labels of the group in order."""
        return [self.label(i) for i in range(len(self))]

    def check_invariants(self) -> None:
        """Assert the Pareto / ordering invariants (used by tests)."""
        deps = self.deps
        arrs = self.arrs
        for i in range(len(deps) - 1):
            if not (deps[i] < deps[i + 1] and arrs[i] < arrs[i + 1]):
                raise AssertionError(
                    f"group for hub {self.hub} is not a strict Pareto "
                    f"frontier at position {i}: "
                    f"({deps[i]},{arrs[i]}) then "
                    f"({deps[i + 1]},{arrs[i + 1]})"
                )

    def __len__(self) -> int:
        return self._hi - self._lo

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GroupView(hub={self.hub}, size={len(self)})"


class MappedGroupView(GroupView):
    """A :class:`GroupView` over a memory-mapped store.

    *Every* column — including the hot ``deps``/``arrs`` — decodes
    lazily on first access and is cached on the view.  Eager decoding
    (the heap store's choice) would materialize the whole index as
    Python lists at load time, which is exactly what the zero-copy
    TTLIDX03 path exists to avoid: only the groups a workload actually
    touches ever leave the page cache, so N worker processes mapping
    the same file share one physical copy of the cold data.
    """

    __slots__ = ("_deps", "_arrs")

    def __init__(self, store: "LabelStore", g: int) -> None:
        self.hub = store.hubs[g]
        self.rank = store.group_ranks[g]
        self._store = store
        self._lo = store.group_starts[g]
        self._hi = store.group_starts[g + 1]
        self._deps = None
        self._arrs = None
        self._trips = None
        self._pivots = None

    @property
    def deps(self) -> List[int]:
        column = self._deps
        if column is None:
            column = self._store.deps_mv[self._lo:self._hi].tolist()
            self._deps = column
        return column

    @property
    def arrs(self) -> List[int]:
        column = self._arrs
        if column is None:
            column = self._store.arrs_mv[self._lo:self._hi].tolist()
            self._arrs = column
        return column

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MappedGroupView(hub={self.hub}, size={len(self)})"


class LabelStore:
    """Flat typed columns for one direction (in or out) of an index.

    Layout (all ``array('q')``):

    * ``deps`` / ``arrs`` / ``trips`` / ``pivots`` — one entry per
      label, groups contiguous, nodes contiguous;
    * ``hubs`` / ``group_ranks`` — one entry per group;
    * ``group_starts`` — label offset of each group (length
      ``num_groups + 1``);
    * ``node_starts`` — group offset of each node (length ``n + 1``).
    """

    __slots__ = (
        "n",
        "mapped",
        "deps",
        "arrs",
        "trips",
        "pivots",
        "hubs",
        "group_ranks",
        "group_starts",
        "node_starts",
        "deps_mv",
        "arrs_mv",
        "trips_mv",
        "pivots_mv",
        "_ndarrays",
    )

    def __init__(self, n: int) -> None:
        self.n = n
        self.mapped = False
        self.deps = array("q")
        self.arrs = array("q")
        self.trips = array("q")
        self.pivots = array("q")
        self.hubs = array("q")
        self.group_ranks = array("q")
        self.group_starts = array("q", [0])
        self.node_starts = array("q", [0])

    @classmethod
    def from_groups(
        cls, groups_per_node: Sequence[Iterable]
    ) -> "LabelStore":
        """Seal per-node group lists (already sorted by hub rank) into
        flat columns.  Accepts any group-like objects exposing
        ``hub``/``rank``/``deps``/``arrs``/``trips``/``pivots``."""
        store = cls(len(groups_per_node))
        deps, arrs = store.deps, store.arrs
        trips, pivots = store.trips, store.pivots
        for groups in groups_per_node:
            for group in groups:
                store.hubs.append(group.hub)
                store.group_ranks.append(group.rank)
                deps.extend(group.deps)
                arrs.extend(group.arrs)
                trips.extend(_encode(t) for t in group.trips)
                pivots.extend(_encode(p) for p in group.pivots)
                store.group_starts.append(len(deps))
            store.node_starts.append(len(store.hubs))
        store._freeze_views()
        return store

    @classmethod
    def frombuffer(cls, n: int, columns: dict) -> "LabelStore":
        """Zero-copy store over externally owned int64 buffers.

        ``columns`` maps every name in :data:`COLUMN_NAMES` to a
        ``memoryview`` already cast to format ``'q'`` (typically slices
        of one read-only ``mmap`` of a TTLIDX03 index file).  Nothing
        is copied: the store's columns *are* the supplied buffers, so N
        processes mapping the same file share one physical copy of the
        label data through the page cache.  The buffers keep their
        exporter (the mmap) alive for the store's lifetime.

        The caller is responsible for structural validation — see
        :meth:`check_columns`.
        """
        store = cls.__new__(cls)
        store.n = n
        store.mapped = True
        for name in COLUMN_NAMES:
            setattr(store, name, columns[name])
        store._freeze_views()
        return store

    def check_columns(self) -> None:
        """Validate the structural invariants of the flat columns.

        Cheap — O(groups + nodes), no per-label work — and raises
        ``ValueError`` with a precise message on the first defect.
        Used by the TTLIDX03 loader after the per-column digests have
        already established byte integrity.
        """
        num_labels = len(self.deps)
        for name in ("arrs", "trips", "pivots"):
            if len(getattr(self, name)) != num_labels:
                raise ValueError(
                    f"column {name!r} has {len(getattr(self, name))} "
                    f"entries, expected {num_labels}"
                )
        num_groups = len(self.hubs)
        if len(self.group_ranks) != num_groups:
            raise ValueError(
                f"column 'group_ranks' has {len(self.group_ranks)} "
                f"entries, expected {num_groups}"
            )
        if len(self.group_starts) != num_groups + 1:
            raise ValueError(
                f"column 'group_starts' has {len(self.group_starts)} "
                f"entries, expected {num_groups + 1}"
            )
        if len(self.node_starts) != self.n + 1:
            raise ValueError(
                f"column 'node_starts' has {len(self.node_starts)} "
                f"entries, expected {self.n + 1}"
            )
        for name, limit in (
            ("group_starts", num_labels),
            ("node_starts", num_groups),
        ):
            offsets = getattr(self, name)
            if offsets[0] != 0 or offsets[len(offsets) - 1] != limit:
                raise ValueError(
                    f"column {name!r} does not span 0..{limit}"
                )
            previous = 0
            for offset in offsets:
                if offset < previous:
                    raise ValueError(
                        f"column {name!r} is not monotone at offset "
                        f"{offset} (previous {previous})"
                    )
                previous = offset
        for g in range(num_groups):
            if not 0 <= self.hubs[g] < self.n:
                raise ValueError(
                    f"group {g} hub {self.hubs[g]} outside 0..{self.n - 1}"
                )

    def _freeze_views(self) -> None:
        self.deps_mv = memoryview(self.deps)
        self.arrs_mv = memoryview(self.arrs)
        self.trips_mv = memoryview(self.trips)
        self.pivots_mv = memoryview(self.pivots)
        self._ndarrays = None

    def ndarray_columns(self) -> dict:
        """Zero-copy ``numpy.int64`` views over every flat column.

        The contract (relied on by :mod:`repro.core.kernels` and
        documented in ``docs/label_store.md``): each entry of the
        returned dict is a 1-D ``int64`` ndarray that **shares memory**
        with the sealed column — ``np.frombuffer`` over the heap
        ``array('q')`` columns, ``np.asarray`` over the ``'q'``-cast
        memoryviews of a mapped (TTLIDX03) store.  Nothing is copied,
        so N worker processes mapping one index file still share one
        physical copy of the label data; the arrays are read-only in
        spirit (the store is sealed) and cached after the first call.

        Raises ``ImportError`` when numpy is unavailable — callers
        gate on :func:`repro.core.kernels.vectorized_available`.
        """
        cached = self._ndarrays
        if cached is None:
            import numpy as np

            cached = {
                name: np.frombuffer(getattr(self, name), dtype=np.int64)
                if not self.mapped
                else np.asarray(getattr(self, name), dtype=np.int64)
                for name in COLUMN_NAMES
            }
            self._ndarrays = cached
        return cached

    # ------------------------------------------------------------------
    # Extents
    # ------------------------------------------------------------------

    def node_group_extent(self, node: int) -> Tuple[int, int]:
        """Half-open group-index range ``[g0, g1)`` of ``node``."""
        return self.node_starts[node], self.node_starts[node + 1]

    def node_label_extent(self, node: int) -> Tuple[int, int]:
        """Half-open label-index range ``[lo, hi)`` of ``node``."""
        g0, g1 = self.node_group_extent(node)
        return self.group_starts[g0], self.group_starts[g1]

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def views(self, node: int) -> List[GroupView]:
        """Group views of ``node`` in hub-rank order.

        Mapped stores hand out :class:`MappedGroupView` (fully lazy
        columns); sealed heap stores keep the eager-hot-column
        :class:`GroupView`.  Both expose the same surface.
        """
        cls = MappedGroupView if self.mapped else GroupView
        return [
            cls(self, g)
            for g in range(self.node_starts[node], self.node_starts[node + 1])
        ]

    def node_label_count(self, node: int) -> int:
        """Number of labels of ``node`` — O(1) from the offsets."""
        return (
            self.group_starts[self.node_starts[node + 1]]
            - self.group_starts[self.node_starts[node]]
        )

    @property
    def num_labels(self) -> int:
        return len(self.deps)

    @property
    def num_groups(self) -> int:
        return len(self.hubs)

    def nbytes(self) -> int:
        """Bytes held by the typed columns (excludes view objects)."""
        return sum(
            column.itemsize * len(column)
            for column in (
                self.deps,
                self.arrs,
                self.trips,
                self.pivots,
                self.hubs,
                self.group_ranks,
                self.group_starts,
                self.node_starts,
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LabelStore(n={self.n}, groups={self.num_groups}, "
            f"labels={self.num_labels})"
        )
