"""PathUnfold (Section 4.2, Algorithm 2) and concise paths (Section 8).

A label with a ``null`` pivot is a single connection and unfolds to
itself.  Otherwise its canonical path splits at the pivot ``p`` into
two canonical sub-paths (Lemma 4): the left child — the canonical
``src -> p`` path departing at the label's departure time — and the
right child — the canonical ``p -> dst`` path arriving at the label's
arrival time.  Both resolve through the index's O(1) lookup tables.

A label whose vehicle is not ``null`` rides one trip end to end:
concise unfolding stops the recursion there (Section 8's boarding
instructions), and full unfolding emits that trip's own legs directly
— splitting at the pivot instead could resolve to child labels that
canonically ride a *different* vehicle, handing out a path the live
engine's taint analysis never certified.

When a child label is missing — possible only when IndexBuild's weak
(``⊆``-interval) pruning discarded a canonical path that *tied* with a
path through a higher hub — the unfolder falls back to a bounded
earliest-arrival search for the segment.  Fallbacks are counted on the
index for observability and exercised deliberately in tests.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.algorithms.temporal_dijkstra import (
    earliest_arrival_search,
    extract_forward_path,
)
from repro.core.index import TTLIndex
from repro.core.metrics import QueryMetrics
from repro.core.sketch import Segment, Sketch
from repro.errors import ReconstructionError
from repro.graph.connection import Connection, Path
from repro.journey import ConciseLeg, Journey
from repro.timeutil import INF

#: A work item: (src, dst, dep, arr, trip, pivot).
_Item = Tuple[int, int, int, int, Optional[int], Optional[int]]


def unfold_segment(
    index: TTLIndex,
    segment: Segment,
    metrics: Optional[QueryMetrics] = None,
) -> Path:
    """Unfold one label segment into its connection sequence."""
    return _unfold(
        index,
        (
            segment.src,
            segment.dst,
            segment.dep,
            segment.arr,
            segment.trip,
            segment.pivot,
        ),
        concise=False,
        metrics=metrics,
    )


def _unfold(
    index: TTLIndex,
    item: _Item,
    concise: bool,
    metrics: Optional[QueryMetrics] = None,
) -> List:
    """Iterative post-order unfolding of one label.

    With ``concise=False`` returns connections; with ``concise=True``
    returns ``(src, dst, dep, arr, trip)`` ride segments where each
    segment is served by a single trip.
    """
    result: List = []
    stack: List[_Item] = [item]
    max_depth = 1
    while stack:
        if len(stack) > max_depth:
            max_depth = len(stack)
        src, dst, dep, arr, trip, pivot = stack.pop()
        if pivot is None:
            if trip is None:
                raise ReconstructionError(
                    f"single-connection label {src}->{dst} without a trip"
                )
            if concise:
                result.append((src, dst, dep, arr, trip))
            else:
                result.append(Connection(src, dst, dep, arr, trip))
            continue
        if trip is not None:
            # Whole segment rides one vehicle.  Concise unfolding stops
            # here (the partial unfolding of Section 8); full unfolding
            # must walk *that trip's* own legs rather than split at the
            # pivot: the pivot lookups resolve to stored child labels,
            # which — under tie-breaking — can canonically ride a
            # different vehicle than the one this label certifies.  The
            # taint analysis (live engine, Definition 7) certifies the
            # single-vehicle path, so the unfolded connections must be
            # exactly that path or a clean verdict could hand out a
            # journey over connections the analyzer never examined.
            if concise:
                result.append((src, dst, dep, arr, trip))
                continue
            legs = _trip_legs(index, src, dst, dep, arr, trip)
            if legs is not None:
                result.extend(legs)
                continue
            # Defensive: the label does not match the trip's schedule
            # (should not happen for a well-formed index) — fall
            # through to the pivot split below.
        left = index.lookup_by_dep(src, pivot, dep)
        right = index.lookup_by_arr(pivot, dst, arr)
        if left is None or right is None:
            index.unfold_fallbacks += 1
            if metrics is not None:
                metrics.unfold_fallbacks += 1
            result.extend(
                _fallback_segment(index, src, dst, dep, arr, concise)
            )
            continue
        # Post-order via LIFO: push right first so left pops first.
        l_dep, l_arr, l_trip, l_pivot = left
        r_dep, r_arr, r_trip, r_pivot = right
        stack.append((pivot, dst, r_dep, r_arr, r_trip, r_pivot))
        stack.append((src, pivot, l_dep, l_arr, l_trip, l_pivot))
    if metrics is not None:
        metrics.record_unfold_depth(max_depth)
    return result


def _trip_legs(
    index: TTLIndex, src: int, dst: int, dep: int, arr: int, trip: int
) -> Optional[Path]:
    """The connections of ``trip`` from ``src`` (departing ``dep``) to
    ``dst`` (arriving ``arr``), or ``None`` when the label does not
    line up with the trip's schedule."""
    graph = index.graph
    trip_obj = graph.trips.get(trip)
    if trip_obj is None:
        return None
    stops = graph.routes[trip_obj.route_id].stops
    times = trip_obj.stop_times
    start = end = None
    for i, stop in enumerate(stops):
        if start is None and stop == src and times[i].dep == dep:
            start = i
        elif start is not None and stop == dst and times[i].arr == arr:
            end = i
            break
    if start is None or end is None:
        return None
    return [
        Connection(
            stops[k], stops[k + 1], times[k].dep, times[k + 1].arr, trip
        )
        for k in range(start, end)
    ]


def _fallback_segment(
    index: TTLIndex, src: int, dst: int, dep: int, arr: int, concise: bool
) -> List:
    """Recompute a segment by search when its label was tie-pruned.

    Finds an earliest-arrival path ``src -> dst`` departing no sooner
    than ``dep``; by construction it arrives no later than ``arr``, so
    splicing it in keeps the overall journey feasible and optimal.
    """
    eat, parent = earliest_arrival_search(index.graph, src, dep, target=dst)
    if eat[dst] > arr or eat[dst] >= INF:
        raise ReconstructionError(
            f"cannot reconstruct segment {src}->{dst} "
            f"departing >= {dep}, arriving <= {arr}"
        )
    path = extract_forward_path(parent, src, dst)
    if path is None:  # pragma: no cover - defensive
        raise ReconstructionError(f"no parent chain for {src}->{dst}")
    if not concise:
        return path
    segments = []
    for conn in path:
        if segments and segments[-1][4] == conn.trip:
            prev = segments[-1]
            segments[-1] = (prev[0], conn.v, prev[2], conn.arr, conn.trip)
        else:
            segments.append((conn.u, conn.v, conn.dep, conn.arr, conn.trip))
    return segments


def sketch_to_journey(
    index: TTLIndex,
    sketch: Sketch,
    u: int,
    v: int,
    concise: bool,
    metrics: Optional[QueryMetrics] = None,
) -> Journey:
    """Materialize a refined sketch into the query's journey."""
    items: List[_Item] = []
    for segment in (sketch.first, sketch.second):
        if segment is not None:
            items.append(
                (
                    segment.src,
                    segment.dst,
                    segment.dep,
                    segment.arr,
                    segment.trip,
                    segment.pivot,
                )
            )
    if not concise:
        path: Path = []
        for item in items:
            path.extend(_unfold(index, item, concise=False, metrics=metrics))
        return Journey.from_path(path)

    rides: List[Tuple[int, int, int, int, int]] = []
    for item in items:
        for ride in _unfold(index, item, concise=True, metrics=metrics):
            if rides and rides[-1][4] == ride[4]:
                prev = rides[-1]
                rides[-1] = (prev[0], ride[1], prev[2], ride[3], ride[4])
            else:
                rides.append(ride)
    legs = [ConciseLeg(ride[0], ride[4], ride[2]) for ride in rides]
    return Journey.from_legs(legs, destination=rides[-1][1], arr=rides[-1][3])
