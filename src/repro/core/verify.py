"""Index verification — an ``fsck`` for TTL indices.

A loaded or hand-modified index can be structurally sound yet
semantically wrong (stale graph, corrupted labels).  This module
checks, beyond :meth:`TTLIndex.check_invariants`:

1. **Structure** — group ordering, Pareto staircases, hub ranks.
2. **Feasibility** — every (sampled) label's ``(dep, arr)`` pair is an
   achievable journey in the graph, with the exact arrival of the
   earliest-arrival path at that departure (canonical paths are EAPs,
   Observation 1).
3. **Completeness** — for sampled station pairs and times, the index
   answers EAP queries identically to a fresh temporal Dijkstra.

Verification is sampling-based (full verification is quadratic); the
sample size trades confidence for time.  Used by the CLI's ``verify``
subcommand and by the serialization tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.algorithms.temporal_dijkstra import earliest_arrival_search
from repro.core.index import TTLIndex
from repro.core.sketch import best_eap_sketch
from repro.timeutil import INF


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_index`."""

    structure_ok: bool = True
    labels_checked: int = 0
    label_errors: List[str] = field(default_factory=list)
    queries_checked: int = 0
    query_errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.structure_ok
            and not self.label_errors
            and not self.query_errors
        )

    def summary(self) -> str:
        status = "OK" if self.ok else "CORRUPT"
        lines = [
            f"index verification: {status}",
            f"  structure:      {'ok' if self.structure_ok else 'BROKEN'}",
            f"  labels checked: {self.labels_checked} "
            f"({len(self.label_errors)} errors)",
            f"  queries checked: {self.queries_checked} "
            f"({len(self.query_errors)} errors)",
        ]
        for err in (self.label_errors + self.query_errors)[:10]:
            lines.append(f"  ! {err}")
        return "\n".join(lines)


def verify_index(
    index: TTLIndex,
    label_samples: int = 200,
    query_samples: int = 100,
    seed: int = 0,
) -> VerificationReport:
    """Verify ``index`` against its graph; see module docstring."""
    report = VerificationReport()
    rng = random.Random(seed)
    graph = index.graph

    # 1. Structure.
    try:
        index.check_invariants()
    except AssertionError as exc:
        report.structure_ok = False
        report.label_errors.append(f"structure: {exc}")

    # 2. Label feasibility (sampled).
    all_labels = []
    for v in range(graph.n):
        for group in index.in_groups[v]:
            for i in range(len(group)):
                all_labels.append((group.hub, v, group.deps[i], group.arrs[i]))
        for group in index.out_groups[v]:
            for i in range(len(group)):
                all_labels.append((v, group.hub, group.deps[i], group.arrs[i]))
    if all_labels:
        count = min(label_samples, len(all_labels))
        for src, dst, dep, arr in rng.sample(all_labels, count):
            report.labels_checked += 1
            eat, _ = earliest_arrival_search(graph, src, dep, target=dst)
            if eat[dst] != arr:
                report.label_errors.append(
                    f"label {src}->{dst} dep={dep}: claims arr={arr}, "
                    f"graph says {eat[dst]}"
                )

    # 3. Query completeness (sampled EAP probes).
    if graph.n >= 2 and graph.connections:
        stats = graph.stats()
        for _ in range(query_samples):
            u = rng.randrange(graph.n)
            v = rng.randrange(graph.n)
            if u == v:
                continue
            t = rng.randint(stats.min_time, stats.max_time)
            report.queries_checked += 1
            eat, _ = earliest_arrival_search(graph, u, t, target=v)
            expected: Optional[int] = eat[v] if eat[v] < INF else None
            sketch = best_eap_sketch(index, u, v, t)
            got = sketch.arr if sketch is not None else None
            if expected != got:
                report.query_errors.append(
                    f"EAP {u}->{v} t={t}: index says {got}, "
                    f"graph says {expected}"
                )
    return report
