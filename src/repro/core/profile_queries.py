"""Profile queries: all non-dominated journeys in a window.

The paper's label sets encode, per station pair, exactly the Pareto
frontier of (departure, arrival) pairs — so TTL can answer *profile*
queries ("every non-dominated journey from u to v between t and
t_end") with the same linear SketchGen merge that answers EAP/LDP/SDP.
This is the query type behind journey-planner result lists ("next
three connections"), provided here as a natural extension of the
paper's API.

:func:`ttl_profile` works on a TTL index; :func:`oracle_profile` is
the brute-force reference (one temporal Dijkstra per departure time,
Lemma 6's enumeration) used by tests and available for any graph.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.algorithms.profiles import ParetoProfile
from repro.algorithms.temporal_dijkstra import earliest_arrival_search
from repro.core import kernels
from repro.core.index import TTLIndex
from repro.core.metrics import QueryMetrics
from repro.graph.timetable import TimetableGraph
from repro.resilience.deadline import check_deadline
from repro.timeutil import INF

#: Sketches between cooperative deadline checks (profile enumeration
#: over a wide window can generate thousands of candidates).
_DEADLINE_STRIDE = 512


def ttl_profile(
    index: TTLIndex,
    u: int,
    v: int,
    t: int,
    t_end: int,
    metrics: Optional[QueryMetrics] = None,
) -> List[Tuple[int, int]]:
    """Non-dominated ``(dep, arr)`` journeys ``u -> v`` within the
    window, ascending by departure.

    Runs in ``O(|L_out(u)| + |L_in(v)|)`` plus the Pareto filtering of
    the generated sketches (sketches from different hubs may dominate
    each other; within one hub SketchGen already emits a frontier).

    When numpy is available and the pair's label sets are big enough
    to amortize the columnar setup (the same
    ``REPRO_KERNEL_MIN_LABELS`` threshold as the point queries), the
    enumeration runs as one columnar pass (candidate generation +
    dominance filter) in :mod:`repro.core.kernels`;
    ``REPRO_SCALAR_KERNELS=1`` forces this scalar fold, and the two
    return identical frontiers.
    """
    if kernels.use_for_point(index, u, v):
        return kernels.profile_pairs(index, u, v, t, t_end, metrics=metrics)
    return profile_from_lists(
        index.out_label_groups(u),
        index.in_label_groups(v),
        u,
        v,
        t,
        t_end,
        metrics=metrics,
    )


def profile_from_lists(
    out_list,
    in_list,
    u: int,
    v: int,
    t: int,
    t_end: int,
    metrics: Optional[QueryMetrics] = None,
) -> List[Tuple[int, int]]:
    """Scalar profile fold over explicit label-group lists.

    Shared by the compressed index (whose groups materialize on the
    fly, so the columnar kernels cannot run on them) and the scalar
    oracle path of :func:`ttl_profile`.
    """
    from repro.core.sketch import generate_sketches_from_lists

    profile = ParetoProfile()
    generated = 0
    for sketch in generate_sketches_from_lists(
        out_list, in_list, u, v, t, t_end
    ):
        generated += 1
        if not generated % _DEADLINE_STRIDE:
            check_deadline()
        profile.add(sketch.dep, sketch.arr)
    if metrics is not None:
        metrics.labels_scanned += sum(len(g) for g in out_list) + sum(
            len(g) for g in in_list
        )
        metrics.sketches_generated += generated
    return profile.pairs()


def oracle_profile(
    graph: TimetableGraph, u: int, v: int, t: int, t_end: int
) -> List[Tuple[int, int]]:
    """Reference profile by sweeping the source's departure times."""
    profile = ParetoProfile()
    # One full search per departure: check the budget between sweeps.
    for dep in graph.departure_times(u):
        check_deadline()
        if dep < t or dep > t_end:
            continue
        eat, _ = earliest_arrival_search(graph, u, dep, target=v)
        if eat[v] < INF and eat[v] <= t_end:
            profile.add(dep, eat[v])
    return profile.pairs()
