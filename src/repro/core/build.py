"""IndexBuild — TTL index construction (Section 5, Algorithm 3).

Nodes are processed from highest rank to lowest.  For the node ``h`` of
rank ``i`` the builder derives every canonical path that starts or ends
at ``h`` while avoiding work on paths that cannot be canonical:

* **Rank restriction** — searches never enter nodes ranked higher than
  ``h`` (they were processed earlier and removed from ``G_i``), so the
  Rank Constraint of Definition 5 holds by construction.
* **Self pruning** (Observations 1-2) — departure times of ``h`` are
  swept in descending order; a freshly found path to ``v`` is kept only
  if it arrives strictly earlier than every path found with a later
  departure, enforcing the Dominance Constraint incrementally.
* **Hub-cover pruning** (Algorithm 3, lines 31-32) — a path dominated
  (weakly, ``⊆``-interval) by a label pair through an earlier, higher
  ranked hub is discarded, and the search does not expand through it:
  any extension would be dominated through the same hub.

The backward half mirrors this with latest-departure sweeps over
``h``'s arrival times (Lemma 7), filling out-label sets.

:func:`build_index_brute_force` is Appendix D.2's baseline: full
temporal Dijkstra from every node and departure time, canonical paths
filtered afterwards by inspecting each path's highest-ranked node.  It
produces an equivalent index at far greater cost (Figure 8).
"""

from __future__ import annotations

import heapq
import time
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.label import LabelGroup
from repro.core.order import (
    approximation_order,
    betweenness_order,
    degree_order,
    hub_order,
    random_order,
)
from repro.errors import IndexBuildError
from repro.graph.timetable import TimetableGraph
from repro.timeutil import INF, NEG_INF

OrderSpec = Union[str, Sequence[int], Callable[[TimetableGraph], List[int]]]


@dataclass
class BuildStats:
    """Bookkeeping from one index construction run."""

    seconds: float = 0.0
    order_seconds: float = 0.0
    num_labels: int = 0
    forward_pops: int = 0
    backward_pops: int = 0
    cover_pruned: int = 0
    dominance_pruned: int = 0
    dijkstra_runs: int = 0
    extra: Dict[str, float] = field(default_factory=dict)


def resolve_order(graph: TimetableGraph, order: OrderSpec) -> List[int]:
    """Turn an order specification into a rank array.

    Accepts the strings ``"hub"`` (H-Order, the default everywhere),
    ``"random"``, ``"degree"``, ``"betweenness"``, ``"approx"``
    (A-Order), an explicit rank array, or a callable
    ``graph -> ranks``.
    """
    if callable(order):
        ranks = list(order(graph))
    elif isinstance(order, str):
        if order == "hub":
            ranks = hub_order(graph)
        elif order == "random":
            ranks = random_order(graph)
        elif order == "degree":
            ranks = degree_order(graph)
        elif order == "betweenness":
            ranks = betweenness_order(graph)
        elif order == "approx":
            ranks = approximation_order(graph)
        else:
            raise IndexBuildError(f"unknown order spec: {order!r}")
    else:
        ranks = list(order)
    if sorted(ranks) != list(range(graph.n)):
        raise IndexBuildError("ranks must be a permutation of 0..n-1")
    return ranks


def _pair_covers(
    out_group: LabelGroup, in_group: LabelGroup, dep: int, arr: int
) -> bool:
    """Can labels through this hub weakly dominate ``(dep, arr)``?

    ``out_group`` holds src->hub pairs, ``in_group`` hub->dst pairs,
    both strict Pareto frontiers sorted ascending.  The cheapest viable
    combination uses the earliest-arriving src->hub label departing no
    sooner than ``dep``; thanks to Pareto sortedness that is simply the
    first label at/after ``dep``.
    """
    i = bisect_left(out_group.deps, dep)
    if i == len(out_group.deps):
        return False
    mid = out_group.arrs[i]
    j = bisect_left(in_group.deps, mid)
    if j == len(in_group.deps):
        return False
    return in_group.arrs[j] <= arr


def _covered(
    src_out: Dict[int, LabelGroup],
    dst_in: Dict[int, LabelGroup],
    dep: int,
    arr: int,
) -> bool:
    """Hub-cover check: is some label pair weakly dominating (dep, arr)?

    Iterates the smaller of the two hub maps, looking up the other.
    """
    if len(src_out) <= len(dst_in):
        for hub, out_group in src_out.items():
            in_group = dst_in.get(hub)
            if in_group is not None and _pair_covers(
                out_group, in_group, dep, arr
            ):
                return True
    else:
        for hub, in_group in dst_in.items():
            out_group = src_out.get(hub)
            if out_group is not None and _pair_covers(
                out_group, in_group, dep, arr
            ):
                return True
    return False


class _Builder:
    """Mutable state shared by the per-hub phases.

    Two table pairs are distinguished so the parallel build farm can
    reuse the phases unchanged:

    * ``in_groups`` / ``out_groups`` — the **emission** tables new
      labels are appended to;
    * ``prune_in`` / ``prune_out`` — the **pruning state** the
      hub-cover checks consult.

    The serial build passes nothing and both pairs are the *same*
    objects (labels become pruning state the moment they are emitted —
    Algorithm 3's behavior).  A farm worker instead points the pruning
    pair at its read-only mirror of the committed prefix and keeps
    emissions separate, so candidates never leak into its own cover
    checks; the emission entries are inert for the current hub either
    way because ``L_out(h)`` / ``L_in(h)`` never contain ``h`` itself.
    """

    def __init__(
        self,
        graph: TimetableGraph,
        ranks: List[int],
        prune_cover: bool,
        prune_in: Optional[List[Dict[int, LabelGroup]]] = None,
        prune_out: Optional[List[Dict[int, LabelGroup]]] = None,
    ) -> None:
        self.graph = graph
        self.ranks = ranks
        self.prune_cover = prune_cover
        n = graph.n
        self.in_groups: List[Dict[int, LabelGroup]] = [dict() for _ in range(n)]
        self.out_groups: List[Dict[int, LabelGroup]] = [dict() for _ in range(n)]
        self.prune_in = prune_in if prune_in is not None else self.in_groups
        self.prune_out = (
            prune_out if prune_out is not None else self.out_groups
        )
        self.stats = BuildStats()
        # Per-search stamped scratch arrays (reset-free Dijkstra).
        self._stamp = [0] * n
        self._gen = 0
        self._dist = [0] * n
        self._trip: List[Optional[int]] = [None] * n
        self._pivot: List[Optional[int]] = [None] * n

    # ------------------------------------------------------------------
    # Forward phase: canonical paths h -> v, labels into L_in(v)
    # ------------------------------------------------------------------

    def forward_phase(self, h: int) -> List[Tuple[int, LabelGroup]]:
        """Run the forward phase of ``h``; returns the ``(node, group)``
        pairs created (ascending-departure order restored)."""
        graph = self.graph
        ranks = self.ranks
        rank_h = ranks[h]
        out = graph.out
        out_deps = graph.out_deps
        in_groups = self.in_groups
        prune_in = self.prune_in
        out_map_h = self.prune_out[h]
        prune_cover = self.prune_cover
        stats = self.stats

        best_arr = [INF] * graph.n
        stamp, dist = self._stamp, self._dist
        trip_of, pivot_of = self._trip, self._pivot
        touched: List[Tuple[int, LabelGroup]] = []

        for t_d in reversed(graph.departure_times(h)):
            self._gen += 1
            gen = self._gen
            stats.dijkstra_runs += 1
            heap: List = []
            # Seed only with connections departing exactly at t_d
            # (Observation 1 / Lemma 6): later departures were swept in
            # earlier iterations.
            conns_h = out[h]
            k = bisect_left(out_deps[h], t_d)
            while k < len(conns_h) and conns_h[k].dep == t_d:
                c = conns_h[k]
                k += 1
                v = c.v
                if ranks[v] <= rank_h:
                    continue
                if c.arr >= best_arr[v]:
                    continue
                if stamp[v] != gen or c.arr < dist[v]:
                    dist[v] = c.arr
                    stamp[v] = gen
                    trip_of[v] = c.trip
                    pivot_of[v] = None
                    heapq.heappush(heap, (c.arr, v))

            while heap:
                arr_v, v = heapq.heappop(heap)
                if stamp[v] != gen or arr_v != dist[v]:
                    continue
                if arr_v >= best_arr[v]:
                    stats.dominance_pruned += 1
                    continue
                best_arr[v] = arr_v
                stats.forward_pops += 1
                if prune_cover and _covered(out_map_h, prune_in[v], t_d, arr_v):
                    stats.cover_pruned += 1
                    continue
                group = in_groups[v].get(h)
                if group is None:
                    group = in_groups[v][h] = LabelGroup(h, rank_h)
                    touched.append((v, group))
                group.append(t_d, arr_v, trip_of[v], pivot_of[v])

                trip_v = trip_of[v]
                pivot_v = pivot_of[v]
                pivot_if_via_v = (
                    v
                    if pivot_v is None or ranks[v] < ranks[pivot_v]
                    else pivot_v
                )
                conns = out[v]
                for idx in range(bisect_left(out_deps[v], arr_v), len(conns)):
                    c = conns[idx]
                    w = c.v
                    if ranks[w] <= rank_h:
                        continue
                    na = c.arr
                    if na >= best_arr[w]:
                        continue
                    if stamp[w] != gen or na < dist[w]:
                        dist[w] = na
                        stamp[w] = gen
                        trip_of[w] = c.trip if trip_v == c.trip else None
                        pivot_of[w] = pivot_if_via_v
                        heapq.heappush(heap, (na, w))

        # Phase appended labels in descending departure order; flip to
        # the ascending order the index requires.
        for _, group in touched:
            group.reverse()
        return touched

    # ------------------------------------------------------------------
    # Backward phase: canonical paths v -> h, labels into L_out(v)
    # ------------------------------------------------------------------

    def backward_phase(self, h: int) -> List[Tuple[int, LabelGroup]]:
        """Run the backward phase of ``h``; returns the ``(node, group)``
        pairs created (already in ascending-departure order)."""
        graph = self.graph
        ranks = self.ranks
        rank_h = ranks[h]
        inc = graph.inc
        inc_arrs = graph.inc_arrs
        out_groups = self.out_groups
        prune_out = self.prune_out
        in_map_h = self.prune_in[h]
        prune_cover = self.prune_cover
        stats = self.stats

        best_dep = [NEG_INF] * graph.n
        stamp, dist = self._stamp, self._dist
        trip_of, pivot_of = self._trip, self._pivot
        touched: List[Tuple[int, LabelGroup]] = []

        for t_a in graph.arrival_times(h):
            self._gen += 1
            gen = self._gen
            stats.dijkstra_runs += 1
            heap: List = []
            conns_h = inc[h]
            k = bisect_left(inc_arrs[h], t_a)
            while k < len(conns_h) and conns_h[k].arr == t_a:
                c = conns_h[k]
                k += 1
                x = c.u
                if ranks[x] <= rank_h:
                    continue
                if c.dep <= best_dep[x]:
                    continue
                if stamp[x] != gen or c.dep > dist[x]:
                    dist[x] = c.dep
                    stamp[x] = gen
                    trip_of[x] = c.trip
                    pivot_of[x] = None
                    heapq.heappush(heap, (-c.dep, x))

            while heap:
                neg_dep, v = heapq.heappop(heap)
                dep_v = -neg_dep
                if stamp[v] != gen or dep_v != dist[v]:
                    continue
                if dep_v <= best_dep[v]:
                    stats.dominance_pruned += 1
                    continue
                best_dep[v] = dep_v
                stats.backward_pops += 1
                if prune_cover and _covered(
                    prune_out[v], in_map_h, dep_v, t_a
                ):
                    stats.cover_pruned += 1
                    continue
                group = out_groups[v].get(h)
                if group is None:
                    group = out_groups[v][h] = LabelGroup(h, rank_h)
                    touched.append((v, group))
                # Ascending arrival sweep appends in ascending departure
                # order already; no reversal needed.
                group.append(dep_v, t_a, trip_of[v], pivot_of[v])

                trip_v = trip_of[v]
                pivot_v = pivot_of[v]
                pivot_if_via_v = (
                    v
                    if pivot_v is None or ranks[v] < ranks[pivot_v]
                    else pivot_v
                )
                conns = inc[v]
                for idx in range(bisect_right(inc_arrs[v], dep_v)):
                    c = conns[idx]
                    x = c.u
                    if ranks[x] <= rank_h:
                        continue
                    nd = c.dep
                    if nd <= best_dep[x]:
                        continue
                    if stamp[x] != gen or nd > dist[x]:
                        dist[x] = nd
                        stamp[x] = gen
                        trip_of[x] = c.trip if trip_v == c.trip else None
                        pivot_of[x] = pivot_if_via_v
                        heapq.heappush(heap, (-nd, x))

        return touched


def build_index(
    graph: TimetableGraph,
    order: OrderSpec = "hub",
    prune_cover: bool = True,
    progress: Optional[Callable[[int, int], None]] = None,
):
    """Construct a TTL index (Algorithm 3).

    Args:
        graph: the timetable graph.
        order: node-order specification (see :func:`resolve_order`).
        prune_cover: disable only for the pruning ablation; the index
            stays correct either way but grows and builds slower.
        progress: optional callback invoked after each hub's phases as
            ``progress(hubs_done, total_hubs)`` (long builds on large
            networks take minutes; this feeds the CLI's progress line).

    Returns:
        A sealed :class:`~repro.core.index.TTLIndex`.
    """
    from repro.core.index import TTLIndex

    start = time.perf_counter()
    ranks = resolve_order(graph, order)
    order_seconds = time.perf_counter() - start

    builder = _Builder(graph, ranks, prune_cover)
    nodes_by_rank = sorted(range(graph.n), key=lambda v: ranks[v])
    for done, h in enumerate(nodes_by_rank, start=1):
        builder.forward_phase(h)
        builder.backward_phase(h)
        if progress is not None:
            progress(done, graph.n)

    stats = builder.stats
    stats.order_seconds = order_seconds
    stats.seconds = time.perf_counter() - start
    index = TTLIndex(
        graph, ranks, builder.in_groups, builder.out_groups, stats
    )
    stats.num_labels = index.num_labels
    return index


def build_index_brute_force(graph: TimetableGraph, order: OrderSpec = "hub"):
    """Appendix D.2's baseline: unpruned construction.

    Runs a *full-graph* temporal Dijkstra from every node for every
    distinct departure time, materializes each non-dominated path, and
    keeps it only when its highest-ranked node is an endpoint (the Rank
    Constraint, checked after the fact instead of during the search).
    """
    from repro.algorithms.temporal_dijkstra import earliest_arrival_search
    from repro.core.index import TTLIndex

    start = time.perf_counter()
    ranks = resolve_order(graph, order)
    order_seconds = time.perf_counter() - start

    n = graph.n
    in_groups: List[Dict[int, LabelGroup]] = [dict() for _ in range(n)]
    out_groups: List[Dict[int, LabelGroup]] = [dict() for _ in range(n)]
    stats = BuildStats()

    for u in range(n):
        best_arr = [INF] * n
        rank_u = ranks[u]
        for t_d in reversed(graph.departure_times(u)):
            stats.dijkstra_runs += 1
            eat, parent = earliest_arrival_search(graph, u, t_d)
            for v in range(n):
                if v == u or eat[v] >= INF or eat[v] >= best_arr[v]:
                    continue
                best_arr[v] = eat[v]
                stats.forward_pops += 1
                # Materialize the path to find its pivot and vehicle.
                conn = parent[v]
                pivot: Optional[int] = None
                trip: Optional[int] = conn.trip
                max_rank_node = v if ranks[v] < rank_u else u
                ok = True
                while conn is not None:
                    if conn.trip != trip:
                        trip = None
                    x = conn.u
                    if x == u:
                        break
                    if ranks[x] < ranks[max_rank_node]:
                        ok = False
                        break
                    if pivot is None or ranks[x] < ranks[pivot]:
                        pivot = x
                    conn = parent[x]
                if not ok:
                    continue  # Rank Constraint violated: not canonical.
                if rank_u < ranks[v]:
                    table, key, hub, hub_rank = in_groups[v], v, u, rank_u
                else:
                    table, key, hub, hub_rank = out_groups[u], u, v, ranks[v]
                group = table.get(hub)
                if group is None:
                    group = table[hub] = LabelGroup(hub, hub_rank)
                group.append(t_d, eat[v], trip, pivot)

    for table in (*in_groups, *out_groups):
        for group in table.values():
            group.reverse()

    stats.order_seconds = order_seconds
    stats.seconds = time.perf_counter() - start
    index = TTLIndex(graph, ranks, in_groups, out_groups, stats)
    stats.num_labels = index.num_labels
    return index
