"""Per-query observability counters.

Every planner that answers label queries owns a :class:`QueryMetrics`
and threads it through the sketch selectors and PathUnfold.  Counters
are cumulative since planner creation (or the last :meth:`reset`) and
are cheap enough to stay on in production:

* ``queries`` — answered queries (EAP + LDP + SDP + profile);
* ``labels_scanned`` — labels in the scanned ``L_out(u)`` /
  ``L_in(v)`` sets, the paper's query-cost measure (Lemma 3);
* ``sketches_generated`` — candidate sketches evaluated by
  refinement (one per viable hub) or emitted by SketchGen;
* ``unfold_max_depth`` — deepest PathUnfold recursion observed
  (stack depth of the iterative unfolder);
* ``unfold_fallbacks`` — segments rebuilt by search because a
  tie-pruned child label was absent.

Snapshots surface through the HTTP service's ``/metrics`` endpoint
and the CLI's ``query --stats`` flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class QueryMetrics:
    """Cumulative query-path counters for one planner."""

    queries: int = 0
    labels_scanned: int = 0
    sketches_generated: int = 0
    unfold_max_depth: int = 0
    unfold_fallbacks: int = 0

    def record_unfold_depth(self, depth: int) -> None:
        """Fold one unfold run's peak stack depth into the maximum."""
        if depth > self.unfold_max_depth:
            self.unfold_max_depth = depth

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy (JSON-ready)."""
        return {
            "queries": self.queries,
            "labels_scanned": self.labels_scanned,
            "sketches_generated": self.sketches_generated,
            "unfold_max_depth": self.unfold_max_depth,
            "unfold_fallbacks": self.unfold_fallbacks,
        }

    def reset(self) -> None:
        """Zero every counter."""
        self.queries = 0
        self.labels_scanned = 0
        self.sketches_generated = 0
        self.unfold_max_depth = 0
        self.unfold_fallbacks = 0
