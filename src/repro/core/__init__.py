"""TTL — the paper's primary contribution.

* :mod:`repro.core.label` — label records and grouped label sets.
* :mod:`repro.core.order` — node-order heuristics (Section 6).
* :mod:`repro.core.build` — IndexBuild (Algorithm 3) and the
  brute-force construction baseline of Appendix D.2.
* :mod:`repro.core.index` — the sealed, queryable TTL index.
* :mod:`repro.core.sketch` — SketchGen and refinement (Section 4.1).
* :mod:`repro.core.unfold` — PathUnfold and concise paths (4.2 / 8).
* :mod:`repro.core.queries` — the :class:`TTLPlanner` front end.
* :mod:`repro.core.compression` / :mod:`repro.core.cindex` — label
  compression and the C-TTL planner (Section 7, Appendix B).
* :mod:`repro.core.store` — the flat sealed label store.
* :mod:`repro.core.metrics` — per-query observability counters.
* :mod:`repro.core.serialize` — persistence and size accounting.
"""

from repro.core.label import Label, LabelGroup
from repro.core.metrics import QueryMetrics
from repro.core.store import COLUMN_NAMES, GroupView, LabelStore, MappedGroupView
from repro.core.order import (
    approximation_order,
    betweenness_order,
    degree_order,
    hub_order,
    random_order,
)
from repro.core.build import build_index, build_index_brute_force
from repro.core.index import TTLIndex
from repro.core.queries import TTLPlanner
from repro.core.compression import compress_index, CompressionStats
from repro.core.cindex import CompressedTTLPlanner
from repro.core.serialize import (
    index_bytes,
    index_file_magic,
    is_mmap_capable,
    load_index,
    save_index,
)
from repro.core.multiday import MultiDayPlanner, WeeklyCalendar
from repro.core.profile_queries import oracle_profile, ttl_profile
from repro.core.verify import VerificationReport, verify_index
from repro.core.batch import batch_plan, eat_matrix, isochrone, one_to_many_eat
from repro.core.kernels import vectorized_available

__all__ = [
    "Label",
    "LabelGroup",
    "LabelStore",
    "GroupView",
    "MappedGroupView",
    "COLUMN_NAMES",
    "QueryMetrics",
    "approximation_order",
    "betweenness_order",
    "degree_order",
    "hub_order",
    "random_order",
    "build_index",
    "build_index_brute_force",
    "TTLIndex",
    "TTLPlanner",
    "compress_index",
    "CompressionStats",
    "CompressedTTLPlanner",
    "index_bytes",
    "index_file_magic",
    "is_mmap_capable",
    "load_index",
    "save_index",
    "MultiDayPlanner",
    "WeeklyCalendar",
    "ttl_profile",
    "oracle_profile",
    "verify_index",
    "VerificationReport",
    "batch_plan",
    "one_to_many_eat",
    "eat_matrix",
    "isochrone",
    "vectorized_available",
]
