"""The planner protocol.

All route-planning backends expose the same three queries (Definitions
2-4 of the paper) through :class:`RoutePlanner`, so tests and the
benchmark harness can swap methods freely:

* :meth:`RoutePlanner.earliest_arrival` — EAP.
* :meth:`RoutePlanner.latest_departure` — LDP.
* :meth:`RoutePlanner.shortest_duration` — SDP.

Each returns a :class:`~repro.journey.Journey` or ``None`` when no
feasible path exists.  ``preprocess()`` builds whatever index the
method needs and returns the elapsed seconds; ``index_bytes()`` reports
the index footprint used by the Figure 4 experiment.
"""

from __future__ import annotations

import abc
import time
from typing import Optional

from repro.errors import QueryError
from repro.graph.timetable import TimetableGraph
from repro.journey import Journey


class RoutePlanner(abc.ABC):
    """Common interface of every route-planning method in this repo."""

    #: Short display name used in benchmark tables ("TTL", "CSA", ...).
    name: str = "planner"

    def __init__(self, graph: TimetableGraph) -> None:
        self.graph = graph
        self._preprocess_seconds: Optional[float] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def preprocess(self) -> float:
        """Build the method's index; returns wall-clock seconds spent.

        Idempotent: a second call returns the recorded time without
        rebuilding.
        """
        if self._preprocess_seconds is None:
            start = time.perf_counter()
            self._build()
            self._preprocess_seconds = time.perf_counter() - start
        return self._preprocess_seconds

    @property
    def preprocess_seconds(self) -> float:
        """Recorded preprocessing time; 0.0 before :meth:`preprocess`.

        Planners adopting a persisted index report the build time
        recorded in the file's :class:`~repro.core.build.BuildStats`.
        """
        return self._preprocess_seconds or 0.0

    @abc.abstractmethod
    def _build(self) -> None:
        """Perform the actual preprocessing work."""

    @abc.abstractmethod
    def index_bytes(self) -> int:
        """Approximate size in bytes of the preprocessed structures."""

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def earliest_arrival(
        self, source: int, destination: int, t: int
    ) -> Optional[Journey]:
        """EAP: the path starting from ``source`` no sooner than ``t``
        that reaches ``destination`` earliest (Definition 2)."""

    @abc.abstractmethod
    def latest_departure(
        self, source: int, destination: int, t: int
    ) -> Optional[Journey]:
        """LDP: the path ending at ``destination`` no later than ``t``
        that leaves ``source`` latest (Definition 3)."""

    @abc.abstractmethod
    def shortest_duration(
        self, source: int, destination: int, t: int, t_end: int
    ) -> Optional[Journey]:
        """SDP: the minimum-duration path within ``[t, t_end]``
        (Definition 4)."""

    # ------------------------------------------------------------------
    # Shared validation helpers
    # ------------------------------------------------------------------

    def _check_query(self, source: int, destination: int) -> None:
        n = self.graph.n
        if not 0 <= source < n:
            raise QueryError(f"unknown source station: {source}")
        if not 0 <= destination < n:
            raise QueryError(f"unknown destination station: {destination}")

    @staticmethod
    def _check_window(t: int, t_end: int) -> None:
        if t_end < t:
            raise QueryError(f"empty query window: [{t}, {t_end}]")
