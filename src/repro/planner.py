"""The planner protocol.

All route-planning backends expose the same queries (Definitions 2-4
of the paper, plus profile enumeration) through :class:`RoutePlanner`,
so tests and the benchmark harness can swap methods freely:

* :meth:`RoutePlanner.earliest_arrival` — EAP.
* :meth:`RoutePlanner.latest_departure` — LDP.
* :meth:`RoutePlanner.shortest_duration` — SDP.
* :meth:`RoutePlanner.profile` — every non-dominated journey in a
  window; backends without label sets raise
  :class:`~repro.errors.UnsupportedQueryError`.

The unified entry point is :meth:`RoutePlanner.plan`: it takes a
frozen :class:`~repro.query.QueryRequest` and dispatches on its
``query_type``, so the HTTP service, the federation stitcher, the live
engine, and the benchmark harness never switch-case over method
signatures themselves.  The per-type methods remain as the
implementation surface (and as the stable legacy API).

Each journey query returns a :class:`~repro.journey.Journey` or
``None`` when no feasible path exists.  ``preprocess()`` builds
whatever index the method needs and returns the elapsed seconds;
``index_bytes()`` reports the index footprint used by the Figure 4
experiment.
"""

from __future__ import annotations

import abc
import time
from typing import List, Optional, Tuple

from repro.errors import QueryError, UnsupportedQueryError
from repro.graph.timetable import TimetableGraph
from repro.journey import Journey
from repro.query import QueryRequest, QueryResult


class RoutePlanner(abc.ABC):
    """Common interface of every route-planning method in this repo."""

    #: Short display name used in benchmark tables ("TTL", "CSA", ...).
    name: str = "planner"

    def __init__(self, graph: TimetableGraph) -> None:
        self.graph = graph
        self._preprocess_seconds: Optional[float] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def preprocess(self) -> float:
        """Build the method's index; returns wall-clock seconds spent.

        Idempotent: a second call returns the recorded time without
        rebuilding.
        """
        if self._preprocess_seconds is None:
            start = time.perf_counter()
            self._build()
            self._preprocess_seconds = time.perf_counter() - start
        return self._preprocess_seconds

    @property
    def preprocess_seconds(self) -> float:
        """Recorded preprocessing time; 0.0 before :meth:`preprocess`.

        Planners adopting a persisted index report the build time
        recorded in the file's :class:`~repro.core.build.BuildStats`.
        """
        return self._preprocess_seconds or 0.0

    @abc.abstractmethod
    def _build(self) -> None:
        """Perform the actual preprocessing work."""

    @abc.abstractmethod
    def index_bytes(self) -> int:
        """Approximate size in bytes of the preprocessed structures."""

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def earliest_arrival(
        self, source: int, destination: int, t: int
    ) -> Optional[Journey]:
        """EAP: the path starting from ``source`` no sooner than ``t``
        that reaches ``destination`` earliest (Definition 2)."""

    @abc.abstractmethod
    def latest_departure(
        self, source: int, destination: int, t: int
    ) -> Optional[Journey]:
        """LDP: the path ending at ``destination`` no later than ``t``
        that leaves ``source`` latest (Definition 3)."""

    @abc.abstractmethod
    def shortest_duration(
        self, source: int, destination: int, t: int, t_end: int
    ) -> Optional[Journey]:
        """SDP: the minimum-duration path within ``[t, t_end]``
        (Definition 4)."""

    def profile(
        self, source: int, destination: int, t: int, t_end: int
    ) -> List[Tuple[int, int]]:
        """Every non-dominated ``(dep, arr)`` journey within
        ``[t, t_end]``, ascending by departure.

        Labelling-based planners answer this from their label sets;
        backends without a feasible implementation inherit this default
        and raise :class:`~repro.errors.UnsupportedQueryError`.
        """
        raise UnsupportedQueryError(self.name, "profile")

    # ------------------------------------------------------------------
    # Unified entry point
    # ------------------------------------------------------------------

    def plan(self, request: QueryRequest) -> QueryResult:
        """Answer any query type from one :class:`QueryRequest`.

        This is the single switch-case over query types in the
        codebase; every other consumer builds a request and calls here.
        """
        request.validated()
        kind = request.query_type
        if kind == "eap":
            return QueryResult(
                request,
                journey=self.earliest_arrival(
                    request.source, request.destination, request.t
                ),
            )
        if kind == "ldp":
            return QueryResult(
                request,
                journey=self.latest_departure(
                    request.source, request.destination, request.t_end
                ),
            )
        if kind == "sdp":
            return QueryResult(
                request,
                journey=self.shortest_duration(
                    request.source,
                    request.destination,
                    request.t,
                    request.t_end,
                ),
            )
        pairs = self.profile(
            request.source, request.destination, request.t, request.t_end
        )
        if request.max_results is not None:
            pairs = pairs[: request.max_results]
        return QueryResult(request, pairs=tuple(tuple(p) for p in pairs))

    # ------------------------------------------------------------------
    # Shared validation helpers
    # ------------------------------------------------------------------

    def _check_query(self, source: int, destination: int) -> None:
        n = self.graph.n
        if not 0 <= source < n:
            raise QueryError(f"unknown source station: {source}")
        if not 0 <= destination < n:
            raise QueryError(f"unknown destination station: {destination}")

    @staticmethod
    def _check_window(t: int, t_end: int) -> None:
        if t_end < t:
            raise QueryError(f"empty query window: [{t}, {t_end}]")
