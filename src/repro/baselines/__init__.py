"""Baselines the paper evaluates TTL against (Section 9/10).

* :mod:`repro.baselines.csa` — the Connection Scan Algorithm: almost
  no preprocessing, answers queries with linear scans over globally
  sorted connection arrays.
* :mod:`repro.baselines.cht` — Contraction Hierarchies for Timetables:
  contracts nodes bottom-up inserting timetable shortcuts, then runs
  bidirectional hierarchy-restricted searches.
* :mod:`repro.baselines.raptor` — RAPTOR, the round-based router
  modern open-source transit systems use; a supplementary exact
  baseline beyond the paper's line-up.
* :mod:`repro.baselines.time_expanded` — routing on the time-expanded
  event graph, Section 9's first related-work category, implemented so
  its uncompetitiveness is reproducible.

All implement :class:`~repro.planner.RoutePlanner` and return exact
answers, matching the paper's choice of exact competitors.
"""

from repro.baselines.csa import CSAPlanner
from repro.baselines.cht import CHTPlanner
from repro.baselines.raptor import RaptorPlanner
from repro.baselines.time_expanded import TimeExpandedPlanner

__all__ = [
    "CSAPlanner",
    "CHTPlanner",
    "RaptorPlanner",
    "TimeExpandedPlanner",
]
