"""Connection Scan Algorithm (CSA) [Dibbelt et al.], as evaluated in
the paper's Section 10.

Preprocessing stores two copies of the connection array:

* ascending by departure time — one forward scan answers EAP;
* descending by departure time — one backward-in-time scan answers
  LDP, and a profile variant of the same scan answers SDP by building,
  per station, the Pareto frontier of (departure, final arrival) pairs
  toward the target (the "list of non-dominated paths" the paper
  mentions when explaining why CSA's SDP queries are several times
  slower than its EAP queries).

Scans use generation-stamped arrays so a query touches only the
stations it reaches instead of resetting O(n) state.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional

from repro.algorithms.profiles import ParetoProfile
from repro.core.serialize import connections_bytes
from repro.graph.connection import Connection, Path
from repro.journey import Journey
from repro.planner import RoutePlanner
from repro.resilience.deadline import check_deadline
from repro.timeutil import INF

#: Connections scanned between cooperative deadline checks.  CSA scans
#: are linear in the timetable, so a long window on a big network can
#: burn a whole request budget in one loop.
_DEADLINE_STRIDE = 2048


class CSAPlanner(RoutePlanner):
    """Connection Scan Algorithm."""

    name = "CSA"

    def _build(self) -> None:
        self._by_dep: List[Connection] = sorted(
            self.graph.connections, key=lambda c: (c.dep, c.arr)
        )
        self._dep_keys = [c.dep for c in self._by_dep]
        self._by_dep_desc: List[Connection] = self._by_dep[::-1]
        # Stamped per-query state.
        n = self.graph.n
        self._eat = [0] * n
        self._ldt = [0] * n
        self._jp: List[Optional[Connection]] = [None] * n
        self._stamp = [0] * n
        self._gen = 0

    def index_bytes(self) -> int:
        self.preprocess()
        return 2 * connections_bytes(len(self._by_dep))

    # ------------------------------------------------------------------
    # EAP
    # ------------------------------------------------------------------

    def earliest_arrival(
        self, source: int, destination: int, t: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        self.preprocess()
        self._gen += 1
        gen = self._gen
        eat, jp, stamp = self._eat, self._jp, self._stamp
        eat[source] = t
        jp[source] = None
        stamp[source] = gen
        conns = self._by_dep
        target_eat = INF
        scanned = 0
        for i in range(bisect_left(self._dep_keys, t), len(conns)):
            scanned += 1
            if not scanned % _DEADLINE_STRIDE:
                check_deadline()
            c = conns[i]
            if c.dep > target_eat:
                break
            if stamp[c.u] == gen and c.dep >= eat[c.u]:
                v = c.v
                if stamp[v] != gen or c.arr < eat[v]:
                    eat[v] = c.arr
                    jp[v] = c
                    stamp[v] = gen
                    if v == destination:
                        target_eat = c.arr
        if stamp[destination] != gen:
            return None
        return Journey.from_path(self._extract(source, destination))

    def _extract(self, source: int, destination: int) -> Path:
        path: Path = []
        node = destination
        while node != source:
            conn = self._jp[node]
            assert conn is not None
            path.append(conn)
            node = conn.u
        path.reverse()
        return path

    # ------------------------------------------------------------------
    # LDP
    # ------------------------------------------------------------------

    def latest_departure(
        self, source: int, destination: int, t: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        self.preprocess()
        self._gen += 1
        gen = self._gen
        ldt, jp, stamp = self._ldt, self._jp, self._stamp
        ldt[destination] = INF  # any arrival time <= t works at the target
        jp[destination] = None
        stamp[destination] = gen
        scanned = 0
        for c in self._by_dep_desc:
            scanned += 1
            if not scanned % _DEADLINE_STRIDE:
                check_deadline()
            if c.arr > t:
                continue
            v = c.v
            if stamp[v] == gen and (v == destination or c.arr <= ldt[v]):
                u = c.u
                if stamp[u] != gen or c.dep > ldt[u]:
                    ldt[u] = c.dep
                    jp[u] = c
                    stamp[u] = gen
                    if u == source:
                        break
        if stamp[source] != gen or jp[source] is None:
            return None
        path: Path = []
        node = source
        while node != destination:
            conn = self._jp[node]
            assert conn is not None
            path.append(conn)
            node = conn.v
        return Journey.from_path(path)

    # ------------------------------------------------------------------
    # SDP (profile scan)
    # ------------------------------------------------------------------

    def shortest_duration(
        self, source: int, destination: int, t: int, t_end: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        self._check_window(t, t_end)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        self.preprocess()
        profiles: dict = {}
        scanned = 0
        for c in self._by_dep_desc:
            scanned += 1
            if not scanned % _DEADLINE_STRIDE:
                check_deadline()
            if c.dep < t:
                break
            if c.dep > t_end:
                continue
            if c.v == destination:
                final = c.arr
            else:
                profile = profiles.get(c.v)
                final = profile.eat(c.arr) if profile is not None else INF
            if final > t_end:
                continue
            profile = profiles.get(c.u)
            if profile is None:
                profile = profiles[c.u] = ParetoProfile()
            profile.add(c.dep, final)
        source_profile = profiles.get(source)
        if source_profile is None:
            return None
        best = source_profile.best_duration(t, t_end)
        if best is None:
            return None
        dep, _, _ = best
        # Re-run the cheap EAP scan at the optimal departure to get the
        # actual connection sequence.
        journey = self.earliest_arrival(source, destination, dep)
        assert journey is not None
        return journey
