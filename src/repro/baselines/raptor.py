"""RAPTOR — Round-bAsed Public Transit Optimized Router.

Not one of the paper's competitors, but *the* algorithm open-source
transit routing standardized on after 2012 (Delling, Pajor, Werneck),
included here as a supplementary exact baseline: it processes routes
in rounds (round ``k`` finds earliest arrivals using at most ``k``
vehicles) and needs almost no preprocessing.

* **EAP** — textbook RAPTOR over per-route timetable columns
  (same-station transfers with zero minimum change time, matching the
  paper's model).  RAPTOR requires FIFO routes (no overtaking), so
  preprocessing splits each route's trips into FIFO chains — the
  standard production fix for real-world timetables.
* **LDP** — RAPTOR on the time-reversed graph (built once), answers
  mapped back.
* **SDP** — rRAPTOR-style range query: departure times swept in
  descending order, re-using arrival labels across sweeps so each
  sweep only touches stops it strictly improves.

Every query type is cross-checked against the temporal Dijkstra oracle
in the test suite.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

from repro.graph.connection import Connection, Path
from repro.graph.route import Trip
from repro.graph.timetable import TimetableGraph
from repro.graph.transforms import reversed_graph
from repro.journey import Journey
from repro.planner import RoutePlanner
from repro.timeutil import INF


class _FifoRoute:
    """A stop sequence served by a FIFO (non-overtaking) trip chain."""

    __slots__ = ("stops", "trips", "dep_cols", "arr_cols")

    def __init__(self, stops: Tuple[int, ...], trips: List[Trip]) -> None:
        self.stops = stops
        self.trips = trips
        self.dep_cols: List[List[int]] = [
            [trip.stop_times[i].dep for trip in trips]
            for i in range(len(stops))
        ]
        self.arr_cols: List[List[int]] = [
            [trip.stop_times[i].arr for trip in trips]
            for i in range(len(stops))
        ]


def _fifo_chains(trips: List[Trip]) -> List[List[Trip]]:
    """Partition trips into chains where no trip overtakes another.

    Greedy first-fit over trips sorted by first-stop departure; within
    a chain every stop's departure and arrival columns are
    non-decreasing, which is the property RAPTOR's earliest-catchable
    -trip bisection needs.
    """
    chains: List[List[Trip]] = []
    for trip in sorted(trips, key=lambda t: t.departure):
        for chain in chains:
            last = chain[-1]
            fifo = all(
                st.dep >= prev.dep and st.arr >= prev.arr
                for st, prev in zip(trip.stop_times, last.stop_times)
            )
            if fifo:
                chain.append(trip)
                break
        else:
            chains.append([trip])
    return chains


class _RaptorCore:
    """RAPTOR machinery over one (possibly reversed) timetable graph."""

    def __init__(self, graph: TimetableGraph) -> None:
        self.graph = graph
        self.routes: List[_FifoRoute] = []
        for route in graph.routes.values():
            for chain in _fifo_chains(route.trips):
                self.routes.append(_FifoRoute(route.stops, chain))
        #: stop -> [(route index, stop index on that route)]
        self.routes_of_stop: List[List[Tuple[int, int]]] = [
            [] for _ in range(graph.n)
        ]
        for r_idx, froute in enumerate(self.routes):
            for idx, stop in enumerate(froute.stops[:-1]):
                self.routes_of_stop[stop].append((r_idx, idx))

    # ------------------------------------------------------------------
    # Core rounds
    # ------------------------------------------------------------------

    def run(
        self,
        source: int,
        t: int,
        target: Optional[int] = None,
        best: Optional[List[int]] = None,
        parent: Optional[Dict[int, Tuple]] = None,
        max_rounds: Optional[int] = None,
    ) -> List[int]:
        """Earliest arrivals from ``source`` departing no sooner than
        ``t``.

        ``best`` may be a shared best-arrival array (rRAPTOR re-use);
        entries are only ever improved.  ``parent`` optionally records
        journey pointers ``stop -> (trip, board_idx, alight_idx,
        route)``.
        """
        n = self.graph.n
        if best is None:
            best = [INF] * n
        if t < best[source]:
            best[source] = t
            if parent is not None:
                parent.pop(source, None)
        marked = {source}
        rounds = max_rounds if max_rounds is not None else n
        target_bound = INF if target is None else best[target]

        for _ in range(rounds):
            queue: Dict[int, int] = {}
            for stop in marked:
                for r_idx, idx in self.routes_of_stop[stop]:
                    prev = queue.get(r_idx)
                    if prev is None or idx < prev:
                        queue[r_idx] = idx
            if not queue:
                break
            marked = set()
            for r_idx, start_idx in queue.items():
                froute = self.routes[r_idx]
                stops = froute.stops
                trips = froute.trips
                trip: Optional[Trip] = None
                trip_pos = len(trips)
                board_idx = -1
                for i in range(start_idx, len(stops)):
                    stop = stops[i]
                    if trip is not None:
                        arr = trip.stop_times[i].arr
                        if arr < best[stop] and arr <= target_bound:
                            best[stop] = arr
                            if parent is not None:
                                parent[stop] = (trip, board_idx, i, froute)
                            marked.add(stop)
                            if stop == target:
                                target_bound = arr
                    # Catch an earlier trip of this FIFO chain?
                    ready = best[stop]
                    if ready < INF and i < len(stops) - 1:
                        pos = bisect_left(froute.dep_cols[i], ready)
                        if pos < trip_pos:
                            trip = trips[pos]
                            trip_pos = pos
                            board_idx = i
            if not marked:
                break
        return best

    def run_rounds(
        self, source: int, t: int, max_rounds: int
    ) -> List[List[int]]:
        """Strict per-round arrivals (classic RAPTOR round semantics).

        Returns ``tau`` where ``tau[k][stop]`` is the earliest arrival
        at ``stop`` using at most ``k`` vehicles; boarding in round
        ``k`` uses round ``k-1`` arrivals, so the rounds carry the
        (vehicles, arrival) Pareto information multicriteria queries
        need.
        """
        n = self.graph.n
        best = [INF] * n
        best[source] = t
        prev = list(best)
        marked = {source}
        rounds_out = [list(best)]
        for _ in range(max_rounds):
            queue: Dict[int, int] = {}
            for stop in marked:
                for r_idx, idx in self.routes_of_stop[stop]:
                    known = queue.get(r_idx)
                    if known is None or idx < known:
                        queue[r_idx] = idx
            if not queue:
                break
            marked = set()
            for r_idx, start_idx in queue.items():
                froute = self.routes[r_idx]
                stops = froute.stops
                trips = froute.trips
                trip: Optional[Trip] = None
                trip_pos = len(trips)
                for i in range(start_idx, len(stops)):
                    stop = stops[i]
                    if trip is not None:
                        arr = trip.stop_times[i].arr
                        if arr < best[stop]:
                            best[stop] = arr
                            marked.add(stop)
                    ready = prev[stop]
                    if ready < INF and i < len(stops) - 1:
                        pos = bisect_left(froute.dep_cols[i], ready)
                        if pos < trip_pos:
                            trip = trips[pos]
                            trip_pos = pos
            rounds_out.append(list(best))
            prev = list(best)
            if not marked:
                break
        return rounds_out

    def extract_path(
        self, parent: Dict[int, Tuple], source: int, destination: int
    ) -> Optional[Path]:
        """Rebuild the connection sequence from journey pointers."""
        if source == destination:
            return []
        legs = []
        stop = destination
        guard = 0
        while stop != source:
            entry = parent.get(stop)
            if entry is None:
                return None
            trip, board_idx, alight_idx, froute = entry
            legs.append((trip, board_idx, alight_idx, froute))
            stop = froute.stops[board_idx]
            guard += 1
            if guard > self.graph.n + 1:  # pragma: no cover - defensive
                return None
        legs.reverse()
        path: Path = []
        for trip, board_idx, alight_idx, froute in legs:
            for i in range(board_idx, alight_idx):
                path.append(
                    Connection(
                        froute.stops[i],
                        froute.stops[i + 1],
                        trip.stop_times[i].dep,
                        trip.stop_times[i + 1].arr,
                        trip.trip_id,
                    )
                )
        return path


class RaptorPlanner(RoutePlanner):
    """RAPTOR as a :class:`~repro.planner.RoutePlanner`."""

    name = "RAPTOR"

    def _build(self) -> None:
        self._forward = _RaptorCore(self.graph)
        self._reversed_graph = reversed_graph(self.graph)
        self._backward = _RaptorCore(self._reversed_graph)

    def index_bytes(self) -> int:
        """Timetable columns (8 B per stop time, both directions) plus
        the stop -> route incidence lists."""
        self.preprocess()
        total = 0
        for core in (self._forward, self._backward):
            for froute in core.routes:
                total += len(froute.trips) * len(froute.stops) * 8
            total += sum(len(e) for e in core.routes_of_stop) * 8
        return total

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def earliest_arrival(
        self, source: int, destination: int, t: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        self.preprocess()
        parent: Dict[int, Tuple] = {}
        best = self._forward.run(source, t, target=destination, parent=parent)
        if best[destination] >= INF:
            return None
        path = self._forward.extract_path(parent, source, destination)
        if path is None:  # pragma: no cover - defensive
            return None
        return Journey.from_path(path)

    def latest_departure(
        self, source: int, destination: int, t: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        self.preprocess()
        # LDP(u -> v by t) == EAP(v -> u from -t) on the time reversal.
        parent: Dict[int, Tuple] = {}
        best = self._backward.run(
            destination, -t, target=source, parent=parent
        )
        if best[source] >= INF:
            return None
        reversed_path = self._backward.extract_path(
            parent, destination, source
        )
        if reversed_path is None:  # pragma: no cover - defensive
            return None
        path = [
            Connection(c.v, c.u, -c.arr, -c.dep, c.trip)
            for c in reversed(reversed_path)
        ]
        return Journey.from_path(path)

    def pareto_arrivals(
        self,
        source: int,
        destination: int,
        t: int,
        max_rounds: Optional[int] = None,
    ) -> List[Tuple[int, int]]:
        """Multicriteria profile: Pareto-optimal ``(vehicles, arrival)``
        pairs for journeys departing no sooner than ``t``.

        The first pair is the fewest-vehicles journey, the last the
        earliest-arrival journey; each extra vehicle must strictly
        improve the arrival to appear (classic RAPTOR's per-round
        output).
        """
        self._check_query(source, destination)
        self.preprocess()
        if source == destination:
            return [(0, t)]
        rounds = max_rounds if max_rounds is not None else self.graph.n
        tau = self._forward.run_rounds(source, t, rounds)
        result: List[Tuple[int, int]] = []
        previous = INF
        for k in range(1, len(tau)):
            arr = tau[k][destination]
            if arr < previous:
                result.append((k, arr))
                previous = arr
        return result

    def shortest_duration(
        self, source: int, destination: int, t: int, t_end: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        self._check_window(t, t_end)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        self.preprocess()
        from repro.algorithms.profiles import ParetoProfile

        dep_times = sorted(
            {c.dep for c in self.graph.out[source] if t <= c.dep <= t_end},
            reverse=True,
        )
        best = [INF] * self.graph.n
        pairs = ParetoProfile()
        for dep in dep_times:
            self._forward.run(source, dep, target=destination, best=best)
            arr = best[destination]
            if arr < INF and arr <= t_end:
                # Dominated pairs (journeys that actually depart later
                # than ``dep``) are evicted by the profile.
                pairs.add(dep, arr)
        answer = pairs.best_duration(t, t_end)
        if answer is None:
            return None
        return self.earliest_arrival(source, destination, answer[0])
