"""Contraction Hierarchies for Timetables (CHT) [Geisberger], the
paper's stronger baseline.

Preprocessing contracts stations from least to most important.  When a
station ``x`` is contracted, every non-dominated way of travelling
``u -> x -> w`` between still-alive neighbours becomes a *shortcut*
``(u, w, dep, arr)`` carrying references to its two halves, unless the
current direct ``u -> w`` profile already (weakly) dominates it — the
one-hop witness test.  Skipping a shortcut only when a dominating
witness provably exists keeps the hierarchy exact; extra shortcuts
cost space, not correctness.

The search graph stores one **pair profile** per (station, neighbour):
the Pareto staircase of ``(dep, arr)`` entries between the pair.  A
search then relaxes a single entry per neighbour (found by bisection)
instead of walking every timetabled connection — the standard
profile-edge representation of time-dependent CH.

Queries exploit the hierarchy property that every non-dominated
journey has an *up-then-down* representative:

* **EAP** — mark the station cone that can reach the destination via
  down-edges only, then run a two-state temporal Dijkstra from the
  source: state 0 climbs up-edges, either state may descend, but only
  into the marked cone.
* **LDP** — the time-reversed mirror (cone of stations reachable from
  the source via up-edges; backward search from the destination).
* **SDP** — descending departure-time sweeps with self-pruning
  against all later departures: the per-node non-dominated lists the
  paper says make CHT's SDP queries costlier than its EAP queries.

Shortcut unpacking turns answers back into original connections.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.algorithms.profiles import ParetoProfile
from repro.graph.connection import Connection, Path
from repro.journey import Journey
from repro.planner import RoutePlanner
from repro.timeutil import INF, NEG_INF


class Shortcut(NamedTuple):
    """A contracted two-hop: ``left`` then ``right`` (payload tree)."""

    left: object
    right: object


class PairEdge(NamedTuple):
    """All non-dominated departures between one station pair."""

    other: int
    deps: List[int]
    arrs: List[int]
    payloads: List[object]  # Connection | Shortcut per entry


def _expand(payload: object) -> Path:
    """Unpack a payload tree into its original connection sequence."""
    stack = [payload]
    path: Path = []
    while stack:
        item = stack.pop()
        if isinstance(item, Connection):
            path.append(item)
        else:
            assert isinstance(item, Shortcut)
            stack.append(item.right)
            stack.append(item.left)
    return path


def _merge_profiles(
    left: ParetoProfile, right: ParetoProfile
) -> List[Tuple[int, int, Shortcut]]:
    """Minimal-wait non-dominated compositions of two edge profiles."""
    out: List[Tuple[int, int, Shortcut]] = []
    j = 0
    len_r = len(right.deps)
    pending: Optional[Tuple[int, int, Shortcut]] = None
    for k in range(len(left.deps)):
        mid = left.arrs[k]
        while j < len_r and right.deps[j] < mid:
            j += 1
        if j == len_r:
            break
        combo = (
            left.deps[k],
            right.arrs[j],
            Shortcut(left.payloads[k], right.payloads[j]),
        )
        if pending is not None:
            if pending[1] == combo[1]:
                pending = combo
                continue
            out.append(pending)
        pending = combo
    if pending is not None:
        out.append(pending)
    return out


class CHTPlanner(RoutePlanner):
    """Contraction Hierarchies on a timetable graph."""

    name = "CHT"

    def __init__(self, graph) -> None:
        super().__init__(graph)
        self.num_shortcuts = 0

    # ------------------------------------------------------------------
    # Preprocessing: contraction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        n = self.graph.n
        fwd: List[Dict[int, ParetoProfile]] = [dict() for _ in range(n)]
        bwd: List[Dict[int, ParetoProfile]] = [dict() for _ in range(n)]
        for c in self.graph.connections:
            profile = fwd[c.u].get(c.v)
            if profile is None:
                profile = fwd[c.u][c.v] = ParetoProfile()
                bwd[c.v][c.u] = profile
            profile.add(c.dep, c.arr, payload=c)

        self.rank = [0] * n  # contraction position; higher = more important
        up_out: List[List[PairEdge]] = [[] for _ in range(n)]
        down_out: List[List[PairEdge]] = [[] for _ in range(n)]
        up_in: List[List[PairEdge]] = [[] for _ in range(n)]
        down_in: List[List[PairEdge]] = [[] for _ in range(n)]
        self.num_shortcuts = 0
        total_entries = 0

        def priority(x: int) -> int:
            ins = len(bwd[x])
            outs = len(fwd[x])
            return ins * outs - ins - outs

        heap: List[Tuple[int, int]] = [(priority(x), x) for x in range(n)]
        heapq.heapify(heap)
        contracted = [False] * n
        position = 0
        while heap:
            prio, x = heapq.heappop(heap)
            if contracted[x]:
                continue
            current = priority(x)
            if current > prio:
                heapq.heappush(heap, (current, x))
                continue
            contracted[x] = True
            self.rank[x] = position
            position += 1

            in_pairs = bwd[x]
            out_pairs = fwd[x]
            # Record x's incident pair profiles into the search graph.
            # Every alive neighbour ranks above x: edges u -> x are
            # "down" for u, edges x -> w are "up" for x.
            for u, profile in in_pairs.items():
                edge = PairEdge(
                    x, list(profile.deps), list(profile.arrs),
                    list(profile.payloads),
                )
                down_out[u].append(edge)
                down_in[x].append(
                    PairEdge(u, edge.deps, edge.arrs, edge.payloads)
                )
                total_entries += len(edge.deps)
            for w, profile in out_pairs.items():
                edge = PairEdge(
                    w, list(profile.deps), list(profile.arrs),
                    list(profile.payloads),
                )
                up_out[x].append(edge)
                up_in[w].append(
                    PairEdge(x, edge.deps, edge.arrs, edge.payloads)
                )
                total_entries += len(edge.deps)

            # Insert shortcuts between x's neighbours.
            for u, in_profile in in_pairs.items():
                del fwd[u][x]
                for w, out_profile in out_pairs.items():
                    if u == w:
                        continue
                    for dep, arr, payload in _merge_profiles(
                        in_profile, out_profile
                    ):
                        existing = fwd[u].get(w)
                        if existing is None:
                            existing = fwd[u][w] = ParetoProfile()
                            bwd[w][u] = existing
                        if existing.add(dep, arr, payload=payload):
                            self.num_shortcuts += 1
            for w in out_pairs:
                del bwd[w][x]
            fwd[x] = {}
            bwd[x] = {}

        self._up_out = up_out
        self._down_out = down_out
        self._up_in = up_in
        self._down_in = down_in
        self._search_entries = total_entries
        # Untimed adjacency for cone marking.
        self._up_next: List[List[int]] = [
            [edge.other for edge in edges] for edges in up_out
        ]
        self._down_prev: List[List[int]] = [
            [edge.other for edge in edges] for edges in down_in
        ]

    def index_bytes(self) -> int:
        self.preprocess()
        # Each search-graph entry is one (dep, arr, ref) connection
        # record in either direction, mirroring CSA's accounting.
        return self._search_entries * 20

    # ------------------------------------------------------------------
    # Cones
    # ------------------------------------------------------------------

    def _down_cone(self, destination: int) -> bytearray:
        """Mark stations that can reach ``destination`` via down-edges
        only (indexable membership: ``cone[x]``)."""
        cone = bytearray(self.graph.n)
        cone[destination] = 1
        stack = [destination]
        down_prev = self._down_prev
        while stack:
            y = stack.pop()
            for x in down_prev[y]:
                if not cone[x]:
                    cone[x] = 1
                    stack.append(x)
        return cone

    def _up_cone(self, source: int) -> bytearray:
        """Mark stations reachable from ``source`` via up-edges only."""
        cone = bytearray(self.graph.n)
        cone[source] = 1
        stack = [source]
        up_next = self._up_next
        while stack:
            x = stack.pop()
            for y in up_next[x]:
                if not cone[y]:
                    cone[y] = 1
                    stack.append(y)
        return cone

    # ------------------------------------------------------------------
    # EAP
    # ------------------------------------------------------------------

    def earliest_arrival(
        self, source: int, destination: int, t: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        self.preprocess()
        cone = self._down_cone(destination)
        dist: Dict[int, int] = {source << 1: t}
        parent: Dict[int, Tuple[int, object]] = {}
        heap: List[Tuple[int, int]] = [(t, source << 1)]
        target0 = destination << 1
        target1 = target0 | 1
        best_key = -1
        while heap:
            arr0, key = heapq.heappop(heap)
            if arr0 > dist.get(key, INF):
                continue
            if key == target0 or key == target1:
                best_key = key
                break
            x, state = key >> 1, key & 1
            if state == 0:
                for edge in self._up_out[x]:
                    i = bisect_left(edge.deps, arr0)
                    if i == len(edge.deps):
                        continue
                    k2 = edge.other << 1
                    arr = edge.arrs[i]
                    if arr < dist.get(k2, INF):
                        dist[k2] = arr
                        parent[k2] = (key, edge.payloads[i])
                        heapq.heappush(heap, (arr, k2))
            for edge in self._down_out[x]:
                if not cone[edge.other]:
                    continue
                i = bisect_left(edge.deps, arr0)
                if i == len(edge.deps):
                    continue
                k2 = (edge.other << 1) | 1
                arr = edge.arrs[i]
                if arr < dist.get(k2, INF):
                    dist[k2] = arr
                    parent[k2] = (key, edge.payloads[i])
                    heapq.heappush(heap, (arr, k2))
        if best_key < 0:
            return None
        path = self._unpack_forward(parent, source, best_key)
        return Journey.from_path(path)

    def _unpack_forward(self, parent, source: int, key: int) -> Path:
        payloads = []
        while key in parent:
            key, payload = parent[key]
            payloads.append(payload)
        assert key >> 1 == source
        payloads.reverse()
        path: Path = []
        for payload in payloads:
            path.extend(_expand(payload))
        return path

    # ------------------------------------------------------------------
    # LDP
    # ------------------------------------------------------------------

    def latest_departure(
        self, source: int, destination: int, t: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        self.preprocess()
        cone = self._up_cone(source)
        # State 0: inside the journey's down-suffix (walking backward
        # from the destination); state 1: inside the up-prefix.
        dist: Dict[int, int] = {destination << 1: t}
        child: Dict[int, Tuple[int, object]] = {}
        heap: List[Tuple[int, int]] = [(-t, destination << 1)]
        source0 = source << 1
        source1 = source0 | 1
        best_key = -1
        while heap:
            neg_dep, key = heapq.heappop(heap)
            dep0 = -neg_dep
            if dep0 < dist.get(key, NEG_INF):
                continue
            if key == source0 or key == source1:
                best_key = key
                break
            y, state = key >> 1, key & 1
            if state == 0:
                for edge in self._down_in[y]:
                    i = bisect_right(edge.arrs, dep0) - 1
                    if i < 0:
                        continue
                    k2 = edge.other << 1
                    dep = edge.deps[i]
                    if dep > dist.get(k2, NEG_INF):
                        dist[k2] = dep
                        child[k2] = (key, edge.payloads[i])
                        heapq.heappush(heap, (-dep, k2))
            for edge in self._up_in[y]:
                if not cone[edge.other]:
                    continue
                i = bisect_right(edge.arrs, dep0) - 1
                if i < 0:
                    continue
                k2 = (edge.other << 1) | 1
                dep = edge.deps[i]
                if dep > dist.get(k2, NEG_INF):
                    dist[k2] = dep
                    child[k2] = (key, edge.payloads[i])
                    heapq.heappush(heap, (-dep, k2))
        if best_key < 0:
            return None
        payloads = []
        key = best_key
        while key in child:
            key, payload = child[key]
            payloads.append(payload)
        path: Path = []
        for payload in payloads:
            path.extend(_expand(payload))
        return Journey.from_path(path)

    # ------------------------------------------------------------------
    # SDP (self-pruning descending-departure sweeps)
    # ------------------------------------------------------------------

    def shortest_duration(
        self, source: int, destination: int, t: int, t_end: int
    ) -> Optional[Journey]:
        """SDP via descending departure-time sweeps.

        One hierarchy-restricted EAP sweep per departure time of the
        source inside the window, latest first.  A sweep only expands
        through (station, state) pairs it strictly improves relative to
        all later departures, so total work across sweeps stays close
        to one profile's worth.
        """
        self._check_query(source, destination)
        self._check_window(t, t_end)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        self.preprocess()
        cone = self._down_cone(destination)
        n = self.graph.n
        best_arr = [INF] * (2 * n)  # persists across sweeps
        dist = [0] * (2 * n)
        stamp = [0] * (2 * n)
        gen = 0

        dep_set = set()
        for edge in self._up_out[source]:
            i = bisect_left(edge.deps, t)
            while i < len(edge.deps) and edge.deps[i] <= t_end:
                dep_set.add(edge.deps[i])
                i += 1
        for edge in self._down_out[source]:
            if not cone[edge.other]:
                continue
            i = bisect_left(edge.deps, t)
            while i < len(edge.deps) and edge.deps[i] <= t_end:
                dep_set.add(edge.deps[i])
                i += 1

        pairs = ParetoProfile()
        up_out = self._up_out
        down_out = self._down_out
        for dep in sorted(dep_set, reverse=True):
            gen += 1
            heap: List[Tuple[int, int]] = []
            self._relax_sweep(
                source, 2, dep, cone, heap, dist, stamp, gen,
                best_arr, exact_dep=dep,
            )
            while heap:
                arr0, key = heapq.heappop(heap)
                if stamp[key] != gen or dist[key] != arr0:
                    continue
                if arr0 >= best_arr[key]:
                    continue
                best_arr[key] = arr0
                x, state = key >> 1, key & 1
                if x == destination:
                    if arr0 <= t_end:
                        pairs.add(dep, arr0)
                    continue
                if arr0 > t_end:
                    continue
                self._relax_sweep(
                    x, state, arr0, cone, heap, dist, stamp, gen, best_arr
                )

        best = pairs.best_duration(t, t_end)
        if best is None:
            return None
        journey = self.earliest_arrival(source, destination, best[0])
        assert journey is not None
        return journey

    def _relax_sweep(
        self,
        x: int,
        state: int,
        bound: int,
        cone: bytearray,
        heap: List[Tuple[int, int]],
        dist: List[int],
        stamp: List[int],
        gen: int,
        best_arr: List[int],
        exact_dep: Optional[int] = None,
    ) -> None:
        """Relax from ``(x, state)``; ``state == 2`` means the source
        seed (both states allowed, departures must equal ``exact_dep``).
        """
        if state in (0, 2):
            for edge in self._up_out[x]:
                i = bisect_left(edge.deps, bound)
                if i == len(edge.deps):
                    continue
                if exact_dep is not None and edge.deps[i] != exact_dep:
                    continue
                k2 = edge.other << 1
                arr = edge.arrs[i]
                if arr < best_arr[k2] and (
                    stamp[k2] != gen or arr < dist[k2]
                ):
                    dist[k2] = arr
                    stamp[k2] = gen
                    heapq.heappush(heap, (arr, k2))
        for edge in self._down_out[x]:
            if not cone[edge.other]:
                continue
            i = bisect_left(edge.deps, bound)
            if i == len(edge.deps):
                continue
            if exact_dep is not None and edge.deps[i] != exact_dep:
                continue
            k2 = (edge.other << 1) | 1
            arr = edge.arrs[i]
            if arr < best_arr[k2] and (
                stamp[k2] != gen or arr < dist[k2]
            ):
                dist[k2] = arr
                stamp[k2] = gen
                heapq.heappush(heap, (arr, k2))
