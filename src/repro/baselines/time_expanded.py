"""Time-expanded graph routing (Section 9's first related-work
category).

The paper notes that techniques which convert the timetable graph into
a *time-expanded* graph — one node per spatio-temporal event, edges
for rides and for waiting at a station — "are generally not comparable
to the state-of-the-art methods that process queries on G".  This
module implements that category faithfully so the claim is
reproducible:

* every connection contributes a departure event at ``(u, dep)`` and
  an arrival event at ``(v, arr)``;
* consecutive events at one station are linked by waiting edges;
* a ride edge links each departure event to its arrival event.

All edges point forward in time, so the expanded graph is a DAG and an
EAP query is a forward reachability sweep from the first event at the
source no earlier than ``t`` (earliest reachable event at the target).
LDP is the mirrored backward sweep; SDP sweeps departure times.  The
per-query cost is linear in the number of events — exactly why this
category lost to CSA/CHT/TTL.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Tuple

from repro.algorithms.profiles import ParetoProfile
from repro.graph.connection import Connection, Path
from repro.journey import Journey
from repro.planner import RoutePlanner


class TimeExpandedPlanner(RoutePlanner):
    """Routing on the time-expanded event graph."""

    name = "TimeExpanded"

    def _build(self) -> None:
        graph = self.graph
        #: Per station: sorted distinct event times.
        times: List[List[int]] = [set() for _ in range(graph.n)]  # type: ignore
        for c in graph.connections:
            times[c.u].add(c.dep)
            times[c.v].add(c.arr)
        self._times = [sorted(t) for t in times]

        #: Event ids are (station, position) flattened.
        offsets = [0]
        for t in self._times:
            offsets.append(offsets[-1] + len(t))
        self._offsets = offsets
        self.num_events = offsets[-1]

        def event_id(station: int, time: int) -> int:
            pos = bisect_left(self._times[station], time)
            return self._offsets[station] + pos

        #: Ride edges per departure event; waiting edges are implicit
        #: (event i at a station connects to event i+1).
        self._rides: List[List[Tuple[int, Connection]]] = [
            [] for _ in range(self.num_events)
        ]
        for c in graph.connections:
            self._rides[event_id(c.u, c.dep)].append(
                (event_id(c.v, c.arr), c)
            )
        #: Reverse ride edges per arrival event (for LDP).
        self._rides_in: List[List[Tuple[int, Connection]]] = [
            [] for _ in range(self.num_events)
        ]
        for eid, rides in enumerate(self._rides):
            for target, conn in rides:
                self._rides_in[target].append((eid, conn))
        self.num_ride_edges = graph.m
        self.num_wait_edges = sum(
            max(0, len(t) - 1) for t in self._times
        )

    def index_bytes(self) -> int:
        # One record per event plus one per edge (ride + wait).
        self.preprocess()
        return (
            self.num_events * 8
            + (self.num_ride_edges + self.num_wait_edges) * 12
        )

    # ------------------------------------------------------------------
    # Event helpers
    # ------------------------------------------------------------------

    def _station_of(self, eid: int) -> int:
        lo, hi = 0, self.graph.n
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if self._offsets[mid] <= eid:
                lo = mid
            else:
                hi = mid
        return lo

    def _event_time(self, eid: int) -> int:
        station = self._station_of(eid)
        return self._times[station][eid - self._offsets[station]]

    # ------------------------------------------------------------------
    # EAP: forward reachability sweep in event-time order
    # ------------------------------------------------------------------

    def _forward_sweep(
        self, source: int, t: int, destination: int
    ) -> Tuple[Optional[int], Dict[int, Tuple[int, Optional[Connection]]]]:
        """Returns (earliest reachable event at destination, parents)."""
        self.preprocess()
        reachable: Dict[int, Tuple[int, Optional[Connection]]] = {}
        pos = bisect_left(self._times[source], t)
        if pos == len(self._times[source]):
            return None, reachable
        start = self._offsets[source] + pos
        # Events are processed in a global time-ordered frontier.
        import heapq

        heap: List[Tuple[int, int]] = [(self._times[source][pos], start)]
        reachable[start] = (-1, None)
        best: Optional[int] = None
        while heap:
            time, eid = heapq.heappop(heap)
            station = self._station_of(eid)
            if station == destination:
                best = eid
                break
            # Waiting edge to the next event at this station.
            nxt = eid + 1
            if (
                nxt < self._offsets[station + 1]
                and nxt not in reachable
            ):
                reachable[nxt] = (eid, None)
                heapq.heappush(heap, (self._event_time(nxt), nxt))
            # Ride edges.
            for target, conn in self._rides[eid]:
                if target not in reachable:
                    reachable[target] = (eid, conn)
                    heapq.heappush(heap, (conn.arr, target))
        return best, reachable

    def earliest_arrival(
        self, source: int, destination: int, t: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        best, parents = self._forward_sweep(source, t, destination)
        if best is None:
            return None
        path: Path = []
        eid = best
        while eid in parents:
            prev, conn = parents[eid]
            if conn is not None:
                path.append(conn)
            if prev < 0:
                break
            eid = prev
        path.reverse()
        if not path:  # pragma: no cover - defensive
            return None
        return Journey.from_path(path)

    # ------------------------------------------------------------------
    # LDP: backward sweep
    # ------------------------------------------------------------------

    def latest_departure(
        self, source: int, destination: int, t: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        self.preprocess()
        pos = bisect_right(self._times[destination], t) - 1
        if pos < 0:
            return None
        start = self._offsets[destination] + pos
        import heapq

        children: Dict[int, Tuple[int, Optional[Connection]]] = {
            start: (-1, None)
        }
        heap: List[Tuple[int, int]] = [
            (-self._times[destination][pos], start)
        ]
        best: Optional[int] = None
        while heap:
            neg_time, eid = heapq.heappop(heap)
            station = self._station_of(eid)
            if station == source and self._rides[eid]:
                # A departure event at the source: candidate start.
                best = eid
                break
            prev = eid - 1
            if prev >= self._offsets[station] and prev not in children:
                children[prev] = (eid, None)
                heapq.heappush(heap, (-self._event_time(prev), prev))
            for origin, conn in self._rides_in[eid]:
                if origin not in children:
                    children[origin] = (eid, conn)
                    heapq.heappush(heap, (-conn.dep, origin))
        if best is None:
            return None
        path: Path = []
        eid = best
        while eid in children:
            nxt, conn = children[eid]
            if conn is not None:
                path.append(conn)
            if nxt < 0:
                break
            eid = nxt
        if not path:
            return None
        # The first hop out of ``best`` must actually be a ride from
        # the source; walk recorded in order already.
        return Journey.from_path(path)

    # ------------------------------------------------------------------
    # SDP: departure-time sweep
    # ------------------------------------------------------------------

    def shortest_duration(
        self, source: int, destination: int, t: int, t_end: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        self._check_window(t, t_end)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        self.preprocess()
        pairs = ParetoProfile()
        for dep in reversed(self.graph.departure_times(source)):
            if dep < t or dep > t_end:
                continue
            best, parents = self._forward_sweep(source, dep, destination)
            if best is None:
                continue
            arr = self._event_time(best)
            if arr <= t_end:
                pairs.add(dep, arr)
        answer = pairs.best_duration(t, t_end)
        if answer is None:
            return None
        return self.earliest_arrival(source, destination, answer[0])
